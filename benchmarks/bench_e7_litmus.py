"""E7 — the litmus table: RA verdicts vs SC verdicts.

Regenerates the fragment's behavioural fingerprint (Example 3.6's
discussion and §1's framing): store buffering / IRIW / 2+2W weak
behaviours allowed, message passing repaired by release/acquire, load
buffering excluded by NoThinAir, coherence shapes forbidden, update
atomicity enforced.  Every verdict must match the expected column.
"""

import pytest

from conftest import once, table
from repro.interp.ra_model import RAMemoryModel
from repro.interp.sc import SCMemoryModel
from repro.litmus.registry import run_litmus, run_suite
from repro.litmus.suite import ALL_TESTS


def test_full_suite_table(benchmark):
    outcomes = once(benchmark, lambda: run_suite(ALL_TESTS))
    table("E7: litmus suite (RA vs SC)", [o.row() for o in outcomes])
    assert all(o.verdict_matches for o in outcomes)
    benchmark.extra_info["tests"] = len(outcomes)


@pytest.mark.parametrize(
    "name", ["SB", "MP+rel-acq", "IRIW+rel-acq", "LB", "RMW-exclusive"]
)
def test_individual_ra(benchmark, name):
    test = next(t for t in ALL_TESTS if t.name == name)
    outcome = once(benchmark, lambda: run_litmus(test, RAMemoryModel()))
    assert outcome.verdict_matches
    benchmark.extra_info["configs"] = outcome.configs


def test_sc_is_faster_but_weaker(benchmark):
    """SC explores fewer configurations than RA on the same program —
    the price of weak memory, quantified."""
    def run():
        rows = []
        for t in ALL_TESTS:
            ra = run_litmus(t, RAMemoryModel())
            sc = run_litmus(t, SCMemoryModel())
            rows.append((t.name, ra.configs, sc.configs))
        return rows

    rows = once(benchmark, run)
    table(
        "E7: state-space size, RA vs SC",
        [f"{n:<22} RA={a:>6}  SC={s:>6}  ratio={a/s:4.1f}x" for n, a, s in rows],
    )
    assert all(a >= s for _, a, s in rows)
