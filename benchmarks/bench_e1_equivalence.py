"""E1 — the Memalloy experiment (Appendix E).

Paper: "No differences were found between c11_rar.cat and
c11_simp_2.cat for models up to size 7."

Here: exhaustively enumerate candidate executions up to a size bound and
evaluate both axiomatisations (the paper's Coherence vs the weak
canonical conditions) on every one; the table reports candidates,
consistent counts and mismatches (expected: zero everywhere).
Python enumeration replaces the SAT search, so the feasible bound is
smaller (see DESIGN.md, Substitutions).
"""

import pytest

from conftest import once, table
from repro.axiomatic.candidates import CandidateSpace
from repro.axiomatic.equivalence import compare_axiomatisations


def _space(n, variables=("x",), values=(1,)):
    return CandidateSpace(
        n_events=n, variables=variables, values=values, max_threads=2
    )


@pytest.mark.parametrize("n", [1, 2, 3])
def test_equivalence_single_variable(benchmark, n):
    result = once(benchmark, lambda: compare_axiomatisations(_space(n)))
    table(f"E1: single variable, n={n}", [result.row()])
    benchmark.extra_info["candidates"] = result.candidates
    benchmark.extra_info["mismatches"] = len(result.mismatches)
    assert result.equivalent


@pytest.mark.parametrize("n", [1, 2])
def test_equivalence_two_variables(benchmark, n):
    result = once(
        benchmark,
        lambda: compare_axiomatisations(_space(n, variables=("x", "y"))),
    )
    table(f"E1: two variables, n={n}", [result.row()])
    benchmark.extra_info["candidates"] = result.candidates
    assert result.equivalent


def test_equivalence_size_four(benchmark):
    """The big one: 887 488 candidates at n=4 (single variable).

    Memalloy reached size 7 with SAT; this is how far exhaustive Python
    enumeration comfortably goes in ~2 minutes — and the answer is the
    same: zero mismatches.
    """
    result = once(benchmark, lambda: compare_axiomatisations(_space(4)))
    table("E1: single variable, n=4", [result.row()])
    benchmark.extra_info["candidates"] = result.candidates
    assert result.equivalent
    assert result.candidates == 887488


def test_equivalence_two_values(benchmark):
    result = once(
        benchmark,
        lambda: compare_axiomatisations(_space(2, values=(1, 2))),
    )
    table("E1: two values, n=2", [result.row()])
    assert result.equivalent


def test_weak_vs_canonical_separation(benchmark):
    """Definition C.2 vs C.3: how many candidates does dropping release
    sequences admit?  (Lemma C.4 guarantees one-way containment; the
    count of separated candidates quantifies the paper's 'weaker
    semantics, more valid executions'.)"""
    from repro.axiomatic.canonical import is_weakly_canonical_consistent
    from repro.axiomatic.canonical_strong import is_canonically_consistent
    from repro.axiomatic.candidates import enumerate_candidates

    space = CandidateSpace(
        n_events=3, variables=("x", "y"), values=(1,), max_threads=2
    )

    def run():
        total = weak_only = violations = 0
        for state in enumerate_candidates(space):
            total += 1
            canonical = is_canonically_consistent(state)
            weak = is_weakly_canonical_consistent(state)
            if canonical and not weak:
                violations += 1  # would refute Lemma C.4
            if weak and not canonical:
                weak_only += 1
        return total, weak_only, violations

    total, weak_only, violations = once(benchmark, run)

    # The smallest weak-only execution needs 5 events (the release-
    # sequence message-passing shape, pinned in
    # tests/test_canonical_strong.py::test_separating_execution) — out of
    # this enumeration's range, so weak_only = 0 here; the Lemma C.4
    # containment over all 31k candidates is the bench's claim.
    from repro.axiomatic.canonical import is_weakly_canonical_consistent
    from tests_support import release_sequence_witness

    witness = release_sequence_witness()
    separated = is_weakly_canonical_consistent(
        witness
    ) and not is_canonically_consistent(witness)

    table(
        "E1: weak (Def C.3) vs canonical (Def C.2), 2 vars, n=3",
        [
            f"candidates={total}  weak-only={weak_only}  "
            f"Lemma C.4 violations={violations} (expected 0)",
            f"5-event release-sequence witness separates the models: {separated}",
        ],
    )
    assert violations == 0
    assert separated


def test_equivalence_lb_shape_thin_air_split(benchmark):
    """The read/write-only subspace at n=4 contains the LB candidates:
    consistent under both axiomatisations yet sb ∪ rf-cyclic — exactly
    what NoThinAir adds on top of the agreed core."""
    from repro.lang.actions import ActionKind

    space = CandidateSpace(
        n_events=4,
        variables=("x", "y"),
        values=(1,),
        max_threads=2,
        kinds=(ActionKind.RD, ActionKind.WR),
    )
    result = once(benchmark, lambda: compare_axiomatisations(space))
    table("E1: rd/wr-only subspace, n=4 (thin-air split)", [result.row()])
    benchmark.extra_info["thin_air_only"] = result.thin_air_only
    assert result.equivalent
    assert result.thin_air_only > 0
