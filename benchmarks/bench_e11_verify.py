"""E11 — the verification workbench: registry sweep throughput.

Discharges every registered (proof outline × model) pair (DESIGN.md
§10) and reports obligations per second — the workbench's unit of work
— plus the sleep-reduction effect on the discharge: identical
configurations and verdicts, fewer transitions checked.  Recorded via
``--bench-json`` so the proof-sweep cost rides the same perf trajectory
as E4/E8.
"""

import time

import pytest

from conftest import once, table
from emit_json import engine_stats_payload
from repro.verify.registry import PROOFS


def _sweep(reduction: str):
    reports = []
    t0 = time.perf_counter()
    for entry, model in PROOFS.pairs():
        reports.append(
            (entry.name, model, entry.check(model, reduction=reduction))
        )
    return reports, time.perf_counter() - t0


def test_registry_sweep_throughput(benchmark, bench_json):
    reports, wall = once(benchmark, lambda: _sweep("none"))
    obligations = sum(r.obligations_discharged for _, _, r in reports)
    rows = [
        f"{name:<22} [{model}] {report.row()}"
        for name, model, report in reports
    ]
    rows.append(
        f"total: {len(reports)} pairs, {obligations} obligations, "
        f"{obligations / wall:,.0f} obligations/s"
    )
    table("E11: proof-registry sweep (reduction=none)", rows)
    assert all(report.proved for _, _, report in reports)
    benchmark.extra_info["obligations"] = obligations
    bench_json.record(
        "e11_registry_sweep",
        {
            "pairs": len(reports),
            "obligations": obligations,
            "wall_s": wall,
            "per_pair": {
                f"{name}[{model}]": {
                    "configs": report.configs,
                    "transitions": report.transitions,
                    "obligations": report.obligations_discharged,
                    "proved": report.proved,
                    "engine": engine_stats_payload(report.stats),
                }
                for name, model, report in reports
            },
        },
    )


def test_sleep_reduction_discharge_parity(benchmark, bench_json):
    """Sleep sets must keep every verdict and every configuration while
    checking strictly fewer (or equal) transitions."""
    full, _ = _sweep("none")
    reduced, wall = once(benchmark, lambda: _sweep("sleep"))
    rows = []
    saved = 0
    for (name, model, f), (_, _, r) in zip(full, reduced):
        assert (f.proved, f.configs) == (r.proved, r.configs), (name, model)
        assert r.transitions <= f.transitions
        saved += f.transitions - r.transitions
        rows.append(
            f"{name:<22} [{model}] transitions {f.transitions} -> "
            f"{r.transitions}"
        )
    rows.append(f"total transitions avoided: {saved}")
    table("E11: discharge under sleep sets (config-identical)", rows)
    bench_json.record(
        "e11_sleep_parity",
        {
            "pairs": len(full),
            "transitions_full": sum(f.transitions for _, _, f in full),
            "transitions_sleep": sum(r.transitions for _, _, r in reduced),
            "wall_s": wall,
        },
    )
