"""E3 — empirical Theorem 4.8 (completeness of the RA semantics).

Every justification of every terminal pre-execution replays through ⇒RA
along a linearisation of sb ∪ rf, with each intermediate state equal to
the prescribed restriction.  Rows: pre-executions, justifiable count,
total justifications, replays succeeded (must equal the total).
"""

import pytest

from conftest import once, table
from repro.checking.completeness import check_completeness
from repro.lang.builder import acq, assign, seq, swap, var
from repro.lang.program import Program

WORKLOADS = {
    "SB": (
        Program.parallel(
            seq(assign("x", 1), assign("r1", var("y"))),
            seq(assign("y", 1), assign("r2", var("x"))),
        ),
        {"x": 0, "y": 0, "r1": 0, "r2": 0},
    ),
    "MP+rel-acq": (
        Program.parallel(
            seq(assign("d", 1), assign("f", 1, release=True)),
            seq(assign("r1", acq("f")), assign("r2", var("d"))),
        ),
        {"d": 0, "f": 0, "r1": 0, "r2": 0},
    ),
    "LB": (
        Program.parallel(
            seq(assign("r1", var("x")), assign("y", 1)),
            seq(assign("r2", var("y")), assign("x", 1)),
        ),
        {"x": 0, "y": 0, "r1": 0, "r2": 0},
    ),
    "2 swaps + readers": (
        Program.parallel(
            seq(swap("t", 2), assign("r1", var("t"))),
            seq(swap("t", 3), assign("r2", var("t"))),
        ),
        {"t": 1, "r1": 0, "r2": 0},
    ),
    "CoRR": (
        Program.parallel(
            seq(assign("x", 1), assign("x", 2)),
            seq(assign("r1", var("x")), assign("r2", var("x"))),
        ),
        {"x": 0, "r1": 0, "r2": 0},
    ),
}


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_completeness(benchmark, name):
    program, init = WORKLOADS[name]
    report = once(benchmark, lambda: check_completeness(program, init, name=name))
    table(f"E3: completeness, {name}", [report.row()])
    assert report.complete
    assert report.replays_ok == report.justifications_total
    benchmark.extra_info["justifications"] = report.justifications_total
