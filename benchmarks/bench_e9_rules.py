"""E9 — soundness of the Figure 4 proof rules (Lemmas B.1–B.3).

Every premise-satisfying instance of every rule, on every transition of
the explored state spaces of the case studies, must have a true
conclusion.  The table reports how many instances each rule discharged
(zero failures expected).
"""

import pytest

from conftest import once, table
from repro.casestudies.message_passing import MP_INIT, message_passing_program
from repro.casestudies.peterson import PETERSON_INIT, peterson_program
from repro.casestudies.token_ring import TOKEN_INIT, token_ring_program
from repro.interp.explore import explore
from repro.interp.ra_model import RAMemoryModel
from repro.verify.rules import RuleCheckResult, check_rules_on_step, rule_init
from repro.c11.state import initial_state

CASES = {
    "MP": (message_passing_program(), MP_INIT, 8, ["d", "f", "r"]),
    "peterson": (
        peterson_program(once=True),
        PETERSON_INIT,
        9,
        ["flag1", "flag2", "turn"],
    ),
    "token-ring": (token_ring_program(2), TOKEN_INIT, 9, ["token"]),
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_rules_discharged(benchmark, name):
    program, init, bound, variables = CASES[name]
    threads = list(program.tids)

    def run():
        result = RuleCheckResult()

        def on_step(step):
            check_rules_on_step(step, variables, threads, result)
            return []

        explore(
            program,
            init,
            RAMemoryModel(),
            max_events=bound,
            check_step=on_step,
        )
        return result

    result = once(benchmark, run)
    table(
        f"E9: Figure 4 rule instances, {name}",
        [f"{rule:<10} discharged={n}" for rule, n in result.checked.items() if n]
        + [result.row()],
    )
    assert result.sound, [f"{i.rule}: {i.description}" for i in result.failures[:3]]
    benchmark.extra_info["instances"] = result.total


def test_init_rule(benchmark):
    def run():
        state = initial_state(PETERSON_INIT)
        return list(rule_init(state, ["flag1", "flag2", "turn"], [1, 2]))

    instances = once(benchmark, run)
    table("E9: Init rule on Peterson's σ0", [f"instances={len(instances)}"])
    assert all(i.conclusion_holds for i in instances)
