"""Machine-readable benchmark output (``--bench-json PATH``).

The experiment benchmarks historically printed human tables only, so
the perf trajectory of the repo was anecdotal.  This helper gives every
benchmark a place to drop structured records: tests take the
``bench_json`` fixture (see ``conftest.py``) and call
:meth:`BenchRecorder.record`; when the session was started with
``--bench-json PATH`` the collected records are written to ``PATH`` as
one JSON document at session end (CI uploads
``BENCH_e4_peterson.json`` / ``BENCH_e8_scalability.json`` as workflow
artifacts).  Without the flag, recording is a no-op, so the same tests
run unchanged in quick smokes.

The document shape is deliberately flat and diff-friendly::

    {
      "schema": "repro-bench/1",
      "records": {
        "<record name>": {...arbitrary JSON payload...},
        ...
      }
    }
"""

from __future__ import annotations

import json
from typing import Dict, Optional

SCHEMA = "repro-bench/1"


class BenchRecorder:
    """Collects named benchmark records and writes them once."""

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self.records: Dict[str, dict] = {}

    def record(self, name: str, payload: dict) -> None:
        """Add (or overwrite) one named record."""
        self.records[name] = payload

    def write(self) -> Optional[str]:
        """Write the document to ``path``; returns the path written, or
        ``None`` when no path was configured or nothing was recorded."""
        if not self.path or not self.records:
            return None
        document = {"schema": SCHEMA, "records": self.records}
        with open(self.path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return self.path


def engine_stats_payload(stats) -> dict:
    """A JSON-friendly dump of an :class:`~repro.engine.stats.EngineStats`."""
    return {
        "strategy": stats.strategy,
        "reduction": stats.reduction,
        "equivalence": stats.equivalence,
        "peak_frontier": stats.peak_frontier,
        "key_hits": stats.key_hits,
        "key_misses": stats.key_misses,
        "time_total_s": stats.time_total,
        "expanded": stats.expanded,
        "pruned": stats.pruned,
        "sleep_hits": stats.sleep_hits,
        "races": stats.races,
        "revisits": stats.revisits,
        "reduction_ratio": stats.reduction_ratio,
    }


__all__ = ["BenchRecorder", "SCHEMA", "engine_stats_payload"]
