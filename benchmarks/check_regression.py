"""CI regression gate over the benchmark JSON documents.

Usage::

    python benchmarks/check_regression.py BASELINE.json CURRENT.json \
        [--tolerance 0.25]

Compares the records two ``repro-bench/1`` documents share (the
committed ``BENCH_*.json`` baseline vs a fresh CI run) and exits 1 on a
regression beyond ``--tolerance`` (default 25%).  Two record families
are gated:

**``e12_hotpath``** — calibrated throughput.  Raw states/sec would
measure the runner, not the engine: CI machines differ from the machine
the baseline was committed on.  Both documents therefore carry a
``spin_score`` — iterations/sec of a fixed pure-Python loop recorded in
the same session — and the gate compares ``states_per_sec /
spin_score``, in which machine speed cancels.  The in-session
compact-vs-pair-set ``speedup`` and lowered-vs-walker ``speedup_lower``
columns are machine-independent already and are gated directly.  The
engine's two optimised phases are additionally gated *separately*:
``expand`` (successor expansion — the lowered-program IR's target,
DESIGN.md §12) and ``orders`` (derived-order maintenance — the compact
representation's target, §11).  Each phase's calibrated cost per
configuration (``time * spin_score / configs``, i.e. spin-equivalent
iterations per explored state) must not grow past tolerance, so a
regression in one layer cannot hide behind an improvement in the other.
Phases under 5 ms in the baseline are skipped — at that scale the ratio
is timer noise.

**``e8_peterson_reduction_series``** — reduction quality.  Config
counts are deterministic (machine-independent), so the per-bound
``dpor_config_ratio`` / ``optimal_config_ratio`` columns are gated
directly: the how-much-smaller-than-unreduced ratio of each reduction
tier must not fall below the committed baseline beyond tolerance.  A
change that quietly weakens the parsimonious explorer (DESIGN.md §13)
or DPOR therefore fails CI even while outcome parity still holds.

**``e13_sharded``** — sharded-exploration scaling.  The stall-injected
shard series (see ``bench_e13_sharded.py``) records per-shard-count
wall-clock ``speedup`` columns that are already machine-comparable (the
per-state stall is spin-calibrated, so protocol overhead and stall
scale together across hosts).  The 4-shard speedup is gated two ways:
it must stay at or above the hard ``SPEEDUP_FLOOR`` (the E13
acceptance bar, no tolerance), and it must not fall below the
committed baseline's beyond tolerance.  The accompanying ``e13_spill``
record must continue to report ``identical: true`` with at least one
spill — a spill run that stopped overflowing (or stopped agreeing with
the in-memory run) fails the gate outright.

A record family present in only one of the two documents is skipped;
**``e13_checkpoint``** — checkpoint overhead.  The stalled Peterson
workload explored with snapshots on and off in the same session
records ``overhead_ratio`` (on/off wall clock, machine-independent by
construction); the gate holds it at or under the hard
``CHECKPOINT_OVERHEAD_CEILING`` of 1.05 — checkpointing may never cost
more than 5% in the per-state-work-dominated regime it exists for —
and requires that at least one snapshot actually landed and that the
run asserted byte-identical results.

The gate fails if the documents share no gated record at all.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_document(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    return document.get("records", {})


def check_hotpath(base_record, cur_record, tolerance, failures) -> None:
    """Gate the calibrated e12 hot-path throughput and phase costs."""
    base_score = base_record.get("spin_score") or 0.0
    cur_score = cur_record.get("spin_score") or 0.0
    if base_score <= 0.0 or cur_score <= 0.0:
        failures.append(
            "e12_hotpath: spin_score missing or zero; cannot calibrate"
        )
        return
    base_cases = base_record.get("cases", {})
    cur_cases = cur_record.get("cases", {})
    print(f"{'case':<20} {'baseline':>12} {'current':>12} {'ratio':>7}  (calibrated st/s)")
    for name, base in sorted(base_cases.items()):
        cur = cur_cases.get(name)
        if cur is None:
            failures.append(f"{name}: missing from current run")
            continue
        base_norm = base["states_per_sec"] / base_score
        cur_norm = cur["states_per_sec"] / cur_score
        if base_norm <= 0.0:
            failures.append(f"{name}: baseline throughput is zero")
            continue
        ratio = cur_norm / base_norm
        flag = ""
        if ratio < 1.0 - tolerance:
            failures.append(
                f"{name}: calibrated throughput fell to {ratio:.2f}x of the "
                f"baseline (tolerance {1.0 - tolerance:.2f}x)"
            )
            flag = "  ** REGRESSION **"
        print(f"{name:<20} {base_norm:>12.4f} {cur_norm:>12.4f} {ratio:>6.2f}x{flag}")
        speedup = cur.get("speedup", 0.0)
        if speedup < base["speedup"] * (1.0 - tolerance):
            failures.append(
                f"{name}: compact-vs-pair-set speedup fell to {speedup:.2f}x "
                f"(baseline {base['speedup']:.2f}x, tolerance {tolerance:.0%})"
            )
        base_lower = base.get("speedup_lower")
        if base_lower is not None:
            lower = cur.get("speedup_lower", 0.0)
            if lower < base_lower * (1.0 - tolerance):
                failures.append(
                    f"{name}: lowered-vs-walker speedup fell to {lower:.2f}x "
                    f"(baseline {base_lower:.2f}x, tolerance {tolerance:.0%})"
                )
        for phase in ("expand", "orders"):
            base_t = base.get(f"time_{phase}_s")
            cur_t = cur.get(f"time_{phase}_s")
            if base_t is None or cur_t is None or base_t < 0.005:
                continue
            if not base.get("configs") or not cur.get("configs"):
                continue
            base_cost = base_t * base_score / base["configs"]
            cur_cost = cur_t * cur_score / cur["configs"]
            if base_cost <= 0.0:
                continue
            cost_ratio = cur_cost / base_cost
            if cost_ratio > 1.0 + tolerance:
                failures.append(
                    f"{name}: calibrated {phase} cost grew to "
                    f"{cost_ratio:.2f}x of the baseline "
                    f"(tolerance {1.0 + tolerance:.2f}x)"
                )


def check_reduction_series(base_record, cur_record, tolerance, failures) -> None:
    """Gate the per-bound reduction config ratios of the E8 series."""
    base_by_bound = {s["bound"]: s for s in base_record.get("series", [])}
    cur_by_bound = {s["bound"]: s for s in cur_record.get("series", [])}
    print(f"{'series':<28} {'baseline':>9} {'current':>9}  (configs ratio vs none)")
    for bound, base in sorted(base_by_bound.items()):
        cur = cur_by_bound.get(bound)
        if cur is None:
            failures.append(f"reduction series: bound {bound} missing from current run")
            continue
        for column in ("dpor_config_ratio", "optimal_config_ratio"):
            base_ratio = base.get(column)
            cur_ratio = cur.get(column)
            if base_ratio is None:
                continue  # older baseline without this tier
            if cur_ratio is None:
                failures.append(
                    f"reduction series bound {bound}: {column} missing "
                    "from current run"
                )
                continue
            flag = ""
            if cur_ratio < base_ratio * (1.0 - tolerance):
                failures.append(
                    f"reduction series bound {bound}: {column} fell to "
                    f"{cur_ratio:.2f}x (baseline {base_ratio:.2f}x, "
                    f"tolerance {tolerance:.0%})"
                )
                flag = "  ** REGRESSION **"
            print(
                f"bound {bound:>2} {column:<19} {base_ratio:>8.2f}x "
                f"{cur_ratio:>8.2f}x{flag}"
            )


#: The E13 acceptance bar: wall-clock speedup at 4 shards on the
#: stalled Peterson series.  A hard floor, not tolerance-scaled.
SPEEDUP_FLOOR = 1.8


def check_sharded(base_record, cur_record, tolerance, failures) -> None:
    """Gate the E13 shard-speedup series and the spill-identity flags."""
    base_by_shards = {s["shards"]: s for s in base_record.get("series", [])}
    cur_by_shards = {s["shards"]: s for s in cur_record.get("series", [])}
    print(f"{'shards':<8} {'baseline':>9} {'current':>9}  (wall-clock speedup)")
    for shards, base in sorted(base_by_shards.items()):
        cur = cur_by_shards.get(shards)
        if cur is None:
            failures.append(
                f"shard series: {shards} shards missing from current run"
            )
            continue
        flag = ""
        if cur["speedup"] < base["speedup"] * (1.0 - tolerance):
            failures.append(
                f"shard series: {shards}-shard speedup fell to "
                f"{cur['speedup']:.2f}x (baseline {base['speedup']:.2f}x, "
                f"tolerance {tolerance:.0%})"
            )
            flag = "  ** REGRESSION **"
        print(
            f"{shards:<8} {base['speedup']:>8.2f}x {cur['speedup']:>8.2f}x"
            f"{flag}"
        )
    top = max(cur_by_shards) if cur_by_shards else None
    if top is None or cur_by_shards[top]["speedup"] < SPEEDUP_FLOOR:
        got = cur_by_shards[top]["speedup"] if top is not None else 0.0
        failures.append(
            f"shard series: {top}-shard speedup {got:.2f}x is below the "
            f"hard E13 floor of {SPEEDUP_FLOOR:.1f}x"
        )
    if not cur_record.get("outcomes_identical"):
        failures.append(
            "shard series: the current run did not assert identical "
            "outcome sets"
        )


def check_spill(base_record, cur_record, tolerance, failures) -> None:
    """Gate the E13 spill run: still overflows, still byte-identical."""
    if not cur_record.get("identical"):
        failures.append("spill run: verdicts no longer identical")
    if cur_record.get("spills", 0) < 1:
        failures.append(
            "spill run: the 512MB budget was never exceeded — the "
            "workload no longer exercises the spill path"
        )
    base_configs = base_record.get("configs")
    if base_configs is not None and cur_record.get("configs") != base_configs:
        failures.append(
            f"spill run: configs changed from {base_configs} to "
            f"{cur_record.get('configs')} (deterministic workload)"
        )
    print(
        f"spill run: {cur_record.get('configs')} configs, "
        f"{cur_record.get('spills')} spill(s), "
        f"identical={bool(cur_record.get('identical'))}"
    )


#: Hard ceiling on the checkpointed/plain wall-clock ratio of the E13
#: overhead pair.  Not tolerance-scaled: <5% is the acceptance bar.
CHECKPOINT_OVERHEAD_CEILING = 1.05


def check_checkpoint(base_record, cur_record, tolerance, failures) -> None:
    """Gate the E13 checkpoint-overhead pair (hard 5% ceiling)."""
    ratio = cur_record.get("overhead_ratio")
    snapshots = cur_record.get("checkpoints", 0)
    if not cur_record.get("identical"):
        failures.append(
            "checkpoint pair: results no longer identical with snapshots on"
        )
    if snapshots < 1:
        failures.append(
            "checkpoint pair: no snapshot was written — the workload no "
            "longer exercises the checkpoint path"
        )
    if ratio is None:
        failures.append("checkpoint pair: overhead_ratio missing")
    elif ratio > CHECKPOINT_OVERHEAD_CEILING:
        failures.append(
            f"checkpoint pair: overhead {100.0 * (ratio - 1.0):+.1f}% "
            f"exceeds the hard {CHECKPOINT_OVERHEAD_CEILING:.2f}x ceiling"
        )
    print(
        f"checkpoint pair: overhead "
        f"{'n/a' if ratio is None else f'{100.0 * (ratio - 1.0):+.1f}%'}, "
        f"{snapshots} snapshot(s), "
        f"identical={bool(cur_record.get('identical'))}"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="maximum allowed fractional regression (default 0.25)",
    )
    args = parser.parse_args(argv)

    base = load_document(args.baseline)
    cur = load_document(args.current)

    failures = []
    gated = 0
    if "e12_hotpath" in base and "e12_hotpath" in cur:
        gated += 1
        check_hotpath(
            base["e12_hotpath"], cur["e12_hotpath"], args.tolerance, failures
        )
    if (
        "e8_peterson_reduction_series" in base
        and "e8_peterson_reduction_series" in cur
    ):
        gated += 1
        check_reduction_series(
            base["e8_peterson_reduction_series"],
            cur["e8_peterson_reduction_series"],
            args.tolerance,
            failures,
        )
    if "e13_sharded" in base and "e13_sharded" in cur:
        gated += 1
        check_sharded(
            base["e13_sharded"], cur["e13_sharded"], args.tolerance, failures
        )
    if "e13_spill" in base and "e13_spill" in cur:
        gated += 1
        check_spill(
            base["e13_spill"], cur["e13_spill"], args.tolerance, failures
        )
    if "e13_checkpoint" in base and "e13_checkpoint" in cur:
        gated += 1
        check_checkpoint(
            base["e13_checkpoint"], cur["e13_checkpoint"], args.tolerance,
            failures,
        )
    if not gated:
        print(
            f"{args.baseline} and {args.current} share no gated record "
            "(e12_hotpath, e8_peterson_reduction_series, e13_sharded, "
            "e13_spill or e13_checkpoint)",
            file=sys.stderr,
        )
        return 1
    if failures:
        print()
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print("\nno regression beyond tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
