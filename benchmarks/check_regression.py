"""CI regression gate over the E12 hot-path benchmark.

Usage::

    python benchmarks/check_regression.py BASELINE.json CURRENT.json \
        [--tolerance 0.25]

Compares the ``e12_hotpath`` record of two ``repro-bench/1`` documents
(the committed ``BENCH_e12_hotpath.json`` baseline vs a fresh CI run)
and exits 1 when any case's *calibrated* throughput regressed by more
than ``--tolerance`` (default 25%).

Raw states/sec would measure the runner, not the engine: CI machines
differ from the machine the baseline was committed on.  Both documents
therefore carry a ``spin_score`` — iterations/sec of a fixed
pure-Python loop recorded in the same session — and the gate compares
``states_per_sec / spin_score``, in which machine speed cancels.  The
in-session compact-vs-pair-set ``speedup`` column is machine-
independent already and is gated directly.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_cases(path: str):
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    try:
        record = document["records"]["e12_hotpath"]
    except KeyError:
        raise SystemExit(f"{path}: no e12_hotpath record (run bench_e12 with --bench-json)")
    return record["spin_score"], record["cases"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="maximum allowed fractional regression (default 0.25)",
    )
    args = parser.parse_args(argv)

    base_score, base_cases = load_cases(args.baseline)
    cur_score, cur_cases = load_cases(args.current)

    failures = []
    print(f"{'case':<20} {'baseline':>12} {'current':>12} {'ratio':>7}  (calibrated st/s)")
    for name, base in sorted(base_cases.items()):
        cur = cur_cases.get(name)
        if cur is None:
            failures.append(f"{name}: missing from current run")
            continue
        base_norm = base["states_per_sec"] / base_score
        cur_norm = cur["states_per_sec"] / cur_score
        ratio = cur_norm / base_norm
        flag = ""
        if ratio < 1.0 - args.tolerance:
            failures.append(
                f"{name}: calibrated throughput fell to {ratio:.2f}x of the "
                f"baseline (tolerance {1.0 - args.tolerance:.2f}x)"
            )
            flag = "  ** REGRESSION **"
        print(f"{name:<20} {base_norm:>12.4f} {cur_norm:>12.4f} {ratio:>6.2f}x{flag}")
        speedup = cur.get("speedup", 0.0)
        if speedup < base["speedup"] * (1.0 - args.tolerance):
            failures.append(
                f"{name}: compact-vs-pair-set speedup fell to {speedup:.2f}x "
                f"(baseline {base['speedup']:.2f}x, tolerance {args.tolerance:.0%})"
            )
    if failures:
        print()
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print("\nno hot-path regression beyond tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
