"""CI regression gate over the E12 hot-path benchmark.

Usage::

    python benchmarks/check_regression.py BASELINE.json CURRENT.json \
        [--tolerance 0.25]

Compares the ``e12_hotpath`` record of two ``repro-bench/1`` documents
(the committed ``BENCH_e12_hotpath.json`` baseline vs a fresh CI run)
and exits 1 when any case's *calibrated* throughput regressed by more
than ``--tolerance`` (default 25%).

Raw states/sec would measure the runner, not the engine: CI machines
differ from the machine the baseline was committed on.  Both documents
therefore carry a ``spin_score`` — iterations/sec of a fixed
pure-Python loop recorded in the same session — and the gate compares
``states_per_sec / spin_score``, in which machine speed cancels.  The
in-session compact-vs-pair-set ``speedup`` and lowered-vs-walker
``speedup_lower`` columns are machine-independent already and are gated
directly.

The engine's two optimised phases are additionally gated *separately*:
``expand`` (successor expansion — the lowered-program IR's target,
DESIGN.md §12) and ``orders`` (derived-order maintenance — the compact
representation's target, §11).  Each phase's calibrated cost per
configuration (``time * spin_score / configs``, i.e. spin-equivalent
iterations per explored state) must not grow past tolerance, so a
regression in one layer cannot hide behind an improvement in the other.
Phases under 5 ms in the baseline are skipped — at that scale the ratio
is timer noise.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_cases(path: str):
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    try:
        record = document["records"]["e12_hotpath"]
    except KeyError:
        raise SystemExit(f"{path}: no e12_hotpath record (run bench_e12 with --bench-json)")
    return record["spin_score"], record["cases"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="maximum allowed fractional regression (default 0.25)",
    )
    args = parser.parse_args(argv)

    base_score, base_cases = load_cases(args.baseline)
    cur_score, cur_cases = load_cases(args.current)

    failures = []
    print(f"{'case':<20} {'baseline':>12} {'current':>12} {'ratio':>7}  (calibrated st/s)")
    for name, base in sorted(base_cases.items()):
        cur = cur_cases.get(name)
        if cur is None:
            failures.append(f"{name}: missing from current run")
            continue
        base_norm = base["states_per_sec"] / base_score
        cur_norm = cur["states_per_sec"] / cur_score
        ratio = cur_norm / base_norm
        flag = ""
        if ratio < 1.0 - args.tolerance:
            failures.append(
                f"{name}: calibrated throughput fell to {ratio:.2f}x of the "
                f"baseline (tolerance {1.0 - args.tolerance:.2f}x)"
            )
            flag = "  ** REGRESSION **"
        print(f"{name:<20} {base_norm:>12.4f} {cur_norm:>12.4f} {ratio:>6.2f}x{flag}")
        speedup = cur.get("speedup", 0.0)
        if speedup < base["speedup"] * (1.0 - args.tolerance):
            failures.append(
                f"{name}: compact-vs-pair-set speedup fell to {speedup:.2f}x "
                f"(baseline {base['speedup']:.2f}x, tolerance {args.tolerance:.0%})"
            )
        base_lower = base.get("speedup_lower")
        if base_lower is not None:
            lower = cur.get("speedup_lower", 0.0)
            if lower < base_lower * (1.0 - args.tolerance):
                failures.append(
                    f"{name}: lowered-vs-walker speedup fell to {lower:.2f}x "
                    f"(baseline {base_lower:.2f}x, tolerance {args.tolerance:.0%})"
                )
        for phase in ("expand", "orders"):
            base_t = base.get(f"time_{phase}_s")
            cur_t = cur.get(f"time_{phase}_s")
            if base_t is None or cur_t is None or base_t < 0.005:
                continue
            base_cost = base_t * base_score / base["configs"]
            cur_cost = cur_t * cur_score / cur["configs"]
            cost_ratio = cur_cost / base_cost
            if cost_ratio > 1.0 + args.tolerance:
                failures.append(
                    f"{name}: calibrated {phase} cost grew to "
                    f"{cost_ratio:.2f}x of the baseline "
                    f"(tolerance {1.0 + args.tolerance:.2f}x)"
                )
    if failures:
        print()
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print("\nno hot-path regression beyond tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
