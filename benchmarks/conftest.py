"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one experiment from DESIGN.md's index
(E1–E9) and prints its table/series to stdout (visible with
``pytest benchmarks/ --benchmark-only -s``); the headline numbers are
also attached to ``benchmark.extra_info`` so they land in the JSON
output of pytest-benchmark.
"""

from __future__ import annotations


def once(benchmark, fn):
    """Run ``fn`` exactly once under timing (experiments are macro-scale;
    pytest-benchmark's default auto-calibration would re-run a multi-
    second exploration dozens of times)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def table(title: str, rows) -> None:
    """Print an experiment table."""
    print()
    print(f"== {title} ==")
    for row in rows:
        print("  " + row)
