"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one experiment from DESIGN.md's index
(E1–E10) and prints its table/series to stdout (visible with
``pytest benchmarks/ --benchmark-only -s``); the headline numbers are
also attached to ``benchmark.extra_info`` so they land in the JSON
output of pytest-benchmark.

With ``--bench-json PATH`` the session additionally writes the records
collected through the ``bench_json`` fixture (see ``emit_json.py``) to
``PATH`` — the machine-readable side of the experiment tables, used by
CI to persist the E4/E8 perf trajectory as workflow artifacts.
"""

from __future__ import annotations

import pytest

from emit_json import BenchRecorder


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json",
        action="store",
        default=None,
        metavar="PATH",
        help="write records collected via the bench_json fixture to PATH",
    )


def pytest_configure(config):
    config._bench_recorder = BenchRecorder(config.getoption("--bench-json"))


def pytest_sessionfinish(session, exitstatus):
    recorder = getattr(session.config, "_bench_recorder", None)
    if recorder is not None:
        written = recorder.write()
        if written:
            print(f"\nbench-json: wrote {len(recorder.records)} record(s) to {written}")


@pytest.fixture
def bench_json(request):
    """The session's :class:`~emit_json.BenchRecorder` (no-op without
    ``--bench-json``)."""
    return request.config._bench_recorder


def once(benchmark, fn):
    """Run ``fn`` exactly once under timing (experiments are macro-scale;
    pytest-benchmark's default auto-calibration would re-run a multi-
    second exploration dozens of times)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def table(title: str, rows) -> None:
    """Print an experiment table."""
    print()
    print(f"== {title} ==")
    for row in rows:
        print("  " + row)
