"""E12 — hot-path engine benchmark: states/sec and the phase split.

DESIGN.md §11's and §12's speedup claims made continuous: explore the
E8 workloads three ways — compact derived orders on/off
(``REPRO_NO_COMPACT``) and the lowered-program IR on/off
(``REPRO_NO_LOWER``) — report states/sec, the engine's phase split
(expand / keys / checks, with the ``time_orders`` attribution), and
both A/B speedups.  Records land in ``--bench-json`` as
``BENCH_e12_hotpath.json``; CI re-runs this file and gates on a >25%
regression of *calibrated* states/sec against the committed baseline,
and on the expand/orders phase costs separately
(``benchmarks/check_regression.py`` — raw wall-clock would measure the
runner, so both sides are normalised by :func:`spin_score`, a fixed
pure-Python loop whose speed cancels machine differences).
"""

import os
import time

import pytest

from conftest import once, table
from repro.casestudies.peterson import PETERSON_INIT, peterson_program
from repro.engine.calibrate import spin_score  # noqa: F401 - re-exported
from repro.interp.explore import explore
from repro.interp.ra_model import RAMemoryModel
from repro.interp.sra_model import SRAMemoryModel
from repro.lang.builder import assign, seq, var
from repro.lang.program import Program

#: (name, (program, init) factory, bound, model factory, reduction)
CASES = [
    ("peterson_b12", lambda: (peterson_program(once=True), PETERSON_INIT),
     12, RAMemoryModel, "none"),
    ("peterson_b12_dpor", lambda: (peterson_program(once=True), PETERSON_INIT),
     12, RAMemoryModel, "dpor"),
    ("chain3_ra", lambda: _chain_program(3), None, RAMemoryModel, "none"),
    ("chain3_sra", lambda: _chain_program(3), None, SRAMemoryModel, "none"),
]


def _chain_program(n_stmts: int):
    """The E8 write-chain shape (two threads, write then read across)."""
    t1 = [assign("x", i + 1) for i in range(n_stmts)] + [assign("r1", var("y"))]
    t2 = [assign("y", i + 1) for i in range(n_stmts)] + [assign("r2", var("x"))]
    program = Program.parallel(seq(*t1), seq(*t2))
    init = {"x": 0, "y": 0, "r1": 0, "r2": 0}
    return program, init


def _best_of(n, fn):
    """Best wall time of ``n`` runs, *with the matching result* — the
    recorded phase split must come from the same run as ``time_s``."""
    best_t = None
    best_result = None
    for _ in range(n):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        if best_t is None or elapsed < best_t:
            best_t = elapsed
            best_result = result
    return best_t, best_result


class _force_representation:
    """Pin REPRO_NO_COMPACT / REPRO_NO_LOWER for one A/B leg, restoring
    the caller's values (set, unset, whatever) on exit — the bench must
    own the switches for its measurements without clobbering the
    session env."""

    _VARS = ("REPRO_NO_COMPACT", "REPRO_NO_LOWER")

    def __init__(self, disable_compact: bool = False,
                 disable_lower: bool = False):
        self.disable = {
            "REPRO_NO_COMPACT": disable_compact,
            "REPRO_NO_LOWER": disable_lower,
        }

    def __enter__(self):
        self.prior = {v: os.environ.get(v) for v in self._VARS}
        for v in self._VARS:
            if self.disable[v]:
                os.environ[v] = "1"
            else:
                os.environ.pop(v, None)

    def __exit__(self, *exc):
        for v, value in self.prior.items():
            if value is None:
                os.environ.pop(v, None)
            else:
                os.environ[v] = value


def _run_case(name, case_factory, bound, model_factory, reduction):
    program, init = case_factory()
    run = lambda: explore(  # noqa: E731 - benchmark closure
        program, init, model_factory(), max_events=bound, reduction=reduction
    )
    with _force_representation():
        fast_t, fast = _best_of(3, run)
    with _force_representation(disable_compact=True):
        slow_t, slow = _best_of(3, run)
    with _force_representation(disable_lower=True):
        walker_t, walker = _best_of(3, run)
    assert (fast.configs, fast.transitions) == (slow.configs, slow.transitions), (
        "compact on/off must explore identically"
    )
    assert (fast.configs, fast.transitions) == (
        walker.configs, walker.transitions,
    ), "lowering on/off must explore identically"
    stats = fast.stats
    return {
        "configs": fast.configs,
        "transitions": fast.transitions,
        "time_s": fast_t,
        "time_s_no_compact": slow_t,
        "time_s_no_lower": walker_t,
        "speedup": slow_t / fast_t,
        "speedup_lower": walker_t / fast_t,
        "states_per_sec": fast.configs / fast_t,
        "time_expand_s": stats.time_expand,
        "time_model_s": stats.time_model,
        "time_keys_s": stats.time_keys,
        "time_orders_s": stats.time_orders,
        "time_checks_s": stats.time_checks,
    }


def test_hotpath_states_per_sec(benchmark, bench_json):
    def run_all():
        # Calibrate before AND after the measured cases and keep the
        # max: a neighbour stealing CPU mid-session depresses whichever
        # sample it overlaps, and the regression gate divides by this —
        # under-reading it would flag innocent PRs on shared runners.
        score = spin_score()
        cases = {}
        for name, factory, bound, model_factory, reduction in CASES:
            cases[name] = _run_case(name, factory, bound, model_factory,
                                    reduction)
        score = max(score, spin_score())
        return {"spin_score": score, "cases": cases}

    payload = once(benchmark, run_all)
    rows = []
    for name, c in payload["cases"].items():
        rows.append(
            f"{name:<18} configs={c['configs']:>6} "
            f"{c['time_s'] * 1e3:7.1f}ms ({c['states_per_sec']:>9.0f} st/s)  "
            f"pair-set: {c['time_s_no_compact'] * 1e3:7.1f}ms  "
            f"speedup={c['speedup']:4.2f}x  "
            f"walker: {c['time_s_no_lower'] * 1e3:7.1f}ms  "
            f"lower={c['speedup_lower']:4.2f}x"
        )
        rows.append(
            f"{'':<18} split: expand={c['time_expand_s'] * 1e3:6.1f} "
            f"(model={c['time_model_s'] * 1e3:6.1f} "
            f"step={(c['time_expand_s'] - c['time_model_s']) * 1e3:5.1f}) "
            f"keys={c['time_keys_s'] * 1e3:6.1f} "
            f"orders={c['time_orders_s'] * 1e3:6.1f} "
            f"checks={c['time_checks_s'] * 1e3:6.1f}"
        )
    rows.append(f"spin calibration: {payload['spin_score']:.0f} ops/s")
    table("E12: hot-path engine, compact vs pair-set relations", rows)

    bench_json.record("e12_hotpath", payload)
    headline = payload["cases"]["peterson_b12"]
    benchmark.extra_info["speedup_peterson_b12"] = headline["speedup"]
    benchmark.extra_info["speedup_lower_peterson_b12"] = headline["speedup_lower"]
    benchmark.extra_info["states_per_sec"] = headline["states_per_sec"]
    # The representation must stay decisively ahead of the pair-set
    # baseline at the largest E8 bound (measured ≈3.4x at commit time;
    # 2x leaves headroom for noisy CI runners without letting a real
    # regression through).
    assert headline["speedup"] >= 2.0
    # Likewise the lowered IR against the AST walker (DESIGN.md §12;
    # measured ≈1.9x at commit time, gated at 1.25x for the same
    # noise-headroom reason).
    assert headline["speedup_lower"] >= 1.25


@pytest.mark.parametrize("reduction", ["none", "sleep", "dpor"])
def test_hotpath_outcome_parity_across_representations(reduction):
    """The A/B legs of every recorded case agree outcome-for-outcome —
    rechecked here under each reduction so the bench file is
    self-validating even without the tier-1 suite."""
    from repro.litmus.registry import final_values

    program, init = peterson_program(once=True), PETERSON_INIT
    with _force_representation(disable_compact=False):
        fast = explore(program, init, RAMemoryModel(), max_events=8,
                       reduction=reduction)
    with _force_representation(disable_compact=True):
        slow = explore(program, init, RAMemoryModel(), max_events=8,
                       reduction=reduction)
    outcome = lambda r: frozenset(  # noqa: E731
        tuple(sorted(final_values(c).items())) for c in r.terminal
    )
    assert (fast.configs, fast.transitions) == (slow.configs, slow.transitions)
    assert outcome(fast) == outcome(slow)
    assert fast.truncated == slow.truncated
