"""E8 — scalability series: operational on-the-fly vs post-hoc axiomatic.

The paper's pitch for an operational semantics is that reads are
validated *on the fly*, where the axiomatic route builds arbitrary
pre-executions and filters post hoc.  This benchmark quantifies that on
two series:

1. **Growing write-chains** (threads × statements): distinct
   configurations and wall time for (a) RA exploration and (b) PE
   exploration followed by justification of every terminal
   pre-execution.  PE pays for every bad read guess; RA never generates
   one.  The RA advantage grows with the number of read-value
   candidates — who wins and by how much is the series' shape.
2. **Loop unrolling**: Peterson state-space growth as the event bound
   increases (the "slow on larger state spaces" calibration band made
   concrete).
"""

import time

import pytest

from conftest import once, table
from repro.axiomatic.justify import count_justifications
from repro.casestudies.peterson import PETERSON_INIT, peterson_program
from repro.checking.completeness import terminal_pre_executions
from repro.interp.explore import explore
from repro.interp.pe_model import PEMemoryModel
from repro.interp.ra_model import RAMemoryModel
from repro.lang.builder import assign, seq, var
from repro.lang.program import Program


def _chain_program(n_stmts: int):
    """Two threads, each writing then reading the other's variable."""
    t1 = [assign("x", i + 1) for i in range(n_stmts)] + [assign("r1", var("y"))]
    t2 = [assign("y", i + 1) for i in range(n_stmts)] + [assign("r2", var("x"))]
    program = Program.parallel(seq(*t1), seq(*t2))
    init = {"x": 0, "y": 0, "r1": 0, "r2": 0}
    return program, init


def _run_series():
    rows = []
    for n in (1, 2, 3):
        program, init = _chain_program(n)

        t0 = time.perf_counter()
        ra = explore(program, init, RAMemoryModel())
        ra_time = time.perf_counter() - t0

        t0 = time.perf_counter()
        pe_model = PEMemoryModel.for_program(program, init)
        pe = explore(program, init, pe_model)
        prestates, _ = terminal_pre_executions(program, init)
        justs = sum(count_justifications(pi) for pi in prestates)
        pe_time = time.perf_counter() - t0

        rows.append(
            f"n={n}  RA: configs={ra.configs:>6} time={ra_time*1e3:7.1f}ms   "
            f"PE+justify: configs={pe.configs:>6} pre-exec={len(prestates):>3} "
            f"justifications={justs:>4} time={pe_time*1e3:7.1f}ms   "
            f"speedup={pe_time/ra_time:4.1f}x"
        )
        rows.append(f"      RA engine: {ra.stats.summary()}")
    return rows


def test_operational_vs_axiomatic_series(benchmark):
    rows = once(benchmark, _run_series)
    table("E8: RA on-the-fly vs PE + post-hoc justification", rows)


def test_reduction_series(benchmark, bench_json):
    """Reduction-on vs reduction-off across the Peterson bound series:
    the scalability answer of `repro.engine.por` (DESIGN.md §9),
    recorded to ``--bench-json`` for the perf trajectory."""
    from repro.litmus.registry import final_values

    def run_series():
        series = []
        for bound in (6, 8, 10, 12):
            per_bound = {"bound": bound}
            outcome_sets = {}
            for label, reduction, equivalence in (
                ("none", "none", "shasha-snir"),
                ("sleep", "sleep", "shasha-snir"),
                ("dpor", "dpor", "shasha-snir"),
                ("optimal", "optimal", "shasha-snir"),
                ("optimal+rf", "optimal", "reads-from"),
            ):
                result = explore(
                    peterson_program(once=True),
                    PETERSON_INIT,
                    RAMemoryModel(),
                    max_events=bound,
                    reduction=reduction,
                    equivalence=equivalence,
                )
                outcome_sets[label] = frozenset(
                    tuple(sorted(final_values(c).items()))
                    for c in result.terminal
                )
                per_bound[label] = {
                    "configs": result.configs,
                    "transitions": result.transitions,
                    "truncated": result.truncated,
                    "time_s": result.stats.time_total,
                    "pruned": result.stats.pruned,
                    "races": result.stats.races,
                }
            assert all(
                outcome_sets[label] == outcome_sets["none"]
                for label in outcome_sets
            ), "reduced outcome set diverged"
            per_bound["dpor_config_ratio"] = (
                per_bound["none"]["configs"] / per_bound["dpor"]["configs"]
            )
            per_bound["optimal_config_ratio"] = (
                per_bound["none"]["configs"]
                / per_bound["optimal+rf"]["configs"]
            )
            series.append(per_bound)
        return series

    series = once(benchmark, run_series)
    rows = [
        f"bound={s['bound']:>2}  none: configs={s['none']['configs']:>6} "
        f"{s['none']['time_s'] * 1e3:7.1f}ms   "
        f"sleep: transitions={s['sleep']['transitions']:>6}   "
        f"dpor: configs={s['dpor']['configs']:>6} "
        f"{s['dpor']['time_s'] * 1e3:7.1f}ms  ({s['dpor_config_ratio']:4.2f}x)   "
        f"optimal+rf: configs={s['optimal+rf']['configs']:>6} "
        f"({s['optimal_config_ratio']:4.2f}x)"
        for s in series
    ]
    table("E8: Peterson growth, reduction on vs off", rows)
    assert series[-1]["dpor_config_ratio"] >= 2.0
    # The parsimonious tier never falls behind DPOR, and strictly beats
    # it at the deepest bound (DESIGN.md §13).
    for s in series:
        assert s["optimal+rf"]["configs"] <= s["dpor"]["configs"]
    assert series[-1]["optimal+rf"]["configs"] < series[-1]["dpor"]["configs"]
    bench_json.record(
        "e8_peterson_reduction_series",
        {"program": "peterson(once)", "series": series},
    )
    benchmark.extra_info["dpor_config_ratio_bound12"] = series[-1][
        "dpor_config_ratio"
    ]
    benchmark.extra_info["optimal_config_ratio_bound12"] = series[-1][
        "optimal_config_ratio"
    ]


@pytest.mark.parametrize("bound", [6, 8, 10, 12], ids=lambda b: f"bound{b}")
def test_peterson_state_space_growth(benchmark, bound):
    result = once(
        benchmark,
        lambda: explore(
            peterson_program(once=True),
            PETERSON_INIT,
            RAMemoryModel(),
            max_events=bound,
        ),
    )
    table(
        f"E8: Peterson growth, bound={bound}",
        [
            f"configs={result.configs} transitions={result.transitions}",
            f"engine: {result.stats.summary()}",
        ],
    )
    benchmark.extra_info["configs"] = result.configs
    benchmark.extra_info["key_cache_hit_rate"] = result.stats.key_rate
    benchmark.extra_info["peak_frontier"] = result.stats.peak_frontier
