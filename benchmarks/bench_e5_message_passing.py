"""E5 — Example 5.7: message passing.

The consumer always stores the payload under release/acquire; the
relaxed variant leaks stale data; the key proof obligation
(``d =_2 5`` at line 2 of thread 2) holds at every reachable
configuration.
"""

import pytest

from conftest import once, table
from repro.casestudies.message_passing import (
    MP_INIT,
    PAYLOAD,
    message_passing_broken,
    message_passing_program,
    mp_data_invariant,
    mp_result_violations,
)
from repro.interp.explore import explore
from repro.interp.ra_model import RAMemoryModel
from repro.litmus.registry import final_values
from repro.verify.invariants import check_invariants


def test_mp_correct(benchmark):
    result = once(
        benchmark,
        lambda: explore(
            message_passing_program(),
            MP_INIT,
            RAMemoryModel(),
            max_events=10,
            check_config=mp_result_violations,
        ),
    )
    finals = sorted({final_values(c)["r"] for c in result.terminal})
    table(
        "E5: MP with release/acquire",
        [
            f"configs={result.configs} terminals={len(result.terminal)} "
            f"final r values={finals} violations={len(result.violations)}"
        ],
    )
    assert result.ok and finals == [PAYLOAD]


def test_mp_invariant(benchmark):
    report = once(
        benchmark,
        lambda: check_invariants(
            message_passing_program(),
            MP_INIT,
            mp_data_invariant(),
            max_events=10,
            name="MP",
        ),
    )
    table("E5: proof obligation d =2 5 at line 2", [report.row()])
    assert report.all_hold


def test_mp_broken(benchmark):
    result = once(
        benchmark,
        lambda: explore(
            message_passing_broken(), MP_INIT, RAMemoryModel(), max_events=10
        ),
    )
    finals = sorted({final_values(c)["r"] for c in result.terminal})
    table(
        "E5: MP with relaxed flag (broken)",
        [f"final r values={finals} (stale 0 observable, as the paper warns)"],
    )
    assert 0 in finals and PAYLOAD in finals
