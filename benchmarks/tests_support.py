"""Shared hand-built executions used by benchmarks (and mirrored in tests)."""

from repro.c11.events import Event
from repro.c11.state import C11State, initial_state
from repro.lang.actions import rd, rda, wr, wrr


def release_sequence_witness() -> C11State:
    """The 5-event execution separating Def C.2 from Def C.3.

    t1: d := 1; f :=R 1; f := 2      t2: r1 := f^A (reads 2); r2 := d (stale 0)

    The acquiring read reads the relaxed ``f := 2`` in the release
    sequence of ``f :=R 1``: canonical sw fires (making the stale ``d``
    read a COH-C violation), the paper's simplified sw does not.
    """
    s0 = initial_state({"d": 0, "f": 0})
    init_d, init_f = s0.last("d"), s0.last("f")
    wd = Event(1, wr("d", 1), 1)
    wf1 = Event(2, wrr("f", 1), 1)
    wf2 = Event(3, wr("f", 2), 1)
    racq = Event(4, rda("f", 2), 2)
    stale = Event(5, rd("d", 0), 2)
    return (
        s0.add_event(wd)
        .insert_mo_after(init_d, wd)
        .add_event(wf1)
        .insert_mo_after(init_f, wf1)
        .add_event(wf2)
        .insert_mo_after(wf1, wf2)
        .add_event(racq)
        .with_rf(wf2, racq)
        .add_event(stale)
        .with_rf(init_d, stale)
    )
