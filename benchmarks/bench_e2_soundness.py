"""E2 — empirical Theorem 4.4 (soundness of the RA semantics).

Every state reachable via ⇒RA satisfies the Definition 4.2 axioms.  One
row per workload: distinct states checked, transitions explored, verdict
(zero violations expected everywhere).
"""

import pytest

from conftest import once, table
from repro.casestudies.message_passing import MP_INIT, message_passing_program
from repro.casestudies.peterson import PETERSON_INIT, peterson_program
from repro.casestudies.token_ring import TOKEN_INIT, token_ring_program
from repro.checking.soundness import check_soundness
from repro.litmus.suite import ALL_TESTS

LOOPY = {"MP+await"}


def test_soundness_litmus_suite(benchmark):
    def run():
        reports = []
        for t in ALL_TESTS:
            reports.append(
                check_soundness(
                    t.program, t.init, max_events=t.max_events, name=t.name
                )
            )
        return reports

    reports = once(benchmark, run)
    table("E2: soundness over the litmus suite", [r.row() for r in reports])
    assert all(r.sound for r in reports)
    benchmark.extra_info["states"] = sum(r.states_checked for r in reports)


def test_soundness_peterson(benchmark):
    report = once(
        benchmark,
        lambda: check_soundness(
            peterson_program(once=True),
            PETERSON_INIT,
            max_events=9,
            name="peterson (bound 9)",
        ),
    )
    table("E2: soundness, Peterson", [report.row()])
    assert report.sound
    benchmark.extra_info["states"] = report.states_checked


def test_soundness_message_passing(benchmark):
    report = once(
        benchmark,
        lambda: check_soundness(
            message_passing_program(), MP_INIT, max_events=9, name="MP (bound 9)"
        ),
    )
    table("E2: soundness, message passing", [report.row()])
    assert report.sound


def test_soundness_token_ring(benchmark):
    report = once(
        benchmark,
        lambda: check_soundness(
            token_ring_program(2), TOKEN_INIT, max_events=10, name="token ring"
        ),
    )
    table("E2: soundness, token ring", [report.row()])
    assert report.sound
