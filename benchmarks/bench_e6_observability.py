"""E6 — observability: the Example 3.2/3.4 state and the cost of EW/OW.

Correctness of the worked example lives in the test suite
(tests/test_observability.py); here the benchmark measures the
observability computation itself — the hot path of every Read/Write/RMW
transition — as the execution grows.
"""

import pytest

from conftest import table
from repro.c11.event_semantics import ra_successors
from repro.c11.observability import covered_writes, encountered_writes, observable_writes
from repro.c11.state import initial_state
from repro.lang.actions import ActionKind


def _grow_state(n_events: int, n_threads: int = 4):
    """A state with interleaved writes/reads across threads/variables."""
    variables = ("x", "y")
    state = initial_state({v: 0 for v in variables})
    for i in range(n_events):
        tid = (i % n_threads) + 1
        var = variables[i % len(variables)]
        kind = (ActionKind.WR, ActionKind.RD, ActionKind.WRR, ActionKind.RDA)[i % 4]
        wrval = i if kind in (ActionKind.WR, ActionKind.WRR) else None
        trs = list(ra_successors(state, tid, kind, var, wrval=wrval))
        state = trs[len(trs) // 2].target  # take a middle choice
    return state


@pytest.mark.parametrize("n", [8, 16, 32])
def test_encountered_writes_cost(benchmark, n):
    state = _grow_state(n)
    result = benchmark(lambda: [encountered_writes(state, t) for t in (1, 2, 3, 4)])
    table(
        f"E6: EW over {n}-event state",
        [f"|EW(t)| = {[len(x) for x in result]}"],
    )


@pytest.mark.parametrize("n", [8, 16, 32])
def test_observable_writes_cost(benchmark, n):
    state = _grow_state(n)
    result = benchmark(lambda: [observable_writes(state, t) for t in (1, 2, 3, 4)])
    table(
        f"E6: OW over {n}-event state",
        [f"|OW(t)| = {[len(x) for x in result]}"],
    )


def test_covered_writes_cost(benchmark):
    state = _grow_state(32)
    benchmark(lambda: covered_writes(state))


def test_single_ra_transition_cost(benchmark):
    """One full Read-rule application (EW + OW + rf update) on a 32-event
    state — the unit of work of the whole exploration engine."""
    state = _grow_state(32)
    benchmark(lambda: list(ra_successors(state, 1, ActionKind.RD, "x")))
