"""E13 — sharded single-run exploration: speedup series and spill run.

DESIGN.md §15's two claims made continuous:

**Shard speedup** — Peterson (``once``) at bound 14 explored at 1/2/4
shards in process mode, under a per-configuration check hook that
sleeps a *spin-calibrated* stall (``STALL_MSPIN`` million iterations of
the :func:`~repro.engine.calibrate.spin_score` loop, converted to wall
time on this machine).  The stall models a realistically expensive
per-state check (an SMT query, a disk lookup): it is wall time the
worker *processes* overlap, so the wall-clock speedup measures the
sharding protocol's scaling — routing, batching, round barriers — and
not the host's core count; calibrating the stall by ``spin_score``
keeps the ratio comparable across machines, because the protocol's CPU
overhead and the stall shrink together on a faster host.  Every run of
the series must report byte-identical outcome sets and identical
config/transition counts — sharding partitions the search, never
changes it — and the gate in ``benchmarks/check_regression.py`` holds
the 4-shard speedup above the committed floor.

**Spill identity** — the 4-thread token ring at bound 14 estimates
~700 MB of in-memory visited-set footprint, over the default 512 MB
budget; run under ``--spill`` it must overflow to disk exactly once
and still report byte-identical results (configs, transitions,
violations) to the unbudgeted in-memory run.

**Checkpoint overhead** — the same stalled Peterson workload explored
with and without periodic checkpointing (DESIGN.md §16).  Snapshot
cost is paid per cadence interval, so it amortises exactly when
per-state work dominates — the long-run regime checkpointing exists
for, and the same regime the stall models.  The checkpointed run must
stay within 5% of the plain one (gated hard in
``benchmarks/check_regression.py``) while actually writing snapshots,
and must report byte-identical results.

Records land in ``--bench-json`` as ``BENCH_e13_sharded.json``.
"""

import time

from conftest import once, table
from repro.casestudies.peterson import PETERSON_INIT, peterson_program
from repro.casestudies.token_ring import (
    TOKEN_INIT,
    token_ring_program,
    token_ring_violations,
)
from repro.engine.calibrate import spin_score
from repro.interp.explore import explore
from repro.interp.ra_model import RAMemoryModel
from repro.litmus.registry import final_values

#: Peterson exploration bound for the speedup series (≥14 per the E13
#: acceptance row; 934 configs under RA).
BOUND = 14

SHARD_SERIES = (1, 2, 4)

#: Per-configuration check cost, in millions of spin-loop iterations'
#: worth of wall time (~16 ms on the machine the baseline was recorded
#: on).
STALL_MSPIN = 0.3

#: The default in-memory visited budget the spill run must exceed.
SPILL_BUDGET = 512 * 1024 * 1024

#: Token-ring size for the spill run: 4 threads at bound 14 visit
#: ~172k configurations whose estimated in-memory footprint crosses
#: the 512 MB budget mid-run.
RING_THREADS = 4
RING_BOUND = 14

#: Set per session from ``spin_score`` before the series runs; module
#: level so the hook stays picklable for the worker processes.
_STALL = 0.0


def _stalling_check(config):
    time.sleep(_STALL)
    return []


def _outcome_set(result):
    """The byte-comparable terminal outcome set of an exploration."""
    return sorted(
        {tuple(sorted(final_values(c).items())) for c in result.terminal}
    )


def test_shard_speedup_series(benchmark, bench_json):
    global _STALL
    score = spin_score()
    _STALL = STALL_MSPIN * 1e6 / score
    program = peterson_program(once=True)

    def run_series():
        rows = []
        reference = None
        for shards in SHARD_SERIES:
            t0 = time.perf_counter()
            result = explore(
                program, PETERSON_INIT, RAMemoryModel(),
                max_events=BOUND, shards=shards,
                shard_processes=shards > 1,
                check_config=_stalling_check,
            )
            wall = time.perf_counter() - t0
            observed = (
                result.configs, result.transitions, _outcome_set(result),
            )
            if reference is None:
                reference = observed
            # the parity contract: byte-identical outcome sets and
            # identical counts at every shard width
            assert observed == reference, f"shards={shards} diverged"
            rows.append({
                "shards": shards,
                "wall_s": wall,
                "configs": result.configs,
                "transitions": result.transitions,
                "speedup": rows[0]["wall_s"] / wall if rows else 1.0,
            })
        return rows

    rows = once(benchmark, run_series)
    table(
        f"E13: Peterson bound {BOUND}, stalled check, process-mode shards",
        [
            f"shards={r['shards']}: {r['wall_s']:6.2f}s "
            f"speedup={r['speedup']:.2f}x configs={r['configs']}"
            for r in rows
        ],
    )
    benchmark.extra_info["speedup_4"] = rows[-1]["speedup"]
    bench_json.record("e13_sharded", {
        "bound": BOUND,
        "stall_mspin": STALL_MSPIN,
        "spin_score": score,
        "stall_s": _STALL,
        "outcomes_identical": True,
        "series": rows,
    })


def test_spill_identity_under_budget(benchmark, bench_json, tmp_path):
    program = token_ring_program(n_threads=RING_THREADS)

    def run_pair():
        t0 = time.perf_counter()
        plain = explore(
            program, TOKEN_INIT, RAMemoryModel(), max_events=RING_BOUND,
            check_config=token_ring_violations,
        )
        wall_plain = time.perf_counter() - t0
        t0 = time.perf_counter()
        spilled = explore(
            program, TOKEN_INIT, RAMemoryModel(), max_events=RING_BOUND,
            check_config=token_ring_violations,
            spill_dir=str(tmp_path / "spill"), spill_max_bytes=SPILL_BUDGET,
        )
        wall_spill = time.perf_counter() - t0
        return plain, wall_plain, spilled, wall_spill

    plain, wall_plain, spilled, wall_spill = once(benchmark, run_pair)
    # the run must genuinely exceed the in-memory budget...
    assert spilled.stats.spills == 1
    assert spilled.stats.spilled_keys == spilled.configs
    # ...and spilling must not change a single observable
    assert spilled.configs == plain.configs
    assert spilled.transitions == plain.transitions
    assert _outcome_set(spilled) == _outcome_set(plain)
    assert [str(v) for v in spilled.violations] == [
        str(v) for v in plain.violations
    ]
    table(
        f"E13: token ring ({RING_THREADS} threads) bound {RING_BOUND}, "
        f"512MB visited budget",
        [
            f"in-memory: {wall_plain:6.1f}s  configs={plain.configs}",
            f"spilled:   {wall_spill:6.1f}s  "
            f"spilled_keys={spilled.stats.spilled_keys} "
            f"(identical verdicts: {len(spilled.violations)} violations)",
        ],
    )
    bench_json.record("e13_spill", {
        "threads": RING_THREADS,
        "bound": RING_BOUND,
        "budget_bytes": SPILL_BUDGET,
        "configs": spilled.configs,
        "transitions": spilled.transitions,
        "spills": spilled.stats.spills,
        "spilled_keys": spilled.stats.spilled_keys,
        "wall_s_inmem": wall_plain,
        "wall_s_spill": wall_spill,
        "violations": len(spilled.violations),
        "identical": True,
    })


#: Per-configuration stall for the checkpoint pair, in millions of
#: spin-loop iterations (~2.5 ms) — small enough that the pair stays
#: under ~10 s, large enough that per-state work dominates, which is
#: the regime checkpointing is built for.
CKPT_STALL_MSPIN = 0.05

#: Snapshot cadence: two checkpoints over Peterson's 934 configs at
#: ``BOUND``.
CKPT_EVERY = 400

#: Best-of-N for each side of the pair (walls, not configs, vary).
CKPT_REPS = 2


def test_checkpoint_overhead(benchmark, bench_json, tmp_path):
    global _STALL
    score = spin_score()
    _STALL = CKPT_STALL_MSPIN * 1e6 / score
    program = peterson_program(once=True)
    ckpt = str(tmp_path / "e13.ckpt")

    def run_pair():
        def one(**kw):
            t0 = time.perf_counter()
            result = explore(
                program, PETERSON_INIT, RAMemoryModel(),
                max_events=BOUND, check_config=_stalling_check, **kw,
            )
            return time.perf_counter() - t0, result

        wall_off, plain = one()
        wall_on, checked = one(checkpoint=ckpt, checkpoint_every=CKPT_EVERY)
        for _ in range(CKPT_REPS - 1):
            wall_off = min(wall_off, one()[0])
            wall_on = min(
                wall_on,
                one(checkpoint=ckpt, checkpoint_every=CKPT_EVERY)[0],
            )
        return plain, wall_off, checked, wall_on

    plain, wall_off, checked, wall_on = once(benchmark, run_pair)
    # snapshots must actually land, and must not change a single
    # observable
    assert checked.stats.checkpoints >= 1
    assert checked.configs == plain.configs
    assert checked.transitions == plain.transitions
    assert _outcome_set(checked) == _outcome_set(plain)
    ratio = wall_on / wall_off
    table(
        f"E13: Peterson bound {BOUND}, stalled check, "
        f"checkpoint every {CKPT_EVERY} configs",
        [
            f"checkpoint off: {wall_off:6.2f}s",
            f"checkpoint on:  {wall_on:6.2f}s  "
            f"overhead={100.0 * (ratio - 1.0):+.1f}% "
            f"({checked.stats.checkpoints} snapshot(s))",
        ],
    )
    benchmark.extra_info["overhead_ratio"] = ratio
    bench_json.record("e13_checkpoint", {
        "bound": BOUND,
        "stall_mspin": CKPT_STALL_MSPIN,
        "spin_score": score,
        "checkpoint_every": CKPT_EVERY,
        "checkpoints": checked.stats.checkpoints,
        "configs": checked.configs,
        "wall_s_off": wall_off,
        "wall_s_on": wall_on,
        "overhead_ratio": ratio,
        "identical": True,
    })
