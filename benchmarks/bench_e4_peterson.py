"""E4 — Theorem 5.8 and invariants (4)–(10) for Peterson's algorithm.

* Exhaustive bounded exploration: mutual exclusion never violated.
* All twelve invariant instances hold at every reachable configuration.
* The relaxed-turn mutant *violates* mutual exclusion (with a concrete
  counterexample trace), and is fine under SC — the bug is
  weak-memory-specific, which is the paper's motivation in one line.
"""

import pytest

from conftest import once, table
from repro.casestudies.peterson import (
    PETERSON_INIT,
    mutual_exclusion_violations,
    peterson_invariants,
    peterson_program,
    peterson_relaxed_flag_read,
    peterson_relaxed_turn,
)
from repro.interp.explore import explore
from repro.interp.ra_model import RAMemoryModel
from repro.interp.sc import SCMemoryModel
from repro.util.pretty import format_trace
from repro.verify.invariants import check_invariants


def test_mutual_exclusion_bounded(benchmark):
    result = once(
        benchmark,
        lambda: explore(
            peterson_program(once=True),
            PETERSON_INIT,
            RAMemoryModel(),
            max_events=11,
            check_config=mutual_exclusion_violations,
        ),
    )
    table(
        "E4: Peterson mutual exclusion (Theorem 5.8), bound 11",
        [
            f"configs={result.configs} transitions={result.transitions} "
            f"violations={len(result.violations)} truncated={result.truncated}"
        ],
    )
    assert result.ok
    benchmark.extra_info["configs"] = result.configs


def test_invariants_4_to_10(benchmark):
    report = once(
        benchmark,
        lambda: check_invariants(
            peterson_program(once=True),
            PETERSON_INIT,
            peterson_invariants(),
            max_events=10,
            name="peterson invariants",
        ),
    )
    rows = [report.row()] + [
        f"  {name}: {'holds' if ok else 'VIOLATED'}"
        for name, ok in report.holds_everywhere.items()
    ]
    table("E4: invariants (4)-(10)", rows)
    assert report.all_hold


def test_invariants_looping_deep(benchmark):
    """The *looping* algorithm (threads re-enter forever, Appendix D's
    pc 6 → 2) at a deeper unrolling: invariants survive re-entry —
    including invariant (10), whose whole job is the wrap-around."""
    report = once(
        benchmark,
        lambda: check_invariants(
            peterson_program(),
            PETERSON_INIT,
            peterson_invariants(),
            max_events=14,
            name="peterson-loop (bound 14)",
        ),
    )
    table("E4: looping Peterson, bound 14", [report.row()])
    assert report.all_hold
    benchmark.extra_info["configs"] = report.configs


def test_relaxed_turn_mutant_violates(benchmark):
    result = once(
        benchmark,
        lambda: explore(
            peterson_relaxed_turn(once=True),
            PETERSON_INIT,
            RAMemoryModel(),
            max_events=10,
            check_config=mutual_exclusion_violations,
            stop_on_violation=True,
        ),
    )
    trace = result.counterexample()
    table(
        "E4: relaxed-turn mutant (line 3 is a plain write)",
        [f"violations found: {len(result.violations)} (expected > 0)"]
        + ["counterexample trace:"]
        + ["  " + line for line in format_trace(trace).splitlines()],
    )
    assert not result.ok


def test_relaxed_turn_mutant_safe_under_sc(benchmark):
    result = once(
        benchmark,
        lambda: explore(
            peterson_relaxed_turn(once=True),
            PETERSON_INIT,
            SCMemoryModel(),
            check_config=mutual_exclusion_violations,
        ),
    )
    table(
        "E4: same mutant under SC",
        [f"configs={result.configs} violations={len(result.violations)} (expected 0)"],
    )
    assert result.ok


def test_relaxed_flag_read_mutant_still_safe(benchmark):
    result = once(
        benchmark,
        lambda: explore(
            peterson_relaxed_flag_read(once=True),
            PETERSON_INIT,
            RAMemoryModel(),
            max_events=10,
            check_config=mutual_exclusion_violations,
        ),
    )
    table(
        "E4: relaxed-flag-read mutant (acquire dropped at line 4)",
        [
            f"configs={result.configs} violations={len(result.violations)} "
            "(mutex survives operationally; the acquire matters for the proof)"
        ],
    )
    assert result.ok
