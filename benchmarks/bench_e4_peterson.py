"""E4 — Theorem 5.8 and invariants (4)–(10) for Peterson's algorithm.

* Exhaustive bounded exploration: mutual exclusion never violated.
* All twelve invariant instances hold at every reachable configuration.
* The relaxed-turn mutant *violates* mutual exclusion (with a concrete
  counterexample trace), and is fine under SC — the bug is
  weak-memory-specific, which is the paper's motivation in one line.
* Partial-order reduction (DESIGN.md §9): DPOR explores the same
  outcomes and verdicts with a multi-× smaller configuration count;
  recorded side by side with the unreduced run via ``--bench-json``.
"""

import pytest

from conftest import once, table
from emit_json import engine_stats_payload
from repro.casestudies.peterson import (
    PETERSON_INIT,
    mutual_exclusion_violations,
    peterson_invariants,
    peterson_program,
    peterson_relaxed_flag_read,
    peterson_relaxed_turn,
)
from repro.interp.explore import explore
from repro.interp.ra_model import RAMemoryModel
from repro.interp.sc import SCMemoryModel
from repro.util.pretty import format_trace
from repro.verify.invariants import check_invariants


def test_mutual_exclusion_bounded(benchmark):
    result = once(
        benchmark,
        lambda: explore(
            peterson_program(once=True),
            PETERSON_INIT,
            RAMemoryModel(),
            max_events=11,
            check_config=mutual_exclusion_violations,
        ),
    )
    table(
        "E4: Peterson mutual exclusion (Theorem 5.8), bound 11",
        [
            f"configs={result.configs} transitions={result.transitions} "
            f"violations={len(result.violations)} truncated={result.truncated}"
        ],
    )
    assert result.ok
    benchmark.extra_info["configs"] = result.configs


def test_invariants_4_to_10(benchmark):
    report = once(
        benchmark,
        lambda: check_invariants(
            peterson_program(once=True),
            PETERSON_INIT,
            peterson_invariants(),
            max_events=10,
            name="peterson invariants",
        ),
    )
    rows = [report.row()] + [
        f"  {name}: {'holds' if ok else 'VIOLATED'}"
        for name, ok in report.holds_everywhere.items()
    ]
    table("E4: invariants (4)-(10)", rows)
    assert report.all_hold


def test_invariants_looping_deep(benchmark):
    """The *looping* algorithm (threads re-enter forever, Appendix D's
    pc 6 → 2) at a deeper unrolling: invariants survive re-entry —
    including invariant (10), whose whole job is the wrap-around."""
    report = once(
        benchmark,
        lambda: check_invariants(
            peterson_program(),
            PETERSON_INIT,
            peterson_invariants(),
            max_events=14,
            name="peterson-loop (bound 14)",
        ),
    )
    table("E4: looping Peterson, bound 14", [report.row()])
    assert report.all_hold
    benchmark.extra_info["configs"] = report.configs


def test_relaxed_turn_mutant_violates(benchmark):
    result = once(
        benchmark,
        lambda: explore(
            peterson_relaxed_turn(once=True),
            PETERSON_INIT,
            RAMemoryModel(),
            max_events=10,
            check_config=mutual_exclusion_violations,
            stop_on_violation=True,
        ),
    )
    trace = result.counterexample()
    table(
        "E4: relaxed-turn mutant (line 3 is a plain write)",
        [f"violations found: {len(result.violations)} (expected > 0)"]
        + ["counterexample trace:"]
        + ["  " + line for line in format_trace(trace).splitlines()],
    )
    assert not result.ok


def test_relaxed_turn_mutant_safe_under_sc(benchmark):
    result = once(
        benchmark,
        lambda: explore(
            peterson_relaxed_turn(once=True),
            PETERSON_INIT,
            SCMemoryModel(),
            check_config=mutual_exclusion_violations,
        ),
    )
    table(
        "E4: same mutant under SC",
        [f"configs={result.configs} violations={len(result.violations)} (expected 0)"],
    )
    assert result.ok


def test_por_reduction_bound12(benchmark, bench_json):
    """DPOR vs full exploration at bound 12: identical outcome set and
    truncation, ≥2× fewer visited configurations (the E4 headline of
    the reduction subsystem) — and the parsimonious ``optimal`` tier
    (DESIGN.md §13) strictly below DPOR, under both state equivalences."""
    from repro.litmus.registry import final_values

    model = RAMemoryModel()
    program = peterson_program(once=True)

    def runs():
        per_reduction = {}
        for label, reduction, equivalence in (
            ("none", "none", "shasha-snir"),
            ("dpor", "dpor", "shasha-snir"),
            ("optimal", "optimal", "shasha-snir"),
            ("optimal+rf", "optimal", "reads-from"),
        ):
            per_reduction[label] = explore(
                program, PETERSON_INIT, model, max_events=12,
                reduction=reduction, equivalence=equivalence,
            )
        return per_reduction

    results = once(benchmark, runs)
    full, reduced = results["none"], results["dpor"]
    outcomes = lambda r: {  # noqa: E731 — local shorthand
        tuple(sorted(final_values(c).items())) for c in r.terminal
    }
    ratio = full.configs / reduced.configs
    table(
        "E4: Peterson bound 12, reductions vs none",
        [
            f"{label}: configs={r.configs} transitions={r.transitions} "
            f"time={r.stats.time_total * 1e3:.1f}ms"
            for label, r in results.items()
        ]
        + [
            f"reduction: {ratio:.2f}x fewer configs (dpor); engine: "
            f"{reduced.stats.summary()}",
        ],
    )
    for label, r in results.items():
        assert outcomes(full) == outcomes(r), f"{label} outcome set diverged"
        assert full.truncated == r.truncated, f"{label} truncation diverged"
    assert reduced.configs * 2 <= full.configs, (
        f"expected >=2x reduction, got {ratio:.2f}x"
    )
    # The parsimonious explorer's acceptance bar: strictly below DPOR.
    assert results["optimal"].configs < reduced.configs
    assert results["optimal+rf"].configs <= results["optimal"].configs
    bench_json.record(
        "e4_peterson_por_bound12",
        {
            "program": "peterson(once)",
            "max_events": 12,
            **{
                label: {
                    "configs": r.configs,
                    "transitions": r.transitions,
                    "stats": engine_stats_payload(r.stats),
                }
                for label, r in results.items()
            },
            "config_ratio": ratio,
            "optimal_config_ratio": full.configs / results["optimal+rf"].configs,
            "outcome_parity": True,
        },
    )
    benchmark.extra_info["config_ratio"] = ratio


def test_por_mutant_verdict_parity(benchmark, bench_json):
    """The relaxed-turn mutant's mutual-exclusion violation survives the
    reduction: DPOR finds it too, and its counterexample replays as a
    valid unreduced trace (control visibility at work)."""
    program = peterson_relaxed_turn(once=True)

    def runs():
        full = explore(
            program, PETERSON_INIT, RAMemoryModel(), max_events=10,
            check_config=mutual_exclusion_violations,
        )
        reduced = explore(
            program, PETERSON_INIT, RAMemoryModel(), max_events=10,
            check_config=mutual_exclusion_violations, reduction="dpor",
        )
        return full, reduced

    full, reduced = once(benchmark, runs)
    table(
        "E4: relaxed-turn mutant under DPOR",
        [
            f"none: configs={full.configs} violations={len(full.violations)}",
            f"dpor: configs={reduced.configs} violations={len(reduced.violations)}",
        ],
    )
    assert not full.ok and not reduced.ok
    assert reduced.configs <= full.configs
    assert reduced.counterexample() is not None
    bench_json.record(
        "e4_relaxed_turn_por_parity",
        {
            "program": "peterson_relaxed_turn(once)",
            "max_events": 10,
            "none_configs": full.configs,
            "dpor_configs": reduced.configs,
            "violated_both": True,
        },
    )


def test_relaxed_flag_read_mutant_still_safe(benchmark):
    result = once(
        benchmark,
        lambda: explore(
            peterson_relaxed_flag_read(once=True),
            PETERSON_INIT,
            RAMemoryModel(),
            max_events=10,
            check_config=mutual_exclusion_violations,
        ),
    )
    table(
        "E4: relaxed-flag-read mutant (acquire dropped at line 4)",
        [
            f"configs={result.configs} violations={len(result.violations)} "
            "(mutex survives operationally; the acquire matters for the proof)"
        ],
    )
    assert result.ok
