"""E10 — ablations of the reproduction's own design choices (DESIGN.md §4).

Not a paper experiment: these quantify the engineering decisions the
library makes, as DESIGN.md commits to.

1. **Canonical deduplication** — exploring with tag-renaming dedup vs
   raw-state dedup.  Different interleavings produce identically-shaped
   states with different tags; without canonicalisation they never
   merge and the search degenerates toward a tree.
2. **eco via closed form vs transitive closure** — Lemma C.9 gives
   ``eco = rf ∪ mo ∪ fr ∪ mo;rf ∪ fr;rf`` under update atomicity; the
   library uses the definitional closure (always correct) — this
   measures what the closed form would buy.
3. **Exhaustive vs sampled checking** — how many random schedules the
   simulator needs to refute Dekker vs the exhaustive explorer's cost
   to do the same with certainty.
"""

import random
import time

import pytest

from conftest import once, table
from repro.axiomatic.canonical import eco_closed_form
from repro.casestudies.dekker import DEKKER_INIT, dekker_entry_program, dekker_violations
from repro.interp.explore import explore
from repro.interp.ra_model import RAMemoryModel
from repro.interp.simulate import simulate
from repro.lang.builder import assign, seq, var
from repro.lang.program import Program


def test_canonicalization_ablation(benchmark):
    program = Program.parallel(
        seq(assign("x", 1), assign("r1", var("y"))),
        seq(assign("y", 1), assign("r2", var("x"))),
        assign("z", 1),
    )
    init = {"x": 0, "y": 0, "r1": 0, "r2": 0, "z": 0}

    def run():
        rows = []
        for canonicalize in (True, False):
            t0 = time.perf_counter()
            result = explore(program, init, RAMemoryModel(), canonicalize=canonicalize)
            dt = time.perf_counter() - t0
            rows.append(
                f"canonicalize={str(canonicalize):<5} configs={result.configs:>6} "
                f"transitions={result.transitions:>7} time={dt*1e3:7.1f}ms"
            )
        return rows

    rows = once(benchmark, run)
    table("E10: canonical dedup on/off (SB + bystander thread)", rows)


def test_eco_closed_form_ablation(benchmark):
    """Lemma C.9's closed form vs the definitional transitive closure."""
    from bench_e6_observability import _grow_state

    state = _grow_state(24)

    def run():
        t0 = time.perf_counter()
        for _ in range(200):
            # recompute from scratch: new state object shares relations
            fresh = type(state)(state.events, state.sb, state.rf, state.mo)
            _ = fresh.eco
        closure_t = time.perf_counter() - t0

        t0 = time.perf_counter()
        for _ in range(200):
            fresh = type(state)(state.events, state.sb, state.rf, state.mo)
            _ = eco_closed_form(fresh)
        closed_t = time.perf_counter() - t0
        return closure_t, closed_t

    closure_t, closed_t = once(benchmark, run)
    table(
        "E10: eco computation (200 reps, 24-event state)",
        [
            f"transitive closure: {closure_t*1e3:7.1f}ms",
            f"Lemma C.9 closed form: {closed_t*1e3:7.1f}ms "
            f"({closure_t/closed_t:4.1f}x)",
        ],
    )


def test_exhaustive_vs_sampling_refutation(benchmark):
    """Cost to refute Dekker: exhaustive certainty vs first sampled hit."""

    def run():
        t0 = time.perf_counter()
        exhaustive = explore(
            dekker_entry_program(),
            DEKKER_INIT,
            RAMemoryModel(),
            check_config=dekker_violations,
            stop_on_violation=True,
        )
        ex_t = time.perf_counter() - t0

        t0 = time.perf_counter()
        report = simulate(
            dekker_entry_program(),
            DEKKER_INIT,
            RAMemoryModel(),
            runs=1000,
            seed=11,
            check_config=dekker_violations,
            stop_on_violation=True,
        )
        sim_t = time.perf_counter() - t0
        return exhaustive, ex_t, report, sim_t

    exhaustive, ex_t, report, sim_t = once(benchmark, run)
    table(
        "E10: refuting Dekker — exhaustive vs sampling",
        [
            f"exhaustive: violation after {exhaustive.configs} configs, {ex_t*1e3:6.1f}ms",
            f"sampling:   violation after {report.runs} runs, {sim_t*1e3:6.1f}ms",
        ],
    )
    assert not exhaustive.ok and not report.ok
