"""The paper's case studies — and the scenario library grown around them.

The paper's own studies:

* :mod:`repro.casestudies.peterson` — Algorithm 1: Peterson's mutual
  exclusion with release-acquire annotations, its invariants (4)–(10)
  and Theorem 5.8, plus mutants that probe which annotations matter.
* :mod:`repro.casestudies.message_passing` — Example 5.7: the
  release/acquire message-passing idiom and its broken relaxed variant.

Extensions, each paired with a proof outline registered in
:data:`repro.verify.registry.PROOFS` (DESIGN.md §10):

* :mod:`repro.casestudies.token_ring` — a hand-off lock over an
  update-only variable (the lock the paper's bare ``swap`` supports).
* :mod:`repro.casestudies.spinlock` — the test-and-set spinlock, made
  expressible by the value-returning exchange ``r := x.swap(n)^RA``.
* :mod:`repro.casestudies.ticket_lock` — a FIFO ticket lock from the
  fetch-and-add RMW ``my := next.faa(1)^RA``.
* :mod:`repro.casestudies.seqlock` — a seqlock writer/reader pair:
  accepted snapshots are consistent (and the relaxed-payload variant
  demonstrates why the annotations are load-bearing).
* :mod:`repro.casestudies.barrier` — a flag-handshake barrier:
  Example 5.7's idiom doubled back on itself.
* :mod:`repro.casestudies.dekker` — Dekker's entry protocol, the
  *negative* study: provable under SC, refuted under RA.
"""

from repro.casestudies.peterson import (
    PETERSON_INIT,
    peterson_program,
    peterson_invariants,
    peterson_outline_sc,
    mutual_exclusion_violations,
    peterson_relaxed_turn,
    peterson_relaxed_flag_read,
)
from repro.casestudies.message_passing import (
    MP_INIT,
    message_passing_program,
    message_passing_broken,
    mp_data_invariant,
    mp_outline,
    mp_outline_valonly,
)
from repro.casestudies.token_ring import (
    TOKEN_INIT,
    token_ring_program,
    token_ring_violations,
    token_ring_outline,
)
from repro.casestudies.dekker import (
    DEKKER_INIT,
    dekker_entry_program,
    dekker_violations,
    dekker_outline,
)
from repro.casestudies.spinlock import (
    SPINLOCK_INIT,
    spinlock_program,
    spinlock_broken,
    spinlock_violations,
    spinlock_outline,
)
from repro.casestudies.ticket_lock import (
    TICKET_INIT,
    ticket_lock_program,
    ticket_lock_violations,
    ticket_lock_outline,
)
from repro.casestudies.seqlock import (
    SEQLOCK_INIT,
    seqlock_program,
    seqlock_relaxed_data,
    seqlock_violations,
    seqlock_outline,
)
from repro.casestudies.barrier import (
    BARRIER_INIT,
    barrier_program,
    barrier_violations,
    barrier_outline,
)

__all__ = [
    "PETERSON_INIT",
    "peterson_program",
    "peterson_invariants",
    "peterson_outline_sc",
    "mutual_exclusion_violations",
    "peterson_relaxed_turn",
    "peterson_relaxed_flag_read",
    "MP_INIT",
    "message_passing_program",
    "message_passing_broken",
    "mp_data_invariant",
    "mp_outline",
    "mp_outline_valonly",
    "TOKEN_INIT",
    "token_ring_program",
    "token_ring_violations",
    "token_ring_outline",
    "DEKKER_INIT",
    "dekker_entry_program",
    "dekker_violations",
    "dekker_outline",
    "SPINLOCK_INIT",
    "spinlock_program",
    "spinlock_broken",
    "spinlock_violations",
    "spinlock_outline",
    "TICKET_INIT",
    "ticket_lock_program",
    "ticket_lock_violations",
    "ticket_lock_outline",
    "SEQLOCK_INIT",
    "seqlock_program",
    "seqlock_relaxed_data",
    "seqlock_violations",
    "seqlock_outline",
    "BARRIER_INIT",
    "barrier_program",
    "barrier_violations",
    "barrier_outline",
]
