"""The paper's case studies (and one extension).

* :mod:`repro.casestudies.peterson` — Algorithm 1: Peterson's mutual
  exclusion with release-acquire annotations, its invariants (4)–(10)
  and Theorem 5.8, plus mutants that probe which annotations matter.
* :mod:`repro.casestudies.message_passing` — Example 5.7: the
  release/acquire message-passing idiom and its broken relaxed variant.
* :mod:`repro.casestudies.token_ring` — an extension exercising
  update-only variables: a hand-off lock built from ``swap`` (the
  paper's language gives ``swap`` no return value, so test-and-set is
  inexpressible; the token hand-off is the lock the language supports).
"""

from repro.casestudies.peterson import (
    PETERSON_INIT,
    peterson_program,
    peterson_invariants,
    mutual_exclusion_violations,
    peterson_relaxed_turn,
    peterson_relaxed_flag_read,
)
from repro.casestudies.message_passing import (
    MP_INIT,
    message_passing_program,
    message_passing_broken,
    mp_data_invariant,
)
from repro.casestudies.token_ring import (
    TOKEN_INIT,
    token_ring_program,
    token_ring_violations,
)
from repro.casestudies.dekker import (
    DEKKER_INIT,
    dekker_entry_program,
    dekker_violations,
)

__all__ = [
    "PETERSON_INIT",
    "peterson_program",
    "peterson_invariants",
    "mutual_exclusion_violations",
    "peterson_relaxed_turn",
    "peterson_relaxed_flag_read",
    "MP_INIT",
    "message_passing_program",
    "message_passing_broken",
    "mp_data_invariant",
    "TOKEN_INIT",
    "token_ring_program",
    "token_ring_violations",
    "DEKKER_INIT",
    "dekker_entry_program",
    "dekker_violations",
]
