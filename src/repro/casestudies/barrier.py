"""A flag-handshake barrier — symmetric message passing.

Each thread publishes its contribution, raises an arrival flag with a
release, spins on the *other* thread's flag with acquiring reads, then
consumes the other's contribution::

    Init: xa = xb = a = b = ra = rb = 0

    thread 1:                        thread 2:
    2: xa := 1                       2: xb := 1
    3: a  :=^R 1                     3: b  :=^R 1
    4: while ¬b^A do skip            4: while ¬a^A do skip
    5: rb := xb                      5: ra := xa
    6: skip  (past the barrier)      6: skip

This is Example 5.7's message-passing idiom doubled back on itself, and
the outline is the paper's proof twice over: after publishing, each
thread's own datum is determinate (``xa =_1 1``) and ordered before its
flag (``xa → a`` — the WOrd shape); crossing the barrier, the acquiring
read of the other's released flag transfers the other's facts
(``xb =_1 1`` — AcqRd/Transfer), so the consume at line 5 cannot read
a stale 0 and each thread leaves the barrier holding the other's
contribution.
"""

from __future__ import annotations

from typing import Dict, List

from repro.interp.config import Configuration
from repro.lang.actions import Value, Var
from repro.lang.builder import acq, assign, label, neg, seq, skip, var, while_
from repro.lang.program import Program, Tid

#: Per-thread payload, arrival flag, and receive register.
DATA: Dict[Tid, Var] = {1: "xa", 2: "xb"}
FLAG: Dict[Tid, Var] = {1: "a", 2: "b"}
RECV: Dict[Tid, Var] = {1: "rb", 2: "ra"}

BARRIER_INIT: Dict[Var, Value] = {
    "xa": 0, "xb": 0, "a": 0, "b": 0, "ra": 0, "rb": 0,
}

#: Label past the barrier, contribution consumed.
DONE = 6


def barrier_thread(t: Tid) -> object:
    """Publish, announce (release), await the peer (acquire), consume."""
    other = 3 - t
    return seq(
        label(2, assign(DATA[t], 1)),
        label(3, assign(FLAG[t], 1, release=True)),
        label(4, while_(neg(acq(FLAG[other])), skip())),
        label(5, assign(RECV[t], var(DATA[other]))),
        label(DONE, skip()),
    )


def barrier_program() -> Program:
    """Two threads meeting at one flag-handshake barrier."""
    return Program.of({1: barrier_thread(1), 2: barrier_thread(2)})


def barrier_violations(config: Configuration) -> List[str]:
    """Terminal check: both sides consumed the other's contribution."""
    from repro.verify.assertions import current_value

    if not config.is_terminated():
        return []
    out = []
    for t in (1, 2):
        got = current_value(config.state, RECV[t])
        if got != 1:
            out.append(f"barrier: thread {t} consumed {got}, expected 1")
    return out


def barrier_outline():
    """The proof outline: message passing, symmetrically.

    For each thread ``t`` (peer ``t̂``):

    * past line 2, its datum is determinate: ``x_t =_t 1``;
    * past line 3, the datum is ordered before the flag: ``x_t → f_t``
      (the WOrd fact that makes the flag carry the datum);
    * once the spin at 4 is passed, the *peer's* datum has transferred:
      ``x_t̂ =_t 1`` — so line 5 must read 1, pinned at line 6 by
      ``r =_t 1``.
    """
    from repro.verify.assertions import DV, VO
    from repro.verify.outline import ProofOutline

    outline = ProofOutline()
    for t in (1, 2):
        other = 3 - t
        outline.at(
            f"t{t} published", {t: (3, 4, 5, DONE)}, DV(DATA[t], t, 1)
        )
        outline.at(
            f"t{t} datum before flag", {t: (4, 5, DONE)}, VO(DATA[t], FLAG[t])
        )
        outline.at(
            f"t{t} received peer datum", {t: (5, DONE)}, DV(DATA[other], t, 1)
        )
        outline.at(
            f"t{t} consumed 1", {t: (DONE,)}, DV(RECV[t], t, 1)
        )
    return outline
