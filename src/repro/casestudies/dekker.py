"""Dekker's mutual exclusion — a *negative* case study under RA.

Dekker's algorithm (simplified first-attempt form) relies on each thread
seeing the other's flag before entering::

    thread t:
    2:  flag_t := true
    3:  if (flag_t̂ = false)  enter critical section

Under sequential consistency the two flag writes and reads interleave,
so at most one thread can see the other's flag still down *after both
raised theirs* — with the full turn-based protocol this yields mutual
exclusion.  Under release-acquire C11 it is *unfixable without stronger
synchronisation*: the store-buffering shape lets both threads read the
other's flag as false (neither has *encountered* the other's write), and
no release/acquire annotation on the flags removes that execution — SB
is allowed even fully release/acquire-annotated (litmus ``SB+rel-acq``).

The paper's Peterson version works precisely because the ``turn`` RMW
arbitrates: updates to one variable are hb-totally-ordered.  This module
provides the Dekker entry protocol so the failure is demonstrable and
contrastable (tests + E10 ablation):

* :func:`dekker_entry_program` — flags only, both threads try to enter.
* mutual exclusion **fails under RA** (even with release/acquire flags),
  **holds under SC** for the one-shot entry protocol.
"""

from __future__ import annotations

from typing import Dict, List

from repro.interp.config import Configuration
from repro.lang.actions import Value, Var
from repro.lang.builder import assign, eq, if_, label, seq, skip, var, acq
from repro.lang.program import Program, Tid

DEKKER_INIT: Dict[Var, Value] = {"flag1": 0, "flag2": 0}

#: Critical-section label.
CRITICAL = 5


def dekker_thread(t: Tid, release_acquire: bool = False) -> object:
    """One thread of the entry protocol (optionally fully annotated)."""
    other = 3 - t
    read_other = acq(f"flag{other}") if release_acquire else var(f"flag{other}")
    return seq(
        label(2, assign(f"flag{t}", 1, release=release_acquire)),
        label(
            3,
            if_(
                eq(read_other, 0),
                label(CRITICAL, skip()),  # enter the critical section
                label(6, skip()),  # back off
            ),
        ),
    )


def dekker_entry_program(release_acquire: bool = False) -> Program:
    """Both threads race the entry protocol once."""
    return Program.of(
        {
            1: dekker_thread(1, release_acquire),
            2: dekker_thread(2, release_acquire),
        }
    )


def in_critical_section(config: Configuration, t: Tid) -> bool:
    return config.pc(t) == CRITICAL


def dekker_violations(config: Configuration) -> List[str]:
    """Both threads at the critical label — the SB failure mode."""
    if in_critical_section(config, 1) and in_critical_section(config, 2):
        return ["mutual-exclusion: both Dekker threads entered"]
    return []


def dekker_outline():
    """The entry protocol's proof outline — *deliberately* model-bound.

    The assertions are all model-agnostic (pc occupancy and current
    values, no thread-indexed determinacy), so the same outline object
    checks under both models — and the verdict flips:

    * under **SC** every obligation discharges: a thread at the guard
      (pc 3) has its flag up, so whichever thread reads *second* sees
      the other's flag and backs off;
    * under **RA** the store-buffering execution lets both threads read
      the other's flag as 0 and the mutual-exclusion obligation fails —
      the workbench localises the failing transition, which is exactly
      the paper's "conventional reasoning is unsound here" point.

    The registry therefore pins this outline to the SC model; the RA
    refutation is a regression test (and the reason the protocol is a
    *negative* case study above).
    """
    from repro.verify.assertions import And, Not_, PCIn, ValEq
    from repro.verify.outline import ProofOutline

    outline = ProofOutline()
    outline.everywhere(
        "mutual exclusion",
        Not_(And(PCIn(1, (CRITICAL,)), PCIn(2, (CRITICAL,)))),
    )
    for t in (1, 2):
        outline.at(
            f"t{t} flag raised at the guard", {t: (3, CRITICAL, 6)},
            ValEq(f"flag{t}", 1),
        )
    return outline
