"""A test-and-set spinlock — the lock C11 programmers actually write.

The paper's bare ``swap`` discards the value it reads, which is why the
original extension case study was a token hand-off lock
(:mod:`repro.casestudies.token_ring`).  With the value-returning
exchange ``r := lock.swap(1)^RA`` (DESIGN.md §10 — same ``updRA``
action, the read value just flows into a register store) the classic
test-and-set acquire is expressible::

    Init: lock = 0 ∧ r1 = 0 ∧ r2 = 0

    thread t:
    2:  r_t := lock.swap(1)^RA
    3:  while r_t ≠ 0 do r_t := lock.swap(1)^RA
    5:  critical section
    6:  lock :=^R 0

A thread owns the lock exactly when its exchange *read 0*.  Mutual
exclusion hinges on RMW atomicity (Lemma 5.6's machinery): updates on
``lock`` are mo-adjacent to the write they read, so at most one
exchange reads any given 0-write — the initialising write or a
release at line 6 — and a release only happens after the owner leaves.
The failure mode is equally expressible: replace the atomic exchange
by a read-then-write pair (:func:`spinlock_broken`) and two threads can
both read 0 before either writes 1.
"""

from __future__ import annotations

from typing import Dict, List

from repro.interp.config import Configuration
from repro.lang.actions import Value, Var
from repro.lang.builder import assign, eq, if_, label, ne, seq, skip, swap, var, while_
from repro.lang.program import Program, Tid

LOCK: Var = "lock"

#: One result register per thread (registers are ordinary shared
#: variables written by exactly one thread, as in the litmus suite).
REG: Dict[Tid, Var] = {1: "r1", 2: "r2"}

SPINLOCK_INIT: Dict[Var, Value] = {LOCK: 0, "r1": 0, "r2": 0}

#: Critical-section label.
CRITICAL = 5


def spinlock_thread(t: Tid, atomic: bool = True) -> object:
    """One thread: test-and-set acquire, critical section, release.

    ``atomic=False`` builds the broken variant whose "test-and-set" is a
    relaxed read followed by a store — the interleaving bug every
    textbook warns about, visible here as a mutual-exclusion violation.
    """
    r = REG[t]
    if atomic:
        tas = swap(LOCK, 1, reg=r)
    else:
        tas = seq(assign(r, var(LOCK)), assign(LOCK, 1))
    return seq(
        label(2, tas),
        label(3, while_(ne(var(r), 0), tas)),
        label(CRITICAL, skip()),
        label(6, assign(LOCK, 0, release=True)),
    )


def spinlock_program(atomic: bool = True) -> Program:
    """Two threads racing one test-and-set lock (one acquisition each)."""
    return Program.of(
        {1: spinlock_thread(1, atomic), 2: spinlock_thread(2, atomic)}
    )


def spinlock_broken() -> Program:
    """The non-atomic mutant: read-then-write instead of an exchange."""
    return spinlock_program(atomic=False)


def in_critical_section(config: Configuration, t: Tid) -> bool:
    """Whether ``t`` holds the lock (critical section or releasing)."""
    return config.pc(t) in (CRITICAL, 6)


def spinlock_violations(config: Configuration) -> List[str]:
    """Mutual exclusion over the lock-holding region {5, 6}."""
    if in_critical_section(config, 1) and in_critical_section(config, 2):
        return ["mutual-exclusion: both threads hold the TAS lock"]
    return []


def spinlock_outline():
    """The proof outline: why test-and-set excludes.

    * the holder's exchange read 0 (its register is determinately 0 —
      the winner's ticket);
    * while anyone holds the lock its current value is 1 (the holder
      wrote 1, spinners only ever overwrite 1 with 1);
    * mutual exclusion itself, as a pc-occupancy invariant.
    """
    from repro.verify.assertions import DV, And, Not_, PCIn, ValEq
    from repro.verify.outline import ProofOutline

    outline = ProofOutline()
    outline.everywhere(
        "mutual exclusion",
        Not_(And(PCIn(1, (CRITICAL, 6)), PCIn(2, (CRITICAL, 6)))),
    )
    for t in (1, 2):
        outline.at(
            f"holder t{t} read 0", {t: (CRITICAL, 6)}, DV(REG[t], t, 0)
        )
        outline.at(
            f"lock taken while t{t} holds", {t: (CRITICAL, 6)}, ValEq(LOCK, 1)
        )
    return outline
