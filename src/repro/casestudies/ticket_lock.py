"""A ticket lock — fair FIFO mutual exclusion from fetch-and-add.

The classic shape (Linux's original spinlock, MCS's little sibling)::

    Init: next = 0 ∧ serving = 0 ∧ my1 = 0 ∧ my2 = 0

    thread t:
    2:  my_t := next.faa(1)^RA          take a ticket
    3:  while (serving^A ≠ my_t) do skip
    5:  critical section
    6:  serving :=^R my_t + 1           call the next ticket

The ticket grab needs an RMW whose *write value depends on the value
read* — the ``faa`` extension of DESIGN.md §10 (one ``updRA(next, m,
m+1)`` action, so all of Section 5's update machinery applies).  The
correctness argument is the paper's own update-only story: ``next`` is
update-only (only ``faa`` touches it), so by Lemma 5.6 its updates are
totally ordered and every thread draws a *distinct* ticket; a thread
enters only after an acquiring read of ``serving`` equal to its ticket,
and ``serving`` only ever advances past a ticket when its holder
releases.
"""

from __future__ import annotations

from typing import Dict, List

from repro.interp.config import Configuration
from repro.lang.actions import Value, Var
from repro.lang.builder import acq, add, assign, faa, label, ne, seq, skip, var, while_
from repro.lang.program import Program, Tid

NEXT: Var = "next"
SERVING: Var = "serving"

#: Per-thread ticket register.
TICKET: Dict[Tid, Var] = {1: "my1", 2: "my2"}

TICKET_INIT: Dict[Var, Value] = {NEXT: 0, SERVING: 0, "my1": 0, "my2": 0}

#: Critical-section label.
CRITICAL = 5


def ticket_thread(t: Tid) -> object:
    """One participant: draw a ticket, wait to be served, pass the baton."""
    my = TICKET[t]
    return seq(
        label(2, faa(NEXT, 1, reg=my)),
        label(3, while_(ne(acq(SERVING), var(my)), skip())),
        label(CRITICAL, skip()),
        label(6, assign(SERVING, add(var(my), 1), release=True)),
    )


def ticket_lock_program() -> Program:
    """Two threads, one acquisition each, through one ticket lock."""
    return Program.of({1: ticket_thread(1), 2: ticket_thread(2)})


def in_critical_section(config: Configuration, t: Tid) -> bool:
    """Whether ``t`` is being served (critical section or releasing)."""
    return config.pc(t) in (CRITICAL, 6)


def ticket_lock_violations(config: Configuration) -> List[str]:
    """Mutual exclusion over the serving region {5, 6}."""
    inside = [t for t in config.program.tids if in_critical_section(config, t)]
    if len(inside) > 1:
        return [f"mutual-exclusion: threads {inside} share the ticket lock"]
    return []


def ticket_lock_outline():
    """The proof outline: distinct tickets + now-serving agreement.

    * ``next`` is update-only — the Lemma 5.6 hypothesis that makes the
      ticket draws totally ordered (hence distinct);
    * while ``t`` is served, the current ``serving`` value equals its
      ticket (nobody advances the counter under the holder);
    * mutual exclusion itself, as a pc-occupancy invariant.
    """
    from repro.verify.assertions import And, Not_, PCIn, UpdateOnly, VarsEq
    from repro.verify.outline import ProofOutline

    outline = ProofOutline()
    outline.everywhere("next update-only", UpdateOnly(NEXT))
    outline.everywhere(
        "mutual exclusion",
        Not_(And(PCIn(1, (CRITICAL, 6)), PCIn(2, (CRITICAL, 6)))),
    )
    for t in (1, 2):
        outline.at(
            f"t{t} served on its ticket", {t: (CRITICAL, 6)},
            VarsEq(SERVING, TICKET[t]),
        )
    return outline
