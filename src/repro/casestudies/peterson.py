"""Peterson's mutual exclusion with release-acquire (Algorithm 1).

::

    Init: flag1 = false ∧ flag2 = false ∧ turn = 1

    thread t (other thread t̂):
    2:  flag_t := true                 (relaxed)
    3:  turn.swap(t̂)^RA
    4:  while (flag_t̂ = true)^A ∧ turn = t̂ do skip
    5:  critical section
    6:  flag_t :=^R false              (then back to line 2)

The threads loop forever (Appendix D's Case 5 has ``pc: 6 → 2``).  The
file also provides the paper's invariants (4)–(10) as assertion objects,
the mutual-exclusion check of Theorem 5.8 and two mutants:

* :func:`peterson_relaxed_turn` — line 3 replaced by a *relaxed write*
  ``turn := t̂``: no synchronisation, no update-atomicity; mutual
  exclusion fails (the paper's point (1) in Example 3.6).
* :func:`peterson_relaxed_flag_read` — line 4's flag read made relaxed:
  the *operational* behaviour still maintains mutual exclusion (the
  second swapper *encounters* the other flag via the ``sw`` of the
  swap), but invariant (8) can no longer be established by the AcqRd /
  Transfer rules — separating "true" from "provable in Figure 4".
"""

from __future__ import annotations

from typing import Dict, List

from repro.interp.config import Configuration
from repro.lang.actions import Value, Var
from repro.lang.builder import (
    acq,
    and_,
    assign,
    eq,
    label,
    loop_forever,
    seq,
    skip,
    swap,
    var,
    while_,
)
from repro.lang.program import Program, Tid
from repro.verify.assertions import DV, Implies, Or, PCIn, UpdateOnly, VO
from repro.verify.invariants import Invariant

TRUE: Value = 1
FALSE: Value = 0

FLAG: Dict[Tid, Var] = {1: "flag1", 2: "flag2"}
TURN: Var = "turn"

#: Algorithm 1's initialisation: both flags down, thread 1 has the turn.
PETERSON_INIT: Dict[Var, Value] = {"flag1": FALSE, "flag2": FALSE, "turn": 1}

#: Label used for the critical section (line 5 of Algorithm 1).
CRITICAL = 5


def _other(t: Tid) -> Tid:
    return 3 - t


def peterson_thread(
    t: Tid,
    turn_is_swap: bool = True,
    flag_read_acquire: bool = True,
    flag_release: bool = True,
    once: bool = False,
) -> object:
    """One Peterson thread, with the synchronisation knobs exposed."""
    other = _other(t)
    flag_other = acq(FLAG[other]) if flag_read_acquire else var(FLAG[other])
    set_turn = (
        swap(TURN, other) if turn_is_swap else assign(TURN, other)
    )
    body = seq(
        label(2, assign(FLAG[t], TRUE)),
        label(3, set_turn),
        label(4, while_(and_(eq(flag_other, TRUE), eq(var(TURN), other)), skip())),
        label(CRITICAL, skip()),
        label(6, assign(FLAG[t], FALSE, release=flag_release)),
    )
    return body if once else loop_forever(body)


def peterson_program(once: bool = False) -> Program:
    """Algorithm 1 exactly as the paper gives it."""
    return Program.of(
        {1: peterson_thread(1, once=once), 2: peterson_thread(2, once=once)}
    )


def peterson_relaxed_turn(once: bool = False) -> Program:
    """Mutant: line 3 is a relaxed write (no RMW, no synchronisation)."""
    return Program.of(
        {
            1: peterson_thread(1, turn_is_swap=False, once=once),
            2: peterson_thread(2, turn_is_swap=False, once=once),
        }
    )


def peterson_relaxed_flag_read(once: bool = False) -> Program:
    """Mutant: line 4's flag read is relaxed instead of acquiring."""
    return Program.of(
        {
            1: peterson_thread(1, flag_read_acquire=False, once=once),
            2: peterson_thread(2, flag_read_acquire=False, once=once),
        }
    )


# ----------------------------------------------------------------------
# Theorem 5.8 and the invariants
# ----------------------------------------------------------------------


def in_critical_section(config: Configuration, t: Tid) -> bool:
    """Whether thread ``t`` is at line 5."""
    return config.pc(t) == CRITICAL


def mutual_exclusion_violations(config: Configuration) -> List[str]:
    """Theorem 5.8's property as an exploration hook: both threads at
    line 5 is a violation."""
    if in_critical_section(config, 1) and in_critical_section(config, 2):
        return ["mutual-exclusion: pc1 = pc2 = 5"]
    return []


def peterson_invariants() -> List[Invariant]:
    """Invariants (4)–(10) of Section 5.2, one assertion object each.

    Numbering follows the paper; the per-thread families are expanded
    for t ∈ {1, 2} (with t̂ the other thread).
    """
    invariants: List[Invariant] = [
        Invariant("(4) turn update-only", UpdateOnly(TURN)),
        Invariant(
            "(5) turn =1 2 ∨ turn =2 1",
            Or(DV(TURN, 1, 2), DV(TURN, 2, 1)),
        ),
    ]
    for t in (1, 2):
        other = _other(t)
        invariants.extend(
            [
                Invariant(
                    f"(6) t{t}: pc∈{{3..6}} ⟹ flag{t} ={t} true",
                    Implies(PCIn(t, (3, 4, 5, 6)), DV(FLAG[t], t, TRUE)),
                ),
                Invariant(
                    f"(7) t{t}: pc∈{{4..6}} ⟹ flag{t} → turn",
                    Implies(PCIn(t, (4, 5, 6)), VO(FLAG[t], TURN)),
                ),
                Invariant(
                    f"(8) t{t}: both in {{4..6}} ⟹ flag{other} ={t} true ∨ turn ={other} {t}",
                    Implies(
                        PCIn(t, (4, 5, 6)) & PCIn(other, (4, 5, 6)),
                        Or(DV(FLAG[other], t, TRUE), DV(TURN, other, t)),
                    ),
                ),
                Invariant(
                    f"(9) t{t}: pc{t}=5 ∧ pc{other}∈{{4..6}} ⟹ turn ={other} {t}",
                    Implies(
                        PCIn(t, (CRITICAL,)) & PCIn(other, (4, 5, 6)),
                        DV(TURN, other, t),
                    ),
                ),
                Invariant(
                    f"(10) t{t}: pc=2 ⟹ flag{t} ={t} false",
                    Implies(PCIn(t, (2,)), DV(FLAG[t], t, FALSE)),
                ),
            ]
        )
    return invariants


def theorem_5_8(config: Configuration) -> bool:
    """``P.pc1 ≠ 5 ∨ P.pc2 ≠ 5`` — the mutual exclusion property."""
    return not (in_critical_section(config, 1) and in_critical_section(config, 2))


def peterson_outline_sc():
    """Peterson under *sequential consistency* — the coarse outline.

    The paper's point is that invariants (4)–(10) need weak-memory
    assertions; under SC the conventional argument suffices and is
    phrased entirely in model-agnostic facts: flags are up throughout
    the protocol, the turn stays in range, and mutual exclusion holds.
    Checking the same algorithm under two models through one workbench
    front door is what ``repro verify`` is for (DESIGN.md §10).
    """
    from repro.verify.assertions import And, Not_, Or, PCIn, ValEq
    from repro.verify.outline import ProofOutline

    outline = ProofOutline()
    outline.everywhere(
        "mutual exclusion",
        Not_(And(PCIn(1, (CRITICAL,)), PCIn(2, (CRITICAL,)))),
    )
    outline.everywhere("turn in range", Or(ValEq(TURN, 1), ValEq(TURN, 2)))
    for t in (1, 2):
        outline.at(
            f"t{t} flag up in protocol", {t: (4, CRITICAL, 6)},
            ValEq(FLAG[t], TRUE),
        )
    return outline
