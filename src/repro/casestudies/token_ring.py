"""A token hand-off lock — the extension case study.

The paper's language gives ``swap`` no return value, so a test-and-set
spinlock is inexpressible; what *is* expressible is a hand-off (ticket
ring) lock over an **update-only** variable, which exercises exactly the
machinery Section 5 builds for Peterson's ``turn``:

::

    Init: token = 1
    thread t:
    2:  while token ≠ t do skip       (acquiring read of token)
    3:  critical section
    4:  token.swap(next(t))^RA

The token only ever changes by RMW updates, so it is update-only; by
Lemma 5.6 every swap lands mo-last, and the updates are totally ordered
by ``hb``.  A thread enters its critical section only after an acquiring
read of ``token = t``, whose source is either the initialising write or
the releasing update of the predecessor — either way sb/hb-after the
predecessor left its critical section.  Hence mutual exclusion.
"""

from __future__ import annotations

from typing import Dict, List

from repro.interp.config import Configuration
from repro.lang.actions import Value, Var
from repro.lang.builder import acq, eq, label, ne, seq, skip, swap, while_
from repro.lang.program import Program, Tid
from repro.verify.assertions import UpdateOnly
from repro.verify.invariants import Invariant

TOKEN: Var = "token"
TOKEN_INIT: Dict[Var, Value] = {TOKEN: 1}

#: Critical-section label.
CRITICAL = 3


def token_thread(t: Tid, n_threads: int, rounds: int = 1) -> object:
    """One participant: wait for the token, enter, pass it on."""
    nxt = t % n_threads + 1
    round_body = seq(
        label(2, while_(ne(acq(TOKEN), t), skip())),
        label(CRITICAL, skip()),
        label(4, swap(TOKEN, nxt)),
    )
    body = round_body
    for _ in range(rounds - 1):
        body = seq(body, round_body)
    return body


def token_ring_program(n_threads: int = 2, rounds: int = 1) -> Program:
    """``n_threads`` participants passing one token around."""
    return Program.of(
        {t: token_thread(t, n_threads, rounds) for t in range(1, n_threads + 1)}
    )


def in_critical_section(config: Configuration, t: Tid) -> bool:
    return config.pc(t) == CRITICAL


def token_ring_violations(config: Configuration) -> List[str]:
    """Mutual exclusion over all participants."""
    inside = [t for t in config.program.tids if in_critical_section(config, t)]
    if len(inside) > 1:
        return [f"mutual-exclusion: threads {inside} all at line {CRITICAL}"]
    return []


def token_ring_invariants() -> List[Invariant]:
    """The update-only property the verification hinges on."""
    return [Invariant("token update-only", UpdateOnly(TOKEN))]


def token_ring_outline(n_threads: int = 2):
    """The hand-off argument as a proof outline (DESIGN.md §10).

    * the token is update-only (Lemma 5.6: its updates are totally
      ordered, so there is one coherent hand-off sequence);
    * while a thread is in its critical section or handing off, the
      token's current value is *its* id — the predecessor's release is
      what let it in, and nobody else may swap until it does;
    * mutual exclusion over the hold region {3, 4}, as pc occupancy.
    """
    from repro.verify.assertions import Not_, PCIn, UpdateOnly as UO, ValEq, all_of
    from repro.verify.outline import ProofOutline

    hold = (CRITICAL, 4)
    outline = ProofOutline()
    outline.everywhere("token update-only", UO(TOKEN))
    for t in range(1, n_threads + 1):
        outline.at(f"t{t} holds the token", {t: hold}, ValEq(TOKEN, t))
        for u in range(t + 1, n_threads + 1):
            outline.everywhere(
                f"mutual exclusion t{t}/t{u}",
                Not_(all_of([PCIn(t, hold), PCIn(u, hold)])),
            )
    return outline
