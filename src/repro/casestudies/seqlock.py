"""A seqlock reader/writer pair — consistent snapshots without blocking.

The writer bumps a sequence number to odd, writes a two-word payload,
then bumps back to even; a reader snapshots the payload between two
reads of the sequence number and *accepts* only if both reads agree on
an even value::

    Init: seq = 0 ∧ d1 = 0 ∧ d2 = 0 ∧ s1 = s2 = v1 = v2 = ok = 0

    writer:                         reader:
    2: seq :=^R 1                   2: s1 := seq^A
    3: d1  :=^R 5                   3: if s1 even:
    4: d2  :=^R 5                   4:   v1 := d1^A
    5: seq :=^R 2                   5:   v2 := d2^A
                                    6:   s2 := seq^A
                                    7:   if s2 = s1:
                                    8:     ok := 1     (snapshot accepted)

Under C11 the textbook recipe silently requires more than "seq is
synchronised": with *relaxed* payload accesses a reader can observe
``d1 = 5`` yet still read the stale ``seq = 0`` afterwards — nothing
orders the two — and accept a torn ``(5, 0)`` snapshot.  In the RAR
fragment the repair is to make the payload writes releasing and the
payload reads acquiring: then reading a new datum synchronises, the
reader's happens-before cone contains the writer's ``seq := 1``, the
initial ``seq`` write becomes unobservable (covered), and the re-read
at line 6 is forced to disagree with line 2 — the torn snapshot is
*rejected* rather than prevented.  The proof outline pins exactly this:
an accepted snapshot is determinately ``(0, 0)`` or ``(5, 5)``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.interp.config import Configuration
from repro.lang.actions import Value, Var
from repro.lang.builder import acq, assign, eq, if_, label, or_, seq, var
from repro.lang.program import Program

SEQ: Var = "seq"
PAYLOAD: Value = 5

SEQLOCK_INIT: Dict[Var, Value] = {
    SEQ: 0, "d1": 0, "d2": 0, "s1": 0, "s2": 0, "v1": 0, "v2": 0, "ok": 0,
}

#: Reader label at which the snapshot has been accepted.
ACCEPTED = 8

#: Writer tid / reader tid.
WRITER, READER = 1, 2


def seqlock_writer() -> object:
    """One write round: odd, payload, even — payload writes releasing."""
    return seq(
        label(2, assign(SEQ, 1, release=True)),
        label(3, assign("d1", PAYLOAD, release=True)),
        label(4, assign("d2", PAYLOAD, release=True)),
        label(5, assign(SEQ, 2, release=True)),
    )


def seqlock_reader() -> object:
    """One snapshot attempt: accept only on an even, stable sequence."""
    even = lambda s: or_(eq(var(s), 0), eq(var(s), 2))
    return seq(
        label(2, assign("s1", acq(SEQ))),
        label(
            3,
            if_(
                even("s1"),
                seq(
                    label(4, assign("v1", acq("d1"))),
                    label(5, assign("v2", acq("d2"))),
                    label(6, assign("s2", acq(SEQ))),
                    label(
                        7,
                        if_(
                            eq(var("s2"), var("s1")),
                            label(ACCEPTED, assign("ok", 1)),
                            label(9, None),  # unstable sequence: reject
                        ),
                    ),
                ),
                label(10, None),  # odd sequence: abandon immediately
            ),
        ),
    )


def seqlock_program() -> Program:
    """The writer racing one snapshot attempt."""
    return Program.of({WRITER: seqlock_writer(), READER: seqlock_reader()})


def seqlock_relaxed_data() -> Program:
    """The textbook-but-wrong variant: payload accesses left relaxed.

    A reader can read ``d1 = 5`` (the writer's relaxed store creates no
    synchronisation) and still observe the stale ``seq = 0`` at line 6,
    accepting the torn snapshot ``(5, 0)`` — the config hook
    :func:`seqlock_violations` exhibits it, and the E-gallery example
    prints the counterexample trace.
    """
    relaxed_writer = seq(
        label(2, assign(SEQ, 1, release=True)),
        label(3, assign("d1", PAYLOAD)),
        label(4, assign("d2", PAYLOAD)),
        label(5, assign(SEQ, 2, release=True)),
    )
    even = lambda s: or_(eq(var(s), 0), eq(var(s), 2))
    relaxed_reader = seq(
        label(2, assign("s1", acq(SEQ))),
        label(
            3,
            if_(
                even("s1"),
                seq(
                    label(4, assign("v1", var("d1"))),
                    label(5, assign("v2", var("d2"))),
                    label(6, assign("s2", acq(SEQ))),
                    label(
                        7,
                        if_(
                            eq(var("s2"), var("s1")),
                            label(ACCEPTED, assign("ok", 1)),
                            label(9, None),
                        ),
                    ),
                ),
                label(10, None),
            ),
        ),
    )
    return Program.of({WRITER: relaxed_writer, READER: relaxed_reader})


def seqlock_violations(config: Configuration) -> List[str]:
    """An accepted snapshot must not be torn (config-hook form)."""
    from repro.verify.assertions import current_value

    if config.pc(READER) != ACCEPTED:
        return []
    v1 = current_value(config.state, "v1")
    v2 = current_value(config.state, "v2")
    if v1 != v2:
        return [f"seqlock: accepted torn snapshot ({v1}, {v2})"]
    return []


def seqlock_outline():
    """The proof outline: why an accepted snapshot is consistent.

    * while the writer is mid-update its sequence number is odd
      (``value(seq) = 1`` at writer pc ∈ {3, 4, 5});
    * at the accept point the reader *determinately* read a consistent
      pair — both words still initial, or both the new payload.
    """
    from repro.verify.assertions import DV, And, Or, ValEq
    from repro.verify.outline import ProofOutline

    outline = ProofOutline()
    outline.at(
        "writer mid-update keeps seq odd", {WRITER: (3, 4, 5)}, ValEq(SEQ, 1)
    )
    outline.at(
        "accepted snapshot consistent",
        {READER: (ACCEPTED,)},
        Or(
            And(DV("v1", READER, 0), DV("v2", READER, 0)),
            And(DV("v1", READER, PAYLOAD), DV("v2", READER, PAYLOAD)),
        ),
    )
    return outline
