"""Message passing (Example 5.7) and its broken relaxed variant.

::

    Init: f = 0 ∧ d = 0
    thread 1:  1: d := 5;               thread 2:  1: while !f^A do skip;
               2: f :=^R 1;                        2: r := d;

The release on ``f`` paired with the acquiring read in the busy-wait
guard makes ``d =_2 5`` hold when thread 2 exits the loop (the paper's
proof uses NoMod, ModLast, WOrd then Transfer), so thread 2 always
consumes 5.  Dropping the release (``message_passing_broken``) lets
thread 2 read the stale ``d = 0``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.interp.config import Configuration
from repro.lang.actions import Value, Var
from repro.lang.builder import acq, assign, label, neg, seq, skip, var, while_
from repro.lang.program import Program
from repro.verify.assertions import DV, Implies, PCIn
from repro.verify.invariants import Invariant

MP_INIT: Dict[Var, Value] = {"d": 0, "f": 0, "r": 0}

#: The payload thread 1 publishes.
PAYLOAD: Value = 5


def message_passing_program(release: bool = True, acquire: bool = True) -> Program:
    """Example 5.7 (annotation knobs exposed for the broken variants)."""
    t1 = seq(
        label(1, assign("d", PAYLOAD)),
        label(2, assign("f", 1, release=release)),
    )
    guard_read = acq("f") if acquire else var("f")
    t2 = seq(
        label(1, while_(neg(guard_read), skip())),
        label(2, assign("r", var("d"))),
    )
    return Program.parallel(t1, t2)


def message_passing_broken() -> Program:
    """The relaxed-flag variant: no synchronisation, stale data possible."""
    return message_passing_program(release=False)


def mp_data_invariant() -> List[Invariant]:
    """The key proof obligation: at line 2 of thread 2, ``d =_2 5``."""
    return [
        Invariant(
            "thread 2 at line 2 ⟹ d =2 5",
            Implies(PCIn(2, (2,)), DV("d", 2, PAYLOAD)),
        )
    ]


def mp_outline():
    """Example 5.7 as a proof outline (the paper's proof, RA form).

    The producer's facts: past line 1 the datum is determinate for
    thread 1; past line 2 it is ordered before the flag (WOrd).  The
    consumer's fact is the transfer: at line 2 of thread 2 the datum is
    determinate *for the consumer* — the DV form of "no stale read".
    """
    from repro.verify.assertions import DV, VO
    from repro.verify.outline import ProofOutline

    outline = ProofOutline()
    outline.at("producer wrote payload", {1: (2,)}, DV("d", 1, PAYLOAD))
    outline.at("consumer sees payload", {2: (2,)}, DV("d", 2, PAYLOAD))
    return outline


def mp_outline_valonly():
    """The model-agnostic weakening of :func:`mp_outline`.

    ``value(d) = 5`` claims only that the globally newest write of ``d``
    is the payload — no thread-indexed knowledge — so the same outline
    checks under SC and RA alike (DESIGN.md §10's portability tier).
    """
    from repro.verify.assertions import ValEq
    from repro.verify.outline import ProofOutline

    outline = ProofOutline()
    outline.at("payload written before consume", {2: (2,)}, ValEq("d", PAYLOAD))
    return outline


def mp_result_violations(config: Configuration) -> List[str]:
    """Terminal-state check: the consumer must have stored the payload.

    Model-agnostic (works on RA states and SC stores alike).
    """
    from repro.litmus.registry import final_values

    if not config.is_terminated():
        return []
    value = final_values(config).get("r")
    if value != PAYLOAD:
        return [f"consumer stored {value}, expected {PAYLOAD}"]
    return []
