"""Differential oracles: what makes a generated program *pass*.

Eight independent checks, cheapest first (the fifth through eighth are
opt-in):

1. **Refinement chain** — the outcome sets (final values of every
   variable over terminal configurations) must nest along the model
   hierarchy::

       outcomes(SC)  ⊆  outcomes(SRA)  ⊆  outcomes(RA)

   SC is an interleaving of atomic accesses, SRA is RA restricted to
   ``sb ∪ rf ∪ mo``-acyclic states, RA is the paper's model — every
   stronger model's behaviours must be reproducible by the weaker one.

2. **Soundness agreement** (operational vs axiomatic, Theorem 4.4) —
   every distinct C11 state reachable under the RA semantics must
   satisfy Definition 4.2 (:func:`repro.axiomatic.validity.check_validity`).

3. **Axiomatic equivalence on the footprint** — for programs whose
   footprint is tiny, re-run the E1 comparison
   (:func:`repro.axiomatic.equivalence.compare_axiomatisations`) on a
   candidate space clamped to the program's shape (event count and
   variables, capped; values clamped to ``(1,)``).  The space is
   memoized per process, so each distinct space is enumerated once per
   worker (once per campaign when ``jobs=1``).

4. **POR parity** — re-explore the program under RA with the selected
   partial-order reduction (``"dpor"`` by default, DESIGN.md §9) and
   require the reduced search to be outcome-identical to the full one:
   same terminal outcome set, same truncation flag, and a visited-
   configuration count that can only shrink.  This is the continuous
   soundness check of :mod:`repro.engine.por` — every fuzz campaign
   cross-validates the reduction against exhaustive exploration on
   every generated program, for free.

5. **Derived-order parity** (``check_orders=True`` / ``repro fuzz
   --check-orders``, off by default) — on every distinct RA-reachable
   state, the compact representation's incremental ``hb``/``eco``
   bitmasks, observability sets, tag tables and canonical key must
   agree with the definitional closures recomputed from the
   materialised relations
   (:func:`repro.c11.compact.derived_order_divergences`, DESIGN.md
   §11).  The continuous soundness check of the compact order engine,
   run over whole campaigns.

6. **Lowering parity** (``check_lowering=True`` / ``repro fuzz
   --check-lowering``, off by default) — replay the program under each
   model with the lowered-program IR on and off (DESIGN.md §12) in a
   lock-step paired search and require the *full*
   :class:`~repro.interp.interpreter.InterpretedStep` streams to agree
   transition-for-transition at every reachable configuration — tids,
   events (tags included), observed writes, read values, silent steps
   and terminal outcomes.  Strictly stronger than outcome equality:
   the continuous soundness check of the compiler in
   :mod:`repro.lang.lower`.

7. **Shard parity** (``check_shards=True`` / ``repro fuzz
   --check-shards``, off by default) — re-explore the program under RA
   with the search hash-partitioned across three shards (DESIGN.md
   §15) and require the sharded run to be *exactly* identical to the
   single-process one: same terminal outcome set, same truncation
   flag, and the same visited-configuration count — sharding
   partitions the very same search, it never prunes.  The continuous
   soundness check of :mod:`repro.engine.shard` over whole campaigns.
   Inside daemonic fuzz pool workers the sharded run executes the
   in-process superstep schedule, which is the same code path the
   worker processes run.

8. **Fault parity** (``check_faults=True`` / ``repro fuzz
   --check-faults``, off by default) — inject deterministic faults
   (:mod:`repro.faults`, DESIGN.md §16) into a re-exploration of the
   program and require recovery to be *exactly* outcome- and
   count-identical to the clean search.  Two legs: (a) interrupt the
   run mid-search with checkpoints enabled, then resume from the
   checkpoint it left behind; (b) fail the first visited-set spill
   write with a synthetic ENOSPC and require the store to roll back
   and continue in memory.  The continuous soundness check of the
   checkpoint/resume and fault-recovery machinery over whole
   campaigns.  Both legs run in-process (fork-free), so the oracle is
   safe inside daemonic pool workers.

A run that hits an exploration bound (``max_events`` slack exceeded or
the ``max_configs`` safety cap) is reported *inconclusive*, never
divergent: a truncated outcome set could fail the subset check
spuriously.  Generated cases carry an exact static bound
(``events_hint``), so in practice fuzz runs never truncate.

The model table :data:`ORACLE_MODELS` is module state on purpose: tests
monkeypatch an intentionally broken model into it and assert the fuzzer
catches and shrinks the divergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Dict, FrozenSet, Optional, Tuple

from repro.interp.explore import explore, reachable_states
from repro.interp.memory_model import MemoryModel
from repro.interp.ra_model import RAMemoryModel
from repro.interp.sc import SCMemoryModel
from repro.interp.sra_model import SRAMemoryModel
from repro.lang.actions import Value, Var
from repro.litmus.registry import final_values

from repro.fuzz.generator import GeneratedCase

#: model name -> factory, in refinement order (strongest first).  Tests
#: monkeypatch entries to plant deliberately broken models.
ORACLE_MODELS: Dict[str, Callable[[], MemoryModel]] = {
    "sc": SCMemoryModel,
    "sra": SRAMemoryModel,
    "ra": RAMemoryModel,
}

#: the subset chain asserted between consecutive entries
REFINEMENT_CHAIN: Tuple[str, ...] = ("sc", "sra", "ra")

#: hard safety net on any single exploration — a buggy model that stops
#: terminating trips this cap and the run is reported inconclusive
#: instead of hanging the fuzzer
DEFAULT_MAX_CONFIGS = 50_000

#: gates for the footprint equivalence oracle (cost is exponential in
#: both; 1 var / 3 events ≈ 0.6 s, memoized per space)
AXIOMATIC_MAX_EVENTS = 3
AXIOMATIC_MAX_VARS = 2

Outcome = Tuple[Tuple[Var, Value], ...]


@dataclass
class OracleReport:
    """What the oracles concluded about one case."""

    case: GeneratedCase
    #: divergence kind ("refinement" / "soundness" / "axiomatic" /
    #: "por-parity" / "orders" / "lowering" / "shard-parity" /
    #: "fault-parity" / "crash"), or ``None`` when every oracle passed
    divergence: Optional[str] = None
    detail: str = ""
    #: a bound was hit; no divergence verdict is possible
    inconclusive: bool = False
    outcomes: Dict[str, FrozenSet[Outcome]] = field(default_factory=dict)
    configs: int = 0
    transitions: int = 0
    terminal: int = 0
    key_hits: int = 0
    key_misses: int = 0
    #: reduction counters of the POR-parity run (0 when disabled)
    expanded: int = 0
    pruned: int = 0
    sleep_hits: int = 0
    races: int = 0
    revisits: int = 0
    #: derived-order wall time summed over this case's explorations
    time_orders: float = 0.0
    #: successor-expansion wall time summed over this case's explorations
    time_expand: float = 0.0
    #: memory-model share of ``time_expand`` (lowered path only)
    time_model: float = 0.0
    #: largest frontier/spine across this case's explorations — a
    #: high-water mark, folded by max (never summed) up the stack
    peak_frontier: int = 0

    @property
    def ok(self) -> bool:
        return self.divergence is None


def _outcome_set(terminal_configs) -> FrozenSet[Outcome]:
    return frozenset(
        tuple(sorted(final_values(config).items()))
        for config in terminal_configs
    )


def _format_outcome(outcome: Outcome) -> str:
    return "{" + ", ".join(f"{x}={v}" for x, v in outcome) + "}"


@lru_cache(maxsize=64)
def _footprint_equivalence(n_events: int, n_variables: int) -> str:
    """Run the E1 comparison on a clamped footprint space.

    Returns a failure description ("" = the axiomatisations agree).
    Candidate spaces are symbolic in variable names, so the footprint is
    keyed by variable *count*; memoization then makes every program with
    the same clamped shape share one enumeration.
    """
    from repro.axiomatic.candidates import CandidateSpace
    from repro.axiomatic.equivalence import compare_axiomatisations

    variables = ("x", "y")[:n_variables]
    space = CandidateSpace(
        n_events=n_events, variables=variables, values=(1,), max_threads=2
    )
    result = compare_axiomatisations(space, keep_mismatches=1)
    if result.equivalent:
        return ""
    return (
        f"axiomatisations disagree on {len(result.mismatches)} of "
        f"{result.candidates} candidates (n={n_events}, vars={variables})"
    )


def lowering_step_parity(
    program,
    init,
    model_factory: Callable[[], MemoryModel],
    max_events: Optional[int] = None,
    max_configs: Optional[int] = None,
) -> Tuple[Optional[str], bool]:
    """Oracle 6's worker: lock-step replay, lowered IR vs AST walker.

    Explores the lowered and the legacy interpretation of ``program``
    *in pairs*: the two initial configurations are matched, and each
    matched pair must produce :class:`InterpretedStep` batches that
    agree signature-for-signature — ``(tid, event, observed,
    read_value)``, with tags, so silent steps and every memory-model
    choice are compared, not just outcomes.  Matching successors extend
    the pairing; terminal pairs must agree on their final values.

    Returns ``(detail, inconclusive)``: ``detail`` describes the first
    divergence (``None`` = parity holds on every reachable pair);
    ``inconclusive`` is set when the program was not lowered (aliasing
    fallback, ``REPRO_NO_LOWER``) or a bound was hit, in which case the
    oracle verified nothing and must not read as green.
    """
    from repro.engine.core import _state_size
    from repro.interp.compiled import LoweredProgram, lowering_disabled
    from repro.interp.interpreter import initial_configuration, successor_list

    model = model_factory()
    low0 = initial_configuration(program, init, model)
    if type(low0.program) is not LoweredProgram:
        return None, True
    with lowering_disabled():
        leg0 = initial_configuration(program, init, model)

    def sig(s):
        return (s.tid, s.event, s.observed, s.read_value)

    seen = {(low0, leg0)}
    frontier = [(low0, leg0)]
    while frontier:
        low, leg = frontier.pop()
        if low.is_terminated() != leg.is_terminated():
            return (
                f"termination disagrees at a paired configuration "
                f"(lowered={low.is_terminated()}, legacy={leg.is_terminated()})",
                False,
            )
        if low.is_terminated():
            if final_values(low) != final_values(leg):
                return (
                    f"terminal values disagree: lowered "
                    f"{final_values(low)} vs legacy {final_values(leg)}",
                    False,
                )
            continue
        at_bound = (
            max_events is not None and _state_size(low.state) >= max_events
        )
        steps_low = successor_list(low, model)
        with lowering_disabled():
            steps_leg = successor_list(leg, model)
        by_low: Dict[tuple, list] = {}
        for s in steps_low:
            by_low.setdefault(sig(s), []).append(s)
        by_leg: Dict[tuple, list] = {}
        for s in steps_leg:
            by_leg.setdefault(sig(s), []).append(s)
        if by_low.keys() != by_leg.keys() or any(
            len(by_low[k]) != len(by_leg[k]) for k in by_low
        ):
            only_low = sorted(set(by_low) - set(by_leg))
            only_leg = sorted(set(by_leg) - set(by_low))
            return (
                f"step streams diverge: {len(steps_low)} lowered vs "
                f"{len(steps_leg)} legacy transitions "
                f"(lowered-only signatures: {only_low[:2]}; "
                f"legacy-only: {only_leg[:2]})",
                False,
            )
        for key, group in by_low.items():
            if at_bound and key[1] is not None:
                continue  # both sides truncate this event identically
            for s_low, s_leg in zip(group, by_leg[key]):
                pair = (s_low.target, s_leg.target)
                if pair in seen:
                    continue
                if max_configs is not None and len(seen) >= max_configs:
                    return None, True
                seen.add(pair)
                frontier.append(pair)
    return None, False


def check_program(
    case: GeneratedCase,
    axiomatic: bool = True,
    max_configs: Optional[int] = DEFAULT_MAX_CONFIGS,
    models: Optional[Dict[str, Callable[[], MemoryModel]]] = None,
    reduction: str = "dpor",
    equivalence: str = "shasha-snir",
    check_orders: bool = False,
    check_lowering: bool = False,
    check_shards: bool = False,
    check_faults: bool = False,
) -> OracleReport:
    """Run every oracle on ``case`` and report the first divergence.

    ``reduction`` selects which partial-order reduction the POR-parity
    oracle cross-validates against the full search (``"none"`` disables
    the oracle); ``"optimal"`` additionally replays ``"dpor"``, so the
    parsimonious explorer (DESIGN.md §13) is diffed against both the
    unreduced search *and* the source-set baseline in one run.
    ``equivalence`` keys the reduced runs' visited stores (consulted by
    ``"dpor"``/``"optimal"`` only).  ``check_orders`` additionally
    replays the compact derived-order self-check over every distinct
    RA-reachable state (DESIGN.md §11).  ``check_lowering`` replays the
    program under each model with the lowered IR on and off and diffs
    the full step streams (DESIGN.md §12).  ``check_shards`` re-runs
    the RA exploration hash-partitioned across three shards and
    requires exact parity with the single-process search (DESIGN.md
    §15).  ``check_faults`` injects a deterministic mid-run interrupt
    (resumed from its checkpoint) and a synthetic spill-write ENOSPC
    into re-explorations and requires exact parity with the clean
    search (DESIGN.md §16).
    """
    models = models if models is not None else ORACLE_MODELS
    report = OracleReport(case)
    # +1 slack: the hint is an exact upper bound, so reaching it is
    # legitimate and only *exceeding* it marks a runaway model
    max_events = case.events_hint + 1

    ra_states = []
    for name in REFINEMENT_CHAIN:
        try:
            if name == "ra":
                # one exploration yields both the outcome set and every
                # distinct reachable state for the soundness oracle
                ra_states, result = reachable_states(
                    case.program, case.init, models[name](),
                    max_events=max_events, max_configs=max_configs,
                )
            else:
                result = explore(
                    case.program, case.init, models[name](),
                    max_events=max_events, max_configs=max_configs,
                )
        except Exception as exc:  # noqa: BLE001 — a crash IS a finding
            report.divergence = "crash"
            report.detail = f"{name} exploration raised {type(exc).__name__}: {exc}"
            return report
        report.configs += result.configs
        report.transitions += result.transitions
        report.terminal += len(result.terminal)
        report.key_hits += result.stats.key_hits
        report.key_misses += result.stats.key_misses
        report.time_orders += result.stats.time_orders
        report.time_expand += result.stats.time_expand
        report.time_model += result.stats.time_model
        if result.stats.peak_frontier > report.peak_frontier:
            report.peak_frontier = result.stats.peak_frontier
        if name == "ra":
            ra_full = result
        if result.truncated:
            report.inconclusive = True
            report.detail = f"{name} exploration hit a bound; no verdict"
            return report
        report.outcomes[name] = _outcome_set(result.terminal)

    # 1. the refinement chain
    for weak, strong in zip(REFINEMENT_CHAIN, REFINEMENT_CHAIN[1:]):
        missing = report.outcomes[weak] - report.outcomes[strong]
        if missing:
            witness = _format_outcome(sorted(missing)[0])
            report.divergence = "refinement"
            report.detail = (
                f"outcome {witness} reachable under {weak} but not under "
                f"{strong} ({len(missing)} such outcome(s))"
            )
            return report
    if not report.outcomes["sc"]:
        report.divergence = "refinement"
        report.detail = "no terminal SC state: generated program does not terminate"
        return report

    # 2. operational-vs-axiomatic soundness (Theorem 4.4)
    from repro.axiomatic.validity import check_validity

    for state in ra_states:
        validity = check_validity(state)
        if not validity.valid:
            report.divergence = "soundness"
            report.detail = (
                "RA-reachable state violates Definition 4.2: "
                + ", ".join(validity.violated)
            )
            return report

    # 2b. derived-order parity: compact vs definitional (DESIGN.md §11)
    if check_orders:
        from repro.c11.compact import derived_order_divergences

        checked = 0
        for state in ra_states:
            if getattr(state, "compact", None) is None:
                continue  # no compact form: nothing to cross-check
            checked += 1
            problems = derived_order_divergences(state)
            if problems:
                report.divergence = "orders"
                report.detail = (
                    "compact derived orders diverge from the definitional "
                    "closures: " + "; ".join(problems[:3])
                )
                return report
        if checked == 0 and ra_states:
            # No state carried the compact representation (REPRO_NO_COMPACT
            # set?): the oracle verified nothing, which must not read as a
            # green run — same vacuity discipline as the CLI campaign guard.
            report.inconclusive = True
            report.detail = (
                "orders oracle vacuous: no explored state carries the "
                "compact representation (is REPRO_NO_COMPACT set?)"
            )
            return report

    # 2c. lowering parity: the compiled step tables must replay the AST
    # walker's full InterpretedStep stream exactly (DESIGN.md §12)
    if check_lowering:
        for name in REFINEMENT_CHAIN:
            detail, vacuous = lowering_step_parity(
                case.program, case.init, models[name],
                max_events=max_events, max_configs=max_configs,
            )
            if detail is not None:
                report.divergence = "lowering"
                report.detail = f"{name}: {detail}"
                return report
            if vacuous:
                report.inconclusive = True
                report.detail = (
                    f"lowering oracle vacuous under {name}: program was "
                    "not lowered (aliasing fallback or REPRO_NO_LOWER "
                    "set?) or the pair cap was hit"
                )
                return report

    # 3. axiomatic equivalence on tiny footprints
    if axiomatic:
        n_variables = len(case.init)
        n = min(case.events_hint, AXIOMATIC_MAX_EVENTS)
        if 1 <= n and 1 <= n_variables <= AXIOMATIC_MAX_VARS:
            failure = _footprint_equivalence(n, n_variables)
            if failure:
                report.divergence = "axiomatic"
                report.detail = failure
                return report

    # 4. POR parity: the reduced search must be outcome-identical.
    # "optimal" replays "dpor" too — both tiers are diffed against the
    # full search (and hence transitively against each other); the
    # baseline runs under the default equivalence so a broken quotient
    # key cannot mask itself.
    if reduction != "none":
        tiers = [(reduction, equivalence)]
        if reduction == "optimal":
            tiers.insert(0, ("dpor", "shasha-snir"))
        for tier, tier_equivalence in tiers:
            label = f"reduction={tier}"
            if tier_equivalence != "shasha-snir":
                label += f" equivalence={tier_equivalence}"
            try:
                reduced = explore(
                    case.program, case.init, models["ra"](),
                    max_events=max_events, max_configs=max_configs,
                    reduction=tier, equivalence=tier_equivalence,
                )
            except Exception as exc:  # noqa: BLE001 — a crash IS a finding
                report.divergence = "crash"
                report.detail = (
                    f"ra exploration under {label} raised "
                    f"{type(exc).__name__}: {exc}"
                )
                return report
            report.configs += reduced.configs
            report.transitions += reduced.transitions
            report.key_hits += reduced.stats.key_hits
            report.key_misses += reduced.stats.key_misses
            report.time_orders += reduced.stats.time_orders
            report.time_expand += reduced.stats.time_expand
            report.time_model += reduced.stats.time_model
            report.expanded += reduced.stats.expanded
            report.pruned += reduced.stats.pruned
            report.sleep_hits += reduced.stats.sleep_hits
            report.races += reduced.stats.races
            report.revisits += reduced.stats.revisits
            if reduced.stats.peak_frontier > report.peak_frontier:
                report.peak_frontier = reduced.stats.peak_frontier
            if reduced.capped:
                # The reduced search hit the safety cap: its outcome set
                # is incomplete, so neither green nor a divergence
                # verdict would be honest.
                report.inconclusive = True
                report.detail = (
                    f"{label}: exploration hit the config cap; no verdict"
                )
                return report
            reduced_outcomes = _outcome_set(reduced.terminal)
            if reduced_outcomes != report.outcomes["ra"]:
                missing = report.outcomes["ra"] - reduced_outcomes
                extra = reduced_outcomes - report.outcomes["ra"]
                witness = _format_outcome(sorted(missing or extra)[0])
                report.divergence = "por-parity"
                report.detail = (
                    f"{label}: outcome {witness} "
                    f"{'lost' if missing else 'invented'} by the reduced "
                    f"search ({len(missing)} missing, {len(extra)} extra)"
                )
                return report
            if reduced.truncated != ra_full.truncated:
                report.divergence = "por-parity"
                report.detail = (
                    f"{label}: truncation flag diverged "
                    f"({reduced.truncated} vs {ra_full.truncated})"
                )
                return report
            if reduced.configs > ra_full.configs:
                report.divergence = "por-parity"
                report.detail = (
                    f"{label}: visited {reduced.configs} distinct "
                    f"configurations, more than the full search's "
                    f"{ra_full.configs}"
                )
                return report

    # 5. shard parity: the hash-partitioned search must be *exactly*
    # identical to the single-process one — same outcome set, same
    # truncation flag, and (unlike reductions, whose counts may only
    # shrink) the same visited-configuration count, since sharding
    # partitions the very same search rather than pruning it
    # (DESIGN.md §15).  Always the in-process superstep schedule —
    # deterministic and fork-free whether the oracle runs in the parent
    # (jobs=1) or inside a daemonic pool worker; the process-mode test
    # matrix covers the wire format separately.
    if check_shards:
        label = "shards=3"
        try:
            sharded = explore(
                case.program, case.init, models["ra"](),
                max_events=max_events, max_configs=max_configs,
                shards=3, shard_processes=False,
            )
        except Exception as exc:  # noqa: BLE001 — a crash IS a finding
            report.divergence = "crash"
            report.detail = (
                f"ra exploration under {label} raised "
                f"{type(exc).__name__}: {exc}"
            )
            return report
        report.configs += sharded.configs
        report.transitions += sharded.transitions
        report.key_hits += sharded.stats.key_hits
        report.key_misses += sharded.stats.key_misses
        report.time_expand += sharded.stats.time_expand
        report.time_model += sharded.stats.time_model
        report.expanded += sharded.stats.expanded
        if sharded.stats.peak_frontier > report.peak_frontier:
            report.peak_frontier = sharded.stats.peak_frontier
        if sharded.capped:
            # Per-shard caps fire at ceil(max_configs/shards), so a
            # capped sharded run explored a *different* prefix than the
            # full one: no verdict is possible, never green.
            report.inconclusive = True
            report.detail = (
                f"{label}: exploration hit the config cap; no verdict"
            )
            return report
        sharded_outcomes = _outcome_set(sharded.terminal)
        if sharded_outcomes != report.outcomes["ra"]:
            missing = report.outcomes["ra"] - sharded_outcomes
            extra = sharded_outcomes - report.outcomes["ra"]
            witness = _format_outcome(sorted(missing or extra)[0])
            report.divergence = "shard-parity"
            report.detail = (
                f"{label}: outcome {witness} "
                f"{'lost' if missing else 'invented'} by the sharded "
                f"search ({len(missing)} missing, {len(extra)} extra)"
            )
            return report
        if sharded.truncated != ra_full.truncated:
            report.divergence = "shard-parity"
            report.detail = (
                f"{label}: truncation flag diverged "
                f"({sharded.truncated} vs {ra_full.truncated})"
            )
            return report
        if sharded.configs != ra_full.configs:
            report.divergence = "shard-parity"
            report.detail = (
                f"{label}: visited {sharded.configs} distinct "
                f"configurations vs the full search's {ra_full.configs} "
                "(sharding must partition, not prune)"
            )
            return report

    # 6. fault parity: injected faults must not change what the search
    # computes (DESIGN.md §16).  Leg (a) interrupts the RA exploration
    # after half its configurations and resumes from the checkpoint the
    # interrupt left behind; the stitched run must be exactly outcome-
    # and count-identical to the clean one.  Leg (b) dooms the first
    # visited-set spill write to a synthetic ENOSPC; the store must
    # roll back to memory without losing a key.  Both legs run
    # in-process and fork-free, so the oracle is daemonic-pool safe.
    if check_faults:
        import os
        import shutil
        import tempfile

        from repro.faults import (
            FaultInterrupt,
            FaultPlan,
            clear_plan,
            set_plan,
        )

        def _fault_diff(label: str, rerun) -> Optional[str]:
            rerun_outcomes = _outcome_set(rerun.terminal)
            if rerun_outcomes != report.outcomes["ra"]:
                missing = report.outcomes["ra"] - rerun_outcomes
                extra = rerun_outcomes - report.outcomes["ra"]
                witness = _format_outcome(sorted(missing or extra)[0])
                return (
                    f"{label}: outcome {witness} "
                    f"{'lost' if missing else 'invented'} after recovery "
                    f"({len(missing)} missing, {len(extra)} extra)"
                )
            if rerun.truncated != ra_full.truncated:
                return (
                    f"{label}: truncation flag diverged "
                    f"({rerun.truncated} vs {ra_full.truncated})"
                )
            if rerun.configs != ra_full.configs:
                return (
                    f"{label}: visited {rerun.configs} distinct "
                    f"configurations vs the clean search's "
                    f"{ra_full.configs} (recovery must lose nothing)"
                )
            return None

        workdir = tempfile.mkdtemp(prefix="repro-fault-oracle-")
        try:
            # (a) interrupt mid-run, resume from the checkpoint
            label = "fault-parity(interrupt+resume)"
            half = max(1, ra_full.configs // 2)
            ckpt = os.path.join(workdir, "case.ckpt")
            try:
                set_plan(FaultPlan(f"interrupt:configs={half}"))
                try:
                    resumed = explore(
                        case.program, case.init, models["ra"](),
                        max_events=max_events, max_configs=max_configs,
                        checkpoint=ckpt,
                        checkpoint_every=max(1, half // 2),
                    )
                except FaultInterrupt as exc:
                    clear_plan()
                    if exc.checkpoint is not None:
                        resumed = explore(
                            case.program, case.init, models["ra"](),
                            max_events=max_events, max_configs=max_configs,
                            resume=exc.checkpoint,
                        )
                    else:
                        # interrupted before the first snapshot landed:
                        # recovery degenerates to a fresh run
                        resumed = explore(
                            case.program, case.init, models["ra"](),
                            max_events=max_events, max_configs=max_configs,
                        )
            except Exception as exc:  # noqa: BLE001 — a crash IS a finding
                report.divergence = "crash"
                report.detail = f"{label} raised {type(exc).__name__}: {exc}"
                return report
            finally:
                clear_plan()
            report.configs += resumed.configs
            report.transitions += resumed.transitions
            if resumed.capped:
                report.inconclusive = True
                report.detail = (
                    f"{label}: exploration hit the config cap; no verdict"
                )
                return report
            detail = _fault_diff(label, resumed)
            if detail is not None:
                report.divergence = "fault-parity"
                report.detail = detail
                return report

            # (b) ENOSPC on the first visited-set spill write
            label = "fault-parity(enospc)"
            spill_dir = os.path.join(workdir, "spill")
            os.makedirs(spill_dir, exist_ok=True)
            try:
                set_plan(FaultPlan("enospc:spill=1"))
                spilled = explore(
                    case.program, case.init, models["ra"](),
                    max_events=max_events, max_configs=max_configs,
                    spill_dir=spill_dir, spill_max_entries=1,
                )
            except Exception as exc:  # noqa: BLE001 — a crash IS a finding
                report.divergence = "crash"
                report.detail = f"{label} raised {type(exc).__name__}: {exc}"
                return report
            finally:
                clear_plan()
            report.configs += spilled.configs
            report.transitions += spilled.transitions
            if spilled.capped:
                report.inconclusive = True
                report.detail = (
                    f"{label}: exploration hit the config cap; no verdict"
                )
                return report
            detail = _fault_diff(label, spilled)
            if (
                detail is None
                and ra_full.configs > 1
                and spilled.stats.spill_failures < 1
            ):
                detail = (
                    f"{label}: the doomed spill write never failed "
                    "(spill_failures=0) — the fault was not exercised"
                )
            if detail is not None:
                report.divergence = "fault-parity"
                report.detail = detail
                return report
        finally:
            shutil.rmtree(workdir, ignore_errors=True)

    return report


__all__ = [
    "AXIOMATIC_MAX_EVENTS",
    "AXIOMATIC_MAX_VARS",
    "DEFAULT_MAX_CONFIGS",
    "ORACLE_MODELS",
    "OracleReport",
    "REFINEMENT_CHAIN",
    "check_program",
    "lowering_step_parity",
]
