"""Persistence and replay of fuzz-discovered divergences.

Every divergence a campaign finds is written under ``tests/fuzz_corpus/``
as an ordinary ``.litmus`` file with a provenance comment header; the
pytest suite (``tests/test_fuzz_corpus.py``) globs the directory and
re-runs the oracles on every entry, so a once-found divergence is pinned
forever as a regression test.  Entries are plain text on purpose: they
can be replayed standalone with ``python -m repro run FILE`` or edited
by hand like any other litmus test.
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple

from repro.lang.parser import ParsedLitmus, parse_litmus

from repro.fuzz.generator import GeneratedCase, program_event_bound
from repro.fuzz.oracles import OracleReport, check_program
from repro.fuzz.runner import DivergenceRecord

#: where campaigns persist reproducers, relative to the repo root
DEFAULT_CORPUS_DIR = os.path.join("tests", "fuzz_corpus")

#: loop iterations assumed when bounding replayed (hand-editable) entries
REPLAY_LOOP_ITERS = 4


def write_corpus_entry(directory: str, record: DivergenceRecord) -> str:
    """Persist one divergence as ``<name>.litmus``; returns the path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{record.name}.litmus")
    header = [
        "# repro-fuzz reproducer (auto-generated; replayed by "
        "tests/test_fuzz_corpus.py)",
        f"# kind: {record.kind}",
        f"# seed: {record.seed}  index: {record.index}  "
        f"profile: {record.profile}",
        f"# detail: {record.detail}",
    ]
    if record.history:
        header.append(f"# shrink: {'; '.join(record.history)}")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(header) + "\n" + record.shrunk)
    return path


def save_campaign(directory: str, records: List[DivergenceRecord]) -> List[str]:
    """Persist every record; returns the paths written."""
    return [write_corpus_entry(directory, record) for record in records]


def load_corpus(directory: str = DEFAULT_CORPUS_DIR) -> List[Tuple[str, ParsedLitmus]]:
    """Parse every ``.litmus`` entry in ``directory`` (sorted by name)."""
    if not os.path.isdir(directory):
        return []
    entries = []
    for filename in sorted(os.listdir(directory)):
        if not filename.endswith(".litmus"):
            continue
        path = os.path.join(directory, filename)
        with open(path, "r", encoding="utf-8") as handle:
            entries.append((path, parse_litmus(handle.read())))
    return entries


def case_from_parsed(parsed: ParsedLitmus) -> GeneratedCase:
    """Lift a parsed corpus entry back into an oracle-runnable case."""
    return GeneratedCase(
        name=parsed.name,
        program=parsed.program,
        init=dict(parsed.init),
        events_hint=program_event_bound(
            parsed.program, loop_iters=REPLAY_LOOP_ITERS
        ),
        profile="corpus",
    )


def replay_entry(
    parsed: ParsedLitmus, axiomatic: bool = False,
    max_configs: Optional[int] = None,
) -> OracleReport:
    """Re-run the differential oracles on a corpus entry.

    The axiomatic footprint oracle is off by default — replay should be
    fast, and the footprint spaces are independent of the entry anyway.
    """
    kwargs = {} if max_configs is None else {"max_configs": max_configs}
    return check_program(
        case_from_parsed(parsed), axiomatic=axiomatic, **kwargs
    )


__all__ = [
    "DEFAULT_CORPUS_DIR",
    "case_from_parsed",
    "load_corpus",
    "replay_entry",
    "save_campaign",
    "write_corpus_entry",
]
