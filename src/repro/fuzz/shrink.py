"""Delta-debugging: minimise a program that fails an oracle.

Classic greedy ddmin over the structure of a :class:`GeneratedCase`:
candidate simplifications are tried coarsest-first, any candidate on
which the failure predicate still holds is adopted, and the loop
restarts until a fixpoint (no candidate is accepted) or the attempt
budget runs out.  Transformations, in order:

1. **drop a thread** (the biggest single reduction);
2. **drop a top-level statement** of some thread;
3. **structural unwrapping** — replace an ``if`` by one branch, a
   ``while`` by its body or nothing, a labelled statement by its body;
4. **weaken access modes** — releasing store → relaxed store, acquiring
   load → relaxed load, ``swap`` → plain store of the same value;
5. **simplify expressions** — replace a binop by one operand, a
   negation by its operand, a load by ``0``;
6. **shrink the init block** — drop entries for variables the program
   no longer mentions, zero non-zero initial values.

Every candidate is a *well-formed* case (init still covers every used
variable), so the failure predicate can always run the full oracle
stack.  Because each accepted step strictly reduces a finite measure
(threads + nodes + non-zero inits), termination needs no budget — the
budget only caps worst-case oracle invocations.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.lang.program import Program
from repro.lang.syntax import (
    Assign,
    BinOp,
    Com,
    Exp,
    Faa,
    If,
    Labeled,
    Lit,
    Load,
    Not,
    Seq,
    Skip,
    Swap,
    While,
)

from repro.fuzz.generator import (
    GeneratedCase,
    _flatten,
    _rebuild,
    program_event_bound,
    program_vars,
)


def _exp_variants(exp: Exp) -> Iterator[Exp]:
    """Strictly simpler expressions (fewer nodes or weaker modes)."""
    if isinstance(exp, Lit):
        return
    if isinstance(exp, Load):
        if exp.acquire:
            yield Load(exp.var, acquire=False)
        yield Lit(0)
        return
    if isinstance(exp, Not):
        yield exp.operand
        for v in _exp_variants(exp.operand):
            yield Not(v)
        return
    if isinstance(exp, BinOp):
        yield exp.left
        yield exp.right
        for v in _exp_variants(exp.left):
            yield BinOp(exp.op, v, exp.right)
        for v in _exp_variants(exp.right):
            yield BinOp(exp.op, exp.left, v)
        return
    raise TypeError(f"not an expression: {exp!r}")


def _com_variants(com: Com) -> Iterator[Com]:
    """Strictly simpler commands.

    Loop guards are never replaced by literals (a constant-true guard
    would make the program non-terminating); a loop simplifies to its
    body, to ``skip``, or recursively within its body.
    """
    if isinstance(com, Skip):
        return
    if isinstance(com, Assign):
        if com.release:
            yield Assign(com.var, com.exp, release=False)
        for v in _exp_variants(com.exp):
            yield Assign(com.var, v, release=com.release)
        return
    if isinstance(com, Swap):
        if com.reg is not None:
            yield Swap(com.var, com.value)  # drop the result register
        yield Assign(com.var, Lit(com.value))
        return
    if isinstance(com, Faa):
        if com.reg is not None:
            yield Faa(com.var, com.add)  # drop the result register
        yield Swap(com.var, com.add, com.reg)  # constant-write weakening
        return
    if isinstance(com, Seq):
        yield com.first
        yield com.second
        for v in _com_variants(com.first):
            yield Seq(v, com.second)
        for v in _com_variants(com.second):
            yield Seq(com.first, v)
        return
    if isinstance(com, If):
        yield com.then_branch
        yield com.else_branch
        for v in _exp_variants(com.guard):
            yield If(v, com.then_branch, com.else_branch)
        for v in _com_variants(com.then_branch):
            yield If(com.guard, v, com.else_branch)
        for v in _com_variants(com.else_branch):
            yield If(com.guard, com.then_branch, v)
        return
    if isinstance(com, While):
        yield com.body
        yield Skip()
        for v in _com_variants(com.body):
            yield While(com.guard, v, com.current)
        return
    if isinstance(com, Labeled):
        yield com.body
        for v in _com_variants(com.body):
            yield Labeled(com.pc, v)
        return
    raise TypeError(f"not a command: {com!r}")


def _loop_iters_for(case: GeneratedCase) -> int:
    """Loop bound for re-estimating a candidate's event hint.

    The case's own profile knows how many iterations its counter loops
    can run; unknown profiles (corpus replays, hand-built cases) get a
    generous default.  Underestimating here would make every candidate
    exploration truncate — and the shrinker silently stall."""
    from repro.fuzz.generator import PROFILES

    config = PROFILES.get(case.profile)
    return max(4, config.max_loop_iters if config is not None else 4)


def _with_program(
    case: GeneratedCase, program: Program, note: str
) -> GeneratedCase:
    """A copy of ``case`` running ``program``, with init re-narrowed."""
    used = program_vars(program)
    init = {x: v for x, v in case.init.items() if x in used}
    if not init:
        init = {next(iter(sorted(case.init))): 0}
    return dataclasses.replace(
        case,
        program=program,
        init=init,
        events_hint=program_event_bound(
            program, loop_iters=_loop_iters_for(case)
        ),
        history=case.history + (note,),
    )


def _candidates(case: GeneratedCase) -> Iterator[GeneratedCase]:
    """All one-step simplifications of ``case``, coarsest first.

    Deduplicated: distinct transformations can coincide (dropping a
    two-statement thread's second statement ≡ unwrapping its ``Seq`` to
    the first), and each duplicate would cost a full three-model oracle
    run in the caller's predicate.
    """
    threads: List[Tuple[int, Com]] = list(case.program.threads)
    seen = set()

    def fresh(candidate: GeneratedCase) -> bool:
        key = (candidate.program, tuple(sorted(candidate.init.items())))
        if key in seen:
            return False
        seen.add(key)
        return True

    # 1. drop a whole thread
    if len(threads) > 1:
        for i, (tid, _) in enumerate(threads):
            remaining = dict(threads[:i] + threads[i + 1:])
            candidate = _with_program(
                case, Program.of(remaining), f"drop thread {tid}"
            )
            if fresh(candidate):
                yield candidate

    # 2. drop one top-level statement
    for tid, com in threads:
        parts = _flatten(com)
        if len(parts) == 1 and isinstance(parts[0], Skip):
            continue
        for i in range(len(parts)):
            kept = parts[:i] + parts[i + 1:]
            program = case.program.update(tid, _rebuild(kept))
            candidate = _with_program(
                case, program, f"drop statement {i} of thread {tid}"
            )
            if fresh(candidate):
                yield candidate

    # 3–5. structural / mode / expression simplification
    for tid, com in threads:
        for variant in _com_variants(com):
            program = case.program.update(tid, variant)
            candidate = _with_program(case, program, f"simplify thread {tid}")
            if fresh(candidate):
                yield candidate

    # 6. zero a non-zero init value
    for x, v in sorted(case.init.items()):
        if v != 0:
            init = dict(case.init)
            init[x] = 0
            candidate = dataclasses.replace(
                case, init=init, history=case.history + (f"zero init {x}",)
            )
            if fresh(candidate):
                yield candidate


def shrink_case(
    case: GeneratedCase,
    failing: Callable[[GeneratedCase], bool],
    max_attempts: int = 600,
) -> Tuple[GeneratedCase, int]:
    """Greedily minimise ``case`` while ``failing`` stays true.

    Returns ``(minimal case, predicate evaluations spent)``.  ``case``
    itself is assumed failing; the result is a local minimum — no single
    catalogued simplification of it still fails (unless the attempt
    budget ran out first).
    """
    attempts = 0
    current = case
    progress = True
    while progress and attempts < max_attempts:
        progress = False
        for candidate in _candidates(current):
            if attempts >= max_attempts:
                break
            attempts += 1
            if failing(candidate):
                current = candidate
                progress = True
                break
    if current is not case:
        current = dataclasses.replace(current, name=case.name + "_min")
    return current, attempts


__all__ = ["shrink_case"]
