"""Differential litmus fuzzing (DESIGN.md §6).

The hand-written litmus suite checks the semantics on a fixed corpus;
this package turns the exploration engine into a *scenario factory*:

* :mod:`repro.fuzz.generator` — a seeded random program generator
  emitting well-formed :mod:`repro.lang` ASTs (size/shape knobs via
  :class:`~repro.fuzz.generator.GeneratorConfig`);
* :mod:`repro.fuzz.oracles` — differential oracles asserting the
  refinement chain ``outcomes(SC) ⊆ outcomes(SRA) ⊆ outcomes(RA)``,
  per-state operational-vs-axiomatic soundness, and the E1 equivalence
  on small footprint spaces;
* :mod:`repro.fuzz.shrink` — a delta-debugging shrinker minimising any
  disagreeing program to a reproducer;
* :mod:`repro.fuzz.runner` — the campaign driver behind
  ``python -m repro fuzz``, fanned out over
  :class:`~repro.engine.parallel.ParallelRunner` workers;
* :mod:`repro.fuzz.corpus` — persistence and replay of discovered
  divergences under ``tests/fuzz_corpus/``.
"""

from __future__ import annotations

from repro.fuzz.generator import (
    GeneratedCase,
    GeneratorConfig,
    PROFILES,
    estimate_event_bound,
    generate_case,
)
from repro.fuzz.oracles import ORACLE_MODELS, OracleReport, check_program
from repro.fuzz.runner import CampaignReport, DivergenceRecord, FuzzJob, run_campaign
from repro.fuzz.shrink import shrink_case

__all__ = [
    "CampaignReport",
    "DivergenceRecord",
    "FuzzJob",
    "GeneratedCase",
    "GeneratorConfig",
    "ORACLE_MODELS",
    "OracleReport",
    "PROFILES",
    "check_program",
    "estimate_event_bound",
    "generate_case",
    "run_campaign",
    "shrink_case",
]
