"""The fuzz campaign driver behind ``python -m repro fuzz``.

Campaigns fan out over the engine's existing
:class:`~repro.engine.parallel.ParallelRunner`: a :class:`FuzzJob` is a
picklable *recipe* — campaign seed, index range, profile name — not a
program; each worker regenerates its cases deterministically from the
seed (the same ship-names-not-objects discipline as the litmus suite
jobs).  Divergences found in a worker are shrunk in-worker and shipped
back as JSON in the flat result's ``detail`` field, so the parent
process never needs to unpickle an AST.
"""

from __future__ import annotations

import dataclasses
import json
import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.fuzz.generator import PROFILES, GeneratedCase, generate_case
from repro.fuzz.oracles import DEFAULT_MAX_CONFIGS, OracleReport, check_program
from repro.fuzz.shrink import shrink_case


@dataclass(frozen=True)
class FuzzJob:
    """One worker-sized slice of a campaign (picklable by construction)."""

    kind: str = "fuzz"
    seed: int = 0
    start: int = 0
    count: int = 1
    profile: str = "default"
    axiomatic: bool = True
    shrink: bool = True
    strategy: str = "bfs"  # unused; parity with SuiteJob's interface
    max_configs: Optional[int] = DEFAULT_MAX_CONFIGS
    #: reduction the POR-parity oracle checks ("none" disables it;
    #: "optimal" also replays "dpor" — DESIGN.md §13)
    reduction: str = "dpor"
    #: state equivalence keying the reduced runs' visited stores
    equivalence: str = "shasha-snir"
    #: cross-check compact vs definitional derived orders per state
    #: (the "orders" oracle, DESIGN.md §11)
    check_orders: bool = False
    #: replay lowered vs legacy interpretation step-for-step
    #: (the "lowering" oracle, DESIGN.md §12)
    check_lowering: bool = False
    #: re-explore under shards=3 and require exact parity with the
    #: single-process search (the "shard-parity" oracle, DESIGN.md §15)
    check_shards: bool = False
    #: interrupt the search mid-run, resume from the checkpoint, and
    #: require byte-identical results; also fail one spill write and
    #: require recovery (the "fault-parity" oracle, DESIGN.md §16)
    check_faults: bool = False

    @property
    def label(self) -> str:
        last = self.start + self.count - 1
        return f"fuzz[{self.seed}] #{self.start}..{last} ({self.profile})"


@dataclass
class DivergenceRecord:
    """One divergence, as found and as shrunk — JSON-serialisable."""

    name: str
    kind: str
    detail: str
    seed: int
    index: int
    profile: str
    original: str  # litmus text as generated
    shrunk: str  # litmus text after delta debugging
    shrunk_threads: int
    shrink_attempts: int
    history: List[str] = field(default_factory=list)

    def to_json(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, data: dict) -> "DivergenceRecord":
        return cls(**data)


def _check(job: FuzzJob, case: GeneratedCase) -> OracleReport:
    return check_program(
        case, axiomatic=job.axiomatic, max_configs=job.max_configs,
        reduction=job.reduction, equivalence=job.equivalence,
        check_orders=job.check_orders, check_lowering=job.check_lowering,
        check_shards=job.check_shards, check_faults=job.check_faults,
    )


def _diverges_like(job: FuzzJob, kind: str) -> Callable[[GeneratedCase], bool]:
    """The shrinker predicate: candidate still fails the *same* oracle."""

    def failing(candidate: GeneratedCase) -> bool:
        report = _check(job, candidate)
        return report.divergence == kind

    return failing


def run_fuzz_job(job: FuzzJob):
    """Worker entry point: generate, check and shrink one index range.

    Returns the engine's flat :class:`~repro.engine.parallel.SuiteJobResult`
    with divergence records serialised into ``detail``.
    """
    from repro.engine.parallel import SuiteJobResult
    from repro.obs.trace import tracer

    tr = tracer()
    records: List[DivergenceRecord] = []
    inconclusive = 0
    configs = transitions = terminal = key_hits = key_misses = 0
    expanded = pruned = sleep_hits = races = revisits = 0
    peak_frontier = 0
    time_orders = time_expand = time_model = 0.0
    for index in range(job.start, job.start + job.count):
        case = generate_case(job.seed, index, PROFILES[job.profile])
        report = _check(job, case)
        configs += report.configs
        transitions += report.transitions
        terminal += report.terminal
        key_hits += report.key_hits
        key_misses += report.key_misses
        time_orders += report.time_orders
        time_expand += report.time_expand
        time_model += report.time_model
        expanded += report.expanded
        pruned += report.pruned
        sleep_hits += report.sleep_hits
        races += report.races
        revisits += report.revisits
        if report.peak_frontier > peak_frontier:
            peak_frontier = report.peak_frontier
        if tr is not None:
            tr.emit(
                "case", seed=job.seed, index=index,
                kind=(
                    "inconclusive" if report.inconclusive
                    else (report.divergence or "ok")
                ),
            )
        if report.inconclusive:
            inconclusive += 1
            continue
        if report.ok:
            continue
        shrunk, attempts = case, 0
        # An "axiomatic" divergence is a property of the clamped
        # footprint *space*, not of this program — shrinking would grind
        # through oracle runs only to minimise towards an unrelated
        # trivial program, so the case is reported as generated.
        if job.shrink and report.divergence != "axiomatic":
            shrunk, attempts = shrink_case(
                case, _diverges_like(job, report.divergence)
            )
        records.append(
            DivergenceRecord(
                name=shrunk.name,
                kind=report.divergence,
                detail=report.detail,
                seed=job.seed,
                index=index,
                profile=job.profile,
                original=case.to_litmus(),
                shrunk=shrunk.to_litmus(),
                shrunk_threads=shrunk.n_threads,
                shrink_attempts=attempts,
                history=list(shrunk.history),
            )
        )
    payload = {
        "inconclusive": inconclusive,
        "divergences": [r.to_json() for r in records],
    }
    return SuiteJobResult(
        job=job,
        observed=bool(records),
        expected=False,
        pinned=True,
        configs=configs,
        transitions=transitions,
        terminal=terminal,
        truncated=bool(inconclusive),
        wall_time=0.0,  # overwritten by run_suite_job with whole-job time
        key_hits=key_hits,
        key_misses=key_misses,
        detail=json.dumps(payload),
        expanded=expanded,
        pruned=pruned,
        sleep_hits=sleep_hits,
        races=races,
        revisits=revisits,
        time_orders=time_orders,
        time_expand=time_expand,
        time_model=time_model,
        peak_frontier=peak_frontier,
    )


@dataclass
class CampaignReport:
    """Everything one fuzz campaign learned."""

    seed: int
    iters: int
    profile: str
    divergences: List[DivergenceRecord] = field(default_factory=list)
    inconclusive: int = 0
    configs: int = 0
    transitions: int = 0
    wall_time: float = 0.0
    key_hits: int = 0
    key_misses: int = 0
    #: summed POR-parity reduction counters (see DESIGN.md §9)
    expanded: int = 0
    pruned: int = 0
    sleep_hits: int = 0
    races: int = 0
    revisits: int = 0
    #: campaign-wide frontier high-water mark (max over jobs, not sum)
    peak_frontier: int = 0

    @property
    def ok(self) -> bool:
        return not self.divergences

    def summary(self) -> str:
        verdict = (
            "no divergences"
            if self.ok
            else f"{len(self.divergences)} DIVERGENCE(S)"
        )
        keyed = self.key_hits + self.key_misses
        rate = (100.0 * self.key_hits / keyed) if keyed else 0.0
        line = (
            f"fuzz seed={self.seed} iters={self.iters} "
            f"profile={self.profile}: {verdict}, "
            f"{self.inconclusive} inconclusive; {self.configs} configs, "
            f"{self.transitions} transitions, key-cache {rate:.0f}%, "
            f"worker time {self.wall_time:.2f}s"
        )
        candidates = self.expanded + self.pruned
        if candidates:
            line += (
                f"; por-parity pruned {self.pruned}/{candidates} "
                f"({100.0 * self.pruned / candidates:.0f}%), "
                f"{self.races} races"
            )
        return line


def fuzz_jobs(
    seed: int,
    iters: int,
    profile: str = "default",
    jobs: int = 1,
    axiomatic: bool = True,
    shrink: bool = True,
    max_configs: Optional[int] = DEFAULT_MAX_CONFIGS,
    reduction: str = "dpor",
    equivalence: str = "shasha-snir",
    check_orders: bool = False,
    check_lowering: bool = False,
    check_shards: bool = False,
    check_faults: bool = False,
) -> List[FuzzJob]:
    """Slice ``iters`` cases into worker-sized chunks.

    Several chunks per worker keep the pool busy when case costs vary;
    chunks stay coarse enough that per-job process overhead (registry
    imports) is amortised.
    """
    if profile not in PROFILES:
        raise ValueError(
            f"unknown profile {profile!r}; choose from {sorted(PROFILES)}"
        )
    if iters <= 0:
        return []
    chunk = max(1, math.ceil(iters / max(1, jobs * 4)))
    return [
        FuzzJob(
            seed=seed,
            start=start,
            count=min(chunk, iters - start),
            profile=profile,
            axiomatic=axiomatic,
            shrink=shrink,
            max_configs=max_configs,
            reduction=reduction,
            equivalence=equivalence,
            check_orders=check_orders,
            check_lowering=check_lowering,
            check_shards=check_shards,
            check_faults=check_faults,
        )
        for start in range(0, iters, chunk)
    ]


def run_campaign(
    seed: int,
    iters: int,
    profile: str = "default",
    jobs: int = 1,
    axiomatic: bool = True,
    shrink: bool = True,
    max_configs: Optional[int] = DEFAULT_MAX_CONFIGS,
    reduction: str = "dpor",
    equivalence: str = "shasha-snir",
    check_orders: bool = False,
    check_lowering: bool = False,
    check_shards: bool = False,
    check_faults: bool = False,
    progress: Optional[Callable] = None,
) -> CampaignReport:
    """Run a whole campaign through the parallel runner.

    ``progress`` is forwarded to :meth:`ParallelRunner.run`: called in
    the parent with each job's flat result as it completes (the CLI's
    ``--progress`` heartbeat).
    """
    from repro.engine.parallel import ParallelRunner

    work = fuzz_jobs(
        seed, iters, profile=profile, jobs=jobs, axiomatic=axiomatic,
        shrink=shrink, max_configs=max_configs, reduction=reduction,
        equivalence=equivalence, check_orders=check_orders,
        check_lowering=check_lowering, check_shards=check_shards,
        check_faults=check_faults,
    )
    results = ParallelRunner(jobs=jobs).run(work, progress=progress)
    report = CampaignReport(seed=seed, iters=iters, profile=profile)
    seen_spaces = set()
    for result in results:
        if result.failed:
            # The worker raised instead of reporting (its ``detail`` is
            # a traceback, not a JSON payload): surface the crash as a
            # campaign divergence so the run can never read as green.
            report.divergences.append(
                DivergenceRecord(
                    name=result.job.label,
                    kind="worker-crash",
                    detail=result.detail,
                    seed=result.job.seed,
                    index=result.job.start,
                    profile=result.job.profile,
                    original="",
                    shrunk="",
                    shrunk_threads=0,
                    shrink_attempts=0,
                )
            )
            continue
        payload = json.loads(result.detail)
        report.inconclusive += payload["inconclusive"]
        for data in payload["divergences"]:
            record = DivergenceRecord.from_json(data)
            # space-level defects are reported once per campaign, not
            # once per program that happens to share the footprint
            if record.kind == "axiomatic":
                if record.detail in seen_spaces:
                    continue
                seen_spaces.add(record.detail)
            report.divergences.append(record)
        report.configs += result.configs
        report.transitions += result.transitions
        report.wall_time += result.wall_time
        report.key_hits += result.key_hits
        report.key_misses += result.key_misses
        report.expanded += result.expanded
        report.pruned += result.pruned
        report.sleep_hits += result.sleep_hits
        report.races += result.races
        report.revisits += result.revisits
        if result.peak_frontier > report.peak_frontier:
            report.peak_frontier = result.peak_frontier
    report.divergences.sort(key=lambda r: r.index)
    return report


__all__ = [
    "CampaignReport",
    "DivergenceRecord",
    "FuzzJob",
    "fuzz_jobs",
    "run_campaign",
    "run_fuzz_job",
]
