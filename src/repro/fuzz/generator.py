"""Seeded random generation of well-formed command-language programs.

The generator draws from the full grammar of :mod:`repro.lang.syntax`:
relaxed and releasing stores, relaxed and acquiring loads, the RMW
family (``swap``, value-returning ``r := x.swap(n)``, ``faa`` with and
without result capture — DESIGN.md §10), ``if``/``else``, bounded
``while`` loops and program-location labels.  (The language has no
fence construct — release/acquire annotations and the RA RMWs are its
only synchronisation — so the generator covers every access mode the
grammar admits.)

Two properties are enforced by construction:

* **Termination.**  Every ``while`` loop is a counter idiom
  ``while (c < k) { ...; c := c + 1 }`` over a *reserved* counter
  variable written by no other statement, so each thread performs a
  bounded number of actions under every memory model (each thread reads
  its own writes coherently, so the counter strictly increases).
* **Bounded footprint.**  :func:`estimate_event_bound` computes a static
  upper bound on the program events any run can append; generated cases
  are trimmed until the bound fits ``GeneratorConfig.event_budget``, and
  the bound is stored on the case (``events_hint``) so oracles can pass
  a non-truncating ``max_events`` to the engine.

Generation is deterministic: ``generate_case(seed, index)`` depends only
on its arguments and the config, never on global state — which is what
lets :class:`~repro.fuzz.runner.FuzzJob` ship *(seed, index)* pairs to
worker processes instead of unpicklable ASTs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.lang.actions import Value, Var
from repro.lang.program import Program
from repro.lang.syntax import (
    Assign,
    BinOp,
    Com,
    Exp,
    Faa,
    If,
    Labeled,
    Lit,
    Load,
    Not,
    Seq,
    Skip,
    Swap,
    While,
)
from repro.lang.unparse import unparse_litmus


@dataclass(frozen=True)
class GeneratorConfig:
    """Size and shape knobs for random program generation."""

    name: str = "default"
    min_threads: int = 2
    max_threads: int = 3
    #: top-level statements per thread (before budget trimming)
    max_statements: int = 4
    #: nesting depth for if/while
    max_depth: int = 2
    variables: Tuple[Var, ...] = ("x", "y", "z")
    values: Tuple[Value, ...] = (0, 1, 2)
    #: static cap on the total program events of one case
    event_budget: int = 8
    max_loop_iters: int = 2
    max_exp_depth: int = 2
    #: statement-kind weights: store / swap / if / while / labeled / skip
    w_store: float = 0.62
    w_swap: float = 0.12
    w_if: float = 0.12
    w_while: float = 0.06
    w_label: float = 0.06
    w_skip: float = 0.02
    p_release: float = 0.3
    p_acquire: float = 0.3


#: Named presets for the CLI's ``--profile`` flag.
PROFILES: Dict[str, GeneratorConfig] = {
    "default": GeneratorConfig(),
    #: tiny programs — the axiomatic footprint oracle fires often
    "small": GeneratorConfig(
        name="small",
        max_threads=2,
        max_statements=3,
        max_depth=1,
        variables=("x", "y"),
        values=(0, 1),
        event_budget=5,
    ),
    #: up to four threads with short bodies — shrinker exercise ground
    "wide": GeneratorConfig(
        name="wide",
        min_threads=3,
        max_threads=4,
        max_statements=2,
        max_depth=1,
        event_budget=9,
    ),
}


@dataclass
class GeneratedCase:
    """One generated program plus everything needed to run and replay it."""

    name: str
    program: Program
    init: Dict[Var, Value]
    #: static upper bound on program events of any run (see
    #: :func:`estimate_event_bound`)
    events_hint: int = 0
    seed: int = 0
    index: int = 0
    profile: str = "default"
    #: transformations applied by the shrinker, for provenance
    history: Tuple[str, ...] = field(default_factory=tuple)

    @property
    def n_threads(self) -> int:
        return len(self.program.threads)

    def to_litmus(self, description: str = "") -> str:
        """Render the case as parser-accepted ``.litmus`` text."""
        return unparse_litmus(self.name, self.program, self.init,
                              description=description)


# ----------------------------------------------------------------------
# Static event bound
# ----------------------------------------------------------------------


def _exp_loads(exp: Exp) -> int:
    """Reads performed evaluating ``exp`` (one event per load)."""
    if isinstance(exp, Lit):
        return 0
    if isinstance(exp, Load):
        return 1
    if isinstance(exp, Not):
        return _exp_loads(exp.operand)
    if isinstance(exp, BinOp):
        return _exp_loads(exp.left) + _exp_loads(exp.right)
    raise TypeError(f"not an expression: {exp!r}")


def estimate_event_bound(com: Com, loop_iters: int = 4) -> int:
    """A static upper bound on the events one run of ``com`` appends.

    ``loop_iters`` bounds the assumed iterations of each loop; generated
    loops iterate at most ``GeneratorConfig.max_loop_iters`` times by
    construction, and corpus replays use a generous default.  The bound
    is per *run*, so ``if`` contributes the larger branch.
    """
    if isinstance(com, Skip):
        return 0
    if isinstance(com, Assign):
        return _exp_loads(com.exp) + 1
    if isinstance(com, (Swap, Faa)):
        # a value-returning RMW is two events: the update + the register store
        return 1 if com.reg is None else 2
    if isinstance(com, Seq):
        return (estimate_event_bound(com.first, loop_iters)
                + estimate_event_bound(com.second, loop_iters))
    if isinstance(com, If):
        return _exp_loads(com.guard) + max(
            estimate_event_bound(com.then_branch, loop_iters),
            estimate_event_bound(com.else_branch, loop_iters),
        )
    if isinstance(com, While):
        guard = _exp_loads(com.test)
        body = estimate_event_bound(com.body, loop_iters)
        return loop_iters * (guard + body) + guard
    if isinstance(com, Labeled):
        return estimate_event_bound(com.body, loop_iters)
    raise TypeError(f"not a command: {com!r}")


def program_event_bound(program: Program, loop_iters: int = 4) -> int:
    """The static event bound summed over all threads."""
    return sum(
        estimate_event_bound(com, loop_iters) for _, com in program.threads
    )


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------

#: expression operators the generator draws from (all round-trippable)
_EXP_OPS = ("add", "sub", "eq", "ne", "lt", "le", "and", "or")


class _Gen:
    """One generation run: a seeded RNG plus per-case bookkeeping."""

    def __init__(self, rng: random.Random, config: GeneratorConfig) -> None:
        self.rng = rng
        self.config = config
        self.counters: List[Var] = []
        self.next_label = 1

    def fresh_counter(self) -> Var:
        c = f"c{len(self.counters) + 1}"
        self.counters.append(c)
        return c

    def exp(self, depth: int, max_loads: int) -> Exp:
        """A random expression with at most ``max_loads`` variable reads."""
        rng, cfg = self.rng, self.config
        if depth <= 0 or rng.random() < 0.45:
            if max_loads > 0 and rng.random() < 0.7:
                return Load(
                    rng.choice(cfg.variables),
                    acquire=rng.random() < cfg.p_acquire,
                )
            return Lit(rng.choice(cfg.values))
        if rng.random() < 0.2:
            return Not(self.exp(depth - 1, max_loads))
        # split the load allowance between the operands
        left_loads = rng.randint(0, max_loads)
        left = self.exp(depth - 1, left_loads)
        right = self.exp(depth - 1, max_loads - _exp_loads(left))
        return BinOp(rng.choice(_EXP_OPS), left, right)

    def statement(self, depth: int) -> Com:
        rng, cfg = self.rng, self.config
        kinds = ["store", "swap", "skip"]
        weights = [cfg.w_store, cfg.w_swap, cfg.w_skip]
        if depth < cfg.max_depth:
            kinds += ["if", "while", "label"]
            weights += [cfg.w_if, cfg.w_while, cfg.w_label]
        kind = rng.choices(kinds, weights=weights, k=1)[0]

        if kind == "store":
            return Assign(
                rng.choice(cfg.variables),
                self.exp(cfg.max_exp_depth, max_loads=2),
                release=rng.random() < cfg.p_release,
            )
        if kind == "swap":
            # the RMW family (DESIGN.md §10): bare exchange half the
            # time, else a value-returning exchange or a fetch-and-add
            # (with/without result capture) so the computed-write and
            # register-store paths face every differential oracle
            var = rng.choice(cfg.variables)
            roll = rng.random()
            if roll < 0.5:
                return Swap(var, rng.choice(cfg.values))
            reg = rng.choice(cfg.variables)
            if roll < 0.75:
                return Swap(var, rng.choice(cfg.values), reg)
            return Faa(var, rng.choice(cfg.values),
                       reg if roll < 0.875 else None)
        if kind == "skip":
            return Skip()
        if kind == "if":
            guard = self.exp(1, max_loads=1)
            then_branch = self.block(depth + 1, rng.randint(1, 2))
            else_branch: Com = Skip()
            if rng.random() < 0.5:
                else_branch = self.block(depth + 1, 1)
            return If(guard, then_branch, else_branch)
        if kind == "while":
            counter = self.fresh_counter()
            # bias towards single-iteration loops: multi-iteration ones
            # rarely fit the event budget alongside other threads
            iters = 1 if rng.random() < 0.7 else rng.randint(
                1, cfg.max_loop_iters
            )
            guard = BinOp("lt", Load(counter), Lit(iters))
            step = Assign(counter, BinOp("add", Load(counter), Lit(1)))
            if rng.random() < 0.5:
                body: Com = Seq(self.statement(depth + 1), step)
            else:
                body = step
            return While(guard, body)
        # label: a fresh program-location label on a simple statement
        pc = self.next_label
        self.next_label += 1
        return Labeled(pc, self.statement(depth + 1))

    def block(self, depth: int, n_statements: int) -> Com:
        parts = [self.statement(depth) for _ in range(n_statements)]
        com = parts[-1]
        for p in reversed(parts[:-1]):
            com = Seq(p, com)
        return com

    def thread(self) -> Com:
        return self.block(0, self.rng.randint(1, self.config.max_statements))


def _flatten(com: Com) -> List[Com]:
    """Top-level statements of a right- or left-nested ``Seq`` chain."""
    if isinstance(com, Seq):
        return _flatten(com.first) + _flatten(com.second)
    return [com]


def _rebuild(parts: List[Com]) -> Com:
    if not parts:
        return Skip()
    com = parts[-1]
    for p in reversed(parts[:-1]):
        com = Seq(p, com)
    return com


def _used_vars(com: Com) -> frozenset:
    """Every shared variable read or written by ``com``."""
    if isinstance(com, Skip):
        return frozenset()
    if isinstance(com, Assign):
        return com.exp.free_vars() | {com.var}
    if isinstance(com, (Swap, Faa)):
        regs = frozenset() if com.reg is None else frozenset({com.reg})
        return frozenset({com.var}) | regs
    if isinstance(com, Seq):
        return _used_vars(com.first) | _used_vars(com.second)
    if isinstance(com, If):
        return (com.guard.free_vars() | _used_vars(com.then_branch)
                | _used_vars(com.else_branch))
    if isinstance(com, While):
        return com.test.free_vars() | _used_vars(com.body)
    if isinstance(com, Labeled):
        return _used_vars(com.body)
    raise TypeError(f"not a command: {com!r}")


def program_vars(program: Program) -> frozenset:
    return frozenset().union(
        *(_used_vars(com) for _, com in program.threads)
    ) if program.threads else frozenset()


def _case_seed(seed: int, index: int) -> int:
    """Mix (campaign seed, case index) into one RNG seed."""
    return seed * 1_000_003 + index


def generate_case(
    seed: int,
    index: int,
    config: Optional[GeneratorConfig] = None,
) -> GeneratedCase:
    """Deterministically generate case ``index`` of campaign ``seed``."""
    config = config if config is not None else PROFILES["default"]
    rng = random.Random(_case_seed(seed, index))
    gen = _Gen(rng, config)

    n_threads = rng.randint(config.min_threads, config.max_threads)
    threads = {tid: gen.thread() for tid in range(1, n_threads + 1)}

    # Trim top-level statements off the fattest thread until the static
    # event bound fits the budget (termination: each pass removes one
    # statement, and a thread reduced to nothing costs zero events).
    # Loop statements go last: they are the costliest construct, so a
    # blind pop would trim every loop out of the corpus.
    def bound_of(com: Com) -> int:
        return estimate_event_bound(com, loop_iters=config.max_loop_iters)

    def contains_loop(com: Com) -> bool:
        if isinstance(com, While):
            return True
        children = (
            getattr(com, a, None)
            for a in ("first", "second", "then_branch", "else_branch", "body")
        )
        return any(c is not None and contains_loop(c) for c in children)

    while sum(bound_of(c) for c in threads.values()) > config.event_budget:
        with_droppable = [
            tid for tid, com in threads.items()
            if any(not contains_loop(p) for p in _flatten(com)
                   if not isinstance(p, Skip))
        ]
        pool = with_droppable or list(threads)
        victim = max(pool, key=lambda t: bound_of(threads[t]))
        parts = _flatten(threads[victim])
        droppable = [
            i for i, p in enumerate(parts)
            if not contains_loop(p) and not isinstance(p, Skip)
        ] if victim in with_droppable else []
        parts.pop(droppable[-1] if droppable else len(parts) - 1)
        threads[victim] = _rebuild(parts)

    program = Program.of(threads)
    init: Dict[Var, Value] = {
        v: rng.choice((0, 0, 1)) for v in sorted(program_vars(program))
    }
    for counter in gen.counters:  # loop counters must start at 0
        if counter in init:
            init[counter] = 0
    if not init:  # all-skip program: keep one variable so outcomes exist
        init = {config.variables[0]: 0}

    return GeneratedCase(
        # the profile is part of the name so reproducers persisted from
        # same-seed campaigns under different profiles cannot collide
        name=f"fuzz_{config.name}_s{seed}_i{index}",
        program=program,
        init=init,
        events_hint=sum(bound_of(c) for c in threads.values()),
        seed=seed,
        index=index,
        profile=config.name,
    )


__all__ = [
    "GeneratedCase",
    "GeneratorConfig",
    "PROFILES",
    "estimate_event_bound",
    "generate_case",
    "program_event_bound",
    "program_vars",
    "_flatten",
    "_rebuild",
]
