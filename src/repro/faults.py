"""Deterministic fault injection for the exploration engine (DESIGN.md §16).

Fault tolerance that is only exercised by real crashes is fault
tolerance that is never exercised.  This module turns every recovery
path in the engine into something a test (or the chaos CI job, or the
``--check-faults`` fuzz oracle) can trigger *on purpose*, at an exact,
replayable point: worker ``k`` dies at round ``r``, the third spill
write hits ``ENOSPC``, the run is interrupted after exactly ``N``
configurations.  A fault plan is pure data parsed from a spec string,
so the same spec injected twice produces the same fault sequence —
recovery bugs reproduce from the command line.

Spec grammar (the value of ``REPRO_FAULTS`` or ``repro run
--inject-faults``)::

    spec    :=  action (';' action)*
    action  :=  name (':' key '=' int (',' key '=' int)*)?

Actions:

``kill-worker:shard=K,round=R``
    Shard worker ``K`` exits hard (``os._exit(1)``) at the start of
    superstep round ``R`` — the supervisor must detect the death and
    retry instead of deadlocking the round.  Process mode only; each
    ``(K, R)`` pair fires at most once per plan (the plan handed to
    respawned workers is disarmed, so recovery cannot loop).
``delay-queue:ms=M`` / ``delay-queue:ms=M,shard=K``
    Sleep ``M`` milliseconds before every cross-shard batch send (of
    worker ``K`` only, when given) — widens round-barrier race windows.
``enospc:spill=N``
    The ``N``-th visited-set spill write fails with ``OSError(ENOSPC)``;
    the store must absorb the failure and fall back to memory.
``interrupt:configs=N``
    Raise :class:`FaultInterrupt` once the explorer has integrated
    ``N`` configurations — a deterministic stand-in for SIGKILL, used
    by the kill-and-resume parity tests.

Engine code asks the *active plan* (``--inject-faults`` argument, else
the ``REPRO_FAULTS`` environment variable, else nothing) via the probe
helpers; with no plan armed every probe is a single ``None`` check, so
the harness costs nothing in ordinary runs.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Iterator, Optional, Set, Tuple

__all__ = [
    "FaultInterrupt",
    "FaultPlan",
    "active_plan",
    "set_plan",
    "clear_plan",
]


class FaultInterrupt(RuntimeError):
    """An injected mid-run interruption (a deterministic crash).

    Raised by the explorer when an ``interrupt:configs=N`` fault fires.
    Carries the checkpoint path written last (if any) so harnesses can
    resume without guessing.
    """

    def __init__(self, message: str, checkpoint: Optional[str] = None) -> None:
        super().__init__(message)
        self.checkpoint = checkpoint


_ACTIONS = ("kill-worker", "delay-queue", "enospc", "interrupt")


def _parse_action(text: str) -> Tuple[str, Dict[str, int]]:
    name, _, rest = text.strip().partition(":")
    name = name.strip()
    if name not in _ACTIONS:
        raise ValueError(
            f"unknown fault action {name!r}; choose from {_ACTIONS}"
        )
    params: Dict[str, int] = {}
    if rest.strip():
        for pair in rest.split(","):
            key, sep, value = pair.partition("=")
            if not sep:
                raise ValueError(
                    f"fault action {name!r}: expected key=value, got {pair!r}"
                )
            try:
                params[key.strip()] = int(value.strip())
            except ValueError:
                raise ValueError(
                    f"fault action {name!r}: {key.strip()!r} must be an "
                    f"integer, got {value.strip()!r}"
                ) from None
    return name, params


def _require(name: str, params: Dict[str, int], *keys: str) -> None:
    for key in keys:
        if key not in params:
            raise ValueError(f"fault action {name!r} requires {key}=<int>")
    extra = set(params) - set(keys) - {"shard"}
    if extra:
        raise ValueError(
            f"fault action {name!r}: unknown parameter(s) {sorted(extra)}"
        )


class FaultPlan:
    """A parsed fault spec plus the one-shot firing state.

    The plan object is mutable — counters advance as faults fire — but
    the *spec* is immutable and reparsable, so a fresh plan built from
    ``plan.spec`` replays the identical fault sequence.
    """

    def __init__(self, spec: str) -> None:
        self.spec = spec
        #: (shard, round) pairs still armed to kill their worker.
        self.kills: Set[Tuple[int, int]] = set()
        #: shard (or None = every shard) → delay in seconds per send.
        self.delays: Dict[Optional[int], float] = {}
        #: 1-based index of the spill write that must fail, if any.
        self.enospc_spill: Optional[int] = None
        #: config count at which to interrupt the run, if any.
        self.interrupt_configs: Optional[int] = None
        self._spill_writes = 0
        self._interrupted = False
        for action in spec.split(";"):
            if not action.strip():
                continue
            name, params = _parse_action(action)
            if name == "kill-worker":
                _require(name, params, "shard", "round")
                self.kills.add((params["shard"], params["round"]))
            elif name == "delay-queue":
                _require(name, params, "ms")
                self.delays[params.get("shard")] = params["ms"] / 1000.0
            elif name == "enospc":
                _require(name, params, "spill")
                if params["spill"] < 1:
                    raise ValueError("enospc: spill index is 1-based")
                self.enospc_spill = params["spill"]
            elif name == "interrupt":
                _require(name, params, "configs")
                if params["configs"] < 1:
                    raise ValueError("interrupt: configs must be >= 1")
                self.interrupt_configs = params["configs"]

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        return cls(spec)

    def __repr__(self) -> str:
        return f"FaultPlan({self.spec!r})"

    # -- probes ---------------------------------------------------------

    def kill_worker_now(self, shard: int, round_: int) -> bool:
        """True exactly once per armed ``(shard, round)`` pair."""
        try:
            self.kills.remove((shard, round_))
            return True
        except KeyError:
            return False

    def delay_send(self, shard: int) -> None:
        """Sleep the configured queue delay for ``shard``, if any."""
        delay = self.delays.get(shard)
        if delay is None:
            delay = self.delays.get(None)
        if delay:
            time.sleep(delay)

    def spill_write_fails(self) -> bool:
        """True for the one spill write the plan dooms to ENOSPC."""
        if self.enospc_spill is None:
            return False
        self._spill_writes += 1
        return self._spill_writes == self.enospc_spill

    def interrupt_due(self, configs: int) -> bool:
        """True exactly once, when ``configs`` reaches the armed count."""
        if self._interrupted or self.interrupt_configs is None:
            return False
        if configs >= self.interrupt_configs:
            self._interrupted = True
            return True
        return False


# ----------------------------------------------------------------------
# The active plan of this process
# ----------------------------------------------------------------------

#: Sentinel distinguishing "no override" from "explicitly no plan".
_UNSET = object()

_override = _UNSET
_env_spec: Optional[str] = None
_env_plan: Optional[FaultPlan] = None


def set_plan(plan: Optional[FaultPlan]) -> None:
    """Install ``plan`` as this process's active plan (overrides env).

    Passing ``None`` disables fault injection even when ``REPRO_FAULTS``
    is set — the supervisor uses this to disarm retried attempts.
    """
    global _override
    _override = plan


def clear_plan() -> None:
    """Drop any ``set_plan`` override; ``REPRO_FAULTS`` applies again."""
    global _override
    _override = _UNSET


def active_plan() -> Optional[FaultPlan]:
    """The fault plan governing this process, or ``None``.

    An explicit :func:`set_plan` wins; otherwise ``REPRO_FAULTS`` is
    parsed once and the same (stateful) plan object is returned for the
    life of the process, so one-shot faults stay one-shot.
    """
    global _env_spec, _env_plan
    if _override is not _UNSET:
        return _override
    spec = os.environ.get("REPRO_FAULTS")
    if not spec:
        return None
    if spec != _env_spec:
        _env_plan = FaultPlan(spec)
        _env_spec = spec
    return _env_plan
