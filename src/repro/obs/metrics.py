"""The metrics registry (DESIGN.md §14).

Generalises the ad-hoc process-wide accumulators the engine grew
organically — :data:`repro.c11.compact.ORDER_TIMER` and
:data:`repro.interp.memory_model.MODEL_TIMER` — into one registry of
*named* instruments:

* :class:`Counter` — monotonically increasing totals (configs
  explored, races detected);
* :class:`Gauge` — last-written values (peak frontier, spin score);
* :class:`SpanTimer` — accumulated seconds with hierarchical
  slash-separated names (``engine/expand``, ``engine/expand/model``)
  and a context-manager ``time()`` for ad-hoc spans.

The two legacy timers stay where they are — their ``.seconds +=``
increments are on the exploration hot path and a registry lookup there
would be a measurable regression — but they are *registered* as
external reads (:meth:`MetricsRegistry.external`), so every export
includes their live values under stable names.

Exports: :meth:`MetricsRegistry.to_json` (one nested document) and
:meth:`MetricsRegistry.to_prometheus` (text exposition format —
``repro_engine_expand_seconds 1.23``).  The CLI's ``--metrics PATH``
writes one of the two by file suffix (``.prom`` selects Prometheus).
"""

from __future__ import annotations

import re
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Mapping, Optional, Tuple, Union

Number = Union[int, float]


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount


class Gauge:
    """A last-written value."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value


class SpanTimer:
    """Accumulated wall seconds under a hierarchical name."""

    __slots__ = ("name", "help", "seconds", "spans")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.seconds: float = 0.0
        self.spans: int = 0

    def add(self, seconds: float) -> None:
        self.seconds += seconds
        self.spans += 1

    @contextmanager
    def time(self) -> Iterator[None]:
        import time as _time

        t0 = _time.perf_counter()
        try:
            yield
        finally:
            self.add(_time.perf_counter() - t0)

    @property
    def value(self) -> float:
        return self.seconds


_PROM_BAD = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str, suffix: str = "") -> str:
    return "repro_" + _PROM_BAD.sub("_", name) + suffix


class MetricsRegistry:
    """Named counters, gauges and span timers with pluggable externals."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._timers: Dict[str, SpanTimer] = {}
        #: name -> (kind, reader) evaluated at export time
        self._externals: Dict[str, Tuple[str, Callable[[], Number]]] = {}

    # -- instrument accessors (get-or-create, idempotent) --------------

    def counter(self, name: str, help: str = "") -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name, help)
        return metric

    def gauge(self, name: str, help: str = "") -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name, help)
        return metric

    def timer(self, name: str, help: str = "") -> SpanTimer:
        metric = self._timers.get(name)
        if metric is None:
            metric = self._timers[name] = SpanTimer(name, help)
        return metric

    def external(self, name: str, reader: Callable[[], Number],
                 kind: str = "gauge", help: str = "") -> None:
        """Register a read-at-export-time metric (e.g. a legacy global
        accumulator whose hot-path increments must stay in place)."""
        if kind not in ("gauge", "counter", "timer"):
            raise ValueError(f"unknown external metric kind {kind!r}")
        self._externals[name] = (kind, reader)

    # -- folding engine output in --------------------------------------

    def record_stats(self, prefix: str, stats) -> None:
        """Fold one :class:`~repro.engine.stats.EngineStats` in."""
        for field in ("key_hits", "key_misses", "expanded", "pruned",
                      "sleep_hits", "races", "revisits"):
            self.counter(f"{prefix}/{field}").inc(getattr(stats, field))
        self.gauge(f"{prefix}/peak_frontier").set(
            max(self.gauge(f"{prefix}/peak_frontier").value,
                stats.peak_frontier)
        )
        self.timer(f"{prefix}/total").add(stats.time_total)
        self.timer(f"{prefix}/expand").add(stats.time_expand)
        self.timer(f"{prefix}/expand/model").add(stats.time_model)
        self.timer(f"{prefix}/keys").add(stats.time_keys)
        self.timer(f"{prefix}/checks").add(stats.time_checks)
        self.timer(f"{prefix}/orders").add(stats.time_orders)

    def record_totals(self, prefix: str, totals: Mapping[str, Number]) -> None:
        """Fold a :meth:`ParallelRunner.aggregate` totals mapping in."""
        for key, value in totals.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            if key.startswith("peak_"):
                gauge = self.gauge(f"{prefix}/{key}")
                gauge.set(max(gauge.value, value))
            elif key.startswith("time_") or key.endswith("_time"):
                self.timer(f"{prefix}/{key}").add(float(value))
            elif key.endswith("_rate"):
                self.gauge(f"{prefix}/{key}").set(value)
            else:
                self.counter(f"{prefix}/{key}").inc(value)

    # -- export --------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, Number]]:
        """Flat name -> value per instrument family (externals folded)."""
        out: Dict[str, Dict[str, Number]] = {
            "counters": {m.name: m.value for m in self._counters.values()},
            "gauges": {m.name: m.value for m in self._gauges.values()},
            "timers": {m.name: m.seconds for m in self._timers.values()},
        }
        family = {"gauge": "gauges", "counter": "counters", "timer": "timers"}
        for name, (kind, reader) in self._externals.items():
            out[family[kind]][name] = reader()
        return out

    def to_json(self) -> dict:
        """One nested document: slash-separated names become trees."""
        snap = self.snapshot()
        tree: dict = {"schema": "repro-metrics/1"}
        for family, metrics in snap.items():
            node: dict = {}
            for name, value in sorted(metrics.items()):
                cursor = node
                *parents, leaf = name.split("/")
                for part in parents:
                    cursor = cursor.setdefault(part, {})
                    if not isinstance(cursor, dict):  # leaf/branch clash
                        break
                else:
                    if isinstance(cursor.get(leaf), dict):
                        cursor[leaf]["__self__"] = value
                    else:
                        cursor[leaf] = value
            tree[family] = node
        return tree

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (type-annotated)."""
        snap = self.snapshot()
        lines = []
        prom_type = {"counters": "counter", "gauges": "gauge", "timers": "counter"}
        for family in ("counters", "gauges", "timers"):
            suffix = "_seconds" if family == "timers" else ""
            for name, value in sorted(snap[family].items()):
                prom = _prom_name(name, suffix)
                lines.append(f"# TYPE {prom} {prom_type[family]}")
                lines.append(f"{prom} {value}")
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Drop every registered instrument (externals persist)."""
        self._counters.clear()
        self._gauges.clear()
        self._timers.clear()


def _default_registry() -> MetricsRegistry:
    registry = MetricsRegistry()

    def read_order_timer() -> float:
        from repro.c11.compact import ORDER_TIMER

        return ORDER_TIMER.seconds

    def read_model_timer() -> float:
        from repro.interp.memory_model import MODEL_TIMER

        return MODEL_TIMER.seconds

    registry.external(
        "engine/orders_global", read_order_timer, kind="timer",
        help="process-wide derived-order seconds (ORDER_TIMER)",
    )
    registry.external(
        "engine/model_global", read_model_timer, kind="timer",
        help="process-wide memory-model seconds (MODEL_TIMER)",
    )
    return registry


#: The process-wide registry the CLI exports from.
METRICS = _default_registry()


def export_to(path: str, registry: Optional[MetricsRegistry] = None) -> str:
    """Write the registry to ``path``; ``.prom`` selects Prometheus text,
    anything else JSON.  Returns the format written."""
    import json

    registry = registry if registry is not None else METRICS
    if path.endswith(".prom"):
        payload, fmt = registry.to_prometheus(), "prometheus"
    else:
        payload, fmt = json.dumps(registry.to_json(), indent=2) + "\n", "json"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(payload)
    return fmt


__all__ = [
    "METRICS",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "SpanTimer",
    "export_to",
]
