"""Live progress for parallel runs (DESIGN.md §14).

:class:`~repro.engine.parallel.ParallelRunner` completes jobs out of
order (``imap_unordered``) and invokes a ``progress`` callback with
each finished job's result as it arrives over the pool's result pipe —
no extra IPC channel, the stat deltas ride the pipe that already
carries results.  :class:`Heartbeat` is the callback the CLI installs
behind ``--progress``: it folds each arrival into running totals and
repaints a single ``\\r``-terminated stderr line::

    [suite] 12/48 jobs  8123 configs  3412 st/s  eta 9.2s  lag x2.1

``lag`` is the per-worker imbalance estimate: the slowest observed job
wall time over the mean, a quick read on whether one shard is
dominating the critical path (ROADMAP: deterministic partitioning a la
Bobpp needs exactly this signal).

Rendering is rate-limited (default 10 Hz) so a burst of tiny jobs does
not spend its time painting the terminal, and suppressed entirely when
the stream is not a TTY unless forced (CI logs stay clean).
"""

from __future__ import annotations

import sys
import time
from typing import Any, Optional, TextIO


def _configs_of(result: Any) -> int:
    return int(getattr(result, "configs", 0) or 0)


def _wall_of(result: Any) -> float:
    return float(getattr(result, "wall_time", 0.0) or 0.0)


class Heartbeat:
    """Fold per-job results into a repainted one-line progress display."""

    def __init__(self, total: int, label: str = "suite",
                 stream: Optional[TextIO] = None,
                 min_interval: float = 0.1, force: bool = False) -> None:
        self.total = max(0, int(total))
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self.done = 0
        self.configs = 0
        self.failed = 0
        self.max_wall = 0.0
        self.sum_wall = 0.0
        self.started = time.perf_counter()
        self._last_paint = 0.0
        self._painted = False
        self._active = force or bool(getattr(self.stream, "isatty", lambda: False)())

    # The ParallelRunner calls the instance itself: ``progress=heartbeat``.
    def __call__(self, result: Any) -> None:
        self.done += 1
        self.configs += _configs_of(result)
        wall = _wall_of(result)
        self.sum_wall += wall
        if wall > self.max_wall:
            self.max_wall = wall
        if getattr(result, "failed", None) or getattr(result, "verdict", "") in (
            "fail", "error"
        ):
            self.failed += 1
        self.paint()

    # -- rendering -----------------------------------------------------

    def line(self) -> str:
        elapsed = max(time.perf_counter() - self.started, 1e-9)
        rate = self.configs / elapsed
        parts = [f"[{self.label}] {self.done}/{self.total or '?'} jobs",
                 f"{self.configs} configs", f"{rate:.0f} st/s"]
        if self.total and self.done:
            remaining = self.total - self.done
            eta = remaining * (elapsed / self.done)
            parts.append(f"eta {eta:.1f}s")
        if self.done:
            mean = self.sum_wall / self.done
            if mean > 0:
                parts.append(f"lag x{self.max_wall / mean:.1f}")
        if self.failed:
            parts.append(f"FAILED {self.failed}")
        return "  ".join(parts)

    def paint(self, final: bool = False) -> None:
        if not self._active:
            return
        now = time.perf_counter()
        if not final and now - self._last_paint < self.min_interval:
            return
        self._last_paint = now
        self.stream.write("\r\x1b[K" + self.line())
        if final:
            self.stream.write("\n")
        self.stream.flush()
        self._painted = True

    def finish(self) -> None:
        """Repaint one last time and move off the progress line."""
        if self._active and self._painted:
            self.paint(final=True)


__all__ = ["Heartbeat"]
