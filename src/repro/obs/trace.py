"""The structured trace bus (DESIGN.md §14).

One process-wide :class:`Tracer` (or none).  When tracing is off —
the default — :func:`tracer` returns ``None`` and the instrumented
code paths reduce to a single ``is None`` test per exploration loop
iteration: no record objects, no string formatting, no allocation.
When on, every record is one JSON object written as one line via a
single ``os.write`` to a file opened ``O_APPEND``, so records from the
parent and from forked pool workers interleave whole-line atomically
in the same file.

Activation
==========

* ``enable(path)`` / ``disable()`` programmatically;
* the ``REPRO_TRACE=PATH`` environment variable, resolved lazily on
  the first :func:`tracer` call of each process — pool workers created
  by :class:`~repro.engine.parallel.ParallelRunner` inherit the parent
  environment (and, under fork, the live tracer), so ``--trace`` on
  the CLI traces every worker too;
* ``REPRO_TRACE_SAMPLE=N`` keeps 1-in-N of the *high-frequency*
  records (``node`` and ``prune``); structural records (runs, spans,
  races, views, jobs) are never sampled.  Default: 16.

Record schema (``repro-trace/1``)
=================================

Every record carries ``ev`` (its type), ``ts`` (epoch seconds, float)
and ``pid``.  Per-type payload fields — the authoritative table is
:data:`SCHEMA`, which ``tools/check_trace_schema.py`` validates trace
files against:

=============  ====================================================
``header``     ``schema``, ``sample`` — emitted once per enabling
``run_start``  ``run`` id, ``prog`` label, ``pcs``, ``model``,
               ``strategy``, ``reduction``, ``bound``
``span``       ``run``, phase ``name``, ``dur`` seconds (emitted at
               run end from the engine's phase timers, so span totals
               agree with ``EngineStats`` by construction)
``run_end``    ``run``, ``configs``, ``transitions``, ``truncated``,
               ``dur``
``node``       ``run``, running config count ``n``, ``pcs``, key-cache
               ``keys`` ``[hits, misses]`` delta — sampled
``shard``      one superstep of one shard of a sharded run
               (DESIGN.md §15): ``run``, ``shard`` index, ``round``,
               messages ``sent``/``recv``, next-level ``frontier`` size;
               per-shard expand time lands in ``span`` records named
               ``shard0``, ``shard1``, …
``race``       ``run``, ``tid``, conflicting ``vars``, ``pcs``
``view``       ``run``, scheduled reversing ``view`` (tid sequence),
               ``pcs``
``prune``      ``run``, ``kind`` (``sleep``/``visited``), ``pcs`` —
               sampled
``job_start``  ``job`` label, ``kind``
``job_end``    ``job``, ``kind``, ``dur``, ``configs``, ``verdict``
``case``       fuzz case: ``seed``, ``index``, divergence ``kind``
``outline``    proof discharge: ``name``, ``model``, ``obligations``,
               ``failed``
``ckpt``       checkpoint activity (DESIGN.md §16): ``run``, ``path``,
               ``configs`` at the snapshot, ``action`` (``write``)
``fault``      fault-tolerance event: ``run``, ``kind``
               (``interrupt``/``worker-death``/``respawn``/``degrade``),
               free-form ``detail``
=============  ====================================================
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional

#: Schema identifier stamped into every trace header.
SCHEMA_NAME = "repro-trace/1"

#: Event type -> payload fields required on top of ``ev``/``ts``/``pid``.
SCHEMA: Dict[str, frozenset] = {
    "header": frozenset({"schema", "sample"}),
    "run_start": frozenset(
        {"run", "prog", "pcs", "model", "strategy", "reduction", "bound"}
    ),
    "span": frozenset({"run", "name", "dur"}),
    "run_end": frozenset({"run", "configs", "transitions", "truncated", "dur"}),
    "node": frozenset({"run", "n", "pcs", "keys"}),
    "shard": frozenset({"run", "shard", "round", "sent", "recv", "frontier"}),
    "race": frozenset({"run", "tid", "vars", "pcs"}),
    "view": frozenset({"run", "view", "pcs"}),
    "prune": frozenset({"run", "kind", "pcs"}),
    "job_start": frozenset({"job", "kind"}),
    "job_end": frozenset({"job", "kind", "dur", "configs", "verdict"}),
    "case": frozenset({"seed", "index", "kind"}),
    "outline": frozenset({"name", "model", "obligations", "failed"}),
    "ckpt": frozenset({"run", "path", "configs", "action"}),
    "fault": frozenset({"run", "kind", "detail"}),
}

#: Default 1-in-N sampling of node/prune records.
DEFAULT_SAMPLE = 16

#: The engine phases reported as ``span`` records at run end, read off
#: the corresponding ``EngineStats.time_*`` attribute.
PHASES = ("total", "expand", "model", "keys", "checks", "orders")


def program_pcs(program) -> List[int]:
    """The per-thread program counters of a (possibly lowered) program.

    Both :class:`~repro.lang.program.Program` and
    :class:`~repro.interp.compiled.LoweredProgram` expose
    ``tids``/``pc``; anything else reports no pcs rather than failing
    the trace path.
    """
    try:
        return [program.pc(tid) for tid in program.tids]
    except Exception:  # noqa: BLE001 - tracing must never break a run
        return []


def program_label(program) -> str:
    """A short human-readable handle for a program (hot-program keys)."""
    try:
        text = str(program)
    except Exception:  # noqa: BLE001
        return type(program).__name__
    return text if len(text) <= 120 else text[:117] + "..."


class Tracer:
    """One JSONL trace sink; create via :func:`enable`, not directly."""

    __slots__ = (
        "path", "sample", "emitted", "mirror", "_fd", "_tick", "_runs",
    )

    def __init__(self, path: str, sample: int = DEFAULT_SAMPLE) -> None:
        self.path = path
        self.sample = max(1, int(sample))
        self.emitted = 0
        #: when a list, every record is also appended here (tests use
        #: this to assert the file round-trips losslessly)
        self.mirror: Optional[List[dict]] = None
        self._fd: Optional[int] = None
        self._tick = 0
        self._runs = 0

    # -- core ----------------------------------------------------------

    def emit(self, ev: str, **fields: Any) -> dict:
        """Write one record; returns the dict written."""
        record: Dict[str, Any] = {"ev": ev, "ts": time.time(), "pid": os.getpid()}
        record.update(fields)
        if self._fd is None:
            self._fd = os.open(
                self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
        os.write(
            self._fd,
            (json.dumps(record, separators=(",", ":")) + "\n").encode("utf-8"),
        )
        self.emitted += 1
        if self.mirror is not None:
            self.mirror.append(record)
        return record

    def tick(self) -> bool:
        """Sampling gate for high-frequency records: true 1-in-sample."""
        self._tick += 1
        if self._tick >= self.sample:
            self._tick = 0
            return True
        return False

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    # -- typed helpers (structural records, never sampled) -------------

    def run_start(self, program, model_name: str, strategy: str,
                  reduction: str, bound: Optional[int]) -> str:
        self._runs += 1
        run = f"{os.getpid()}-{self._runs}"
        self.emit(
            "run_start", run=run, prog=program_label(program),
            pcs=program_pcs(program), model=model_name, strategy=strategy,
            reduction=reduction, bound=bound,
        )
        return run

    def run_end(self, run: str, stats, configs: int, transitions: int,
                truncated: bool) -> None:
        """Phase spans (straight off the engine's timers — totals agree
        with ``EngineStats`` by construction) followed by the run
        summary record."""
        for name in PHASES:
            dur = stats.time_total if name == "total" else getattr(
                stats, f"time_{name}"
            )
            if dur > 0.0:
                self.emit("span", run=run, name=name, dur=dur)
        self.emit(
            "run_end", run=run, configs=configs, transitions=transitions,
            truncated=truncated, dur=stats.time_total,
        )

    def race(self, run: str, tid: int, footprint, program) -> None:
        self.emit(
            "race", run=run, tid=tid,
            vars=sorted(map(str, footprint.reads | footprint.writes)),
            pcs=program_pcs(program),
        )

    def view(self, run: str, view, program) -> None:
        self.emit("view", run=run, view=list(view), pcs=program_pcs(program))

    def prune(self, run: str, kind: str, program) -> None:
        """Sampled: call under ``tick()`` on hot paths."""
        self.emit("prune", run=run, kind=kind, pcs=program_pcs(program))


#: Process-wide tracer, or None.  ``_resolved`` records whether the
#: environment has been consulted (so the disabled path costs one
#: attribute load + ``is None`` after the first call).
_TRACER: Optional[Tracer] = None
_resolved = False


def tracer() -> Optional[Tracer]:
    """The active tracer, or ``None`` (the common, fast case)."""
    global _resolved, _TRACER
    if not _resolved:
        _resolved = True
        path = os.environ.get("REPRO_TRACE")
        if path:
            _TRACER = Tracer(
                path, sample=_env_sample()
            )
            _TRACER.emit("header", schema=SCHEMA_NAME, sample=_TRACER.sample)
    return _TRACER


def _env_sample() -> int:
    try:
        return int(os.environ.get("REPRO_TRACE_SAMPLE", DEFAULT_SAMPLE))
    except ValueError:
        return DEFAULT_SAMPLE


def enable(path: str, sample: Optional[int] = None) -> Tracer:
    """Start tracing to ``path`` (replacing any active tracer)."""
    global _resolved, _TRACER
    if _TRACER is not None:
        _TRACER.close()
    _TRACER = Tracer(path, sample=sample if sample is not None else _env_sample())
    _resolved = True
    _TRACER.emit("header", schema=SCHEMA_NAME, sample=_TRACER.sample)
    return _TRACER


def disable() -> None:
    """Stop tracing (and forget any ``REPRO_TRACE`` resolution)."""
    global _resolved, _TRACER
    if _TRACER is not None:
        _TRACER.close()
    _TRACER = None
    _resolved = False


def parse_trace(path: str) -> List[dict]:
    """Read a JSONL trace file back into records (blank lines skipped).

    Raises ``ValueError`` with the offending line number on malformed
    JSON — the same strictness the schema checker applies.
    """
    records: List[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: malformed record: {exc}")
    return records


__all__ = [
    "DEFAULT_SAMPLE",
    "PHASES",
    "SCHEMA",
    "SCHEMA_NAME",
    "Tracer",
    "disable",
    "enable",
    "parse_trace",
    "program_label",
    "program_pcs",
    "tracer",
]
