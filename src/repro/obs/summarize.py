"""Trace-file summarization and Chrome trace-event export
(``repro trace FILE``, DESIGN.md §14).

:func:`summarize` folds a parsed trace into the three views the
optimal-DPOR tuning loop needs:

* **phase breakdown** — total seconds per engine phase across every
  run (the ``span`` records), with percentages of the total phase;
* **hot programs** — top-k programs by explored configs (``run_start``
  joined with ``run_end`` on the run id);
* **hotspots** — race / view / prune counts keyed by the program-
  counter vector at the moment of the event, so "where do races
  happen" has an answer in program coordinates, not just a count.

:func:`to_chrome` converts the same records to Chrome trace-event
JSON (the ``traceEvents`` array format) for Perfetto / chrome://tracing:
runs become ``X`` (complete) slices placed at their wall-clock end
minus duration, phase spans become nested slices, and races / views /
prunes become ``i`` (instant) markers.
"""

from __future__ import annotations

import json
from collections import Counter, defaultdict
from typing import Any, Dict, List

from repro.obs.trace import PHASES


def summarize(records: List[dict], top: int = 5) -> Dict[str, Any]:
    """Aggregate parsed trace records into a summary document."""
    phase_seconds: Dict[str, float] = defaultdict(float)
    phase_spans: Dict[str, int] = defaultdict(int)
    run_prog: Dict[str, str] = {}
    run_configs: Counter = Counter()
    run_transitions: Counter = Counter()
    counts: Counter = Counter()
    race_pcs: Counter = Counter()
    prune_pcs: Counter = Counter()
    view_pcs: Counter = Counter()
    prune_kinds: Counter = Counter()
    truncated = 0
    sample = None

    for record in records:
        ev = record.get("ev")
        counts[ev] += 1
        if ev == "header":
            sample = record.get("sample", sample)
        elif ev == "span":
            phase_seconds[record.get("name", "?")] += record.get("dur", 0.0)
            phase_spans[record.get("name", "?")] += 1
        elif ev == "run_start":
            run_prog[record.get("run", "?")] = record.get("prog", "?")
        elif ev == "run_end":
            run = record.get("run", "?")
            run_configs[run] += record.get("configs", 0)
            run_transitions[run] += record.get("transitions", 0)
            if record.get("truncated"):
                truncated += 1
        elif ev == "race":
            race_pcs[tuple(record.get("pcs", []))] += 1
        elif ev == "view":
            view_pcs[tuple(record.get("pcs", []))] += 1
        elif ev == "prune":
            prune_pcs[tuple(record.get("pcs", []))] += 1
            prune_kinds[record.get("kind", "?")] += 1

    total = phase_seconds.get("total", 0.0)
    phases = []
    for name in PHASES:
        if name not in phase_seconds:
            continue
        seconds = phase_seconds[name]
        phases.append({
            "phase": name,
            "seconds": round(seconds, 6),
            "spans": phase_spans[name],
            "pct": round(100.0 * seconds / total, 1) if total else 0.0,
        })

    hot = [
        {
            "prog": run_prog.get(run, "?"),
            "run": run,
            "configs": configs,
            "transitions": run_transitions[run],
        }
        for run, configs in run_configs.most_common(top)
    ]

    def hotspot_rows(counter: Counter) -> List[dict]:
        return [
            {"pcs": list(pcs), "count": count}
            for pcs, count in counter.most_common(top)
        ]

    return {
        "records": len(records),
        "events": dict(counts),
        "sample": sample,
        "runs": len(run_prog) or counts.get("run_end", 0),
        "configs": sum(run_configs.values()),
        "transitions": sum(run_transitions.values()),
        "truncated_runs": truncated,
        "phases": phases,
        "hot_programs": hot,
        "race_hotspots": hotspot_rows(race_pcs),
        "view_hotspots": hotspot_rows(view_pcs),
        "prune_hotspots": hotspot_rows(prune_pcs),
        "prune_kinds": dict(prune_kinds),
    }


def format_summary(summary: Dict[str, Any]) -> List[str]:
    """Human lines for the ``repro trace`` report."""
    lines = [
        f"records: {summary['records']}  runs: {summary['runs']}  "
        f"configs: {summary['configs']}  transitions: "
        f"{summary['transitions']}"
        + (f"  truncated: {summary['truncated_runs']}"
           if summary["truncated_runs"] else ""),
    ]
    if summary.get("sample"):
        lines.append(f"sampling: 1-in-{summary['sample']} (node/prune records)")
    if summary["phases"]:
        lines.append("phase breakdown:")
        for row in summary["phases"]:
            lines.append(
                f"  {row['phase']:<8} {row['seconds']:>9.4f}s  "
                f"{row['pct']:>5.1f}%  ({row['spans']} spans)"
            )
    if summary["hot_programs"]:
        lines.append("hot programs (by configs):")
        for row in summary["hot_programs"]:
            lines.append(
                f"  {row['configs']:>8} configs  {row['transitions']:>8} "
                f"transitions  {row['prog']}"
            )
    for key, title in (("race_hotspots", "race hotspots"),
                       ("view_hotspots", "view hotspots"),
                       ("prune_hotspots", "prune hotspots")):
        rows = summary[key]
        if not rows:
            continue
        lines.append(f"{title} (by pc vector):")
        for row in rows:
            lines.append(f"  {row['count']:>6} @ pcs={row['pcs']}")
    if summary["prune_kinds"]:
        kinds = ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(summary["prune_kinds"].items())
        )
        lines.append(f"prune kinds: {kinds}")
    return lines


def to_chrome(records: List[dict]) -> Dict[str, Any]:
    """Chrome trace-event (``traceEvents``) document for Perfetto.

    Wall-clock ``ts`` values are epoch microseconds; runs and their
    phase spans are ``X`` complete slices anchored so they *end* at the
    record's emission time (spans are emitted at run end), and point
    events are ``i`` instants.
    """
    events: List[dict] = []
    instant_names = {"race": "race", "view": "view", "prune": "prune",
                     "node": "node", "case": "case"}
    for record in records:
        ev = record.get("ev")
        ts_us = record.get("ts", 0.0) * 1e6
        pid = record.get("pid", 0)
        if ev in ("run_end", "span"):
            dur_us = record.get("dur", 0.0) * 1e6
            name = (record.get("run", "run") if ev == "run_end"
                    else record.get("name", "span"))
            events.append({
                "name": name,
                "cat": "run" if ev == "run_end" else "phase",
                "ph": "X",
                "ts": ts_us - dur_us,
                "dur": dur_us,
                "pid": pid,
                "tid": 0 if ev == "run_end" else 1,
                "args": {k: v for k, v in record.items()
                         if k not in ("ev", "ts", "pid")},
            })
        elif ev == "job_end":
            dur_us = record.get("dur", 0.0) * 1e6
            events.append({
                "name": f"{record.get('kind', 'job')}:{record.get('job', '?')}",
                "cat": "job",
                "ph": "X",
                "ts": ts_us - dur_us,
                "dur": dur_us,
                "pid": pid,
                "tid": 2,
                "args": {k: v for k, v in record.items()
                         if k not in ("ev", "ts", "pid")},
            })
        elif ev in instant_names:
            events.append({
                "name": instant_names[ev],
                "cat": ev,
                "ph": "i",
                "s": "p",
                "ts": ts_us,
                "pid": pid,
                "tid": 3,
                "args": {k: v for k, v in record.items()
                         if k not in ("ev", "ts", "pid")},
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome(records: List[dict], path: str) -> int:
    """Write the Chrome trace document; returns the event count."""
    document = to_chrome(records)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
    return len(document["traceEvents"])


__all__ = ["format_summary", "summarize", "to_chrome", "write_chrome"]
