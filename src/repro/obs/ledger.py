"""The run ledger (DESIGN.md §14).

Every CLI invocation that explores something — ``run``, ``suite``,
``fuzz``, ``verify`` — appends one schema-versioned JSON record to
``.repro/runs.jsonl`` in the repository root (or wherever the command
ran from).  The ledger is the longitudinal memory of the project: it
answers "did yesterday's change make the suite slower?" without
re-running anything, and it is the precursor to the result store of
the litmus-checking service sketched in ROADMAP.md.

Record schema (``repro-ledger/1``)::

    {"schema": "repro-ledger/1", "ts": ..., "cmd": "suite",
     "argv": [...], "seed": 0, "git": "9b7101d", "host": ...,
     "pid": ..., "wall": 1.23, "verdict": "ok",
     "stats": {"configs": ..., "transitions": ..., ...}}

``verdict`` is ``ok`` / ``fail`` / ``error``; ``stats`` is free-form
per command but conventionally mirrors the printed footer.  Records
are append-only; ``repro runs list`` and ``repro runs diff`` read them
back.

Environment:

* ``REPRO_LEDGER=PATH`` — write somewhere else;
* ``REPRO_NO_LEDGER=1`` — disable entirely (the test suite sets this
  so unit tests do not pollute the working tree).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from typing import Any, Dict, List, Optional

#: Schema identifier stamped into every ledger record.
SCHEMA_NAME = "repro-ledger/1"

#: Default ledger location, relative to the current working directory.
DEFAULT_PATH = os.path.join(".repro", "runs.jsonl")

#: Fields every ledger record must carry (checked by ``runs list``).
REQUIRED_FIELDS = frozenset(
    {"schema", "ts", "cmd", "argv", "git", "pid", "wall", "verdict", "stats"}
)

_git_rev_cache: Optional[str] = None


def git_rev() -> str:
    """The abbreviated HEAD revision, or ``""`` outside a repository."""
    global _git_rev_cache
    if _git_rev_cache is None:
        try:
            _git_rev_cache = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True, text=True, timeout=5, check=False,
            ).stdout.strip()
        except (OSError, subprocess.SubprocessError):
            _git_rev_cache = ""
    return _git_rev_cache


def ledger_path() -> Optional[str]:
    """The active ledger path, or ``None`` when disabled."""
    if os.environ.get("REPRO_NO_LEDGER"):
        return None
    return os.environ.get("REPRO_LEDGER") or DEFAULT_PATH


def append_record(cmd: str, *, verdict: str, wall: float,
                  stats: Optional[Dict[str, Any]] = None,
                  seed: Optional[int] = None,
                  argv: Optional[List[str]] = None,
                  path: Optional[str] = None) -> Optional[dict]:
    """Append one record; returns it, or ``None`` when the ledger is
    disabled.  Never raises — an unwritable ledger must not fail the
    run it is recording."""
    target = path if path is not None else ledger_path()
    if target is None:
        return None
    record: Dict[str, Any] = {
        "schema": SCHEMA_NAME,
        "ts": time.time(),
        "cmd": cmd,
        "argv": argv if argv is not None else list(sys.argv[1:]),
        "seed": seed,
        "git": git_rev(),
        "host": os.uname().nodename if hasattr(os, "uname") else "",
        "pid": os.getpid(),
        "wall": round(wall, 6),
        "verdict": verdict,
        "stats": stats or {},
    }
    try:
        parent = os.path.dirname(target)
        if parent:
            os.makedirs(parent, exist_ok=True)
        fd = os.open(target, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(
                fd,
                (json.dumps(record, separators=(",", ":")) + "\n").encode(
                    "utf-8"
                ),
            )
        finally:
            os.close(fd)
    except OSError:
        return None
    return record


def read_ledger(path: Optional[str] = None) -> List[dict]:
    """All records from the ledger (malformed lines are skipped — a
    ledger survives interrupted writers and hand edits)."""
    target = path if path is not None else (
        os.environ.get("REPRO_LEDGER") or DEFAULT_PATH
    )
    records: List[dict] = []
    try:
        handle = open(target, "r", encoding="utf-8")
    except OSError:
        return records
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                records.append(record)
    return records


def format_list(records: List[dict], limit: int = 20) -> List[str]:
    """Human lines for ``repro runs list`` — newest last."""
    lines = []
    for record in records[-limit:]:
        ts = time.strftime(
            "%Y-%m-%d %H:%M:%S", time.localtime(record.get("ts", 0))
        )
        stats = record.get("stats", {})
        configs = stats.get("configs", "-")
        # recovery history (DESIGN.md §16): mark resumed runs and runs
        # that survived worker faults so `runs list` shows them at a
        # glance; `runs diff` already compares the underlying counters
        recovery = ""
        if stats.get("resumed"):
            recovery += " resumed"
        if stats.get("faults"):
            recovery += f" faults={stats['faults']}"
        if stats.get("retries"):
            recovery += f" retries={stats['retries']}"
        lines.append(
            f"{ts}  {record.get('git', '') or '-':>9}  "
            f"{record.get('cmd', '?'):<7} {record.get('verdict', '?'):<5} "
            f"wall={record.get('wall', 0):.2f}s configs={configs}{recovery}"
        )
    return lines


def diff_records(old: dict, new: dict) -> List[str]:
    """Field-by-field comparison lines for ``repro runs diff``."""
    lines = [
        f"old: {old.get('git', '-')} {old.get('cmd', '?')} "
        f"verdict={old.get('verdict', '?')} wall={old.get('wall', 0):.2f}s",
        f"new: {new.get('git', '-')} {new.get('cmd', '?')} "
        f"verdict={new.get('verdict', '?')} wall={new.get('wall', 0):.2f}s",
    ]
    old_stats = old.get("stats", {}) or {}
    new_stats = new.get("stats", {}) or {}
    for key in sorted(set(old_stats) | set(new_stats)):
        before, after = old_stats.get(key), new_stats.get(key)
        if before == after:
            continue
        delta = ""
        if isinstance(before, (int, float)) and isinstance(after, (int, float)):
            change = after - before
            if before:
                delta = f"  ({change:+.4g}, {100.0 * change / before:+.1f}%)"
            else:
                delta = f"  ({change:+.4g})"
        lines.append(f"  {key}: {before} -> {after}{delta}")
    if len(lines) == 2:
        lines.append("  (stats identical)")
    return lines


__all__ = [
    "DEFAULT_PATH",
    "REQUIRED_FIELDS",
    "SCHEMA_NAME",
    "append_record",
    "diff_records",
    "format_list",
    "git_rev",
    "ledger_path",
    "read_ledger",
]
