"""Observability for the exploration stack (DESIGN.md §14).

Four layers, each usable on its own:

* :mod:`repro.obs.trace` — a low-overhead structured **trace bus**:
  JSONL span/event records (run started, node expanded, race detected,
  view scheduled, prune, key-cache sample, worker job start/end)
  emitted behind ``--trace PATH`` / ``REPRO_TRACE``, with a sampling
  knob (``REPRO_TRACE_SAMPLE``) and a compiled-out fast path when
  disabled — the instrumented hot loops pay one ``is None`` check.
* :mod:`repro.obs.metrics` — a **metrics registry** generalising the
  ad-hoc ``ORDER_TIMER``/``MODEL_TIMER`` globals into named counters,
  gauges and hierarchical span timers with JSON and Prometheus-text
  export (``--metrics PATH``).
* :mod:`repro.obs.progress` — **live progress** for parallel
  ``suite``/``fuzz``/``verify`` runs: per-job completion deltas
  streamed back over the runner's result pipe, rendered as a heartbeat
  line (jobs done, states/sec, ETA, per-worker imbalance).
* :mod:`repro.obs.ledger` — a **run ledger**: every ``run`` / ``suite``
  / ``fuzz`` / ``verify`` invocation appends one schema-versioned
  record (argv, seed, git rev, stats, verdict) to ``.repro/runs.jsonl``
  for longitudinal comparison via ``repro runs list|diff``.

:mod:`repro.obs.summarize` turns a trace file back into humans' terms
(phase breakdown, hot programs, race/prune hotspots by pc) and exports
Chrome trace-event JSON for Perfetto (``repro trace FILE``).
"""

from repro.obs.ledger import append_record, read_ledger
from repro.obs.metrics import METRICS, MetricsRegistry
from repro.obs.trace import Tracer, disable, enable, parse_trace, tracer

__all__ = [
    "METRICS",
    "MetricsRegistry",
    "Tracer",
    "append_record",
    "disable",
    "enable",
    "parse_trace",
    "read_ledger",
    "tracer",
]
