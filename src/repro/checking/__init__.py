"""Empirical soundness and completeness of the RA semantics (§4.2).

* :mod:`repro.checking.soundness` — Theorem 4.4: every state reachable
  via ``⇒RA`` satisfies the validity axioms of Definition 4.2.
* :mod:`repro.checking.completeness` — Theorem 4.8: every justifiable
  pre-execution is reached by replaying a linearisation of ``sb ∪ rf``
  through ``⇒RA``, prefix-restrictions matching along the way.
"""

from repro.checking.soundness import SoundnessReport, check_soundness
from repro.checking.completeness import (
    CompletenessReport,
    check_completeness,
    replay_justification,
)

__all__ = [
    "SoundnessReport",
    "check_soundness",
    "CompletenessReport",
    "check_completeness",
    "replay_justification",
]
