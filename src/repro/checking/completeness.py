"""Empirical Theorem 4.8 — completeness of the RA semantics.

    Suppose (P₀, π₀) ⇒PE ... ⇒PE (P_k, π_k) with π_k justifiable by
    χ_k = (π_k, rf_k, mo_k), and e₁...e_k a linearisation of sb_k ∪ rf_k.
    Then (P₀, σ₀) ⇒RA ... ⇒RA (P_k, σ_k) with
    σ_i = χ_k ↾ {e₁, ..., e_i}.

The harness makes this executable:

1. explore the program under the PE model (reads guess values, axioms
   not yet consulted) and collect the terminal pre-executions;
2. enumerate every justification of each (Definition 4.3);
3. linearise ``sb ∪ rf`` of the justification (NoThinAir guarantees
   acyclicity — Example 4.5 shows why plain PE order may be unreplayable
   and reordering is needed);
4. replay the events in that order through the RA event semantics,
   checking after *every* step that the state equals the justification
   restricted to the events so far.

Every justification must replay; any failure refutes the theorem (or
this reproduction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Tuple

from repro.axiomatic.justify import justifications
from repro.c11.event_semantics import ra_transitions_for_event
from repro.c11.prestate import PreExecutionState
from repro.c11.state import C11State
from repro.interp.explore import explore
from repro.interp.pe_model import PEMemoryModel
from repro.lang.actions import Value, Var
from repro.lang.program import Program
from repro.relations.linearize import one_linearization


@dataclass
class ReplayFailure:
    """A justification that could not be replayed (would refute Thm 4.8)."""

    justification: C11State
    step_index: int
    reason: str


@dataclass
class CompletenessReport:
    """Tallies of one completeness run."""

    program_name: str
    pre_executions: int = 0
    justifiable: int = 0
    justifications_total: int = 0
    replays_ok: int = 0
    truncated: bool = False
    failures: List[ReplayFailure] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return not self.failures

    def row(self) -> str:
        verdict = "OK" if self.complete else f"{len(self.failures)} FAILURES"
        bound = " (bounded)" if self.truncated else ""
        return (
            f"{self.program_name:<28} pre-exec={self.pre_executions:>5} "
            f"justifiable={self.justifiable:>5} justifications={self.justifications_total:>6} "
            f"replayed={self.replays_ok:>6} {verdict}{bound}"
        )


def replay_justification(chi: C11State) -> Tuple[bool, Optional[ReplayFailure], List[C11State]]:
    """Replay one justified execution through ``⇒RA``.

    Returns ``(ok, failure, states)`` where ``states`` is the sequence of
    RA states reached (``σ_1 ... σ_k``), each verified against the
    theorem's prescribed restriction ``χ ↾ {e₁..e_i}``.
    """
    program_events = frozenset(e for e in chi.events if not e.is_init)
    inits = frozenset(chi.init_writes)

    # Linearise sb ∪ rf over the program events (Theorem 4.8's order).
    order_rel = (chi.sb | chi.rf).restrict_to(program_events)
    ordering = one_linearization(
        order_rel, domain=sorted(program_events, key=lambda e: e.tag)
    )

    sigma = chi.restricted_to(inits)
    states: List[C11State] = []
    done: set = set(inits)
    for i, event in enumerate(ordering):
        done.add(event)
        expected = chi.restricted_to(done)
        hit = None
        for tr in ra_transitions_for_event(sigma, event):
            if tr.target == expected:
                hit = tr
                break
        if hit is None:
            return (
                False,
                ReplayFailure(chi, i, f"no RA transition matches event {event}"),
                states,
            )
        sigma = hit.target
        states.append(sigma)
    return True, None, states


def terminal_pre_executions(
    program: Program,
    init_values: Mapping[Var, Value],
    max_events: Optional[int] = None,
    max_configs: Optional[int] = None,
) -> Tuple[List[PreExecutionState], bool]:
    """The distinct pre-executions of completed runs of ``program``."""
    model = PEMemoryModel.for_program(program, init_values)
    result = explore(
        program,
        init_values,
        model,
        max_events=max_events,
        max_configs=max_configs,
    )
    seen = {}
    for config in result.terminal:
        seen.setdefault(model.canonical_state_key(config.state), config.state)
    return list(seen.values()), result.truncated


def check_completeness(
    program: Program,
    init_values: Mapping[Var, Value],
    max_events: Optional[int] = None,
    max_configs: Optional[int] = None,
    max_justifications_per_pre_execution: Optional[int] = None,
    name: str = "program",
    keep_failures: int = 5,
) -> CompletenessReport:
    """Run the whole pipeline on one program (the E3 experiment)."""
    report = CompletenessReport(program_name=name)
    prestates, truncated = terminal_pre_executions(
        program, init_values, max_events=max_events, max_configs=max_configs
    )
    report.truncated = truncated
    report.pre_executions = len(prestates)

    for prestate in prestates:
        any_just = False
        for chi in justifications(
            prestate, limit=max_justifications_per_pre_execution
        ):
            any_just = True
            report.justifications_total += 1
            ok, failure, _states = replay_justification(chi)
            if ok:
                report.replays_ok += 1
            elif len(report.failures) < keep_failures:
                report.failures.append(failure)
        if any_just:
            report.justifiable += 1
    return report
