"""Empirical Theorem 4.4 — soundness of the RA semantics.

    Let σ be a C11 state reachable from σ₀ using ⇒RA.  Then σ satisfies
    SB-Total, MO-Valid, RF-Complete, NoThinAir and Coherence.

The checker explores a program exhaustively (bounded) under the RA model
and evaluates Definition 4.2 on every distinct reachable state.  A single
violation would refute the paper's central theorem (or reveal a bug in
this reproduction — historically the far more likely reading); the E2
benchmark reports states/axiom-checks per second over the litmus suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Tuple

from repro.axiomatic.validity import ValidityReport, check_validity
from repro.c11.state import C11State
from repro.interp.explore import reachable_states
from repro.interp.ra_model import RAMemoryModel
from repro.lang.actions import Value, Var
from repro.lang.program import Program


@dataclass
class SoundnessReport:
    """Outcome of checking Definition 4.2 over all reachable states."""

    program_name: str
    states_checked: int = 0
    transitions: int = 0
    truncated: bool = False
    failures: List[Tuple[C11State, ValidityReport]] = field(default_factory=list)

    @property
    def sound(self) -> bool:
        return not self.failures

    def row(self) -> str:
        verdict = "OK" if self.sound else f"{len(self.failures)} VIOLATIONS"
        bound = " (bounded)" if self.truncated else ""
        return (
            f"{self.program_name:<28} states={self.states_checked:>7} "
            f"transitions={self.transitions:>8} {verdict}{bound}"
        )


def check_soundness(
    program: Program,
    init_values: Mapping[Var, Value],
    max_events: Optional[int] = None,
    max_configs: Optional[int] = None,
    name: str = "program",
    keep_failures: int = 5,
) -> SoundnessReport:
    """Explore under RA and validate every distinct reachable C11 state."""
    states, result = reachable_states(
        program,
        init_values,
        RAMemoryModel(),
        max_events=max_events,
        max_configs=max_configs,
    )
    report = SoundnessReport(
        program_name=name,
        transitions=result.transitions,
        truncated=result.truncated,
    )
    for state in states:
        report.states_checked += 1
        validity = check_validity(state)
        if not validity.valid and len(report.failures) < keep_failures:
            report.failures.append((state, validity))
    return report
