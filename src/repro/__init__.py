"""repro — Verifying C11 Programs Operationally (Doherty et al., PPoPP 2019).

A complete Python reproduction of the paper's system:

* the command language and its uninterpreted semantics (:mod:`repro.lang`),
* C11 states, observability and the RA event semantics (:mod:`repro.c11`),
* the axiomatic RAR model and the weak-canonical model plus their
  bounded-equivalence checker (:mod:`repro.axiomatic`),
* the interpreted semantics with pluggable memory models and a bounded
  exhaustive state-space explorer (:mod:`repro.interp`),
* empirical soundness/completeness checking (:mod:`repro.checking`),
* the determinate-value / variable-ordering verification calculus
  (:mod:`repro.verify`),
* litmus tests and the paper's case studies (:mod:`repro.litmus`,
  :mod:`repro.casestudies`).

See DESIGN.md for the architecture (§1–§7) and its experiments index
(§8) for the mapping from the paper's claims to regenerable results.
"""

__version__ = "1.0.0"

from repro.lang import (
    Program,
    acq,
    and_,
    assign,
    eq,
    if_,
    label,
    ne,
    or_,
    seq,
    skip,
    swap,
    var,
    while_,
)
from repro.c11 import C11State, initial_state

__all__ = [
    "__version__",
    "Program",
    "C11State",
    "initial_state",
    "skip",
    "assign",
    "swap",
    "seq",
    "if_",
    "while_",
    "label",
    "var",
    "acq",
    "eq",
    "ne",
    "and_",
    "or_",
]
