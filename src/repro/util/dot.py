"""Graphviz (dot) export of C11 states.

Produces diagrams in the style of the paper's figures: events as nodes
(one column per thread), ``sb`` as solid edges, ``rf``/``sw`` dashed,
``mo`` dotted, ``fr`` bold.  Render with ``dot -Tpdf``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.c11.state import C11State


def _node_id(e) -> str:
    return f"e{e.tag}".replace("-", "i")


def state_to_dot(state: C11State, name: str = "c11", derived: bool = True) -> str:
    """The dot source for a state (derived relations optional)."""
    lines: List[str] = [f"digraph {name} {{", "  rankdir=TB;", "  node [shape=box, fontname=monospace];"]

    by_tid: Dict[int, List] = {}
    for e in state.events:
        by_tid.setdefault(e.tid, []).append(e)

    for tid in sorted(by_tid):
        events = sorted(by_tid[tid], key=lambda e: e.tag)
        lines.append(f"  subgraph cluster_t{tid} {{")
        label = "init" if tid == 0 else f"thread {tid}"
        lines.append(f'    label="{label}";')
        for e in events:
            lines.append(f'    {_node_id(e)} [label="{e.action}"];')
        lines.append("  }")

    def edge(rel, style: str, color: str, label: str, constraint: bool = True) -> None:
        for a, b in sorted(rel.pairs, key=lambda p: (p[0].tag, p[1].tag)):
            opts = f'style={style}, color={color}, label="{label}"'
            if not constraint:
                opts += ", constraint=false"
            lines.append(f"  {_node_id(a)} -> {_node_id(b)} [{opts}];")

    # only immediate sb within threads to keep diagrams readable
    sb_imm = state.sb.filter_pairs(
        lambda a, b: a.tid == b.tid
        and not any(
            (a, c) in state.sb.pairs and (c, b) in state.sb.pairs
            for c in state.events
            if c not in (a, b)
        )
    )
    edge(sb_imm, "solid", "black", "sb")
    edge(state.rf, "dashed", "blue", "rf", constraint=False)
    if derived:
        edge(state.sw, "dashed", "purple", "sw", constraint=False)
        mo_imm = state.mo.filter_pairs(
            lambda a, b: not any(
                (a, c) in state.mo.pairs and (c, b) in state.mo.pairs
                for c in state.events
                if c not in (a, b)
            )
        )
        edge(mo_imm, "dotted", "red", "mo", constraint=False)
        edge(state.fr, "bold", "darkgreen", "fr", constraint=False)

    lines.append("}")
    return "\n".join(lines)
