"""Presentation utilities: textual state dumps and Graphviz export."""

from repro.util.pretty import format_state, format_observability, format_trace
from repro.util.dot import state_to_dot

__all__ = [
    "format_state",
    "format_observability",
    "format_trace",
    "state_to_dot",
]
