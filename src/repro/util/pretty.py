"""Textual rendering of C11 states in the paper's style.

Example 3.2 presents states as event lists with their ``sb``/``rf``/
``mo``/``sw``/``fr`` edges; :func:`format_state` produces the same
information as indented text (examples and failing tests print it).
"""

from __future__ import annotations

from typing import Iterable, List

from repro.c11.observability import (
    covered_writes,
    encountered_writes,
    observable_writes,
)
from repro.c11.state import C11State
from repro.interp.interpreter import InterpretedStep
from repro.relations.relation import Relation


def _edges(name: str, relation: Relation, limit: int = 200) -> List[str]:
    lines = []
    for a, b in sorted(relation.pairs, key=lambda p: (p[0].tag, p[1].tag))[:limit]:
        lines.append(f"    {a}  --{name}-->  {b}")
    if len(relation) > limit:
        lines.append(f"    ... {len(relation) - limit} more {name} edges")
    return lines


def format_state(state: C11State, derived: bool = False) -> str:
    """Render events and relations of a C11 state.

    With ``derived=True`` also prints ``sw``, ``hb``, ``fr`` and ``eco``
    (the orders the paper's figures annotate).
    """
    lines = ["events:"]
    for e in sorted(state.events, key=lambda e: (e.tid, e.tag)):
        lines.append(f"    {e}")
    lines.append("sb (per-thread program order; initialisers first):")
    lines.extend(_edges("sb", _skip_init_closure(state)))
    lines.append("rf:")
    lines.extend(_edges("rf", state.rf))
    lines.append("mo:")
    lines.extend(_edges("mo", state.mo))
    if derived:
        lines.append("sw:")
        lines.extend(_edges("sw", state.sw))
        lines.append("fr:")
        lines.extend(_edges("fr", state.fr))
    return "\n".join(lines)


def _skip_init_closure(state: C11State) -> Relation:
    """sb without the (bulky, uniform) initialiser fan-out edges."""
    return state.sb.filter_pairs(lambda a, b: not a.is_init)


def format_observability(state: C11State) -> str:
    """Render EW/OW per thread and the covered writes (Example 3.4)."""
    lines = []
    tids = sorted({e.tid for e in state.events if not e.is_init})
    for t in tids:
        ew = sorted(encountered_writes(state, t), key=lambda e: e.tag)
        ow = sorted(observable_writes(state, t), key=lambda e: e.tag)
        lines.append(f"EW(t{t}) = {{{', '.join(map(str, ew))}}}")
        lines.append(f"OW(t{t}) = {{{', '.join(map(str, ow))}}}")
    cw = sorted(covered_writes(state), key=lambda e: e.tag)
    lines.append(f"CW     = {{{', '.join(map(str, cw))}}}")
    return "\n".join(lines)


def format_trace(steps: Iterable[InterpretedStep]) -> str:
    """Render a counterexample/illustrative trace step by step."""
    lines = []
    for i, step in enumerate(steps):
        if step.event is None:
            lines.append(f"{i:>3}. t{step.tid}: τ")
        else:
            observed = f" observing {step.observed}" if step.observed else ""
            lines.append(f"{i:>3}. t{step.tid}: {step.event.action}{observed}")
    return "\n".join(lines)
