"""The inference rules of Figure 4, executable.

Every rule is a universally quantified implication over transitions
``(_, σ) ==(m, e)==>RA (_, σ')``: *if the premises hold of (σ, m, e),
the conclusion holds of σ'*.  The paper proves them sound (Lemmas
B.1–B.3); this module makes each rule's premises and conclusion
checkable so the test-suite and the E9 benchmark can discharge the
soundness claims over every transition of explored state spaces.

=========  ==========================================================
Init       in σ₀: ``x =_t wrval(σ₀.last(x))`` for all ``t``, ``x``
ModLast    ``e ∈ Wr|x``, ``m = σ.last(x)``  ⊢  ``x =_{tid(e)} wrval(e)``
Transfer   ``e`` acq-reads ``m = σ.last(y)``, ``m`` releasing,
           ``x →σ y``, ``x =σ_t v``  ⊢  ``x =_{tid(e)} v``
UOrd       ``m ∈ WrR|y``, ``e ∈ U|y``, ``x →σ y``  ⊢  ``x →σ' y``
NoMod      ``e ∉ Wr|x``, ``x =σ_t v``  ⊢  ``x =σ'_t v``
AcqRd      ``e ∈ RdA|x``, ``m ∈ WrR|x``, ``m = σ.last(x)``
           ⊢  ``x =_{tid(e)} rdval(e)``
WOrd       ``x ≠ y``, ``e ∈ Wr|y``, ``x =σ_{tid(e)} v``,
           ``m = σ.last(y)``  ⊢  ``x →σ' y``
NoModOrd   ``e ∉ Wr|{x,y}``, ``x →σ y``  ⊢  ``x →σ' y``
=========  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.c11.state import C11State
from repro.interp.interpreter import InterpretedStep
from repro.lang.actions import Var
from repro.lang.program import Tid
from repro.verify.assertions import dv_holds, dv_value, vo_holds


@dataclass
class RuleInstance:
    """One premise-satisfying instantiation of a rule on a transition."""

    rule: str
    description: str
    conclusion_holds: bool


def rule_init(state: C11State, variables: Sequence[Var], threads: Sequence[Tid]) -> Iterator[RuleInstance]:
    """Init (checked on initial states, not transitions):
    ``x =_t wrval(σ₀.last(x))``."""
    for x in variables:
        last = state.last(x)
        if last is None:
            continue
        for t in threads:
            yield RuleInstance(
                "Init",
                f"{x} ={t} {last.wrval} in σ0",
                dv_holds(state, x, t, last.wrval),
            )


def _event_parts(step: InterpretedStep):
    sigma: C11State = step.source.state
    sigma2: C11State = step.target.state
    return sigma, sigma2, step.event, step.observed


def rule_instances(
    step: InterpretedStep,
    variables: Sequence[Var],
    threads: Sequence[Tid],
) -> Iterator[RuleInstance]:
    """All premise-satisfying rule instances on one RA transition.

    Silent transitions (no event) leave the state unchanged; NoMod and
    NoModOrd then apply with their premises trivially met and their
    conclusions trivially preserved — skipped here to keep the instance
    stream informative.
    """
    sigma, sigma2, e, m = _event_parts(step)
    if e is None:
        return

    tid_e = e.tid

    for x in variables:
        # ModLast ------------------------------------------------------
        if e.is_write and e.var == x and m is not None and m == sigma.last(x):
            yield RuleInstance(
                "ModLast",
                f"e={e} writes last({x})",
                dv_holds(sigma2, x, tid_e, e.wrval),
            )

        # AcqRd ---------------------------------------------------------
        # The paper states e ∈ RdA|x (which formally includes updates),
        # but its soundness proof rests on σ'.mo|x = σ.mo|x — false for
        # an update, which *writes* x and whose conclusion is instead
        # delivered by ModLast.  So the rule applies to pure acquiring
        # reads only.
        if (
            e.is_read
            and e.is_acquire
            and not e.is_update
            and e.var == x
            and m is not None
            and m.is_release
            and m.is_write
            and m == sigma.last(x)
        ):
            yield RuleInstance(
                "AcqRd",
                f"e={e} acq-reads releasing last({x})",
                dv_holds(sigma2, x, tid_e, e.rdval),
            )

        # NoMod ---------------------------------------------------------
        if not (e.is_write and e.var == x):
            for t in threads:
                v = dv_value(sigma, x, t)
                if v is not None:
                    yield RuleInstance(
                        "NoMod",
                        f"{x} ={t} {v} preserved over {e}",
                        dv_holds(sigma2, x, t, v),
                    )

        for y in variables:
            if x == y:
                continue

            # Transfer --------------------------------------------------
            if (
                e.is_read
                and e.is_acquire
                and e.var == y
                and m is not None
                and m.is_release
                and m.is_write
                and m == sigma.last(y)
                and vo_holds(sigma, x, y)
            ):
                for t in threads:
                    v = dv_value(sigma, x, t)
                    if v is not None and dv_holds(sigma, x, t, v):
                        yield RuleInstance(
                            "Transfer",
                            f"{x} ={t} {v} transfers to t{tid_e} via {y}",
                            dv_holds(sigma2, x, tid_e, v),
                        )

            # UOrd ------------------------------------------------------
            if (
                e.is_update
                and e.var == y
                and m is not None
                and m.is_release
                and m.is_write
                and m.var == y
                and vo_holds(sigma, x, y)
            ):
                yield RuleInstance(
                    "UOrd",
                    f"{x} -> {y} preserved over update {e}",
                    vo_holds(sigma2, x, y),
                )

            # WOrd ------------------------------------------------------
            if (
                e.is_write
                and e.var == y
                and m is not None
                and m == sigma.last(y)
                and dv_value(sigma, x, tid_e) is not None
            ):
                yield RuleInstance(
                    "WOrd",
                    f"{x} determinate for t{tid_e}, {e} writes last({y})",
                    vo_holds(sigma2, x, y),
                )

            # NoModOrd --------------------------------------------------
            if not (e.is_write and e.var in (x, y)) and vo_holds(sigma, x, y):
                yield RuleInstance(
                    "NoModOrd",
                    f"{x} -> {y} preserved over {e}",
                    vo_holds(sigma2, x, y),
                )


RULES = (
    "Init",
    "ModLast",
    "Transfer",
    "UOrd",
    "NoMod",
    "AcqRd",
    "WOrd",
    "NoModOrd",
)


@dataclass
class RuleCheckResult:
    """Counts of discharged/failed rule instances."""

    checked: Dict[str, int] = field(default_factory=lambda: {r: 0 for r in RULES})
    failures: List[RuleInstance] = field(default_factory=list)

    @property
    def sound(self) -> bool:
        return not self.failures

    @property
    def total(self) -> int:
        return sum(self.checked.values())

    def absorb(self, instance: RuleInstance, keep_failures: int = 20) -> None:
        self.checked[instance.rule] += 1
        if not instance.conclusion_holds and len(self.failures) < keep_failures:
            self.failures.append(instance)

    def merge(self, other: "RuleCheckResult") -> None:
        for rule, n in other.checked.items():
            self.checked[rule] += n
        self.failures.extend(other.failures)

    def row(self) -> str:
        verdict = "OK" if self.sound else f"{len(self.failures)} FAILURES"
        counts = " ".join(f"{r}={n}" for r, n in self.checked.items() if n)
        return f"{verdict}  [{counts}]"


def check_rules_on_step(
    step: InterpretedStep,
    variables: Sequence[Var],
    threads: Sequence[Tid],
    result: Optional[RuleCheckResult] = None,
) -> RuleCheckResult:
    """Discharge every rule instance on one transition."""
    result = result if result is not None else RuleCheckResult()
    for instance in rule_instances(step, variables, threads):
        result.absorb(instance)
    return result
