"""Proof outlines: per-program-location assertions, checked inductively.

The paper's Peterson proof is organised exactly this way — "at pc_t ∈
{4,5,6} the assertion … holds" — with one preservation argument per
transition (Appendix D).  A :class:`ProofOutline` packages that shape:

* an assertion attached to each *pc vector* predicate (or to every
  state, for global invariants like "turn is update-only");
* :meth:`ProofOutline.check` explores the program and discharges, for
  every transition, the paper's two obligations:

  1. **initialisation** — the outline holds in the initial
     configuration;
  2. **preservation** — if the outline holds at the source of a
     transition, it holds at the target (checked *per transition*, not
     merely per reachable state, matching the inductive proof structure;
     over an exhaustively explored space the two coincide, but failures
     report the offending transition, which is what one debugs with).

This is the semantic counterpart of the syntactic
:class:`~repro.verify.calculus.AssertionContext`; use the outline to
state *what* holds where, and the calculus to replay *why*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.interp.config import Configuration
from repro.interp.explore import explore
from repro.interp.interpreter import InterpretedStep
from repro.interp.memory_model import MemoryModel
from repro.interp.ra_model import RAMemoryModel
from repro.lang.actions import Value, Var
from repro.lang.program import Program
from repro.verify.assertions import Assertion
from repro.verify.invariants import Invariant


@dataclass
class ObligationFailure:
    """One failed proof obligation."""

    kind: str  # "initialisation" | "preservation"
    invariant: str
    step: Optional[InterpretedStep] = None

    def __str__(self) -> str:
        via = f" across {self.step.event}" if self.step and self.step.event else ""
        return f"{self.kind} of {self.invariant} failed{via}"


@dataclass
class OutlineReport:
    """Outcome of checking a proof outline."""

    configs: int = 0
    transitions: int = 0
    obligations_discharged: int = 0
    truncated: bool = False
    failures: List[ObligationFailure] = field(default_factory=list)

    @property
    def proved(self) -> bool:
        return not self.failures

    def row(self) -> str:
        verdict = "OK" if self.proved else f"{len(self.failures)} FAILED"
        bound = " (bounded)" if self.truncated else ""
        return (
            f"configs={self.configs} transitions={self.transitions} "
            f"obligations={self.obligations_discharged} {verdict}{bound}"
        )


class ProofOutline:
    """A collection of named, location-indexed assertions."""

    def __init__(self) -> None:
        self._invariants: List[Invariant] = []

    def everywhere(self, name: str, assertion: Assertion) -> "ProofOutline":
        """A global invariant (holds in every reachable configuration)."""
        self._invariants.append(Invariant(name, assertion))
        return self

    def at(
        self, name: str, pcs: Mapping[int, Sequence[int]], assertion: Assertion
    ) -> "ProofOutline":
        """An assertion guarded by program locations.

        ``pcs`` maps thread ids to the pc values at which the assertion
        must hold, e.g. ``{1: (5,), 2: (4, 5, 6)}`` reads "whenever
        thread 1 is at 5 and thread 2 in {4,5,6}".
        """
        from repro.verify.assertions import Implies, PCIn, all_of

        guard = all_of([PCIn(t, tuple(v)) for t, v in sorted(pcs.items())])
        self._invariants.append(Invariant(name, Implies(guard, assertion)))
        return self

    @property
    def invariants(self) -> Tuple[Invariant, ...]:
        return tuple(self._invariants)

    # ------------------------------------------------------------------

    def holds(self, config: Configuration) -> bool:
        return all(inv.holds(config) for inv in self._invariants)

    def check(
        self,
        program: Program,
        init_values: Mapping[Var, Value],
        model: Optional[MemoryModel] = None,
        max_events: Optional[int] = None,
        max_configs: Optional[int] = None,
        keep_failures: int = 10,
    ) -> OutlineReport:
        """Discharge initialisation + per-transition preservation."""
        model = model if model is not None else RAMemoryModel()
        report = OutlineReport()

        initial = Configuration(program, model.initial(init_values))
        for inv in self._invariants:
            report.obligations_discharged += 1
            if not inv.holds(initial):
                report.failures.append(
                    ObligationFailure("initialisation", inv.name)
                )

        def on_step(step: InterpretedStep) -> List[str]:
            if not self.holds(step.source):
                return []  # vacuous: source outside the outline
            for inv in self._invariants:
                report.obligations_discharged += 1
                if not inv.holds(step.target):
                    if len(report.failures) < keep_failures:
                        report.failures.append(
                            ObligationFailure("preservation", inv.name, step)
                        )
            return []

        result = explore(
            program,
            init_values,
            model,
            max_events=max_events,
            max_configs=max_configs,
            check_step=on_step,
        )
        report.configs = result.configs
        report.transitions = result.transitions
        report.truncated = result.truncated
        return report


def peterson_outline() -> ProofOutline:
    """The paper's Peterson proof as a proof outline (Section 5.2)."""
    from repro.casestudies.peterson import FLAG, TURN, TRUE, FALSE
    from repro.verify.assertions import DV, Or, UpdateOnly, VO

    outline = ProofOutline()
    outline.everywhere("(4) turn update-only", UpdateOnly(TURN))
    outline.everywhere("(5) turn =1 2 ∨ turn =2 1", Or(DV(TURN, 1, 2), DV(TURN, 2, 1)))
    for t in (1, 2):
        other = 3 - t
        outline.at(
            f"(6) t{t}", {t: (3, 4, 5, 6)}, DV(FLAG[t], t, TRUE)
        )
        outline.at(
            f"(7) t{t}", {t: (4, 5, 6)}, VO(FLAG[t], TURN)
        )
        outline.at(
            f"(8) t{t}",
            {t: (4, 5, 6), other: (4, 5, 6)},
            Or(DV(FLAG[other], t, TRUE), DV(TURN, other, t)),
        )
        outline.at(
            f"(9) t{t}", {t: (5,), other: (4, 5, 6)}, DV(TURN, other, t)
        )
        outline.at(f"(10) t{t}", {t: (2,)}, DV(FLAG[t], t, FALSE))
    return outline
