"""Proof outlines: per-program-location assertions, checked inductively.

The paper's Peterson proof is organised exactly this way — "at pc_t ∈
{4,5,6} the assertion … holds" — with one preservation argument per
transition (Appendix D).  A :class:`ProofOutline` packages that shape:

* an assertion attached to each *pc vector* predicate (or to every
  state, for global invariants like "turn is update-only");
* :meth:`ProofOutline.check` explores the program and discharges, for
  every transition, the paper's two obligations:

  1. **initialisation** — the outline holds in the initial
     configuration;
  2. **preservation** — if the outline holds at the source of a
     transition, it holds at the target (checked *per transition*, not
     merely per reachable state, matching the inductive proof structure;
     over an exhaustively explored space the two coincide, but failures
     report the offending transition, which is what one debugs with).

This is the semantic counterpart of the syntactic
:class:`~repro.verify.calculus.AssertionContext`; use the outline to
state *what* holds where, and the calculus to replay *why*.

Outline checking is the core of the verification workbench
(``python -m repro verify``, DESIGN.md §10): the named case studies of
:mod:`repro.verify.registry` each pair a program with an outline built
here, and :meth:`ProofOutline.check` accepts the engine's ``strategy``
and ``reduction`` knobs — ``"sleep"`` is configuration-identical and
therefore verdict-preserving for the obligations; ``"dpor"`` prunes
configurations outright and is rejected (the CLI falls back to
``"none"`` and says so).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.engine.stats import EngineStats
from repro.interp.config import Configuration
from repro.interp.explore import explore
from repro.interp.interpreter import InterpretedStep
from repro.interp.memory_model import MemoryModel
from repro.interp.ra_model import RAMemoryModel
from repro.lang.actions import Value, Var
from repro.lang.program import Program
from repro.verify.assertions import Assertion
from repro.verify.invariants import Invariant


def _pc_vector(config: Configuration) -> Tuple[int, ...]:
    return tuple(config.pc(t) for t in config.program.tids)


@dataclass
class ObligationFailure:
    """One failed proof obligation."""

    kind: str  # "initialisation" | "preservation"
    invariant: str
    step: Optional[InterpretedStep] = None

    def __str__(self) -> str:
        if self.step is None:
            return f"{self.kind} of {self.invariant} failed"
        label = str(self.step.event) if self.step.event is not None else "τ"
        pcs = "⟨{}⟩ → ⟨{}⟩".format(
            ",".join(map(str, _pc_vector(self.step.source))),
            ",".join(map(str, _pc_vector(self.step.target))),
        )
        return (
            f"{self.kind} of {self.invariant} failed across {label} "
            f"by thread {self.step.tid} at pc {pcs}"
        )


@dataclass
class OutlineReport:
    """Outcome of checking a proof outline."""

    configs: int = 0
    transitions: int = 0
    obligations_discharged: int = 0
    truncated: bool = False
    failures: List[ObligationFailure] = field(default_factory=list)
    #: per-invariant obligation counts: name -> (discharged, failed)
    per_invariant: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: how the discharging exploration ran
    strategy: str = "bfs"
    reduction: str = "none"
    #: the discharging exploration's engine statistics (key cache,
    #: phase timings, reduction counters) — what the parallel runner's
    #: verify jobs aggregate into the suite footer
    stats: EngineStats = field(default_factory=EngineStats)

    @property
    def proved(self) -> bool:
        return not self.failures

    def row(self) -> str:
        verdict = "OK" if self.proved else f"{len(self.failures)} FAILED"
        bound = " (bounded)" if self.truncated else ""
        return (
            f"configs={self.configs} transitions={self.transitions} "
            f"obligations={self.obligations_discharged} {verdict}{bound}"
        )

    def _count(self, name: str, failed: bool) -> None:
        ok, bad = self.per_invariant.get(name, (0, 0))
        self.per_invariant[name] = (ok + (not failed), bad + failed)
        self.obligations_discharged += 1


class ProofOutline:
    """A collection of named, location-indexed assertions."""

    def __init__(self) -> None:
        self._invariants: List[Invariant] = []

    def everywhere(self, name: str, assertion: Assertion) -> "ProofOutline":
        """A global invariant (holds in every reachable configuration)."""
        self._invariants.append(Invariant(name, assertion))
        return self

    def at(
        self, name: str, pcs: Mapping[int, Sequence[int]], assertion: Assertion
    ) -> "ProofOutline":
        """An assertion guarded by program locations.

        ``pcs`` maps thread ids to the pc values at which the assertion
        must hold, e.g. ``{1: (5,), 2: (4, 5, 6)}`` reads "whenever
        thread 1 is at 5 and thread 2 in {4,5,6}".
        """
        from repro.verify.assertions import Implies, PCIn, all_of

        guard = all_of([PCIn(t, tuple(v)) for t, v in sorted(pcs.items())])
        self._invariants.append(Invariant(name, Implies(guard, assertion)))
        return self

    @property
    def invariants(self) -> Tuple[Invariant, ...]:
        return tuple(self._invariants)

    # ------------------------------------------------------------------

    def holds(self, config: Configuration) -> bool:
        return all(inv.holds(config) for inv in self._invariants)

    def check(
        self,
        program: Program,
        init_values: Mapping[Var, Value],
        model: Optional[MemoryModel] = None,
        max_events: Optional[int] = None,
        max_configs: Optional[int] = None,
        keep_failures: int = 10,
        strategy: str = "bfs",
        reduction: str = "none",
    ) -> OutlineReport:
        """Discharge initialisation + per-transition preservation.

        ``strategy`` and ``reduction`` are the engine's knobs.  Only the
        ``"sleep"`` reduction is admissible: it visits exactly the
        configurations the full search visits, so the proved/failed
        verdict is reduction-independent (obligation counts are not —
        pruned commutation-redundant transitions are simply not
        re-checked).  ``"dpor"`` prunes configurations, i.e. the very
        domain the obligations quantify over, and raises ``ValueError``
        here; callers wanting DPOR speed must fall back to ``"none"``
        (see ``python -m repro verify`` and DESIGN.md §10).
        """
        if reduction not in ("none", "sleep"):
            raise ValueError(
                f"reduction {reduction!r} prunes configurations; proof "
                "obligations quantify over every reachable transition, so "
                "only the configuration-identical 'sleep' tier (or 'none') "
                "is sound here — see DESIGN.md §10"
            )
        model = model if model is not None else RAMemoryModel()
        report = OutlineReport(strategy=strategy, reduction=reduction)

        initial = Configuration(program, model.initial(init_values))
        for inv in self._invariants:
            failed = not inv.holds(initial)
            report._count(inv.name, failed)
            if failed:
                report.failures.append(
                    ObligationFailure("initialisation", inv.name)
                )

        def on_step(step: InterpretedStep) -> List[str]:
            if not self.holds(step.source):
                return []  # vacuous: source outside the outline
            for inv in self._invariants:
                failed = not inv.holds(step.target)
                report._count(inv.name, failed)
                if failed and len(report.failures) < keep_failures:
                    report.failures.append(
                        ObligationFailure("preservation", inv.name, step)
                    )
            return []

        result = explore(
            program,
            init_values,
            model,
            max_events=max_events,
            max_configs=max_configs,
            check_step=on_step,
            strategy=strategy,
            reduction=reduction,
        )
        report.configs = result.configs
        report.transitions = result.transitions
        report.truncated = result.truncated
        report.stats = result.stats

        from repro.obs.trace import tracer

        tr = tracer()
        if tr is not None:
            tr.emit(
                "outline",
                name=", ".join(inv.name for inv in self._invariants[:4])
                + ("..." if len(self._invariants) > 4 else ""),
                model=getattr(model, "name", type(model).__name__),
                obligations=report.obligations_discharged,
                failed=len(report.failures),
            )
        return report


def peterson_outline() -> ProofOutline:
    """The paper's Peterson proof as a proof outline (Section 5.2)."""
    from repro.casestudies.peterson import FLAG, TURN, TRUE, FALSE
    from repro.verify.assertions import DV, Or, UpdateOnly, VO

    outline = ProofOutline()
    outline.everywhere("(4) turn update-only", UpdateOnly(TURN))
    outline.everywhere("(5) turn =1 2 ∨ turn =2 1", Or(DV(TURN, 1, 2), DV(TURN, 2, 1)))
    for t in (1, 2):
        other = 3 - t
        outline.at(
            f"(6) t{t}", {t: (3, 4, 5, 6)}, DV(FLAG[t], t, TRUE)
        )
        outline.at(
            f"(7) t{t}", {t: (4, 5, 6)}, VO(FLAG[t], TURN)
        )
        outline.at(
            f"(8) t{t}",
            {t: (4, 5, 6), other: (4, 5, 6)},
            Or(DV(FLAG[other], t, TRUE), DV(TURN, other, t)),
        )
        outline.at(
            f"(9) t{t}", {t: (5,), other: (4, 5, 6)}, DV(TURN, other, t)
        )
        outline.at(f"(10) t{t}", {t: (2,)}, DV(FLAG[t], t, FALSE))
    return outline
