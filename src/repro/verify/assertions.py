"""Determinate-value and variable-ordering assertions (Definitions 5.1/5.5).

**Determinate value** ``x =_t v`` holds in state σ iff

1. ``v = wrval(σ.last(x))``, and
2. ``σ.last(x) ∈ hbc_σ(t)`` — the *happens-before cone* of ``t``:
   ``I_σ ∪ {e | ∃e'. tid(e') = t ∧ (e, e') ∈ hb?}`` (the last write is an
   initialising write, an event of ``t`` itself, or happens-before one).

Together these imply ``OW_σ(t)|_x = {σ.last(x)}`` (the thread can *only*
read the final value — the weak-memory analogue of ``x = v``), which
:func:`ow_is_last_singleton` checks independently for the property tests.

**Variable ordering** ``x → y`` holds iff
``(σ.last(x), σ.last(y)) ∈ σ.hb`` — how knowledge about ``x`` piggybacks
on synchronising accesses to ``y`` (the message-passing idiom).

On top of the two semantic predicates sits a tiny assertion language
(conjunction, disjunction, implication, pc guards) in which the paper's
Peterson invariants (4)–(10) are written verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Sequence, Tuple

from repro.c11.events import Event
from repro.c11.observability import observable_writes
from repro.c11.state import C11State
from repro.interp.config import Configuration
from repro.lang.actions import Value, Var
from repro.lang.program import Tid


# ----------------------------------------------------------------------
# Semantic predicates
# ----------------------------------------------------------------------


def happens_before_cone(state: C11State, tid: Tid) -> FrozenSet[Event]:
    """``hbc_σ(t) = I_σ ∪ {e | ∃e'. tid(e') = t ∧ (e, e') ∈ hb?}``.

    (Appendix B.2.  The reflexive closure makes every event of ``t``
    itself a member.)  Sequence-backed states read the cone straight
    off the incremental ``hb`` bitmasks (DESIGN.md §11) — this sits on
    the ``verify`` obligation hot path; others materialise ``hb``.
    """
    c = state.compact
    if c is not None:
        return frozenset(c.inits) | frozenset(
            c.events_from_mask(c.thread_cone(tid))
        )
    cone = set(state.init_writes)
    mine = state.events_of(tid)
    cone.update(mine)
    hb_pred = state.hb.predecessors_map()
    for e in mine:
        cone.update(hb_pred.get(e, ()))
    return frozenset(cone)


def _hb_contains(state: C11State, a: Event, b: Event) -> bool:
    """``(a, b) ∈ hb``, without materialising the relation when the
    state carries bitmasks."""
    c = state.compact
    if c is not None:
        return bool((c.hb[c.index[b]] >> c.index[a]) & 1)
    return (a, b) in state.hb.pairs


def _in_cone(state: C11State, e: Event, tid: Tid) -> bool:
    """``e ∈ hbc_σ(t)`` without building the cone set on bitmask states."""
    c = state.compact
    if c is not None:
        return e.is_init or bool((c.thread_cone(tid) >> c.index[e]) & 1)
    return e in happens_before_cone(state, tid)


def dv_holds(state: C11State, x: Var, tid: Tid, value: Value) -> bool:
    """Definition 5.1: ``x =_t v``."""
    last = state.last(x)
    if last is None or last.wrval != value:
        return False
    return _in_cone(state, last, tid)


def dv_value(state: C11State, x: Var, tid: Tid) -> Optional[Value]:
    """The ``v`` with ``x =_t v``, or ``None`` if no value is determinate."""
    last = state.last(x)
    if last is None:
        return None
    if _in_cone(state, last, tid):
        return last.wrval
    return None


def ow_is_last_singleton(state: C11State, x: Var, tid: Tid) -> bool:
    """Condition (3) of Definition 5.1: ``OW_σ(t)|_x = {σ.last(x)}``.

    Implied by the cone condition (the paper's remark after Def 5.1);
    property tests check the implication on every explored state.
    """
    last = state.last(x)
    return observable_writes(state, tid, x) == frozenset({last} if last else ())


def vo_holds(state: C11State, x: Var, y: Var) -> bool:
    """Definition 5.5: ``x → y``."""
    last_x, last_y = state.last(x), state.last(y)
    if last_x is None or last_y is None:
        return False
    return _hb_contains(state, last_x, last_y)


def current_value(state, x: Var) -> Optional[Value]:
    """The globally most recent value of ``x``, model-agnostically.

    For event-based states this is ``wrval(σ.last(x))`` — the mo-maximal
    write, with no determinacy claim attached (contrast :func:`dv_holds`,
    which additionally demands the thread *know* it).  For SC stores it
    is simply the store content.  This is what lets one proof outline be
    checked under both the RA and the SC model (DESIGN.md §10): pc
    guards and value facts transfer, thread-indexed determinate-value
    facts do not.
    """
    last = getattr(state, "last", None)
    if last is not None:
        event = last(x)
        return None if event is None else event.wrval
    return dict(state).get(x)


# ----------------------------------------------------------------------
# Assertion language
# ----------------------------------------------------------------------


class Assertion:
    """Base class: an assertion evaluable on a configuration."""

    def holds(self, config: Configuration) -> bool:
        raise NotImplementedError

    # sugar ------------------------------------------------------------
    def __and__(self, other: "Assertion") -> "Assertion":
        return And(self, other)

    def __or__(self, other: "Assertion") -> "Assertion":
        return Or(self, other)

    def implies(self, other: "Assertion") -> "Assertion":
        return Implies(self, other)


@dataclass(frozen=True)
class DV(Assertion):
    """``x =_t v`` as an assertion object."""

    x: Var
    tid: Tid
    value: Value

    def holds(self, config: Configuration) -> bool:
        return dv_holds(config.state, self.x, self.tid, self.value)

    def __str__(self) -> str:
        return f"{self.x} ={self.tid} {self.value}"


@dataclass(frozen=True)
class VO(Assertion):
    """``x → y`` as an assertion object."""

    x: Var
    y: Var

    def holds(self, config: Configuration) -> bool:
        return vo_holds(config.state, self.x, self.y)

    def __str__(self) -> str:
        return f"{self.x} -> {self.y}"


@dataclass(frozen=True)
class ValEq(Assertion):
    """``value(x) = v`` — the current (mo-last / store) value of ``x``.

    Weaker than :class:`DV`: no thread is claimed to *know* the value,
    so the assertion is meaningful under any memory model — the shape
    used by outlines that are checked under SC as well as RA.
    """

    x: Var
    value: Value

    def holds(self, config: Configuration) -> bool:
        return current_value(config.state, self.x) == self.value

    def __str__(self) -> str:
        return f"value({self.x}) = {self.value}"


@dataclass(frozen=True)
class VarsEq(Assertion):
    """``value(x) = value(y)`` — two current values agree (both defined)."""

    x: Var
    y: Var

    def holds(self, config: Configuration) -> bool:
        vx = current_value(config.state, self.x)
        return vx is not None and vx == current_value(config.state, self.y)

    def __str__(self) -> str:
        return f"value({self.x}) = value({self.y})"


@dataclass(frozen=True)
class UpdateOnly(Assertion):
    """``x`` is an update-only variable (Section 5.1)."""

    x: Var

    def holds(self, config: Configuration) -> bool:
        return config.state.is_update_only(self.x)

    def __str__(self) -> str:
        return f"update-only({self.x})"


@dataclass(frozen=True)
class PCIn(Assertion):
    """``P.pc_t ∈ S`` — the program-counter guards of the invariants."""

    tid: Tid
    pcs: Tuple[int, ...]

    def holds(self, config: Configuration) -> bool:
        return config.pc(self.tid) in self.pcs

    def __str__(self) -> str:
        return f"pc{self.tid} in {set(self.pcs)}"


@dataclass(frozen=True)
class And(Assertion):
    left: Assertion
    right: Assertion

    def holds(self, config: Configuration) -> bool:
        return self.left.holds(config) and self.right.holds(config)

    def __str__(self) -> str:
        return f"({self.left} ∧ {self.right})"


@dataclass(frozen=True)
class Or(Assertion):
    left: Assertion
    right: Assertion

    def holds(self, config: Configuration) -> bool:
        return self.left.holds(config) or self.right.holds(config)

    def __str__(self) -> str:
        return f"({self.left} ∨ {self.right})"


@dataclass(frozen=True)
class Implies(Assertion):
    premise: Assertion
    conclusion: Assertion

    def holds(self, config: Configuration) -> bool:
        return (not self.premise.holds(config)) or self.conclusion.holds(config)

    def __str__(self) -> str:
        return f"({self.premise} ⟹ {self.conclusion})"


@dataclass(frozen=True)
class Not_(Assertion):
    operand: Assertion

    def holds(self, config: Configuration) -> bool:
        return not self.operand.holds(config)

    def __str__(self) -> str:
        return f"¬({self.operand})"


@dataclass(frozen=True)
class Always(Assertion):
    """The trivially true assertion (unit for conjunction)."""

    def holds(self, config: Configuration) -> bool:
        return True

    def __str__(self) -> str:
        return "true"


def all_of(assertions: Sequence[Assertion]) -> Assertion:
    """Conjunction of a sequence of assertions."""
    result: Assertion = Always()
    for a in assertions:
        result = And(result, a) if not isinstance(result, Always) else a
    return result
