"""A syntactic proof context applying Figure 4 across transitions.

The paper's proofs thread a *set* of determinate-value and
variable-ordering assertions through the program, rule by rule.
:class:`AssertionContext` mechanises one step of that bookkeeping: given
the assertions known before a transition and the transition's concrete
``(m, e)``, it computes the assertions derivable *syntactically* by the
rules — never by looking at the target state.  Soundness (everything
derived holds semantically in the target) is then checked by the tests
and the E9 benchmark, mirroring Lemmas B.1–B.3.

The context deliberately under-approximates: Figure 4 is not complete
(the paper never claims it is), so semantically-true assertions may be
dropped.  What must never happen is the reverse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Set, Tuple

from repro.c11.events import Event
from repro.c11.state import C11State
from repro.interp.interpreter import InterpretedStep
from repro.lang.actions import Value, Var
from repro.lang.program import Tid

DVFact = Tuple[Var, Tid, Value]  # x =_t v
VOFact = Tuple[Var, Var]  # x -> y


@dataclass(frozen=True)
class AssertionContext:
    """An immutable set of syntactic facts about one state."""

    dvs: FrozenSet[DVFact]
    vos: FrozenSet[VOFact]

    @classmethod
    def empty(cls) -> "AssertionContext":
        return cls(frozenset(), frozenset())

    @classmethod
    def initial(cls, state: C11State, threads: Iterable[Tid]) -> "AssertionContext":
        """Rule Init: every variable is determinate (at its initial
        value) for every thread in σ₀."""
        dvs: Set[DVFact] = set()
        for x in sorted(state.variables()):
            last = state.last(x)
            if last is None:
                continue
            for t in threads:
                dvs.add((x, t, last.wrval))
        return cls(frozenset(dvs), frozenset())

    # ------------------------------------------------------------------

    def dv_value(self, x: Var, t: Tid) -> Optional[Value]:
        for fx, ft, v in self.dvs:
            if fx == x and ft == t:
                return v
        return None

    def has_vo(self, x: Var, y: Var) -> bool:
        return (x, y) in self.vos

    # ------------------------------------------------------------------

    def step(self, step: InterpretedStep) -> "AssertionContext":
        """Apply Figure 4 to one concrete transition.

        ``step`` supplies the event ``e`` and observed write ``m``; the
        *source* state is consulted only for ``σ.last`` (which the rules'
        premises mention explicitly) — never the target.
        """
        e: Optional[Event] = step.event
        if e is None:  # silent: nothing changes
            return self

        sigma: C11State = step.source.state
        m: Optional[Event] = step.observed
        new_dvs: Set[DVFact] = set()
        new_vos: Set[VOFact] = set()

        is_last = m is not None and e.var is not None and m == sigma.last(e.var)

        # NoMod: facts about variables e does not write survive.
        for x, t, v in self.dvs:
            if not (e.is_write and e.var == x):
                new_dvs.add((x, t, v))

        # NoModOrd: orderings not involving a written variable survive.
        for x, y in self.vos:
            if not (e.is_write and e.var in (x, y)):
                new_vos.add((x, y))
            # UOrd: an update of y reading a releasing write keeps x -> y
            elif (
                e.is_update
                and e.var == y
                and m is not None
                and m.is_write
                and m.is_release
            ):
                new_vos.add((x, y))

        # ModLast: writing mo-after the last modification makes the value
        # determinate for the writer.
        if e.is_write and is_last:
            new_dvs.add((e.var, e.tid, e.wrval))

        # AcqRd: acquiring the last, releasing write determines the value
        # for the reader.  Pure reads only — an update writes the
        # variable and gets its (different) fact from ModLast above.
        if (
            e.is_read
            and e.is_acquire
            and not e.is_update
            and m is not None
            and m.is_write
            and m.is_release
            and is_last
        ):
            new_dvs.add((e.var, e.tid, e.rdval))

        # Transfer: synchronising with last(y) copies x =_t v over x -> y.
        if (
            e.is_read
            and e.is_acquire
            and m is not None
            and m.is_write
            and m.is_release
            and is_last
        ):
            y = e.var
            for x, _t, v in self.dvs:
                if self.has_vo(x, y):
                    new_dvs.add((x, e.tid, v))

        # WOrd: writing last(y) while x is determinate for the writer
        # orders x before y.
        if e.is_write and is_last:
            y = e.var
            for x, t, _v in self.dvs:
                if t == e.tid and x != y:
                    new_vos.add((x, y))

        return AssertionContext(frozenset(new_dvs), frozenset(new_vos))

    # ------------------------------------------------------------------

    def semantically_sound_in(self, state: C11State) -> Tuple[bool, str]:
        """Whether every fact holds semantically (Definition 5.1/5.5)."""
        from repro.verify.assertions import dv_holds, vo_holds

        for x, t, v in self.dvs:
            if not dv_holds(state, x, t, v):
                return False, f"{x} ={t} {v}"
        for x, y in self.vos:
            if not vo_holds(state, x, y):
                return False, f"{x} -> {y}"
        return True, ""

    def __str__(self) -> str:
        dvs = ", ".join(f"{x}={t}:{v}" for x, t, v in sorted(self.dvs))
        vos = ", ".join(f"{x}->{y}" for x, y in sorted(self.vos))
        return f"{{{dvs} | {vos}}}"
