"""Invariant checking over explored state spaces (the paper's method).

The paper verifies Peterson by exhibiting invariants (4)–(10) and
proving, per transition case, that each is preserved (Appendix D).  The
engine here does the machine-checked analogue over a *bounded* state
space: every named invariant is evaluated on every reachable
configuration, and — in inductive mode — across every transition whose
source satisfies the whole invariant set (exactly the proof obligations
of the paper, discharged pointwise instead of symbolically).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.interp.config import Configuration
from repro.interp.explore import ExplorationResult, explore
from repro.interp.interpreter import InterpretedStep
from repro.interp.ra_model import RAMemoryModel
from repro.interp.memory_model import MemoryModel
from repro.lang.actions import Value, Var
from repro.lang.program import Program
from repro.verify.assertions import Assertion


@dataclass(frozen=True)
class Invariant:
    """A named assertion expected to hold in every reachable state."""

    name: str
    assertion: Assertion

    def holds(self, config: Configuration) -> bool:
        return self.assertion.holds(config)

    def __str__(self) -> str:
        return f"{self.name}: {self.assertion}"


@dataclass
class InvariantFailure:
    invariant: str
    config: Configuration
    via: Optional[InterpretedStep] = None

    def __str__(self) -> str:
        suffix = f" after {self.via.event}" if self.via and self.via.event else ""
        return f"invariant {self.invariant} violated{suffix}"


@dataclass
class InvariantReport:
    """Per-invariant outcome of a bounded check."""

    program_name: str
    configs: int = 0
    transitions: int = 0
    truncated: bool = False
    holds_everywhere: Dict[str, bool] = field(default_factory=dict)
    failures: List[InvariantFailure] = field(default_factory=list)

    @property
    def all_hold(self) -> bool:
        return not self.failures

    def row(self) -> str:
        verdict = "OK" if self.all_hold else f"{len(self.failures)} FAILURES"
        bound = " (bounded)" if self.truncated else ""
        return (
            f"{self.program_name:<28} configs={self.configs:>8} "
            f"transitions={self.transitions:>8} invariants={len(self.holds_everywhere)} "
            f"{verdict}{bound}"
        )


def check_invariants(
    program: Program,
    init_values: Mapping[Var, Value],
    invariants: Sequence[Invariant],
    model: Optional[MemoryModel] = None,
    max_events: Optional[int] = None,
    max_configs: Optional[int] = None,
    name: str = "program",
    keep_failures: int = 10,
    stop_on_violation: bool = False,
) -> InvariantReport:
    """Evaluate every invariant on every reachable configuration."""
    model = model if model is not None else RAMemoryModel()
    report = InvariantReport(program_name=name)
    report.holds_everywhere = {inv.name: True for inv in invariants}

    def check(config: Configuration) -> List[str]:
        messages = []
        for inv in invariants:
            if not inv.holds(config):
                report.holds_everywhere[inv.name] = False
                if len(report.failures) < keep_failures:
                    report.failures.append(InvariantFailure(inv.name, config))
                messages.append(inv.name)
        return messages

    result = explore(
        program,
        init_values,
        model,
        max_events=max_events,
        max_configs=max_configs,
        check_config=check,
        stop_on_violation=stop_on_violation,
    )
    report.configs = result.configs
    report.transitions = result.transitions
    report.truncated = result.truncated
    return report


def check_inductive_step(
    step: InterpretedStep, invariants: Sequence[Invariant]
) -> List[str]:
    """The paper's per-transition proof obligation: if every invariant
    holds at the source, each must hold at the target.  Returns the names
    of invariants broken by the step (empty = obligation discharged)."""
    if not all(inv.holds(step.source) for inv in invariants):
        return []  # vacuous: the source is outside the invariant set
    return [inv.name for inv in invariants if not inv.holds(step.target)]
