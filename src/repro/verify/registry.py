"""The proof registry: every case study with a checked outline.

The workbench's front door (``python -m repro verify``, DESIGN.md §10)
resolves *names* to :class:`ProofCaseStudy` entries — a program factory,
its initialisation, an outline factory, the memory models the outline is
stated for, and the event bound that keeps busy-wait state spaces
finite.  Worker processes re-resolve entries from this registry the same
way the suite runner re-resolves litmus tests (everything here is
picklable-by-name, nothing by value).

Every registered (entry × model) pair is expected to *prove*: the
registry is the library of established results, swept wholesale by
``repro verify --all`` and ``tests/test_proof_registry.py``.  Negative
results — the relaxed-turn Peterson, the non-atomic spinlock, Dekker
under RA — live in tests and examples as refutation canaries, not here.

Entries are registered lazily (factories import their case-study module
on first use), so importing :mod:`repro.verify` stays light.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.lang.actions import Value, Var

#: Model names an outline may be pinned to (subset of the CLI's models;
#: PE has no meaningful per-thread assertions and SRA adds nothing the
#: outlines can observe over RA, so neither is a registry target).
OUTLINE_MODELS = ("ra", "sc")


@dataclass(frozen=True)
class ProofCaseStudy:
    """One named scenario: a program paired with its proof outline."""

    name: str
    description: str
    #: builds the program (kept as a factory — programs are cheap and
    #: this keeps the entry picklable and the import lazy)
    program: Callable[[], object]
    #: builds the outline
    outline: Callable[[], object]
    #: initial shared-variable values
    init: Mapping[Var, Value] = field(default_factory=dict)
    #: models the outline is stated for (and proves under)
    models: Tuple[str, ...] = ("ra",)
    #: event bound for models with growing states (ignored by SC, whose
    #: busy waits close into cycles and need no unrolling bound)
    max_events: Optional[int] = None

    def check(self, model_name: str, model=None, strategy: str = "bfs",
              reduction: str = "none", max_configs: Optional[int] = None):
        """Discharge this entry's obligations under one model."""
        if model is None:
            model = model_by_name(model_name)
        return self.outline().check(
            self.program(),
            dict(self.init),
            model=model,
            max_events=self.max_events,
            max_configs=max_configs,
            strategy=strategy,
            reduction=reduction,
        )


def model_by_name(name: str):
    """Instantiate a memory model from its registry name."""
    from repro.interp.ra_model import RAMemoryModel
    from repro.interp.sc import SCMemoryModel
    from repro.interp.sra_model import SRAMemoryModel

    factories = {"ra": RAMemoryModel, "sra": SRAMemoryModel, "sc": SCMemoryModel}
    try:
        return factories[name.lower()]()
    except KeyError:
        raise ValueError(
            f"unknown model {name!r}; choose from {sorted(factories)}"
        )


class ProofRegistry:
    """Name → :class:`ProofCaseStudy`, in registration order."""

    def __init__(self) -> None:
        self._entries: Dict[str, ProofCaseStudy] = {}

    def register(self, entry: ProofCaseStudy) -> ProofCaseStudy:
        if entry.name in self._entries:
            raise ValueError(f"duplicate proof case study {entry.name!r}")
        unknown = [m for m in entry.models if m not in OUTLINE_MODELS]
        if unknown:
            raise ValueError(
                f"{entry.name!r} pins unknown models {unknown}; outlines "
                f"are stated for {OUTLINE_MODELS}"
            )
        self._entries[entry.name] = entry
        return entry

    def get(self, name: str) -> ProofCaseStudy:
        try:
            return self._entries[name]
        except KeyError:
            raise KeyError(
                f"unknown case study {name!r}; choose from {self.names()} "
                "(or 'repro verify --list')"
            )

    def names(self) -> List[str]:
        return list(self._entries)

    def entries(self) -> List[ProofCaseStudy]:
        return list(self._entries.values())

    def pairs(self) -> List[Tuple[ProofCaseStudy, str]]:
        """Every (entry, model) combination the registry vouches for."""
        return [(e, m) for e in self.entries() for m in e.models]


#: The library.  Factories import lazily; see the module docstring.
PROOFS = ProofRegistry()


def _program(module: str, factory: str, **kwargs) -> Callable[[], object]:
    def build():
        import importlib

        return getattr(importlib.import_module(module), factory)(**kwargs)

    return build


_CS = "repro.casestudies"

PROOFS.register(ProofCaseStudy(
    name="peterson",
    description="Peterson's algorithm, invariants (4)-(10) (paper §5.2)",
    program=_program(f"{_CS}.peterson", "peterson_program", once=True),
    outline=_program("repro.verify.outline", "peterson_outline"),
    init={"flag1": 0, "flag2": 0, "turn": 1},
    models=("ra",),
    max_events=9,
))

PROOFS.register(ProofCaseStudy(
    name="peterson-sc",
    description="Peterson under SC: the conventional, model-agnostic outline",
    program=_program(f"{_CS}.peterson", "peterson_program", once=True),
    outline=_program(f"{_CS}.peterson", "peterson_outline_sc"),
    init={"flag1": 0, "flag2": 0, "turn": 1},
    models=("sc",),
))

PROOFS.register(ProofCaseStudy(
    name="message-passing",
    description="Example 5.7: release/acquire message passing, DV transfer",
    program=_program(f"{_CS}.message_passing", "message_passing_program"),
    outline=_program(f"{_CS}.message_passing", "mp_outline"),
    init={"d": 0, "f": 0, "r": 0},
    models=("ra",),
    max_events=10,
))

PROOFS.register(ProofCaseStudy(
    name="message-passing-val",
    description="Example 5.7, value-only outline — one outline, two models",
    program=_program(f"{_CS}.message_passing", "message_passing_program"),
    outline=_program(f"{_CS}.message_passing", "mp_outline_valonly"),
    init={"d": 0, "f": 0, "r": 0},
    models=("ra", "sc"),
    max_events=10,
))

PROOFS.register(ProofCaseStudy(
    name="token-ring",
    description="token hand-off lock over an update-only variable",
    program=_program(f"{_CS}.token_ring", "token_ring_program", n_threads=2),
    outline=_program(f"{_CS}.token_ring", "token_ring_outline", n_threads=2),
    init={"token": 1},
    models=("ra",),
    max_events=10,
))

PROOFS.register(ProofCaseStudy(
    name="spinlock-tas",
    description="test-and-set spinlock via the value-returning exchange",
    program=_program(f"{_CS}.spinlock", "spinlock_program"),
    outline=_program(f"{_CS}.spinlock", "spinlock_outline"),
    init={"lock": 0, "r1": 0, "r2": 0},
    models=("ra",),
    max_events=10,
))

PROOFS.register(ProofCaseStudy(
    name="ticket-lock",
    description="ticket lock from fetch-and-add (update-only ticket counter)",
    program=_program(f"{_CS}.ticket_lock", "ticket_lock_program"),
    outline=_program(f"{_CS}.ticket_lock", "ticket_lock_outline"),
    init={"next": 0, "serving": 0, "my1": 0, "my2": 0},
    models=("ra",),
    max_events=12,
))

PROOFS.register(ProofCaseStudy(
    name="seqlock",
    description="seqlock writer/reader: accepted snapshots are consistent",
    program=_program(f"{_CS}.seqlock", "seqlock_program"),
    outline=_program(f"{_CS}.seqlock", "seqlock_outline"),
    init={"seq": 0, "d1": 0, "d2": 0, "s1": 0, "s2": 0,
          "v1": 0, "v2": 0, "ok": 0},
    models=("ra",),
))

PROOFS.register(ProofCaseStudy(
    name="barrier",
    description="flag-handshake barrier: symmetric message passing",
    program=_program(f"{_CS}.barrier", "barrier_program"),
    outline=_program(f"{_CS}.barrier", "barrier_outline"),
    init={"xa": 0, "xb": 0, "a": 0, "b": 0, "ra": 0, "rb": 0},
    models=("ra",),
    max_events=10,
))

PROOFS.register(ProofCaseStudy(
    name="dekker",
    description="Dekker entry protocol — provable under SC only (neg. under RA)",
    program=_program(f"{_CS}.dekker", "dekker_entry_program"),
    outline=_program(f"{_CS}.dekker", "dekker_outline"),
    init={"flag1": 0, "flag2": 0},
    models=("sc",),
))


__all__ = [
    "OUTLINE_MODELS",
    "PROOFS",
    "ProofCaseStudy",
    "ProofRegistry",
    "model_by_name",
]
