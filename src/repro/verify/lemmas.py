"""Lemmas 5.3, 5.4 and 5.6 as executable checks.

Each lemma is universally quantified over reachable transitions or
states; the checkers below evaluate one instance, and the test-suite /
E9 benchmark discharge them over exhaustively explored state spaces.
"""

from __future__ import annotations

from typing import Optional

from repro.c11.state import C11State
from repro.interp.interpreter import InterpretedStep
from repro.lang.actions import Var
from repro.lang.program import Tid
from repro.verify.assertions import dv_value


def lemma_determinate_read(step: InterpretedStep) -> bool:
    """Lemma 5.3 (Determinate-Value Read): for a Read/RMW transition
    ``(P, σ) ⇒RA (P', σ')``, if ``var(e) =_tid(e) v`` in σ then
    ``rdval(e) = v``.

    Vacuously true for silent/write transitions and when no value is
    determinate.
    """
    e = step.event
    if e is None or not e.is_read:
        return True
    sigma: C11State = step.source.state
    v = dv_value(sigma, e.var, e.tid)
    if v is None:
        return True
    return e.rdval == v


def lemma_determinate_agreement(
    state: C11State, x: Var, t1: Tid, t2: Tid
) -> bool:
    """Lemma 5.4 (Determinate-Value Agreement): if ``x =_t v`` and
    ``x =_t' v'`` then ``v = v'``.

    With our semantic encoding both values come from ``σ.last(x)``, so
    the check is that the *definition* delivers agreement — it guards
    against regressions in :func:`dv_value` itself.
    """
    v1 = dv_value(state, x, t1)
    v2 = dv_value(state, x, t2)
    return v1 is None or v2 is None or v1 == v2


def lemma_last_modification(step: InterpretedStep) -> bool:
    """Lemma 5.6 (Last Modification Transition): for a reachable
    transition observing ``m`` with ``t = tid(e)``, ``x = var(e)``:
    if ``x =_t v`` for some ``v``, or ``x`` is update-only in σ, then
    ``m = σ.last(x)``.

    The update-only case only constrains *modification* transitions: the
    paper's proof rests on "``m`` is not covered", which the Write/RMW
    rules guarantee but the Read rule does not (reads may observe covered
    writes).
    """
    e = step.event
    if e is None or step.observed is None:
        return True
    sigma: C11State = step.source.state
    x, t = e.var, e.tid
    determinate = dv_value(sigma, x, t) is not None
    update_only = e.is_write and sigma.is_update_only(x)
    if determinate or update_only:
        return step.observed == sigma.last(x)
    return True
