"""The verification method of Section 5.

* :mod:`repro.verify.assertions` — semantic definitions of
  determinate-value assertions ``x =_t v`` (Definition 5.1) and
  variable-ordering assertions ``x → y`` (Definition 5.5), plus an
  assertion combinator language for writing invariants.
* :mod:`repro.verify.rules` — the eight inference rules of Figure 4 as
  executable premise/conclusion pairs, with a soundness checker that
  discharges them over explored transitions (Lemmas B.1–B.3).
* :mod:`repro.verify.lemmas` — Lemmas 5.3, 5.4 and 5.6 as runtime
  checks.
* :mod:`repro.verify.invariants` — an engine that checks named
  invariants over every reachable configuration (and transition),
  mirroring the paper's per-transition proofs (Appendix D).
* :mod:`repro.verify.calculus` — a syntactic proof context that carries
  a set of assertions across transitions by applying Figure 4.
* :mod:`repro.verify.registry` — the proof registry behind the
  ``repro verify`` workbench (DESIGN.md §10): every case study paired
  with its checked outline and the models it is stated for.
"""

from repro.verify.assertions import (
    DV,
    VO,
    PCIn,
    And,
    Or,
    Implies,
    Not_,
    UpdateOnly,
    ValEq,
    VarsEq,
    Assertion,
    current_value,
    dv_holds,
    vo_holds,
    happens_before_cone,
)
from repro.verify.rules import RULES, RuleCheckResult, check_rules_on_step
from repro.verify.lemmas import (
    lemma_determinate_read,
    lemma_determinate_agreement,
    lemma_last_modification,
)
from repro.verify.invariants import Invariant, InvariantReport, check_invariants
from repro.verify.calculus import AssertionContext
from repro.verify.outline import ProofOutline, OutlineReport, peterson_outline
from repro.verify.registry import PROOFS, ProofCaseStudy, ProofRegistry

__all__ = [
    "DV",
    "VO",
    "PCIn",
    "And",
    "Or",
    "Implies",
    "Not_",
    "UpdateOnly",
    "ValEq",
    "VarsEq",
    "Assertion",
    "current_value",
    "dv_holds",
    "vo_holds",
    "happens_before_cone",
    "PROOFS",
    "ProofCaseStudy",
    "ProofRegistry",
    "RULES",
    "RuleCheckResult",
    "check_rules_on_step",
    "lemma_determinate_read",
    "lemma_determinate_agreement",
    "lemma_last_modification",
    "Invariant",
    "InvariantReport",
    "check_invariants",
    "AssertionContext",
    "ProofOutline",
    "OutlineReport",
    "peterson_outline",
]
