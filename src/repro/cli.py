"""Command-line interface: ``python -m repro <command> ...``.

Commands
========

``run FILE``
    Parse a ``.litmus`` file (see :mod:`repro.lang.parser`), explore it
    exhaustively under a memory model and decide its ``exists`` /
    ``forbidden`` clause.  Exit code 0 when the verdict matches the
    clause's intent, 1 otherwise.  ``--shards N`` partitions the single
    exploration across N worker shards and ``--spill`` bounds the
    in-memory visited set with an on-disk bucket store — both
    outcome-identical by construction (DESIGN.md §15).

``table``
    Print the built-in litmus suite's verdict table under RA and SC
    (and, with ``--models``, any subset of ra/sra/sc).

``dot FILE``
    Explore a ``.litmus`` file and write a Graphviz rendering of one
    terminal C11 state (the first satisfying the outcome clause, if any,
    else the first terminal state).

``soundness FILE``
    Explore the file's program under RA and check Definition 4.2 on
    every reachable state (Theorem 4.4 empirically, per program).

``suite``
    Run the full litmus suite (and, with ``--case-studies``, the case
    studies) through the engine's parallel runner: one exploration per
    (test, model) pair, fanned out over ``--jobs`` worker processes.
    ``--strategy`` selects the search order (bfs / dfs / iddfs),
    ``--reduction`` a partial-order reduction (DESIGN.md §9; the
    parsimonious ``optimal`` tier is §13) and ``--equivalence`` the
    abstraction dpor/optimal key configurations by; the verdicts are
    strategy-, reduction- and parallelism-independent.

``fuzz``
    Differential fuzzing (DESIGN.md §6): generate ``--iters`` random
    programs from ``--seed``, run each under SC/SRA/RA and check the
    refinement chain, soundness, axiomatic agreement and POR parity
    (the ``--reduction`` search must be outcome-identical to the full
    one); ``--check-orders`` adds the derived-order oracle, replaying
    the compact bitset representation against the definitional
    closures on every reachable state (DESIGN.md §11), and
    ``--check-lowering`` the lowering oracle, replaying every program
    with the compiled step tables on and off and diffing the full
    transition streams (DESIGN.md §12), and ``--check-shards`` the
    shard-parity oracle, re-exploring each program hash-partitioned
    across three shards and requiring exact parity with the
    single-process search (DESIGN.md §15).  Divergences
    are delta-debugged to minimal reproducers and persisted under
    ``--corpus-dir`` for pytest replay.  Exit code 1 iff any diverged.

``verify``
    The verification workbench (DESIGN.md §10): mechanically discharge
    a proof outline's obligations — initialisation plus per-transition
    preservation, the paper's Fig. 4 / Appendix D structure — over the
    engine's bounded exploration.  ``verify NAME...`` reports each
    named case study per-obligation; ``verify --all`` sweeps every
    registered (outline × model) pair through the parallel runner;
    ``verify --file F.litmus --outline SPEC.py`` checks an ad-hoc
    program against an outline built in a Python spec file.
    ``--reduction sleep`` is verdict-preserving (sleep sets visit every
    configuration); ``dpor`` and ``optimal`` prune configurations — the
    very domain the obligations quantify over — so the workbench falls
    back to the unreduced search and says so.  Exit code 1 iff any
    obligation failed.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.interp.memory_model import MemoryModel
from repro.interp.ra_model import RAMemoryModel
from repro.interp.sc import SCMemoryModel
from repro.interp.sra_model import SRAMemoryModel

MODELS = {
    "ra": RAMemoryModel,
    "sra": SRAMemoryModel,
    "sc": SCMemoryModel,
}


def _model(name: str) -> MemoryModel:
    try:
        return MODELS[name.lower()]()
    except KeyError:
        raise SystemExit(f"unknown model {name!r}; choose from {sorted(MODELS)}")


def _load(path: str):
    from repro.lang.parser import parse_litmus

    with open(path, "r", encoding="utf-8") as handle:
        return parse_litmus(handle.read())


#: Ledger payload of the command that just ran: handlers stash their
#: footer-level stats (and seed) here; ``main`` appends the record
#: (DESIGN.md §14) so every exiting path — including SystemExit — is
#: ledgered consistently in one place.
_RUN_SUMMARY: dict = {}


def _note_stats(**stats) -> None:
    """Record footer stats for the run ledger and ``--metrics`` export."""
    _RUN_SUMMARY.update(
        {k: v for k, v in stats.items() if v is not None}
    )


def _rate_line(configs: int, seconds: float) -> str:
    """Derived throughput, spin-calibrated when the calibrator works:
    states/sec alone depends on the machine; states per million spin
    iterations is comparable across machines (DESIGN.md §12)."""
    rate = configs / seconds if seconds else 0.0
    try:
        from repro.engine.calibrate import per_mspin, spin_score

        score = spin_score()
        return (
            f"throughput: {rate:,.0f} states/sec = "
            f"{per_mspin(rate, score):,.0f} states/Mspin "
            f"(spin {score / 1e6:.1f}M ops/s)"
        )
    except Exception:  # noqa: BLE001 - calibration is best-effort
        return f"throughput: {rate:,.0f} states/sec"


def _activate_obs(args: argparse.Namespace) -> bool:
    """Turn on the trace bus / progress env for this process tree.

    ``--trace`` both enables the in-process tracer and exports
    ``REPRO_TRACE`` so pool workers trace too, whether they inherit the
    live tracer (fork) or re-resolve the environment (spawn).  All
    records land in one O_APPEND file; lines interleave atomically.
    Returns whether tracing was enabled (so the dispatcher can undo it
    — ``main`` is also called in-process by tests).
    """
    import os

    if not getattr(args, "trace", None):
        return False
    from repro.obs import trace as obs_trace

    os.environ["REPRO_TRACE"] = args.trace
    if args.trace_sample is not None:
        os.environ["REPRO_TRACE_SAMPLE"] = str(args.trace_sample)
    obs_trace.enable(args.trace, sample=args.trace_sample)
    return True


def _deactivate_obs() -> None:
    import os

    from repro.obs import trace as obs_trace

    obs_trace.disable()
    os.environ.pop("REPRO_TRACE", None)
    os.environ.pop("REPRO_TRACE_SAMPLE", None)


def _export_metrics(args: argparse.Namespace) -> None:
    if getattr(args, "metrics", None):
        from repro.obs.metrics import METRICS, export_to

        METRICS.record_totals("cli", _RUN_SUMMARY)
        fmt = export_to(args.metrics)
        print(f"wrote {args.metrics} ({fmt} metrics)")


def _heartbeat(args: argparse.Namespace, total: int, label: str):
    """The ``--progress`` callback for ParallelRunner.run, or ``None``."""
    if not getattr(args, "progress", False):
        return None
    from repro.obs.progress import Heartbeat

    return Heartbeat(total, label=label, force=True)


def _profile_lines(configs: int, stats) -> List[str]:
    """The ``--profile`` / suite footer: phase split + calibrated rate.

    ``expand`` is the phase the lowered-program IR (DESIGN.md §12)
    targets and ``orders`` the phase the compact representation
    (DESIGN.md §11) targets, so the split shows which layer a
    performance change actually moved.  The states/sec figure is also
    reported per million spin iterations (``repro.engine.calibrate``),
    which is comparable across machines and against the committed
    E12 baselines.
    """
    from repro.engine.calibrate import per_mspin, spin_score

    total = stats.time_total
    rate = configs / total if total else 0.0
    score = spin_score()
    return [
        (
            f"profile: expand={stats.time_expand * 1e3:.1f}ms "
            f"(model={stats.time_model * 1e3:.1f}ms "
            f"step={(stats.time_expand - stats.time_model) * 1e3:.1f}ms) "
            f"keys={stats.time_keys * 1e3:.1f}ms "
            f"orders={stats.time_orders * 1e3:.1f}ms "
            f"checks={stats.time_checks * 1e3:.1f}ms "
            f"total={total * 1e3:.1f}ms"
        ),
        (
            f"profile: {rate:,.0f} states/sec; spin {score / 1e6:.1f}M ops/s "
            f"-> {per_mspin(rate, score):,.0f} states/Mspin"
        ),
    ]


def _check_equivalence(args: argparse.Namespace) -> None:
    """A non-default equivalence only means something to the keyed
    reductions — fail up front instead of tracebacking in explore()."""
    if args.equivalence != "shasha-snir" and args.reduction not in (
        "dpor", "optimal",
    ):
        raise SystemExit(
            f"--equivalence {args.equivalence} requires --reduction "
            "dpor or optimal (the tiers that key visited configurations "
            "— DESIGN.md §13)"
        )


def _check_shards(args: argparse.Namespace) -> None:
    """Fail sharding misconfigurations up front with CLI-shaped errors
    (explore() raises the same constraints as ValueErrors)."""
    shards = getattr(args, "shards", 1)
    if shards < 1:
        raise SystemExit("--shards must be >= 1")
    if shards > 1:
        if getattr(args, "strategy", "bfs") != "bfs":
            raise SystemExit(
                "--shards requires --strategy bfs (the superstep "
                "schedule is level-synchronous — DESIGN.md §15)"
            )
        if args.reduction not in ("none", "sleep"):
            raise SystemExit(
                f"--shards supports --reduction none or sleep, not "
                f"{args.reduction!r} (dpor/optimal carry cross-state "
                "scheduling state that does not partition — DESIGN.md §15)"
            )


def cmd_run(args: argparse.Namespace) -> int:
    import os
    import shutil
    import tempfile

    from repro.faults import FaultInterrupt, FaultPlan, clear_plan, set_plan
    from repro.lang.parser import run_parsed_litmus

    _check_equivalence(args)
    _check_shards(args)
    parsed = _load(args.file)
    model = _model(args.model)
    spill_dir, spill_max_bytes, tmp, claimed = None, None, None, None
    if args.spill or args.spill_dir:
        spill_max_bytes = args.spill_bytes
        if args.spill_dir:
            # a shared --spill-dir must not collide between concurrent
            # runs: claim a per-run subdirectory (and reap stale ones
            # left by dead runs — DESIGN.md §16)
            from repro.engine.visited import claim_run_dir

            os.makedirs(args.spill_dir, exist_ok=True)
            spill_dir = claimed = claim_run_dir(args.spill_dir)
        else:
            tmp = tempfile.TemporaryDirectory(prefix="repro-spill-")
            spill_dir = tmp.name
    if args.inject_faults:
        try:
            set_plan(FaultPlan(args.inject_faults))
        except ValueError as exc:
            raise SystemExit(f"--inject-faults: {exc}")
    try:
        reachable, result = run_parsed_litmus(
            parsed, model=model, max_events=args.max_events,
            strategy=args.strategy, reduction=args.reduction,
            equivalence=args.equivalence, shards=args.shards,
            spill_dir=spill_dir, spill_max_bytes=spill_max_bytes,
            checkpoint=args.checkpoint, checkpoint_every=args.checkpoint_every,
            resume=args.resume,
        )
    except FaultInterrupt as exc:
        where = exc.checkpoint or "none written"
        print(f"fault injection stopped the run: {exc}")
        print(f"resumable checkpoint: {where}")
        _note_stats(interrupted=1, checkpoint=exc.checkpoint)
        return 3
    finally:
        if args.inject_faults:
            clear_plan()
        if tmp is not None:
            tmp.cleanup()
        if claimed is not None:
            shutil.rmtree(claimed, ignore_errors=True)
    bound = " (bounded)" if result.truncated else ""
    outcome = (
        f"outcome {'reachable' if reachable else 'unreachable'}"
        if parsed.outcome_mode is not None
        else "no outcome clause"
    )
    print(
        f"{parsed.name} [{model.name}]: {outcome}; "
        f"{result.configs} configurations, {len(result.terminal)} terminal"
        f"{bound}"
    )
    if args.stats:
        print("engine:", result.stats.summary())
        print(_rate_line(result.configs, result.stats.time_total))
    if result.stats.spills:
        print(
            f"spill: {result.stats.spills} flush(es), "
            f"{result.stats.spilled_keys} keys moved to disk "
            f"(budget {spill_max_bytes // (1024 * 1024)}MB)"
        )
    if args.profile:
        for line in _profile_lines(result.configs, result.stats):
            print(line)
    if parsed.outcome_mode == "forbidden":
        ok = not reachable
    elif parsed.outcome_mode == "exists":
        ok = reachable
    else:
        ok = True
    print("verdict:", "OK" if ok else "UNEXPECTED")
    stats = result.stats
    if stats.faults or stats.retries:
        print(
            f"recovery: {stats.faults} worker fault(s), "
            f"{stats.retries} retried attempt(s), "
            f"{stats.respawns} respawned worker(s)"
        )
    _note_stats(
        configs=result.configs,
        transitions=result.transitions,
        terminal=len(result.terminal),
        truncated=result.truncated,
        time_total=stats.time_total,
        peak_frontier=stats.peak_frontier,
        races=stats.races,
        shards=stats.shards if stats.shards else None,
        spills=stats.spills if stats.spills else None,
        spill_failures=stats.spill_failures if stats.spill_failures else None,
        faults=stats.faults if stats.faults else None,
        retries=stats.retries if stats.retries else None,
        respawns=stats.respawns if stats.respawns else None,
        checkpoints=stats.checkpoints if stats.checkpoints else None,
        resumed=stats.resumed if stats.resumed else None,
        resumed_from=args.resume,
        checkpoint=args.checkpoint,
    )
    return 0 if ok else 1


def cmd_suite(args: argparse.Namespace) -> int:
    import time

    from repro.engine.parallel import (
        ParallelRunner,
        SuiteInterrupted,
        case_study_jobs,
        litmus_jobs,
    )

    _check_equivalence(args)
    _check_shards(args)
    models = [m.strip().lower() for m in args.models.split(",")]
    for name in models:
        if name not in MODELS:
            raise SystemExit(
                f"unknown model {name!r}; choose from {sorted(MODELS)}"
            )
    work = litmus_jobs(
        models=models, extra=args.extra, strategy=args.strategy,
        reduction=args.reduction, equivalence=args.equivalence,
        shards=args.shards,
    )
    if args.case_studies:
        work += case_study_jobs(
            strategy=args.strategy, reduction=args.reduction,
            equivalence=args.equivalence, shards=args.shards,
        )

    runner = ParallelRunner(jobs=args.jobs)
    heartbeat = _heartbeat(args, len(work), "suite")
    t0 = time.perf_counter()
    try:
        results = runner.run(work, progress=heartbeat)
    except SuiteInterrupted as interrupt:
        if heartbeat is not None:
            heartbeat.finish()
        for r in interrupt.results:
            print(r.row())
        print(
            f"interrupted: {len(interrupt.results)}/{len(work)} job(s) "
            "completed; workers terminated"
        )
        return 130
    wall = time.perf_counter() - t0
    if heartbeat is not None:
        heartbeat.finish()

    for r in results:
        print(r.row())
    totals = runner.aggregate(results)
    print("-" * 72)
    print(
        f"{totals['jobs']} jobs, {totals['configs']} configurations, "
        f"{totals['transitions']} transitions; "
        f"key-cache hit rate {100.0 * totals['key_rate']:.0f}%; "
        f"order derivation {totals['time_orders']:.2f}s; "
        f"peak frontier {totals['peak_frontier']}"
    )
    from repro.engine.calibrate import per_mspin, spin_score

    worker_time = totals["worker_time"]
    rate = totals["configs"] / worker_time if worker_time else 0.0
    score = spin_score()
    print(
        f"phase split: expand={totals['time_expand']:.2f}s "
        f"(model={totals['time_model']:.2f}s "
        f"step={totals['time_expand'] - totals['time_model']:.2f}s) "
        f"orders={totals['time_orders']:.2f}s "
        f"(of {worker_time:.2f}s worker time); "
        f"{rate:,.0f} states/sec = {per_mspin(rate, score):,.0f} states/Mspin "
        f"(spin {score / 1e6:.1f}M ops/s)"
    )
    candidates = totals["expanded"] + totals["pruned"]
    if args.reduction != "none" and candidates:
        tier = args.reduction
        if args.equivalence != "shasha-snir":
            tier += f" equivalence={args.equivalence}"
        print(
            f"reduction={tier}: pruned {totals['pruned']}/{candidates} "
            f"thread-expansions ({100.0 * totals['pruned'] / candidates:.0f}%), "
            f"sleep-hits={totals['sleep_hits']} races={totals['races']} "
            f"revisits={totals['revisits']}"
        )
    print(
        f"strategy={args.strategy} workers={args.jobs} "
        f"wall={wall:.2f}s (worker time {totals['worker_time']:.2f}s)"
    )
    _note_stats(
        configs=totals["configs"],
        transitions=totals["transitions"],
        jobs=totals["jobs"],
        mismatches=totals["mismatches"],
        failures=totals["failures"],
        peak_frontier=totals["peak_frontier"],
        worker_time=totals["worker_time"],
        wall=wall,
    )
    if totals["failures"]:
        print(f"{totals['failures']} job(s) crashed in a worker:")
        for r in results:
            if r.failed:
                last = r.detail.strip().splitlines()[-1] if r.detail else "?"
                print(f"  ERROR {r.label}: {last}")
    if totals["mismatches"]:
        print(f"{totals['mismatches']} verdicts diverged from expectations")
        return 1
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    import time

    from repro.engine.parallel import SuiteInterrupted
    from repro.fuzz.corpus import save_campaign
    from repro.fuzz.generator import PROFILES
    from repro.fuzz.runner import run_campaign

    _check_equivalence(args)
    if args.profile not in PROFILES:
        raise SystemExit(
            f"unknown profile {args.profile!r}; choose from {sorted(PROFILES)}"
        )
    from repro.fuzz.runner import fuzz_jobs

    n_jobs = len(fuzz_jobs(args.seed, args.iters, profile=args.profile,
                           jobs=args.jobs))
    heartbeat = _heartbeat(args, n_jobs, "fuzz")
    t0 = time.perf_counter()
    try:
        report = run_campaign(
            seed=args.seed,
            iters=args.iters,
            profile=args.profile,
            jobs=args.jobs,
            axiomatic=not args.no_axiomatic,
            shrink=not args.no_shrink,
            reduction=args.reduction,
            equivalence=args.equivalence,
            check_orders=args.check_orders,
            check_lowering=args.check_lowering,
            check_shards=args.check_shards,
            check_faults=args.check_faults,
            progress=heartbeat,
        )
    except SuiteInterrupted as interrupt:
        if heartbeat is not None:
            heartbeat.finish()
        print(
            f"interrupted: {len(interrupt.results)}/{n_jobs} fuzz job(s) "
            "completed; workers terminated"
        )
        return 130
    wall = time.perf_counter() - t0
    if heartbeat is not None:
        heartbeat.finish()

    for record in report.divergences:
        print(f"DIVERGENCE [{record.kind}] case #{record.index}: {record.detail}")
        if record.shrunk == record.original:
            # --no-shrink, axiomatic (space-level) kinds, or nothing
            # to remove: the program below is as generated, not minimal
            print(f"  reproducer as generated "
                  f"({record.shrunk_threads} thread(s), not minimised):")
        else:
            print(f"  shrunk to {record.shrunk_threads} thread(s) "
                  f"in {record.shrink_attempts} attempts:")
        for line in record.shrunk.rstrip().splitlines():
            print(f"    {line}")
    print(report.summary())
    print(f"wall={wall:.2f}s workers={args.jobs}")
    _note_stats(
        seed=args.seed,
        iters=args.iters,
        configs=report.configs,
        transitions=report.transitions,
        divergences=len(report.divergences),
        inconclusive=report.inconclusive,
        peak_frontier=report.peak_frontier,
        wall=wall,
    )
    if report.divergences and not args.no_save:
        paths = save_campaign(args.corpus_dir, report.divergences)
        for path in paths:
            print(f"wrote {path}")
    if report.ok and args.iters > 0 and report.inconclusive == args.iters:
        # Every iteration hit a bound: the campaign verified nothing,
        # which must not read as a green run (CI vacuity guard).
        print("every iteration was inconclusive; campaign is vacuous")
        return 1
    return 0 if report.ok else 1


def _verify_reduction(args: argparse.Namespace) -> str:
    """Resolve ``--reduction`` for obligation discharge.

    Sleep sets visit every configuration the full search visits, so the
    proof verdict is reduction-independent under ``sleep``.  DPOR and
    the parsimonious tier prune configurations — the domain the
    obligations quantify over — so they cannot discharge them; fall
    back loudly (DESIGN.md §10).
    """
    if args.reduction in ("dpor", "optimal"):
        print(
            f"note: {args.reduction} prunes configurations, which proof "
            "obligations quantify over; falling back to --reduction none "
            "(sleep is the verdict-preserving tier — DESIGN.md §10)"
        )
        return "none"
    return args.reduction


def _print_outline_report(label: str, outline, report) -> None:
    """The per-obligation report: one line per named assertion."""
    print(label)
    for inv in outline.invariants:
        ok, bad = report.per_invariant.get(inv.name, (0, 0))
        verdict = "OK" if bad == 0 else f"{bad} FAILED"
        print(f"  {inv.name:<42} {ok + bad:>8} obligations  {verdict}")
    for failure in report.failures:
        print(f"  !! {failure}")
    print(f"  {report.row()}")


def cmd_verify(args: argparse.Namespace) -> int:
    from repro.verify.registry import PROOFS

    if args.list:
        print(f"{'case study':<22} {'models':<8} description")
        print("-" * 72)
        for entry in PROOFS.entries():
            print(
                f"{entry.name:<22} {','.join(entry.models):<8} "
                f"{entry.description}"
            )
        return 0

    reduction = _verify_reduction(args)
    if args.file:
        return _verify_file(args, reduction)
    if args.all:
        return _verify_all(args, reduction)
    if not args.names:
        raise SystemExit(
            "verify needs case-study names, --all, --list, or --file; "
            "see 'repro verify --list'"
        )

    requested = (
        [m.strip().lower() for m in args.model.split(",")]
        if args.model else None
    )
    if requested:
        for name in requested:
            if name not in ("ra", "sra", "sc"):
                raise SystemExit(
                    f"unknown model {name!r}; choose from ['ra', 'sc', 'sra']"
                )
    failed = 0
    for name in args.names:
        try:
            entry = PROOFS.get(name)
        except KeyError as exc:
            raise SystemExit(exc.args[0])
        models = requested if requested else list(entry.models)
        for model_name in models:
            outline = entry.outline()
            try:
                report = entry.check(
                    model_name, strategy=args.strategy, reduction=reduction,
                    max_configs=args.max_configs,
                )
            except (AttributeError, TypeError) as exc:
                # e.g. a DV/UpdateOnly outline forced onto SC stores:
                # thread-indexed assertions only evaluate on C11 states
                raise SystemExit(
                    f"outline {name!r} is stated for models "
                    f"{list(entry.models)}; its assertions could not be "
                    f"evaluated under {model_name!r} ({exc})"
                )
            _print_outline_report(
                f"{entry.name} [{model_name}] — {entry.description}",
                outline, report,
            )
            failed += not report.proved
            _note_stats(
                configs=_RUN_SUMMARY.get("configs", 0) + report.configs,
                obligations=_RUN_SUMMARY.get("obligations", 0)
                + report.obligations_discharged,
                failed_obligations=_RUN_SUMMARY.get("failed_obligations", 0)
                + len(report.failures),
            )
    return 1 if failed else 0


def _verify_all(args: argparse.Namespace, reduction: str) -> int:
    import time

    from repro.engine.parallel import (
        ParallelRunner,
        SuiteInterrupted,
        verify_jobs,
    )

    models = (
        [m.strip().lower() for m in args.model.split(",")]
        if args.model else None
    )
    work = verify_jobs(
        models=models, strategy=args.strategy, reduction=reduction,
    )
    if not work:
        raise SystemExit("no registered outline matches the requested models")
    runner = ParallelRunner(jobs=args.jobs)
    heartbeat = _heartbeat(args, len(work), "verify")
    t0 = time.perf_counter()
    try:
        results = runner.run(work, progress=heartbeat)
    except SuiteInterrupted as interrupt:
        if heartbeat is not None:
            heartbeat.finish()
        for r in interrupt.results:
            print(r.row())
        print(
            f"interrupted: {len(interrupt.results)}/{len(work)} proof job(s) "
            "completed; workers terminated"
        )
        return 130
    wall = time.perf_counter() - t0
    if heartbeat is not None:
        heartbeat.finish()

    for r in results:
        print(r.row())
    totals = runner.aggregate(results)
    print("-" * 72)
    print(
        f"{totals['jobs']} proof jobs, {totals['obligations']} obligations "
        f"discharged, {totals['failed_obligations']} failed; "
        f"{totals['configs']} configurations, "
        f"key-cache hit rate {100.0 * totals['key_rate']:.0f}%, "
        f"order derivation {totals['time_orders']:.2f}s"
    )
    print(
        f"strategy={args.strategy} reduction={reduction} workers={args.jobs} "
        f"wall={wall:.2f}s (worker time {totals['worker_time']:.2f}s)"
    )
    _note_stats(
        configs=totals["configs"],
        obligations=totals["obligations"],
        failed_obligations=totals["failed_obligations"],
        jobs=totals["jobs"],
        peak_frontier=totals["peak_frontier"],
        wall=wall,
    )
    if totals["mismatches"]:
        for r in results:
            if not r.verdict_matches:
                print(f"REFUTED: {r.label}: {r.detail}")
        return 1
    return 0


def _verify_file(args: argparse.Namespace, reduction: str) -> int:
    if not args.outline:
        raise SystemExit("--file needs --outline SPEC.py (see DESIGN.md §10)")
    parsed = _load(args.file)
    outline = _load_outline_spec(args.outline)
    model_name = args.model or "ra"
    report = outline.check(
        parsed.program,
        parsed.init,
        model=_model(model_name),
        max_events=args.max_events,
        max_configs=args.max_configs,
        strategy=args.strategy,
        reduction=reduction,
    )
    _print_outline_report(
        f"{parsed.name} [{model_name}] — outline from {args.outline}",
        outline, report,
    )
    return 0 if report.proved else 1


def _load_outline_spec(path: str):
    """Execute an outline spec file and extract its ``OUTLINE``.

    The spec is ordinary Python run with the assertion language in
    scope; it must bind ``OUTLINE`` to a :class:`ProofOutline` (or
    define a zero-argument ``outline()`` returning one) — see
    ``examples/spinlock_proof.py`` for the end-to-end shape.
    """
    import repro.verify as verify
    from repro.verify.outline import ProofOutline

    namespace = {
        name: getattr(verify, name)
        for name in verify.__all__
    }
    namespace["__file__"] = path
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    exec(compile(source, path, "exec"), namespace)  # noqa: S102 - spec file
    outline = namespace.get("OUTLINE")
    if outline is None and callable(namespace.get("outline")):
        outline = namespace["outline"]()
    if not isinstance(outline, ProofOutline):
        raise SystemExit(
            f"{path} must bind OUTLINE to a ProofOutline (or define "
            "outline() returning one)"
        )
    return outline


def cmd_table(args: argparse.Namespace) -> int:
    from repro.litmus.extra import EXTRA_TESTS
    from repro.litmus.registry import run_litmus
    from repro.litmus.suite import ALL_TESTS

    tests = list(ALL_TESTS) + (list(EXTRA_TESTS) if args.extra else [])
    models = [_model(m) for m in args.models.split(",")]
    header = f"{'test':<22} {'outcome':<36}" + "".join(
        f" {m.name:<10}" for m in models
    )
    print(header)
    print("-" * len(header))
    mismatches = 0
    for test in tests:
        cells = []
        for model in models:
            outcome = run_litmus(test, model)
            mark = "" if outcome.verdict_matches else "*"
            if isinstance(model, SRAMemoryModel):
                mark = ""  # no pinned expectations for the comparator
            cells.append(
                f" {'allowed' if outcome.reachable else 'forbidden':<9}{mark}"
            )
            if mark:
                mismatches += 1
        print(f"{test.name:<22} {test.outcome_text:<36}" + "".join(cells))
    if mismatches:
        print(f"{mismatches} verdicts diverged from expectations (*)")
    return 0 if not mismatches else 1


def cmd_dot(args: argparse.Namespace) -> int:
    from repro.interp.explore import explore
    from repro.litmus.registry import final_values
    from repro.util.dot import state_to_dot

    parsed = _load(args.file)
    model = _model(args.model)
    result = explore(
        parsed.program, parsed.init, model, max_events=args.max_events
    )
    if not result.terminal:
        print("no terminal state within the bound", file=sys.stderr)
        return 1
    chosen = result.terminal[0]
    if parsed.outcome_exp is not None:
        for config in result.terminal:
            if parsed.outcome(final_values(config)):
                chosen = config
                break
    dot = state_to_dot(chosen.state, name=parsed.name)
    if args.out == "-":
        print(dot)
    else:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(dot + "\n")
        print(f"wrote {args.out}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Summarize a JSONL trace file (and optionally export Chrome
    trace-event JSON for Perfetto / chrome://tracing)."""
    import json

    from repro.obs.summarize import format_summary, summarize, write_chrome
    from repro.obs.trace import parse_trace

    try:
        records = parse_trace(args.file)
    except (OSError, ValueError) as exc:
        raise SystemExit(str(exc))
    if not records:
        print(f"{args.file}: empty trace")
        return 1
    summary = summarize(records, top=args.top)
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        print(f"trace {args.file}:")
        for line in format_summary(summary):
            print(f"  {line}")
    if args.chrome:
        count = write_chrome(records, args.chrome)
        print(f"wrote {args.chrome} ({count} Chrome trace events)")
    return 0


def cmd_runs(args: argparse.Namespace) -> int:
    """Inspect the run ledger (``.repro/runs.jsonl``, DESIGN.md §14)."""
    from repro.obs.ledger import diff_records, format_list, read_ledger

    records = read_ledger(args.ledger)
    if not records:
        target = args.ledger or "the ledger"
        print(f"no runs recorded in {target}")
        return 1
    if args.action == "list":
        for line in format_list(records, limit=args.limit):
            print(line)
        return 0
    # diff: indices count from the end (-1 = newest); default last two
    old_idx = args.old if args.old is not None else -2
    new_idx = args.new if args.new is not None else -1
    try:
        old, new = records[old_idx], records[new_idx]
    except IndexError:
        raise SystemExit(
            f"ledger has {len(records)} record(s); indices {old_idx} and "
            f"{new_idx} do not both exist"
        )
    for line in diff_records(old, new):
        print(line)
    return 0


def cmd_soundness(args: argparse.Namespace) -> int:
    from repro.checking.soundness import check_soundness

    parsed = _load(args.file)
    report = check_soundness(
        parsed.program,
        parsed.init,
        max_events=args.max_events,
        name=parsed.name,
    )
    print(report.row())
    return 0 if report.sound else 1


def _add_obs_flags(sub: argparse.ArgumentParser, progress: bool = False) -> None:
    """The observability knobs shared by run/suite/fuzz/verify."""
    sub.add_argument(
        "--trace", default=None, metavar="PATH",
        help="append JSONL trace records (runs, spans, races, views, "
        "prunes, jobs) to PATH; workers inherit via REPRO_TRACE; "
        "summarize with 'repro trace PATH' (DESIGN.md §14)",
    )
    sub.add_argument(
        "--trace-sample", type=int, default=None, metavar="N",
        help="keep 1-in-N of the high-frequency node/prune records "
        "(default 16; structural records are never sampled)",
    )
    sub.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="export the metrics registry after the run: JSON, or "
        "Prometheus text when PATH ends in .prom",
    )
    if progress:
        sub.add_argument(
            "--progress", action="store_true",
            help="render a live heartbeat line on stderr (jobs done, "
            "states/sec, ETA, worker lag) as results stream back",
        )


def _add_equivalence_flag(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--equivalence", default="shasha-snir",
        choices=["shasha-snir", "reads-from"],
        help="abstraction dpor/optimal key visited configurations by: "
        "'shasha-snir' is the canonical per-location order key, "
        "'reads-from' additionally quotients dead modification-order "
        "runs (RA only — SRA keeps the canonical key; DESIGN.md §13)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Operational RAR-C11 semantics toolkit "
        "(Doherty et al., PPoPP 2019 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="decide a .litmus file's outcome")
    run.add_argument("file")
    run.add_argument("--model", default="ra", help="ra | sra | sc")
    run.add_argument("--max-events", type=int, default=None)
    run.add_argument(
        "--strategy", default="bfs", choices=["bfs", "dfs", "iddfs"],
        help="search order (verdict-neutral on uncapped runs)",
    )
    run.add_argument(
        "--stats", action="store_true", help="print engine statistics"
    )
    run.add_argument(
        "--profile", action="store_true",
        help="print the engine phase split (expand / keys / orders / "
        "checks) and spin-calibrated states/sec (DESIGN.md §12)",
    )
    run.add_argument(
        "--reduction", default="none",
        choices=["none", "sleep", "dpor", "optimal"],
        help="partial-order reduction (outcome-identical, fewer configs; "
        "'optimal' is the parsimonious tier, DESIGN.md §13)",
    )
    run.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="partition the single exploration across N worker shards "
        "by canonical-key hash (outcome-identical by the parity "
        "contract; requires bfs and reduction none/sleep — "
        "DESIGN.md §15)",
    )
    run.add_argument(
        "--spill", action="store_true",
        help="bound the in-memory visited set: once it exceeds the "
        "--spill-bytes budget, keys move to an on-disk bucket store "
        "under a temporary directory (DESIGN.md §15)",
    )
    run.add_argument(
        "--spill-dir", default=None, metavar="DIR",
        help="directory for the spilled visited-set buckets (implies "
        "--spill; default: a fresh temporary directory)",
    )
    run.add_argument(
        "--spill-bytes", type=int, default=512 * 1024 * 1024, metavar="B",
        help="estimated in-memory visited-set budget before spilling "
        "(default 512MB; split across shards under --shards)",
    )
    run.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="periodically snapshot the search's complete loop state to "
        "an atomic repro-ckpt/1 file; a resumed run finishes "
        "byte-identically (DESIGN.md §16)",
    )
    run.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="configurations between checkpoint snapshots (default 1000)",
    )
    run.add_argument(
        "--resume", default=None, metavar="PATH",
        help="continue a checkpointed run; the file's fingerprint must "
        "match this invocation (program, model, bounds, reduction, "
        "shard count)",
    )
    run.add_argument(
        "--inject-faults", default=None, metavar="SPEC",
        help="deterministic fault injection (testing): e.g. "
        "'kill-worker:shard=1,round=2;interrupt:configs=500' — same "
        "grammar as REPRO_FAULTS (DESIGN.md §16)",
    )
    _add_equivalence_flag(run)
    _add_obs_flags(run)
    run.set_defaults(func=cmd_run)

    suite = sub.add_parser(
        "suite", help="run the litmus suite via the parallel engine runner"
    )
    suite.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (1 = in-process sequential run)",
    )
    suite.add_argument(
        "--strategy", default="bfs", choices=["bfs", "dfs", "iddfs"],
        help="search order (verdict-neutral on uncapped runs)",
    )
    suite.add_argument("--models", default="ra,sc", help="comma list of models")
    suite.add_argument("--extra", action="store_true", help="include extras")
    suite.add_argument(
        "--case-studies", action="store_true",
        help="also run the case-study checks (peterson, dekker, token ring)",
    )
    suite.add_argument(
        "--reduction", default="none",
        choices=["none", "sleep", "dpor", "optimal"],
        help="partial-order reduction applied in every job "
        "(verdict-identical by design; see DESIGN.md §9 and §13)",
    )
    suite.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="shard each litmus/case-study exploration N ways inside "
        "its job (in-process superstep schedule inside pool workers; "
        "verdict-identical — DESIGN.md §15)",
    )
    _add_equivalence_flag(suite)
    _add_obs_flags(suite, progress=True)
    suite.set_defaults(func=cmd_suite)

    fuzz = sub.add_parser(
        "fuzz", help="differential fuzzing of the memory models"
    )
    fuzz.add_argument("--seed", type=int, default=0, help="campaign seed")
    fuzz.add_argument(
        "--iters", type=int, default=100, help="number of generated programs"
    )
    fuzz.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (1 = in-process sequential run)",
    )
    fuzz.add_argument(
        "--profile", default="default",
        help="generator size/shape preset (default | small | wide)",
    )
    fuzz.add_argument(
        "--reduction", default="dpor",
        choices=["none", "sleep", "dpor", "optimal"],
        help="reduction the POR-parity oracle cross-validates against "
        "the full search ('none' disables the oracle; 'optimal' also "
        "replays the dpor baseline tier)",
    )
    _add_equivalence_flag(fuzz)
    fuzz.add_argument(
        "--check-orders", action="store_true",
        help="cross-check the compact (interned/bitset) derived orders "
        "against the definitional closures on every RA-reachable state "
        "(DESIGN.md §11); slower, catches representation bugs",
    )
    fuzz.add_argument(
        "--check-lowering", action="store_true",
        help="replay each program with the lowered-program IR on and "
        "off and require identical transition streams at every "
        "reachable configuration (DESIGN.md §12); slower, catches "
        "compiler bugs",
    )
    fuzz.add_argument(
        "--check-shards", action="store_true",
        help="re-explore each generated program hash-partitioned across "
        "three shards and require exact parity with the single-process "
        "search — outcomes, truncation flag and config count "
        "(DESIGN.md §15); the continuous soundness check of the "
        "sharded explorer",
    )
    fuzz.add_argument(
        "--check-faults", action="store_true",
        help="re-explore each generated program with an injected "
        "mid-search interrupt plus checkpoint/resume, and with forced "
        "spill-write failures, requiring byte-identical results to the "
        "clean run (DESIGN.md §16); the continuous soundness check of "
        "the fault-tolerance layer",
    )
    fuzz.add_argument(
        "--no-axiomatic", action="store_true",
        help="skip the footprint axiomatic-equivalence oracle",
    )
    fuzz.add_argument(
        "--no-shrink", action="store_true",
        help="report divergences without delta debugging them",
    )
    fuzz.add_argument(
        "--no-save", action="store_true",
        help="do not persist reproducers to the corpus directory",
    )
    fuzz.add_argument(
        "--corpus-dir", default="tests/fuzz_corpus",
        help="where reproducers are persisted (default: tests/fuzz_corpus)",
    )
    _add_obs_flags(fuzz, progress=True)
    fuzz.set_defaults(func=cmd_fuzz)

    verify = sub.add_parser(
        "verify",
        help="discharge proof-outline obligations (the verification workbench)",
    )
    verify.add_argument(
        "names", nargs="*",
        help="registered case studies to verify (see --list)",
    )
    verify.add_argument(
        "--all", action="store_true",
        help="sweep every registered (outline, model) pair in parallel",
    )
    verify.add_argument(
        "--list", action="store_true", help="list the proof registry"
    )
    verify.add_argument(
        "--file", default=None,
        help=".litmus program to verify against --outline",
    )
    verify.add_argument(
        "--outline", default=None,
        help="Python spec binding OUTLINE to a ProofOutline (with --file)",
    )
    verify.add_argument(
        "--model", default=None,
        help="model override: single name (or comma list with --all); "
        "default: each entry's pinned models",
    )
    verify.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for --all (1 = in-process sequential run)",
    )
    verify.add_argument(
        "--strategy", default="bfs", choices=["bfs", "dfs", "iddfs"],
        help="search order (verdict-neutral on uncapped runs)",
    )
    verify.add_argument(
        "--reduction", default="none",
        choices=["none", "sleep", "dpor", "optimal"],
        help="partial-order reduction; sleep is verdict-preserving for "
        "obligations, dpor/optimal fall back to none (DESIGN.md §10)",
    )
    verify.add_argument(
        "--max-events", type=int, default=None,
        help="event bound for --file mode (registry entries pin their own)",
    )
    verify.add_argument(
        "--max-configs", type=int, default=None,
        help="hard cap on explored configurations",
    )
    _add_obs_flags(verify, progress=True)
    verify.set_defaults(func=cmd_verify)

    trace = sub.add_parser(
        "trace",
        help="summarize a JSONL trace file (phase breakdown, hot "
        "programs, race/prune hotspots; optional Perfetto export)",
    )
    trace.add_argument("file", help="trace file written by --trace")
    trace.add_argument(
        "--top", type=int, default=5,
        help="how many hot programs / hotspots to show (default 5)",
    )
    trace.add_argument(
        "--chrome", default=None, metavar="OUT",
        help="also export Chrome trace-event JSON (open in Perfetto "
        "or chrome://tracing)",
    )
    trace.add_argument(
        "--json", action="store_true",
        help="print the summary as JSON instead of the human report",
    )
    trace.set_defaults(func=cmd_trace)

    runs = sub.add_parser(
        "runs",
        help="inspect the run ledger (.repro/runs.jsonl; every "
        "run/suite/fuzz/verify appends a record)",
    )
    runs.add_argument(
        "action", choices=["list", "diff"],
        help="'list' recent records; 'diff' two records' stats",
    )
    runs.add_argument(
        "old", nargs="?", type=int, default=None,
        help="diff: index of the older record (negative counts from "
        "the end; default -2)",
    )
    runs.add_argument(
        "new", nargs="?", type=int, default=None,
        help="diff: index of the newer record (default -1, the latest)",
    )
    runs.add_argument(
        "--ledger", default=None,
        help="ledger path (default: .repro/runs.jsonl or REPRO_LEDGER)",
    )
    runs.add_argument(
        "--limit", type=int, default=20,
        help="list: show at most this many records (newest last)",
    )
    runs.set_defaults(func=cmd_runs)

    table = sub.add_parser("table", help="print the litmus verdict table")
    table.add_argument("--models", default="ra,sc", help="comma list of models")
    table.add_argument("--extra", action="store_true", help="include extras")
    table.set_defaults(func=cmd_table)

    dot = sub.add_parser("dot", help="Graphviz-export a terminal state")
    dot.add_argument("file")
    dot.add_argument("--out", default="-", help="output path ('-' = stdout)")
    dot.add_argument("--model", default="ra")
    dot.add_argument("--max-events", type=int, default=None)
    dot.set_defaults(func=cmd_dot)

    sound = sub.add_parser("soundness", help="Theorem 4.4 check on a file")
    sound.add_argument("file")
    sound.add_argument("--max-events", type=int, default=None)
    sound.set_defaults(func=cmd_soundness)

    return parser


#: Commands whose invocations are appended to the run ledger.
_LEDGERED = ("run", "suite", "fuzz", "verify")


def _dispatch(argv: Optional[List[str]] = None) -> int:
    """Parse, activate observability, run the command, ledger it."""
    import time

    args = build_parser().parse_args(argv)
    _RUN_SUMMARY.clear()
    traced = _activate_obs(args)
    t0 = time.perf_counter()
    try:
        try:
            code = args.func(args)
        except BrokenPipeError:
            raise
        except KeyboardInterrupt:
            # Backstop for Ctrl-C / SIGTERM outside the per-command
            # handlers: ledger the aborted run, exit with the
            # conventional interrupt status instead of a traceback.
            _ledger(args, argv, "error", time.perf_counter() - t0)
            print("interrupted", file=sys.stderr)
            return 130
        except SystemExit as exc:
            _ledger(args, argv, "error", time.perf_counter() - t0)
            raise exc
    finally:
        if traced:
            _deactivate_obs()
    _ledger(
        args, argv, "ok" if code == 0 else "fail", time.perf_counter() - t0
    )
    _export_metrics(args)
    return code


def _ledger(args, argv: Optional[List[str]], verdict: str,
            wall: float) -> None:
    if getattr(args, "command", None) not in _LEDGERED:
        return
    from repro.obs.ledger import append_record

    append_record(
        args.command,
        verdict=verdict,
        wall=wall,
        stats=dict(_RUN_SUMMARY),
        seed=_RUN_SUMMARY.get("seed", getattr(args, "seed", None)),
        argv=list(argv) if argv is not None else None,
    )


def main(argv: Optional[List[str]] = None) -> int:
    try:
        return _dispatch(argv)
    except BrokenPipeError:
        # The stdout reader went away (`repro table | head`): finish
        # quietly instead of tracebacking.  Redirect stdout to devnull
        # so the interpreter's exit-time flush cannot re-raise, and
        # report the conventional SIGPIPE status (a truncated run must
        # not read as a green one under `set -o pipefail`).
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 128 + 13


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
