"""Finite binary relations and the relational algebra the C11 semantics needs.

The axiomatic and operational C11 semantics of Doherty et al. are phrased
entirely in terms of finite binary relations over events: sequenced-before
``sb``, reads-from ``rf``, modification order ``mo``, and the derived
``sw``, ``hb``, ``fr`` and ``eco`` orders.  This subpackage provides:

* :class:`~repro.relations.relation.Relation` — an immutable set-of-pairs
  relation with composition, union, inverse, reflexive/transitive closure,
  restriction and image operators matching the paper's notation.
* :mod:`~repro.relations.closure` — reachability and cycle detection used
  by the NoThinAir and Coherence axioms.
* :mod:`~repro.relations.linearize` — topological sorts and exhaustive
  linearisation enumeration (needed for the completeness replay of
  Theorem 4.8 and the permutation Lemma 4.7).
"""

from repro.relations.relation import Relation
from repro.relations.closure import (
    is_acyclic,
    is_irreflexive,
    reachable_from,
    transitive_closure_pairs,
)
from repro.relations.linearize import (
    all_linearizations,
    count_linearizations,
    one_linearization,
)

__all__ = [
    "Relation",
    "is_acyclic",
    "is_irreflexive",
    "reachable_from",
    "transitive_closure_pairs",
    "all_linearizations",
    "count_linearizations",
    "one_linearization",
]
