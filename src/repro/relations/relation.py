"""An immutable finite binary relation.

This is the workhorse data structure of the whole reproduction: C11 states
carry ``sb``, ``rf`` and ``mo`` as :class:`Relation` values, and every
derived order of the paper (``sw``, ``hb``, ``fr``, ``eco``) is computed
with the operators below.  The operator names follow the paper's notation:

====================  =====================================================
Paper                 Here
====================  =====================================================
``R ; S``             ``R.compose(S)`` (also ``R @ S``)
``R ∪ S``             ``R | S``
``R ∩ S``             ``R & S``
``R \\ S``            ``R - S``
``R⁻¹``               ``R.inverse()``
``R?``                ``R.reflexive(domain)`` / ``R.maybe()`` (pair-level)
``R⁺``                ``R.transitive_closure()``
``R*``                ``R.reflexive_transitive_closure(domain)``
``R|_t`` / ``R|_x``   ``R.restrict(predicate)`` (see ``c11.state``)
``R[x]``              ``R.image(x)``
``R⁻¹[x]``            ``R.preimage(x)``
====================  =====================================================

Performance note (per the project's HPC guides): relations stay small
(tens of events) but the closure operators sit on the hot path of state
exploration, so they are implemented over adjacency dictionaries with BFS
rather than naive fixpoint iteration over pair sets.
"""

from __future__ import annotations

from typing import (
    AbstractSet,
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    Optional,
    Set,
    Tuple,
    TypeVar,
)

T = TypeVar("T", bound=Hashable)
Pair = Tuple[T, T]


class Relation:
    """An immutable binary relation over hashable elements.

    Instances are value objects: all operators return new relations and
    never mutate their operands, which keeps C11 states safely shareable
    between branches of the state-space exploration.
    """

    __slots__ = ("_pairs", "_succ", "_pred", "_hash")

    def __init__(self, pairs: Iterable[Pair] = ()) -> None:
        self._pairs: FrozenSet[Pair] = frozenset(pairs)
        self._succ: Optional[Dict[T, Set[T]]] = None
        self._pred: Optional[Dict[T, Set[T]]] = None
        self._hash: Optional[int] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def empty(cls) -> "Relation":
        """The empty relation (used for initial C11 states)."""
        return _EMPTY

    @classmethod
    def from_edges(cls, *pairs: Pair) -> "Relation":
        """Build a relation from explicitly listed edges."""
        return cls(pairs)

    @classmethod
    def identity(cls, domain: Iterable[T]) -> "Relation":
        """The identity relation ``Id`` on ``domain``."""
        return cls((x, x) for x in domain)

    @classmethod
    def total_order(cls, chain: Iterable[T]) -> "Relation":
        """The strict total order induced by the sequence ``chain``.

        ``total_order([a, b, c])`` contains ``(a,b), (a,c), (b,c)`` — the
        shape of ``sb|_t`` and ``mo|_x`` in valid C11 states.
        """
        items = list(chain)
        return cls(
            (items[i], items[j])
            for i in range(len(items))
            for j in range(i + 1, len(items))
        )

    @classmethod
    def cross(cls, lefts: Iterable[T], rights: Iterable[T]) -> "Relation":
        """The cartesian product ``lefts × rights``."""
        rs = list(rights)
        return cls((a, b) for a in lefts for b in rs)

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------

    @property
    def pairs(self) -> FrozenSet[Pair]:
        """The underlying frozen set of ``(source, target)`` pairs."""
        return self._pairs

    def __iter__(self) -> Iterator[Pair]:
        return iter(self._pairs)

    def __len__(self) -> int:
        return len(self._pairs)

    def __bool__(self) -> bool:
        return bool(self._pairs)

    def __contains__(self, pair: Pair) -> bool:
        return pair in self._pairs

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Relation):
            return self._pairs == other._pairs
        if isinstance(other, (set, frozenset)):
            return self._pairs == other
        return NotImplemented

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._pairs)
        return self._hash

    def __getstate__(self):
        # Ship the pair set only: the cached hash is salted per process
        # (PYTHONHASHSEED) and the adjacency maps rebuild on demand.
        return self._pairs

    def __setstate__(self, pairs) -> None:
        self._pairs = pairs
        self._succ = None
        self._pred = None
        self._hash = None

    def __repr__(self) -> str:
        inner = ", ".join(repr(p) for p in sorted(self._pairs, key=repr))
        return f"Relation({{{inner}}})"

    # ------------------------------------------------------------------
    # Adjacency views (cached; the closure algorithms need them)
    # ------------------------------------------------------------------

    def successors_map(self) -> Dict[T, Set[T]]:
        """Adjacency map ``x -> {y | (x, y) in R}`` (cached)."""
        if self._succ is None:
            succ: Dict[T, Set[T]] = {}
            for a, b in self._pairs:
                succ.setdefault(a, set()).add(b)
            self._succ = succ
        return self._succ

    def predecessors_map(self) -> Dict[T, Set[T]]:
        """Adjacency map ``y -> {x | (x, y) in R}`` (cached)."""
        if self._pred is None:
            pred: Dict[T, Set[T]] = {}
            for a, b in self._pairs:
                pred.setdefault(b, set()).add(a)
            self._pred = pred
        return self._pred

    def image(self, x: T) -> FrozenSet[T]:
        """``R[x]`` — the relational image of ``x``."""
        return frozenset(self.successors_map().get(x, ()))

    def preimage(self, x: T) -> FrozenSet[T]:
        """``R⁻¹[x]`` — the set of elements related *to* ``x``."""
        return frozenset(self.predecessors_map().get(x, ()))

    def image_of_set(self, xs: Iterable[T]) -> FrozenSet[T]:
        """``R[X]`` — union of images over a set."""
        succ = self.successors_map()
        out: Set[T] = set()
        for x in xs:
            out |= succ.get(x, set())
        return frozenset(out)

    def domain(self) -> FrozenSet[T]:
        """``dom(R)``."""
        return frozenset(a for a, _ in self._pairs)

    def range(self) -> FrozenSet[T]:
        """``ran(R)``."""
        return frozenset(b for _, b in self._pairs)

    def field(self) -> FrozenSet[T]:
        """``dom(R) ∪ ran(R)``."""
        return self.domain() | self.range()

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------

    def union(self, other: "Relation") -> "Relation":
        """``R ∪ S``."""
        if not other._pairs:
            return self
        if not self._pairs:
            return other
        return Relation(self._pairs | other._pairs)

    __or__ = union

    def intersect(self, other: "Relation") -> "Relation":
        """``R ∩ S``."""
        return Relation(self._pairs & other._pairs)

    __and__ = intersect

    def difference(self, other: "Relation") -> "Relation":
        """``R \\ S``."""
        return Relation(self._pairs - other._pairs)

    __sub__ = difference

    def add(self, pair: Pair) -> "Relation":
        """``R ∪ {pair}`` — the incremental update used by the semantics."""
        if pair in self._pairs:
            return self
        return Relation(self._pairs | {pair})

    def add_all(self, pairs: Iterable[Pair]) -> "Relation":
        """``R ∪ pairs``."""
        extra = frozenset(pairs)
        if extra <= self._pairs:
            return self
        return Relation(self._pairs | extra)

    def inverse(self) -> "Relation":
        """``R⁻¹``."""
        return Relation((b, a) for a, b in self._pairs)

    def compose(self, other: "Relation") -> "Relation":
        """Relational composition ``R ; S``.

        ``(x, z) ∈ R;S`` iff there is ``y`` with ``(x,y) ∈ R`` and
        ``(y,z) ∈ S`` — exactly the paper's ``;`` (e.g. in
        ``fr = (rf⁻¹ ; mo) \\ Id``).
        """
        succ = other.successors_map()
        out: Set[Pair] = set()
        for a, b in self._pairs:
            nexts = succ.get(b)
            if nexts:
                for c in nexts:
                    out.add((a, c))
        return Relation(out)

    __matmul__ = compose

    def restrict(self, keep: Callable[[T], bool]) -> "Relation":
        """Restriction to elements satisfying ``keep`` (both endpoints)."""
        return Relation((a, b) for a, b in self._pairs if keep(a) and keep(b))

    def restrict_to(self, elements: AbstractSet[T]) -> "Relation":
        """``R ∩ (E × E)`` — the event-set restriction used in Thm 4.8."""
        return Relation(
            (a, b) for a, b in self._pairs if a in elements and b in elements
        )

    def filter_pairs(self, keep: Callable[[T, T], bool]) -> "Relation":
        """Keep only the pairs satisfying a binary predicate."""
        return Relation((a, b) for a, b in self._pairs if keep(a, b))

    def remove_identity(self) -> "Relation":
        """``R \\ Id`` — needed by ``fr`` to cope with updates."""
        return Relation((a, b) for a, b in self._pairs if a != b)

    def reflexive(self, domain: Iterable[T]) -> "Relation":
        """``R?`` over an explicit domain: ``R ∪ Id(domain)``."""
        return self.union(Relation.identity(domain))

    # ------------------------------------------------------------------
    # Closures and order-theoretic queries (delegated to `closure`)
    # ------------------------------------------------------------------

    def transitive_closure(self) -> "Relation":
        """``R⁺``."""
        from repro.relations.closure import transitive_closure_pairs

        return Relation(transitive_closure_pairs(self.successors_map()))

    def reflexive_transitive_closure(self, domain: Iterable[T]) -> "Relation":
        """``R*`` over an explicit domain."""
        return self.transitive_closure().reflexive(domain)

    def is_irreflexive(self) -> bool:
        """``irrefl(R)`` — no ``(x, x)`` pair."""
        return all(a != b for a, b in self._pairs)

    def is_acyclic(self) -> bool:
        """``acyclic(R)`` — the transition graph has no directed cycle."""
        from repro.relations.closure import is_acyclic

        return is_acyclic(self.successors_map())

    def is_transitive(self) -> bool:
        """Whether ``R ; R ⊆ R``."""
        succ = self.successors_map()
        for a, b in self._pairs:
            for c in succ.get(b, ()):
                if (a, c) not in self._pairs:
                    return False
        return True

    def is_strict_total_order_on(self, elements: AbstractSet[T]) -> bool:
        """Whether ``R`` restricted to ``elements`` is a strict total order.

        This is the shape MO-Valid demands of ``mo|_x`` and SB-Total of
        ``sb|_t``: irreflexive, transitive, and total on ``elements``.
        """
        sub = self.restrict_to(elements)
        if not sub.is_irreflexive() or not sub.is_transitive():
            return False
        items = list(elements)
        for i, a in enumerate(items):
            for b in items[i + 1 :]:
                if (a, b) not in sub._pairs and (b, a) not in sub._pairs:
                    return False
        return True

    def toposort(self) -> Tuple[T, ...]:
        """One linearisation of an acyclic relation (raises on cycles)."""
        from repro.relations.linearize import one_linearization

        return one_linearization(self)

    # ------------------------------------------------------------------
    # Queries used by observability
    # ------------------------------------------------------------------

    def downset(self, x: T) -> FrozenSet[T]:
        """``R+x = {x} ∪ R⁻¹[x]`` — the paper's notation for ``mo``
        predecessors of ``x``, inclusive (used by ``mo[w, e]``)."""
        return frozenset({x}) | self.preimage(x)


_EMPTY = Relation(())
