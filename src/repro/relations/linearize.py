"""Linearisations of strict partial orders.

The completeness proof of the paper (Theorem 4.8) replays a candidate
execution in the operational semantics by following *a linearisation of*
``sb ∪ rf`` (which NoThinAir guarantees to be acyclic).  The permutation
Lemma 4.7 quantifies over *every* linearisation of ``sb``.  Both shapes
are provided here:

* :func:`one_linearization` — a single topological sort (Kahn's
  algorithm, deterministic for reproducibility).
* :func:`all_linearizations` — a generator over *all* topological sorts
  (backtracking over the minimal elements), used by the completeness
  harness and by property tests of Lemma 4.7.
* :func:`count_linearizations` — the number of linear extensions, with
  memoisation on the remaining-set, used by benchmarks to report search
  effort without materialising every ordering.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Set, Tuple, TypeVar

from repro.relations.relation import Relation

T = TypeVar("T", bound=Hashable)


class CycleError(ValueError):
    """Raised when asked to linearise a relation that has a cycle."""


def _indegree_graph(
    relation: Relation, domain: Iterable[T]
) -> Tuple[List[T], Dict[T, Set[T]], Dict[T, int]]:
    """Build successor map and in-degree count over an explicit domain."""
    nodes: List[T] = list(dict.fromkeys(domain))
    node_set = set(nodes)
    succ: Dict[T, Set[T]] = {n: set() for n in nodes}
    indeg: Dict[T, int] = {n: 0 for n in nodes}
    for a, b in relation.pairs:
        if a in node_set and b in node_set and b not in succ[a]:
            succ[a].add(b)
            indeg[b] += 1
    return nodes, succ, indeg


def one_linearization(
    relation: Relation, domain: Iterable[T] = None
) -> Tuple[T, ...]:
    """A single topological order of ``domain`` respecting ``relation``.

    ``domain`` defaults to the field of the relation.  The tie-break is
    the insertion order of ``domain`` (stable and deterministic), so
    replays are reproducible run to run.
    """
    if domain is None:
        domain = sorted(relation.field(), key=repr)
    nodes, succ, indeg = _indegree_graph(relation, domain)
    ready: List[T] = [n for n in nodes if indeg[n] == 0]
    order: List[T] = []
    while ready:
        node = ready.pop(0)
        order.append(node)
        for nxt in sorted(succ[node], key=nodes.index):
            indeg[nxt] -= 1
            if indeg[nxt] == 0:
                ready.append(nxt)
    if len(order) != len(nodes):
        raise CycleError("relation has a cycle; no linearisation exists")
    return tuple(order)


def all_linearizations(
    relation: Relation, domain: Iterable[T] = None
) -> Iterator[Tuple[T, ...]]:
    """Generate every topological order of ``domain`` respecting ``relation``.

    Backtracking over the currently-minimal elements.  The number of
    linear extensions can be factorial in the antichain width, so callers
    (the completeness harness) bound either the domain size or the number
    of linearisations they consume.
    """
    if domain is None:
        domain = sorted(relation.field(), key=repr)
    nodes, succ, indeg = _indegree_graph(relation, domain)
    if not nodes:
        yield ()
        return

    order: List[T] = []

    def emit() -> Iterator[Tuple[T, ...]]:
        if len(order) == len(nodes):
            yield tuple(order)
            return
        for node in nodes:
            if indeg[node] == 0 and node not in taken:
                taken.add(node)
                order.append(node)
                for nxt in succ[node]:
                    indeg[nxt] -= 1
                yield from emit()
                for nxt in succ[node]:
                    indeg[nxt] += 1
                order.pop()
                taken.remove(node)

    taken: Set[T] = set()
    produced = False
    for lin in emit():
        produced = True
        yield lin
    if not produced:
        raise CycleError("relation has a cycle; no linearisation exists")


def count_linearizations(relation: Relation, domain: Iterable[T] = None) -> int:
    """The number of linear extensions (memoised over remaining-sets)."""
    if domain is None:
        domain = sorted(relation.field(), key=repr)
    nodes, succ, _ = _indegree_graph(relation, domain)
    node_ids = {n: i for i, n in enumerate(nodes)}
    pred_mask: List[int] = [0] * len(nodes)
    for a, bs in succ.items():
        for b in bs:
            pred_mask[node_ids[b]] |= 1 << node_ids[a]

    full = (1 << len(nodes)) - 1
    memo: Dict[int, int] = {full: 1}

    def count(done: int) -> int:
        if done in memo:
            return memo[done]
        total = 0
        for i in range(len(nodes)):
            bit = 1 << i
            if not done & bit and (pred_mask[i] & done) == pred_mask[i]:
                total += count(done | bit)
        memo[done] = total
        return total

    result = count(0)
    if result == 0 and nodes:
        raise CycleError("relation has a cycle; no linearisation exists")
    return result


def is_linearization_of(
    sequence: Iterable[T], relation: Relation
) -> bool:
    """Whether ``sequence`` is a linearisation of the strict order.

    Mirrors the paper's definition before Lemma 4.7: the sequence must
    enumerate ``dom ∪ ran`` of the order and respect every edge.
    """
    seq = list(sequence)
    pos: Dict[T, int] = {}
    for i, x in enumerate(seq):
        if x in pos:
            return False
        pos[x] = i
    if set(seq) != set(relation.field()) and relation.field() - set(seq):
        return False
    return all(
        a in pos and b in pos and pos[a] < pos[b] for a, b in relation.pairs
    )
