"""Reachability, transitive closure and cycle detection.

These routines back the ``Relation`` operators and the C11 axioms:
NoThinAir is ``acyclic(sb ∪ rf)`` and Coherence is irreflexivity of
``hb ; eco?`` and ``eco`` — all of which reduce to graph reachability on
small event graphs.  Implemented over adjacency dictionaries with
iterative DFS/BFS (no recursion limits, no quadratic pair-set fixpoints).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Set, Tuple, TypeVar

T = TypeVar("T", bound=Hashable)
Adj = Dict[T, Set[T]]


def reachable_from(adj: Adj, start: T) -> Set[T]:
    """All nodes reachable from ``start`` in one or more steps."""
    seen: Set[T] = set()
    frontier: List[T] = list(adj.get(start, ()))
    while frontier:
        node = frontier.pop()
        if node in seen:
            continue
        seen.add(node)
        frontier.extend(adj.get(node, ()))
    return seen


def transitive_closure_pairs(adj: Adj) -> Set[Tuple[T, T]]:
    """All pairs ``(x, y)`` with a non-empty path from ``x`` to ``y``.

    BFS from every source node.  For the event graphs in this project
    (tens of nodes) this comfortably beats Floyd–Warshall on constant
    factors and avoids materialising a dense matrix.
    """
    out: Set[Tuple[T, T]] = set()
    # Memoised per-node reachability: process nodes and reuse nothing
    # fancy — graphs are small, clarity wins (profile before optimizing).
    for src in adj:
        for dst in reachable_from(adj, src):
            out.add((src, dst))
    return out


def is_acyclic(adj: Adj) -> bool:
    """Whether the directed graph has no cycle (iterative three-colour DFS)."""
    WHITE, GREY, BLACK = 0, 1, 2
    colour: Dict[T, int] = {}
    for root in adj:
        if colour.get(root, WHITE) != WHITE:
            continue
        # Stack entries: (node, iterator-over-children expressed as list idx)
        stack: List[Tuple[T, List[T], int]] = [(root, list(adj.get(root, ())), 0)]
        colour[root] = GREY
        while stack:
            node, children, idx = stack.pop()
            advanced = False
            while idx < len(children):
                child = children[idx]
                idx += 1
                c = colour.get(child, WHITE)
                if c == GREY:
                    return False
                if c == WHITE:
                    stack.append((node, children, idx))
                    colour[child] = GREY
                    stack.append((child, list(adj.get(child, ())), 0))
                    advanced = True
                    break
            if not advanced and idx >= len(children):
                colour[node] = BLACK
    return True


def is_irreflexive(pairs: Iterable[Tuple[T, T]]) -> bool:
    """Whether no pair relates an element to itself."""
    return all(a != b for a, b in pairs)


def has_path(adj: Adj, src: T, dst: T) -> bool:
    """Whether ``dst`` is reachable from ``src`` in one or more steps."""
    if src not in adj:
        return False
    seen: Set[T] = set()
    frontier: List[T] = list(adj.get(src, ()))
    while frontier:
        node = frontier.pop()
        if node == dst:
            return True
        if node in seen:
            continue
        seen.add(node)
        frontier.extend(adj.get(node, ()))
    return False
