"""Fan the litmus suite, case studies and proof sweeps across workers.

Litmus tests, case-study checks and proof-outline discharges are
embarrassingly parallel — one exploration per (test, model) pair, no
shared state — but the objects involved (programs, outcome lambdas,
outlines) do not pickle.  The runner therefore ships *names*: a
:class:`SuiteJob` carries only strings and bounds, each worker
re-resolves the test/case study/proof entry from the registries it
imported itself, and ships back a flat :class:`SuiteJobResult` of
verdicts and counters (verify jobs add obligation counts, which the
generic aggregator folds into the footer like any other stat).  Verdicts are byte-identical to a sequential run
because the sequential path (``jobs=1``) executes the very same
:func:`run_suite_job` in-process (DESIGN.md §5).

Heavy imports (litmus registries, case studies) happen lazily inside
the worker so that importing :mod:`repro.engine` never drags the whole
library in — and so no import cycle forms with
:mod:`repro.litmus.registry`, which itself imports the engine's
``explore``.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

#: Case-study checks runnable as suite jobs: name -> (expected ok?).
#: Bounds are modest so a suite run stays interactive; the dedicated
#: benchmarks push the bounds instead.
CASE_STUDIES = {
    "peterson": True,
    "peterson-relaxed-turn": False,
    "dekker-entry": False,
    "token-ring": True,
    "spinlock-tas": True,
    "spinlock-broken": False,
    "ticket-lock": True,
    "seqlock": True,
    "seqlock-relaxed-data": False,
    "barrier": True,
}


class SuiteInterrupted(KeyboardInterrupt):
    """Ctrl-C (or SIGTERM) landed mid-suite.

    Carries the results completed before the interrupt so the CLI can
    print a partial footer instead of a bare traceback.  Raised only
    after the worker pool has been terminated and joined — no orphaned
    workers, no queue feeder left wedging the terminal.
    """

    def __init__(self, results: List["SuiteJobResult"]) -> None:
        super().__init__(f"interrupted after {len(results)} job(s)")
        self.results = results


@dataclass(frozen=True)
class SuiteJob:
    """One unit of suite work, picklable by construction (names only)."""

    kind: str  # "litmus" | "case-study" | "fuzz" | "verify"
    name: str
    model: str = "ra"  # litmus/verify; case studies fix their own model
    strategy: str = "bfs"
    max_configs: Optional[int] = None
    #: partial-order reduction applied by the worker's exploration
    #: (DESIGN.md §9); verdicts are reduction-independent by design.
    #: Verify jobs admit only the configuration-identical "sleep" tier
    #: and fall back to "none" under "dpor"/"optimal" (DESIGN.md §10).
    reduction: str = "none"
    #: state equivalence keying the reduction's visited store
    #: (DESIGN.md §13); consulted only by "dpor"/"optimal" and reset to
    #: the default whenever a job falls back to another tier.
    equivalence: str = "shasha-snir"
    #: intra-run shards for this job's exploration (DESIGN.md §15).
    #: Suite workers are daemonic pool processes, so a shards > 1 job
    #: runs the sharded search in its in-process mode — same parity
    #: contract, no nested fork.  Litmus and case-study kinds honour it;
    #: fuzz and verify kinds run their own exploration schedules and
    #: ignore it.
    shards: int = 1

    @property
    def label(self) -> str:
        if self.kind == "litmus":
            return f"{self.name} [{self.model}]"
        if self.kind == "verify":
            return f"{self.name} [{self.model}] proof"
        return f"{self.name} (case study)"


@dataclass(frozen=True)
class SuiteJobResult:
    """What one job reported back — flat, picklable counters."""

    job: SuiteJob
    #: litmus: outcome reachable?  case study: property violated?
    observed: bool
    #: the registry's expectation under the job's model
    expected: bool
    #: whether that expectation is pinned (litmus under SRA is not —
    #: the paper gives no table for the comparator model)
    pinned: bool
    configs: int
    transitions: int
    terminal: int
    truncated: bool
    wall_time: float
    key_hits: int
    key_misses: int
    #: kind-specific payload (fuzz jobs ship their divergence records
    #: here as JSON; litmus and case-study jobs leave it empty)
    detail: str = ""
    #: reduction counters (zero when the job ran unreduced)
    expanded: int = 0
    pruned: int = 0
    sleep_hits: int = 0
    races: int = 0
    revisits: int = 0
    #: proof-obligation counters (verify jobs only; summed generically
    #: into the suite footer like every other integer stat)
    obligations: int = 0
    failed_obligations: int = 0
    #: derived-order wall time (DESIGN.md §11), aggregated generically
    #: like the integer stats so footers can attribute closure work
    time_orders: float = 0.0
    #: successor-expansion wall time — the engine phase the lowered IR
    #: (DESIGN.md §12) targets; footers print it against ``time_orders``
    time_expand: float = 0.0
    #: memory-model share of ``time_expand`` (lowered path only) —
    #: ``expand - model`` is the program-stepping cost lowering removes
    time_model: float = 0.0
    #: the worker raised instead of reporting: ``detail`` carries the
    #: traceback and the job counts as a mismatch, never as a pass
    failed: bool = False
    #: peak frontier/spine depth of the job's exploration — a memory
    #: high-water mark, aggregated by *max* across jobs (a per-worker
    #: peak is not additive; see :meth:`ParallelRunner.aggregate`)
    peak_frontier: int = 0
    #: pid of the worker that ran the job (observability only — never
    #: aggregated; lets trace/job records be joined to engine records)
    worker_pid: int = 0

    @property
    def verdict_matches(self) -> bool:
        if self.failed:
            return False
        return (not self.pinned) or self.observed == self.expected

    def row(self) -> str:
        mark = "" if self.verdict_matches else "  ** MISMATCH **"
        bound = " (bounded)" if self.truncated else ""
        return (
            f"{self.label:<28} {self.verdict:<10} configs={self.configs:>6} "
            f"time={self.wall_time * 1e3:7.1f}ms{bound}{mark}"
        )

    @property
    def label(self) -> str:
        return self.job.label

    @property
    def verdict(self) -> str:
        if self.failed:
            return "ERROR"
        if self.job.kind == "litmus":
            return "allowed" if self.observed else "forbidden"
        if self.job.kind == "fuzz":
            return "diverged" if self.observed else "ok"
        if self.job.kind == "verify":
            return "REFUTED" if self.observed else "proved"
        return "violated" if self.observed else "ok"


def litmus_jobs(
    models: Sequence[str] = ("ra", "sc"),
    extra: bool = False,
    strategy: str = "bfs",
    reduction: str = "none",
    equivalence: str = "shasha-snir",
    shards: int = 1,
) -> List[SuiteJob]:
    """One job per (litmus test, model) over the built-in suite."""
    from repro.litmus.extra import EXTRA_TESTS
    from repro.litmus.suite import ALL_TESTS

    tests = list(ALL_TESTS) + (list(EXTRA_TESTS) if extra else [])
    return [
        SuiteJob(
            kind="litmus", name=test.name, model=model, strategy=strategy,
            reduction=reduction, equivalence=equivalence, shards=shards,
        )
        for test in tests
        for model in models
    ]


def case_study_jobs(
    strategy: str = "bfs",
    reduction: str = "none",
    equivalence: str = "shasha-snir",
    shards: int = 1,
) -> List[SuiteJob]:
    """The case-study checks as suite jobs (RA model, modest bounds)."""
    return [
        SuiteJob(kind="case-study", name=name, strategy=strategy,
                 reduction=reduction, equivalence=equivalence, shards=shards)
        for name in CASE_STUDIES
    ]


def verify_jobs(
    names: Optional[Sequence[str]] = None,
    models: Optional[Sequence[str]] = None,
    strategy: str = "bfs",
    reduction: str = "none",
) -> List[SuiteJob]:
    """One job per (proof case study, model) pair over the registry.

    ``names`` restricts to a subset of entries, ``models`` intersects
    each entry's pinned models (an entry checked under no requested
    model simply contributes no job).
    """
    from repro.verify.registry import PROOFS

    entries = (
        PROOFS.entries() if names is None else [PROOFS.get(n) for n in names]
    )
    return [
        SuiteJob(
            kind="verify", name=entry.name, model=model, strategy=strategy,
            reduction=reduction,
        )
        for entry in entries
        for model in entry.models
        if models is None or model in models
    ]


def _litmus_by_name(name: str):
    from repro.litmus.extra import EXTRA_TESTS
    from repro.litmus.suite import ALL_TESTS

    for test in list(ALL_TESTS) + list(EXTRA_TESTS):
        if test.name == name:
            return test
    raise KeyError(f"unknown litmus test {name!r}")


def _run_litmus_job(job: SuiteJob) -> SuiteJobResult:
    from repro.interp.ra_model import RAMemoryModel
    from repro.interp.sc import SCMemoryModel
    from repro.interp.sra_model import SRAMemoryModel
    from repro.litmus.registry import run_litmus

    factories = {"ra": RAMemoryModel, "sra": SRAMemoryModel, "sc": SCMemoryModel}
    try:
        model = factories[job.model.lower()]()
    except KeyError:
        raise ValueError(
            f"unknown model {job.model!r}; choose from {sorted(factories)}"
        )
    test = _litmus_by_name(job.name)
    outcome = run_litmus(
        test, model, max_configs=job.max_configs, strategy=job.strategy,
        reduction=job.reduction, equivalence=job.equivalence,
        shards=job.shards,
    )
    stats = outcome.result.stats
    return SuiteJobResult(
        job=job,
        observed=outcome.reachable,
        expected=outcome.expected,
        pinned=not isinstance(model, SRAMemoryModel),
        configs=outcome.configs,
        transitions=outcome.result.transitions,
        terminal=outcome.terminal_states,
        truncated=outcome.truncated,
        wall_time=stats.time_total,
        key_hits=stats.key_hits,
        key_misses=stats.key_misses,
        expanded=stats.expanded,
        pruned=stats.pruned,
        sleep_hits=stats.sleep_hits,
        races=stats.races,
        revisits=stats.revisits,
        time_orders=stats.time_orders,
        time_expand=stats.time_expand,
        time_model=stats.time_model,
        peak_frontier=stats.peak_frontier,
    )


def _case_study_exploration(name: str, strategy: str, max_configs,
                            reduction: str = "none",
                            equivalence: str = "shasha-snir",
                            shards: int = 1):
    from repro.casestudies.dekker import (
        DEKKER_INIT,
        dekker_entry_program,
        dekker_violations,
    )
    from repro.casestudies.peterson import (
        PETERSON_INIT,
        mutual_exclusion_violations,
        peterson_program,
        peterson_relaxed_turn,
    )
    from repro.casestudies.token_ring import (
        TOKEN_INIT,
        token_ring_program,
        token_ring_violations,
    )
    from repro.casestudies.barrier import (
        BARRIER_INIT,
        barrier_program,
        barrier_violations,
    )
    from repro.casestudies.seqlock import (
        SEQLOCK_INIT,
        seqlock_program,
        seqlock_relaxed_data,
        seqlock_violations,
    )
    from repro.casestudies.spinlock import (
        SPINLOCK_INIT,
        spinlock_broken,
        spinlock_program,
        spinlock_violations,
    )
    from repro.casestudies.ticket_lock import (
        TICKET_INIT,
        ticket_lock_program,
        ticket_lock_violations,
    )
    from repro.interp.explore import explore
    from repro.interp.ra_model import RAMemoryModel

    table = {
        "peterson": (peterson_program(once=True), PETERSON_INIT,
                     mutual_exclusion_violations, 8),
        "peterson-relaxed-turn": (peterson_relaxed_turn(once=True),
                                  PETERSON_INIT,
                                  mutual_exclusion_violations, 8),
        # Dekker's entry protocol is loop-free: no bound needed.
        "dekker-entry": (dekker_entry_program(release_acquire=False),
                         DEKKER_INIT, dekker_violations, None),
        "token-ring": (token_ring_program(n_threads=2), TOKEN_INIT,
                       token_ring_violations, 10),
        "spinlock-tas": (spinlock_program(), SPINLOCK_INIT,
                         spinlock_violations, 8),
        "spinlock-broken": (spinlock_broken(), SPINLOCK_INIT,
                            spinlock_violations, 8),
        "ticket-lock": (ticket_lock_program(), TICKET_INIT,
                        ticket_lock_violations, 10),
        # The seqlock attempts are loop-free: one snapshot per run.
        "seqlock": (seqlock_program(), SEQLOCK_INIT,
                    seqlock_violations, None),
        "seqlock-relaxed-data": (seqlock_relaxed_data(), SEQLOCK_INIT,
                                 seqlock_violations, None),
        "barrier": (barrier_program(), BARRIER_INIT,
                    barrier_violations, 8),
    }
    try:
        program, init, check, bound = table[name]
    except KeyError:
        raise ValueError(f"unknown case study {name!r}; choose from {sorted(table)}")
    return explore(
        program,
        init,
        RAMemoryModel(),
        max_events=bound,
        max_configs=max_configs,
        check_config=check,
        strategy=strategy,
        reduction=reduction,
        equivalence=equivalence,
        shards=shards,
    )


def _run_case_study_job(job: SuiteJob) -> SuiteJobResult:
    result = _case_study_exploration(
        job.name, job.strategy, job.max_configs, reduction=job.reduction,
        equivalence=job.equivalence, shards=job.shards,
    )
    return SuiteJobResult(
        job=job,
        observed=not result.ok,
        expected=not CASE_STUDIES[job.name],
        pinned=True,
        configs=result.configs,
        transitions=result.transitions,
        terminal=len(result.terminal),
        truncated=result.truncated,
        wall_time=result.stats.time_total,
        key_hits=result.stats.key_hits,
        key_misses=result.stats.key_misses,
        expanded=result.stats.expanded,
        pruned=result.stats.pruned,
        sleep_hits=result.stats.sleep_hits,
        races=result.stats.races,
        revisits=result.stats.revisits,
        time_orders=result.stats.time_orders,
        time_expand=result.stats.time_expand,
        time_model=result.stats.time_model,
        peak_frontier=result.stats.peak_frontier,
    )


def _run_verify_job(job: SuiteJob) -> SuiteJobResult:
    """Discharge one proof case study's obligations under one model.

    The obligations quantify over every reachable transition, so only
    the configuration-identical ``"sleep"`` reduction is admissible;
    ``"dpor"`` and ``"optimal"`` fall back to the unreduced search
    (DESIGN.md §10 — the CLI prints the fallback note once, this keeps
    workers consistent with it).
    """
    from repro.verify.registry import PROOFS

    entry = PROOFS.get(job.name)
    reduction = (
        "none" if job.reduction in ("dpor", "optimal") else job.reduction
    )
    report = entry.check(
        job.model, strategy=job.strategy, reduction=reduction,
        max_configs=job.max_configs,
    )
    stats = report.stats
    return SuiteJobResult(
        job=job,
        observed=not report.proved,
        expected=False,  # every registered outline is expected to prove
        pinned=True,
        configs=report.configs,
        transitions=report.transitions,
        terminal=0,
        truncated=report.truncated,
        wall_time=stats.time_total,
        key_hits=stats.key_hits,
        key_misses=stats.key_misses,
        expanded=stats.expanded,
        pruned=stats.pruned,
        sleep_hits=stats.sleep_hits,
        races=stats.races,
        revisits=stats.revisits,
        obligations=report.obligations_discharged,
        failed_obligations=sum(
            bad for _, bad in report.per_invariant.values()
        ),
        detail="; ".join(str(f) for f in report.failures[:3]),
        time_orders=stats.time_orders,
        time_expand=stats.time_expand,
        time_model=stats.time_model,
        peak_frontier=stats.peak_frontier,
    )


def run_suite_job(job: SuiteJob) -> SuiteJobResult:
    """Execute one job — the worker entry point (must stay module-level
    so it pickles by reference)."""
    from repro.obs.trace import tracer

    tr = tracer()
    if tr is not None:
        tr.emit("job_start", job=job.label, kind=job.kind)
    t0 = time.perf_counter()
    if job.kind == "litmus":
        result = _run_litmus_job(job)
    elif job.kind == "case-study":
        result = _run_case_study_job(job)
    elif job.kind == "verify":
        result = _run_verify_job(job)
    elif job.kind == "fuzz":
        # lazy for the same reason as the registries: the fuzz package
        # imports the interpreters, which must not load with the engine
        from repro.fuzz.runner import run_fuzz_job

        result = run_fuzz_job(job)
    else:
        raise ValueError(f"unknown job kind {job.kind!r}")
    # Report whole-job wall time (exploration + registry resolution),
    # not just the engine's in-loop time.
    result = dataclasses.replace(
        result, wall_time=time.perf_counter() - t0, worker_pid=os.getpid()
    )
    if tr is not None:
        tr.emit(
            "job_end", job=job.label, kind=job.kind, dur=result.wall_time,
            configs=result.configs, verdict=result.verdict,
        )
    return result


def _run_suite_job_safely(job: SuiteJob) -> SuiteJobResult:
    """Worker entry point that never raises.

    An exception escaping a pool worker would abort ``Pool.map`` and
    lose every other job's verdict, so a crash is reported *as a
    result*: a failed :class:`SuiteJobResult` carrying the traceback in
    ``detail``.  It counts as a mismatch in every footer — a crashed
    job must never read as a pass (or silently vanish)."""
    import traceback

    t0 = time.perf_counter()
    try:
        return run_suite_job(job)
    except Exception:
        return SuiteJobResult(
            job=job,
            observed=False,
            expected=False,
            pinned=True,
            configs=0,
            transitions=0,
            terminal=0,
            truncated=False,
            wall_time=time.perf_counter() - t0,
            key_hits=0,
            key_misses=0,
            detail=traceback.format_exc(),
            failed=True,
            worker_pid=os.getpid(),
        )


def _run_indexed(pair: Tuple[int, SuiteJob]) -> Tuple[int, SuiteJobResult]:
    """Pool entry point for the streaming path: tags each result with
    its submission index so out-of-order completion (``imap_unordered``,
    which is what lets finished jobs reach the parent — and the progress
    callback — immediately) can be re-sorted into submission order."""
    index, job = pair
    return index, _run_suite_job_safely(job)


class ParallelRunner:
    """Run suite jobs across ``jobs`` worker processes.

    ``jobs <= 1`` runs everything in-process through the identical code
    path, which is both the degenerate case and the reference the
    parallel verdicts are compared against in tests.  Results always
    come back in submission order regardless of worker scheduling.
    """

    def __init__(self, jobs: Optional[int] = None):
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)

    def run(
        self,
        work: Sequence[SuiteJob],
        progress: Optional[Callable[[SuiteJobResult], None]] = None,
    ) -> List[SuiteJobResult]:
        """Run the jobs; results return in submission order.

        ``progress``, when given, is invoked in the parent with each
        job's result *as it completes* — the stat deltas ride the
        pool's existing result pipe (``imap_unordered``), no side
        channel.  The sequential path invokes it after each in-process
        job, so a heartbeat renders identically at ``--jobs 1``.

        Ctrl-C raises :class:`SuiteInterrupted` carrying every result
        completed so far; the pool is terminated and joined first, so
        no worker outlives the interrupt.
        """
        if not work:
            return []
        if self.jobs <= 1:
            results = []
            try:
                for job in work:
                    result = _run_suite_job_safely(job)
                    results.append(result)
                    if progress is not None:
                        progress(result)
            except KeyboardInterrupt:
                raise SuiteInterrupted(results) from None
            return results
        processes = min(self.jobs, len(work))
        pool = multiprocessing.Pool(processes=processes)
        try:
            if progress is None:
                results = pool.map(_run_suite_job_safely, list(work))
                pool.close()
                pool.join()
                return results
            slots: List[Optional[SuiteJobResult]] = [None] * len(work)
            for index, result in pool.imap_unordered(
                _run_indexed, list(enumerate(work))
            ):
                slots[index] = result
                progress(result)
            pool.close()
            pool.join()
            return [r for r in slots if r is not None]
        except KeyboardInterrupt:
            # terminate (not close): workers are mid-job and must not
            # finish the queue; join reaps them before reporting
            pool.terminate()
            pool.join()
            done = [r for r in locals().get("slots") or [] if r is not None]
            raise SuiteInterrupted(done) from None
        finally:
            pool.terminate()
            pool.join()

    def aggregate(self, results: Sequence[SuiteJobResult]) -> dict:
        """Suite-level totals for the CLI footer.

        Every numeric counter field of :class:`SuiteJobResult` — int or
        float — is folded generically: a stat key added to the result
        type (reduction counters, ``time_orders``, say) shows up here
        without aggregator surgery, instead of being silently dropped.
        Fields named ``peak_*`` are high-water marks and fold by *max*
        (summing a per-job peak across jobs overstates it — no moment
        ever held the sum); everything else sums.  ``wall_time`` is
        excluded (it is whole-job time, surfaced as the derived
        ``worker_time``), as is the ``worker_pid`` identifier; the
        other derived entries (``jobs``, ``mismatches``, ``key_rate``)
        stay explicit too.
        """
        import typing

        hints = typing.get_type_hints(SuiteJobResult)
        totals = {
            name: (
                max((getattr(r, name) for r in results), default=0)
                if name.startswith("peak_")
                else sum(getattr(r, name) for r in results)
            )
            for f in dataclasses.fields(SuiteJobResult)
            for name in (f.name,)
            # resolved type: excludes bool/str; wall_time is derived,
            # worker_pid is an identifier — neither is a counter
            if hints.get(name) in (int, float)
            and name not in ("wall_time", "worker_pid")
        }
        keyed = totals["key_hits"] + totals["key_misses"]
        totals["jobs"] = len(results)
        totals["mismatches"] = sum(1 for r in results if not r.verdict_matches)
        totals["failures"] = sum(1 for r in results if r.failed)
        totals["key_rate"] = (totals["key_hits"] / keyed) if keyed else 0.0
        totals["worker_time"] = sum(r.wall_time for r in results)
        return totals


__all__ = [
    "CASE_STUDIES",
    "ParallelRunner",
    "SuiteInterrupted",
    "SuiteJob",
    "SuiteJobResult",
    "case_study_jobs",
    "litmus_jobs",
    "run_suite_job",
    "verify_jobs",
]
