"""Partial-order reduction for the exploration engine (DESIGN.md §9, §13).

The engine consults this package before expanding a configuration.
Four reduction tiers, selected by ``explore(..., reduction=...)`` and
``--reduction`` on the ``run`` / ``suite`` / ``fuzz`` / ``verify`` CLI:

``"none"``
    The unreduced graph search (:mod:`repro.engine.core`) — every
    transition of every configuration.
``"sleep"``
    Sleep-set pruning (:mod:`.sleep`): visits every configuration the
    full search visits (hook-safe for *any* ``check_config`` property)
    but skips commutation-redundant transitions.
``"dpor"``
    Stateful source-set DPOR (:mod:`.dpor`): race detection with vector
    clocks, backtrack-point insertion, sleep sets, and sound state
    pruning — visits a subset of the configurations while preserving
    terminal outcome sets, control-observable violation verdicts and
    truncation flags.
``"optimal"``
    Parsimonious race-reversal DPOR (:mod:`.optimal`, DESIGN.md §13):
    races are scheduled as minimal reversing *views* and replayed by
    guided descent instead of single-initial backtracking — no wakeup
    trees.  Accepts ``equivalence="reads-from"`` (as does ``"dpor"``)
    to key the visited store by the observation quotient instead of the
    full Shasha–Snir key.

The dependency relation the reductions share lives in :mod:`.deps`;
the per-model location footprints come from
:meth:`repro.interp.memory_model.MemoryModel.step_footprint`.
Soundness is continuously cross-checked against the unreduced search by
the differential-fuzz parity oracle (``repro.fuzz.oracles``) and the
litmus/case-study parity suite (``tests/test_por_parity.py``).
"""

from __future__ import annotations

from repro.engine.por.deps import (
    EQUIVALENCES,
    REDUCTIONS,
    RaceWitness,
    StepFootprint,
    conflicts,
    control_signature,
    step_changes_control,
    step_footprint,
)
from repro.engine.por.dpor import explore_dpor
from repro.engine.por.optimal import explore_optimal
from repro.engine.por.sleep import explore_sleep


def explore_reduced(program, init_values, model, reduction, **kwargs):
    """Dispatch a reduced exploration (``reduction`` in
    ``"sleep"``/``"dpor"``/``"optimal"``)."""
    if reduction == "sleep":
        return explore_sleep(program, init_values, model, **kwargs)
    if reduction == "dpor":
        return explore_dpor(program, init_values, model, **kwargs)
    if reduction == "optimal":
        return explore_optimal(program, init_values, model, **kwargs)
    raise ValueError(
        f"unknown reduction {reduction!r}; choose from {REDUCTIONS}"
    )


__all__ = [
    "EQUIVALENCES",
    "REDUCTIONS",
    "RaceWitness",
    "StepFootprint",
    "conflicts",
    "control_signature",
    "explore_dpor",
    "explore_optimal",
    "explore_reduced",
    "explore_sleep",
    "step_changes_control",
    "step_footprint",
]
