"""The per-step dependency relation driving partial-order reduction.

Partial-order reduction is licensed by commutation: Proposition 4.1
(steps of distinct threads commute, ``repro.c11.prestate``) holds
unconditionally for pre-executions, and the RA/SRA event semantics
preserve it whenever two steps touch *disjoint* locations — adding an
event only ever constrains same-location ``mo``/``rf`` choices and the
``hb`` edges reaching the acting thread, neither of which a
different-location step of another thread can alter (DESIGN.md §9).

A step's *footprint* therefore captures everything the reduction may
rely on:

* the shared locations it reads and writes, as reported by
  :meth:`repro.interp.memory_model.MemoryModel.step_footprint` — two
  footprints conflict when they share a location and at least one side
  writes it (an RMW reads *and* writes, so it conflicts with every
  access on its location);
* a *visibility* bit: whether the step can change the control
  observables a configuration hook may inspect (a thread's program
  counter or termination status).  Visible steps are pairwise
  dependent, which keeps every interleaving of control-point changes —
  exactly what label-occupancy properties such as mutual exclusion need
  (see :func:`control_signature`).  Visibility is only tracked when the
  exploration actually carries a ``check_config`` hook; pure
  reachability runs leave it off and reduce harder.

Silent steps of different threads never conflict through memory (their
footprints are empty); with visibility off they are fully independent.
"""

from __future__ import annotations

from typing import FrozenSet, NamedTuple, Optional, Tuple

from repro.lang.actions import Var
from repro.lang.semantics import PendingStep, is_terminated
from repro.lang.syntax import Com, program_counter

#: Reduction modes accepted by ``explore(reduction=...)`` and the CLI.
REDUCTIONS = ("none", "sleep", "dpor", "optimal")

#: State equivalences the reducing explorers can key their prune store
#: by.  ``shasha-snir`` is the classical equivalence the canonical key
#: realises (events + rf + full per-variable mo); ``reads-from`` keys by
#: the observation abstraction instead — the rf map and covered-write
#: masks of ``c11/compact.py``, with the modification order quotiented
#: over *dead* writes (never read, not covered, observable to no live
#: thread, and not mo-final) whose relative order no continuation can
#: distinguish (DESIGN.md §13).
EQUIVALENCES = ("shasha-snir", "reads-from")


class RaceWitness(NamedTuple):
    """One detected race, with the sequence that reverses it.

    ``index`` is the position (in the explorer's root-to-node edge
    list) of the earlier racing step, ``tid`` the thread of the later
    one, and ``view`` the *minimal reversing sequence*: the thread ids
    of the not-happens-after witness suffix, in trace order, followed
    by ``tid`` itself.  Replaying ``view`` from the node at ``index``
    executes the race the other way around — the parsimonious
    alternative to a wakeup tree (DESIGN.md §13).
    """

    index: int
    tid: int
    view: Tuple[int, ...]


class StepFootprint(NamedTuple):
    """What one pending step may touch: locations plus control visibility."""

    reads: FrozenSet[Var]
    writes: FrozenSet[Var]
    visible: bool = False


#: The footprint of a silent, control-invisible step.
EMPTY_FOOTPRINT = StepFootprint(frozenset(), frozenset(), False)

#: Interned footprints keyed by their content (the empty footprint is
#: early-returned before the lookup, so it never appears here).  The
#: reduction layer recomputes every pending step's footprint at every
#: node; the location sets are already shared by the memory-model layer
#: (DESIGN.md §11), so the composed footprint objects intern cheaply
#: and node-to-node comparisons stay allocation-free.
_FOOTPRINT_CACHE: dict = {}


def conflicts(a: StepFootprint, b: StepFootprint) -> bool:
    """Whether two steps of *distinct* threads may fail to commute.

    Same-location with at least one write, or both control-visible.
    """
    if a.visible and b.visible:
        return True
    if a.writes and (a.writes & b.reads or a.writes & b.writes):
        return True
    return bool(b.writes & a.reads)


def control_signature(com: Com) -> Tuple[int, bool]:
    """The control observables of one thread: ``(pc, terminated)``.

    Exactly what the case-study hooks inspect (``Configuration.pc`` and
    ``Configuration.is_terminated``); a step that preserves both on its
    thread cannot change the truth of a label-occupancy property.
    """
    return (program_counter(com), is_terminated(com))


def step_changes_control(com: Com, step: PendingStep) -> bool:
    """Whether ``step`` can change its thread's control signature.

    Probed exactly: ``resume`` is a pure function and the successor's
    *structure* does not depend on the value filling a read hole
    (substitution replaces the leftmost load by a literal; branching on
    the value happens in a later, separate silent step), so a single
    probe value decides visibility for every admissible value.
    """
    return control_signature(step.resume(0)) != control_signature(com)


def step_footprint(
    model,
    state,
    program,
    tid: int,
    step,
    track_control: bool = False,
) -> StepFootprint:
    """The full footprint of ``step``: model-reported locations plus the
    control-visibility bit (only computed when a config hook is live).

    For a lowered step (DESIGN.md §12) visibility is read straight off
    the compiled table entry — the legacy path used to re-``resume`` the
    command at *every* node the reduction visits, even though the answer
    is a function of the instruction alone.  The legacy path still
    probes, but builds the thread's command only when the bit is
    actually tracked."""
    reads, writes = model.step_footprint(state, tid, step)
    if track_control:
        visible = getattr(step, "control_visible", None)
        if visible is None:
            visible = step_changes_control(program.command(tid), step)
    else:
        visible = False
    if not (reads or writes or visible):
        return EMPTY_FOOTPRINT
    key = (reads, writes, visible)
    cached = _FOOTPRINT_CACHE.get(key)
    if cached is None:
        cached = StepFootprint(reads, writes, visible)
        _FOOTPRINT_CACHE[key] = cached
    return cached


def pending_steps(program) -> "dict[int, PendingStep]":
    """The one pending step of every non-terminated thread.

    The uninterpreted semantics is deterministic up to the read hole
    (``repro.lang.semantics``): each command yields at most one step, so
    thread-granular reduction is well-defined — choosing a thread
    chooses its step, and only the memory model branches below it.
    Lowered programs answer from their cached per-node step table.
    """
    from repro.interp.compiled import LoweredProgram
    from repro.lang.program import program_steps

    if type(program) is LoweredProgram:
        return program.pending_steps()
    steps = {}
    for tid, step in program_steps(program):
        assert tid not in steps, "command semantics yields one step"
        steps[tid] = step
    return steps


__all__ = [
    "EMPTY_FOOTPRINT",
    "EQUIVALENCES",
    "REDUCTIONS",
    "RaceWitness",
    "StepFootprint",
    "conflicts",
    "control_signature",
    "pending_steps",
    "step_changes_control",
    "step_footprint",
]
