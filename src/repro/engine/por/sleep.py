"""Sleep-set pruning over the graph search (reduction ``"sleep"``).

Sleep sets (Godefroid) prune *transitions*, not *states*: after thread
``p`` has been fully explored from a configuration, later sibling
branches carry ``p`` in their sleep set and skip re-exploring it until
some executed step conflicts with ``p``'s footprint — at which point
``p`` wakes.  Every configuration reachable by the full search is still
reached (the classic result that sleep sets alone do not shrink the
state count), which makes this the *hook-safe* reduction tier: any
``check_config`` property, including memory-reading invariants, sees
exactly the states the unreduced search sees.  Only the transition
count (and hence successor-expansion work) shrinks.

Because the engine deduplicates by canonical key, a configuration can
be reached with *different* sleep sets along different paths.  Plain
seen-set dedup would be unsound (the first arrival's sleep set may have
pruned a thread the second arrival needs), so dedup here follows the
sleep-set *inclusion* discipline from the state-space-caching
literature: each expansion of a key records its sleep set, and a new
arrival is pruned only when its sleep set is a superset of a recorded
one (its exploration would be a subset of work already done).
Incomparable arrivals re-expand the configuration — counted in
``EngineStats.revisits``; the per-key records form an antichain over a
finite lattice, so re-expansion terminates.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, FrozenSet, Hashable, List, Mapping, Optional

from repro.engine.core import ExplorationResult, Violation, _key_of, _state_size
from repro.engine.frontier import frontier_class
from repro.engine.keys import KEY_CACHE
from repro.engine.por.deps import StepFootprint, conflicts, pending_steps, step_footprint


def explore_sleep(
    program,
    init_values: Mapping,
    model,
    max_events: Optional[int] = None,
    max_configs: Optional[int] = None,
    check_config: Optional[Callable] = None,
    check_step: Optional[Callable] = None,
    stop_on_violation: bool = False,
    keep_representatives: bool = False,
    canonicalize: bool = True,
    strategy: str = "bfs",
    spill_dir: Optional[str] = None,
    spill_max_entries: Optional[int] = None,
    spill_max_bytes: Optional[int] = None,
    checkpoint: Optional[str] = None,
    checkpoint_every: Optional[int] = None,
    resume_payload: Optional[dict] = None,
    fingerprint: Optional[dict] = None,
) -> ExplorationResult:
    """Graph search with sleep-set transition pruning.

    Honours ``strategy`` through the ordinary frontier abstraction
    (``iddfs`` degrades to a single depth-first run — the deepening
    loop lives above the reduction dispatch and is skipped).

    ``check_step`` fires on every transition the reduction *keeps* —
    pruned (commutation-redundant) transitions are not checked, and a
    configuration re-expanded under an incomparable sleep set re-checks
    its outgoing transitions.  Because sleep sets visit every
    configuration of the full search, an inductive step property (the
    proof-outline obligations of DESIGN.md §10: initialisation plus
    preservation along explored paths) reaches the same proved/failed
    verdict as the unreduced search; only the obligation *counts* and
    the particular failing transitions reported may differ.

    ``spill_dir`` + ``spill_max_entries``/``spill_max_bytes`` route the
    ``known`` visited set through
    :class:`~repro.engine.visited.SpillableVisitedSet` (DESIGN.md §15).
    The sleep-record antichain stays in memory — it is consulted on
    every pop and push — so spilling bounds the key *store*, which is
    the dominant term, not the whole resident footprint.
    """
    from repro.c11.compact import ORDER_TIMER
    from repro.interp.memory_model import MODEL_TIMER
    from repro.interp.config import Configuration
    from repro.interp.interpreter import thread_successor_list
    from repro.obs.trace import tracer

    initial = Configuration(program, model.initial(init_values))
    result: ExplorationResult = ExplorationResult(initial)
    result._model = model
    result._canonicalize = canonicalize
    stats = result.stats
    stats.strategy = strategy
    stats.reduction = "sleep"
    track_control = check_config is not None

    tr = tracer()
    run = (
        tr.run_start(
            program, getattr(model, "name", type(model).__name__),
            strategy, "sleep", max_events,
        )
        if tr is not None
        else None
    )

    clock = time.perf_counter
    t_run = clock()
    hits0, misses0, _ = KEY_CACHE.snapshot()
    orders0 = ORDER_TIMER.snapshot()
    model0 = MODEL_TIMER.snapshot()

    spill_store = None
    if spill_max_entries is not None or spill_max_bytes is not None:
        from repro.engine.visited import SpillableVisitedSet, encode_config_key

        spill_store = SpillableVisitedSet(
            spill_dir=spill_dir,
            max_entries=spill_max_entries,
            max_bytes=spill_max_bytes,
            encode=encode_config_key,
        )

    #: key -> antichain of sleep-tid sets this key was expanded with
    expanded: Dict[Hashable, List[FrozenSet[int]]] = {}

    from repro.faults import FaultInterrupt, active_plan

    plan = active_plan()
    last_ckpt: Optional[str] = None

    try:
        t0 = clock()
        init_key = _key_of(initial, model, canonicalize)
        stats.time_keys += clock() - t0

        frontier = frontier_class(strategy)()
        capped = False
        if resume_payload is not None:
            from repro.engine.checkpoint import restore_seen

            loop = resume_payload
            known = restore_seen(loop["seen"], spill_store)
            frontier.restore(loop["frontier"])
            expanded = loop["expanded"]
            result.parents = loop["parents"]
            result.terminal = loop["terminal"]
            result.violations = loop["violations"]
            result.representatives = loop["representatives"]
            result.configs = loop["configs"]
            result.transitions = loop["transitions"]
            result.truncated = loop["truncated"]
            result.capped = capped = loop["capped"]
            result.stats = stats = loop["stats"]
            stats.resumed = 1
        else:
            result.parents[init_key] = (None, None)
            frontier.push((initial, init_key, {}))
            stats.peak_frontier = 1
            if spill_store is not None:
                known = spill_store
                known.add(init_key)
            else:
                known = {init_key}

        def write_ckpt() -> None:
            import dataclasses

            from repro.engine.checkpoint import snapshot_seen, write_checkpoint

            snap_stats = dataclasses.replace(stats)
            snap_stats.checkpoints += 1
            h1, m1, _ = KEY_CACHE.snapshot()
            snap_stats.key_hits += h1 - hits0
            snap_stats.key_misses += m1 - misses0
            snap_stats.time_total += clock() - t_run
            snap_stats.time_orders += ORDER_TIMER.snapshot() - orders0
            snap_stats.time_model += MODEL_TIMER.snapshot() - model0
            write_checkpoint(checkpoint, fingerprint, {
                "algo": "sleep",
                "frontier": frontier.snapshot(),
                "seen": snapshot_seen(known),
                "expanded": expanded,
                "parents": result.parents,
                "terminal": result.terminal,
                "violations": result.violations,
                "representatives": result.representatives,
                "configs": result.configs,
                "transitions": result.transitions,
                "truncated": result.truncated,
                "capped": result.capped,
                "stats": snap_stats,
            })
            stats.checkpoints += 1
            if tr is not None:
                tr.emit(
                    "ckpt", run=run, path=checkpoint,
                    configs=result.configs, action="write",
                )

        next_ckpt = None
        if checkpoint is not None:
            every = checkpoint_every or 1000
            next_ckpt = result.configs + every

        while frontier:
            if next_ckpt is not None and result.configs >= next_ckpt:
                write_ckpt()
                last_ckpt = checkpoint
                next_ckpt = result.configs + every
            if plan is not None and plan.interrupt_due(result.configs):
                if tr is not None:
                    tr.emit(
                        "fault", run=run, kind="interrupt",
                        detail=f"configs={result.configs}",
                    )
                raise FaultInterrupt(
                    f"injected interrupt at {result.configs} configurations",
                    checkpoint=last_ckpt,
                )
            config, key, sleep = frontier.pop()
            sleeping = frozenset(sleep)
            records = expanded.get(key)
            if records is not None:
                if any(rec <= sleeping for rec in records):
                    continue  # covered arrival: strictly less awake
                stats.revisits += 1
            expanded.setdefault(key, []).append(sleeping)

            if records is None:  # first visit: hooks fire exactly once per key
                result.configs += 1
                if keep_representatives:
                    result.representatives[key] = config
                if check_config is not None:
                    t0 = clock()
                    messages = check_config(config)
                    stats.time_checks += clock() - t0
                    for message in messages:
                        result.violations.append(Violation(message, config))
                        if stop_on_violation:
                            return result
                if config.is_terminated():
                    result.terminal.append(config)

            if config.is_terminated():
                continue

            steps = pending_steps(config.program)
            at_bound = (
                max_events is not None and _state_size(config.state) >= max_events
            )
            awake_sleep = dict(sleep)
            for tid in sorted(steps):
                step = steps[tid]
                if tid in sleep:
                    stats.sleep_hits += 1
                    stats.pruned += 1
                    if tr is not None and tr.tick():
                        tr.prune(run, "sleep", config.program)
                    if at_bound and not step.is_silent:
                        result.truncated = True
                    continue
                if at_bound and not step.is_silent:
                    # Bound-blocked, exactly as the unreduced loop: the
                    # eventful step is skipped and recorded, and the
                    # thread does not join the sleep set (it was never
                    # explored here).
                    result.truncated = True
                    continue
                fp = step_footprint(
                    model, config.state, config.program, tid, step,
                    track_control,
                )
                stats.expanded += 1
                t0 = clock()
                successors = thread_successor_list(config, model, tid, step)
                stats.time_expand += clock() - t0
                child_sleep = {
                    q: fq for q, fq in awake_sleep.items()
                    if q != tid and not conflicts(fq, fp)
                }
                for child in successors:
                    result.transitions += 1
                    if check_step is not None:
                        t0 = clock()
                        messages = check_step(child)
                        stats.time_checks += clock() - t0
                        for message in messages:
                            result.violations.append(
                                Violation(message, config, child)
                            )
                            if stop_on_violation:
                                return result
                    if capped:
                        continue
                    t0 = clock()
                    child_key = _key_of(child.target, model, canonicalize)
                    stats.time_keys += clock() - t0
                    if child_key not in known:
                        if max_configs is not None and len(known) >= max_configs:
                            result.truncated = True
                            result.capped = True
                            capped = True
                            continue
                        known.add(child_key)
                    result.parents.setdefault(child_key, (key, child))
                    recs = expanded.get(child_key)
                    if recs is not None and any(
                        rec <= frozenset(child_sleep) for rec in recs
                    ):
                        continue  # already expanded at least this awake
                    frontier.push((child.target, child_key, child_sleep))
                    if len(frontier) > stats.peak_frontier:
                        stats.peak_frontier = len(frontier)
                awake_sleep[tid] = fp  # sleeps for the remaining siblings
    finally:
        if spill_store is not None:
            stats.spills += spill_store.spills
            stats.spilled_keys += spill_store.spilled_keys
            stats.spill_failures += spill_store.spill_failures
            spill_store.close()
        stats.time_total += clock() - t_run
        hits1, misses1, _ = KEY_CACHE.snapshot()
        stats.key_hits += hits1 - hits0
        stats.key_misses += misses1 - misses0
        stats.time_orders += ORDER_TIMER.snapshot() - orders0
        stats.time_model += MODEL_TIMER.snapshot() - model0
        if tr is not None:
            tr.run_end(
                run, stats, result.configs, result.transitions,
                result.truncated,
            )

    return result


__all__ = ["explore_sleep"]
