"""Source-set-style dynamic partial-order reduction (``"dpor"``).

A depth-first exploration in the Flanagan–Godefroid / Abdulla et al.
mould, thread-granular (each thread has exactly one pending step, so
choosing a thread chooses its step and only the memory model branches
below it):

* **Race detection** — every executed step carries a vector clock (the
  join of its thread's history with the clocks of the conflicting
  accesses it extends).  On *entering* a configuration, the pending
  step of **every** thread — picked for exploration or not — is
  compared against the *last* conflicting accesses on the current path
  (last write per location read, last write plus per-thread last reads
  per location written, last visible step when control visibility is
  on); any such access not already happens-before the thread is a race.
* **Backtrack-point insertion** — for each race with an earlier step
  ``e``, the *source-set* rule (Abdulla et al.) schedules the reversal
  at the configuration ``e`` was executed from: unless an initial of
  the reversing witness is already in that backtrack set, one initial
  is inserted, preferring an awake one.  (Inserting the racing thread
  itself — the plain Flanagan–Godefroid rule — is incomplete under
  sleep sets: it can be asleep at the ancestor while another initial
  of the same witness is awake.)
* **Sleep sets** — a fully explored thread sleeps for its later
  siblings and wakes on the first conflicting step, so no Mazurkiewicz
  trace is explored twice.

Unlike classical stateless DPOR this search is *stateful*: a
configuration re-reached with a sleep set that includes a recorded one
is pruned (the same inclusion discipline as :mod:`.sleep`).  Pruning
against a previously explored subtree can hide races between that
subtree's steps and the *current* path, so every such hit triggers a
conservative fallback: all nodes on the current spine are fully
expanded (backtrack := enabled, sleep cleared).  Under the RA/SRA
event semantics states embed their whole history, so inequivalent
interleavings rarely collapse to one canonical key and the fallback
stays rare; under SC it fires often and DPOR degrades toward the full
search — sound, just not profitable there.

What the reduction preserves (and tests/fuzzing enforce): terminal
configurations and their outcome sets, violation verdicts of
``check_config`` hooks over control observables (visibility makes
pc-changing steps pairwise dependent), the truncation flags, and
``configs`` can only shrink.  Memory-reading per-state hooks need the
``"sleep"`` tier or no reduction (DESIGN.md §9).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.engine.core import ExplorationResult, Violation, _key_of, _state_size
from repro.engine.keys import KEY_CACHE
from repro.engine.por.deps import StepFootprint, conflicts, pending_steps, step_footprint

Clock = Dict[int, int]  # tid -> highest path index happens-before


class _Abort(Exception):
    """Internal: stop the whole search (violation stop or config cap)."""


@dataclass
class _Node:
    """One configuration on the DFS spine, with its DPOR bookkeeping."""

    config: object
    key: Hashable
    steps: Dict[int, object]  # tid -> PendingStep
    fps: Dict[int, StepFootprint]
    enabled: Tuple[int, ...]
    backtrack: Set[int]
    done: Set[int] = field(default_factory=set)
    #: tid -> footprint it went to sleep with (inherited + done siblings)
    sleep: Dict[int, StepFootprint] = field(default_factory=dict)
    #: tid -> vector clock of that thread's last executed step on the path
    thread_clock: Dict[int, Clock] = field(default_factory=dict)
    last_write: Dict[str, Tuple[int, int]] = field(default_factory=dict)  # var -> (idx, tid)
    last_reads: Dict[str, Dict[int, int]] = field(default_factory=dict)  # var -> tid -> idx
    last_visible: Optional[Tuple[int, int]] = None
    # iteration state of the thread currently being expanded
    active_tid: Optional[int] = None
    active_fp: Optional[StepFootprint] = None
    active_steps: List = field(default_factory=list)
    active_idx: int = 0
    active_ctx: Optional[tuple] = None  # (thread_clock', last_write', last_reads', last_visible')
    #: tid -> last conflicting path accesses of its pending step,
    #: computed once at node entry (the tables are node-fixed)
    cands: Dict[int, Set[Tuple[int, int]]] = field(default_factory=dict)
    #: access summary of the subtree explored below this node (folded
    #: up at pop time, recorded per key for the visited-prune fallback)
    sub_reads: Set[str] = field(default_factory=set)
    sub_writes: Set[str] = field(default_factory=set)
    sub_visible: bool = False
    #: summary invalid (a cycle was cut inside this subtree): prunes
    #: against this key must fall back to whole-spine expansion
    sub_universal: bool = False


def _candidates(
    last_write: Dict[str, Tuple[int, int]],
    last_reads: Dict[str, Dict[int, int]],
    last_visible: Optional[Tuple[int, int]],
    tid: int,
    fp: StepFootprint,
) -> Set[Tuple[int, int]]:
    """Last conflicting accesses on the path, as ``(index, tid)`` pairs."""
    out: Set[Tuple[int, int]] = set()
    for var in fp.reads | fp.writes:
        last = last_write.get(var)
        if last is not None and last[1] != tid:
            out.add(last)
    for var in fp.writes:
        for reader, idx in last_reads.get(var, {}).items():
            if reader != tid:
                out.add((idx, reader))
    if fp.visible and last_visible is not None and last_visible[1] != tid:
        out.add(last_visible)
    return out


def explore_dpor(
    program,
    init_values: Mapping,
    model,
    max_events: Optional[int] = None,
    max_configs: Optional[int] = None,
    check_config: Optional[Callable] = None,
    stop_on_violation: bool = False,
    keep_representatives: bool = False,
    canonicalize: bool = True,
    strategy: str = "bfs",
    equivalence: str = "shasha-snir",
) -> ExplorationResult:
    """Stateful source-set DPOR from ``(P, σ_0)``.

    The traversal is inherently depth-first (race detection needs the
    current path); ``strategy`` is recorded in the stats but does not
    choose a frontier.  ``configs`` counts *distinct* configurations
    visited, so it is directly comparable with — and never exceeds —
    the unreduced count.

    ``equivalence`` selects the key the visited store deduplicates by:
    ``"shasha-snir"`` (canonical, exact) or ``"reads-from"`` (the
    observation quotient of DESIGN.md §13 — configurations differing
    only in the ``mo`` of dead writes merge, so ``configs`` may shrink
    further; the per-model key hooks keep it verdict-preserving).
    """
    from repro.c11.compact import ORDER_TIMER
    from repro.interp.memory_model import MODEL_TIMER
    from repro.interp.config import Configuration
    from repro.interp.interpreter import thread_successor_list
    from repro.obs.trace import tracer

    initial = Configuration(program, model.initial(init_values))
    result: ExplorationResult = ExplorationResult(initial)
    result._model = model
    result._canonicalize = canonicalize
    result._equivalence = equivalence
    stats = result.stats
    stats.strategy = strategy
    stats.reduction = "dpor"
    stats.equivalence = equivalence
    track_control = check_config is not None

    tr = tracer()
    run = (
        tr.run_start(
            program, getattr(model, "name", type(model).__name__),
            strategy, "dpor", max_events,
        )
        if tr is not None
        else None
    )

    clock = time.perf_counter
    t_run = clock()
    hits0, misses0, _ = KEY_CACHE.snapshot()
    orders0 = ORDER_TIMER.snapshot()
    model0 = MODEL_TIMER.snapshot()

    #: key -> antichain of sleep-tid sets this key was expanded with
    expanded: Dict[Hashable, List[FrozenSet[int]]] = {}
    first_seen: Set[Hashable] = set()
    stack: List[_Node] = []
    #: edges[i] = (tid, footprint, clock) of the step stack[i] -> stack[i+1]
    edges: List[Tuple[int, StepFootprint, Clock]] = []
    #: key -> [reads, writes, visible, universal] — merged access summary
    #: of every completed exploration from that configuration
    summaries: Dict[Hashable, list] = {}
    #: key -> number of expansions of it currently on the spine
    on_stack: Dict[Hashable, int] = {}

    def visit(config, key) -> None:
        """First-visit bookkeeping (hooks, terminal set, config cap)."""
        if key in first_seen:
            stats.revisits += 1
            return
        if max_configs is not None and len(first_seen) >= max_configs:
            result.truncated = True
            result.capped = True
            raise _Abort
        first_seen.add(key)
        result.configs += 1
        if keep_representatives:
            result.representatives[key] = config
        if check_config is not None:
            t0 = clock()
            messages = check_config(config)
            stats.time_checks += clock() - t0
            for message in messages:
                result.violations.append(Violation(message, config))
                if stop_on_violation:
                    raise _Abort
        if config.is_terminated():
            result.terminal.append(config)

    def _insert_backtrack(idx: int, tid: int, fp: StepFootprint, own: Clock) -> None:
        """Schedule the reversal of a race at ``stack[idx]`` — the
        source-set insertion rule (Abdulla et al.).

        The witness of the reversed race is ``v`` — the path steps after
        ``idx`` that do not happen-after the raced step, followed by
        ``tid``'s pending step.  Any *initial* of ``v`` (a thread whose
        first step in ``v`` has no happens-before predecessor inside it)
        starts an equivalent suffix, so if one is already scheduled at
        the ancestor nothing needs inserting; otherwise one initial is
        added — an awake one when possible.  Inserting only ``tid``
        (the Flanagan–Godefroid rule) is incomplete under sleep sets:
        ``tid`` may be sleeping at the ancestor, covered there only by
        traces that cannot realise this reversal, while another initial
        is wide awake.
        """
        target = stack[idx]
        raced_tid = edges[idx][0]
        v = [
            j for j in range(idx + 1, len(edges))
            if edges[j][2].get(raced_tid, -1) < idx  # not happens-after the race
        ]
        initials: Set[int] = set()
        for pos, j in enumerate(v):
            if all(
                edges[j][2].get(edges[k][0], -1) < k for k in v[:pos]
            ):
                initials.add(edges[j][0])
        if all(
            edges[k][0] != tid
            and own.get(edges[k][0], -1) < k
            and not conflicts(fp, edges[k][1])
            for k in v
        ):
            initials.add(tid)
        if not initials:  # defensive: tid is initial whenever v is empty
            initials.add(tid)
        if target.backtrack & initials:
            return  # an equivalent reversal is already scheduled
        enabled_inits = sorted(q for q in initials if q in target.enabled)
        if not enabled_inits:  # bound-blocked at the ancestor: defensive
            target.backtrack.update(target.enabled)
            return
        awake = [q for q in enabled_inits if q not in target.sleep]
        target.backtrack.add(awake[0] if awake else enabled_inits[0])

    def make_node(config, key, sleep, thread_clock, last_write, last_reads,
                  last_visible) -> Optional[_Node]:
        """Book a configuration in; return its node, or ``None`` for leaves."""
        visit(config, key)
        expanded.setdefault(key, []).append(frozenset(sleep))
        if config.is_terminated():
            return None
        steps = pending_steps(config.program)
        at_bound = (
            max_events is not None and _state_size(config.state) >= max_events
        )
        fps: Dict[int, StepFootprint] = {}
        enabled: List[int] = []
        cands: Dict[int, Set[Tuple[int, int]]] = {}
        for tid in sorted(steps):
            step = steps[tid]
            fps[tid] = step_footprint(
                model, config.state, config.program, tid, step,
                track_control,
            )
            if step.is_silent or not at_bound:
                enabled.append(tid)
            else:
                result.truncated = True
        # Race analysis at node entry, for *every* pending step — picked
        # or not: a thread this branch never runs must still get its
        # reversals scheduled at the ancestors.  Bound-blocked steps are
        # analysed too; they are enabled at every ancestor (event counts
        # only grow along a path).
        for tid in sorted(steps):
            fp = fps[tid]
            cand = _candidates(last_write, last_reads, last_visible, tid, fp)
            cands[tid] = cand
            own = thread_clock.get(tid, {})
            for idx, other in cand:
                if idx > own.get(other, -1):  # concurrent conflict: a race
                    stats.races += 1
                    if tr is not None:
                        tr.race(run, tid, fp, config.program)
                    _insert_backtrack(idx, tid, fp, own)
        if not enabled:
            return None
        first_awake = next((t for t in enabled if t not in sleep), None)
        backtrack = set() if first_awake is None else {first_awake}
        return _Node(
            config=config, key=key, steps=steps, fps=fps,
            enabled=tuple(enabled), backtrack=backtrack, sleep=dict(sleep),
            thread_clock=thread_clock, last_write=last_write,
            last_reads=last_reads, last_visible=last_visible, cands=cands,
        )

    try:
        t0 = clock()
        init_key = _key_of(initial, model, canonicalize, equivalence)
        stats.time_keys += clock() - t0
        result.parents[init_key] = (None, None)

        root = make_node(initial, init_key, {}, {}, {}, {}, None)
        if root is not None:
            stack.append(root)
            on_stack[init_key] = 1
            stats.peak_frontier = 1

        while stack:
            node = stack[-1]
            depth = len(stack) - 1

            if node.active_tid is None:
                pick = next(
                    (t for t in node.enabled
                     if t in node.backtrack and t not in node.done
                     and t not in node.sleep),
                    None,
                )
                if pick is None:
                    blocked = sum(
                        1 for t in node.enabled
                        if t in node.backtrack and t not in node.done
                    )
                    stats.sleep_hits += blocked
                    stats.pruned += sum(
                        1 for t in node.enabled if t not in node.done
                    )
                    stack.pop()
                    on_stack[node.key] -= 1
                    entry = summaries.setdefault(
                        node.key, [set(), set(), False, False]
                    )
                    entry[0] |= node.sub_reads
                    entry[1] |= node.sub_writes
                    entry[2] = entry[2] or node.sub_visible
                    entry[3] = entry[3] or node.sub_universal
                    if edges:
                        _etid, efp, _eclock = edges.pop()
                        parent = stack[-1]
                        parent.sub_reads |= node.sub_reads | efp.reads
                        parent.sub_writes |= node.sub_writes | efp.writes
                        parent.sub_visible = (
                            parent.sub_visible or node.sub_visible or efp.visible
                        )
                        parent.sub_universal = (
                            parent.sub_universal or node.sub_universal
                        )
                    continue

                fp = node.fps[pick]
                # Races were already detected (and backtrack points
                # inserted) at node entry.  The step's clock: program
                # order joined with every conflicting access it extends
                # (racing or not — once executed here it is ordered
                # after all of them).
                step_clock: Clock = dict(node.thread_clock.get(pick, {}))
                step_clock[pick] = depth
                for idx, _other in node.cands[pick]:
                    for t, i in edges[idx][2].items():
                        if i > step_clock.get(t, -1):
                            step_clock[t] = i
                thread_clock = dict(node.thread_clock)
                thread_clock[pick] = step_clock
                last_write = node.last_write
                if fp.writes:
                    last_write = dict(last_write)
                    for var in fp.writes:
                        last_write[var] = (depth, pick)
                last_reads = node.last_reads
                if fp.reads:
                    last_reads = dict(last_reads)
                    for var in fp.reads:
                        last_reads[var] = {**last_reads.get(var, {}), pick: depth}
                last_visible = (depth, pick) if fp.visible else node.last_visible

                node.active_tid = pick
                node.active_fp = fp
                node.active_ctx = (step_clock, thread_clock, last_write,
                                   last_reads, last_visible)
                t0 = clock()
                node.active_steps = thread_successor_list(
                    node.config, model, pick, node.steps[pick]
                )
                stats.time_expand += clock() - t0
                stats.expanded += 1
                node.active_idx = 0
                continue

            if node.active_idx >= len(node.active_steps):
                # This thread's subtree is complete: it sleeps for the
                # siblings explored after it.
                node.sleep[node.active_tid] = node.active_fp
                node.done.add(node.active_tid)
                node.active_tid = None
                node.active_fp = None
                node.active_steps = []
                node.active_ctx = None
                continue

            step = node.active_steps[node.active_idx]
            node.active_idx += 1
            tid, fp = node.active_tid, node.active_fp
            step_clock, thread_clock, last_write, last_reads, last_visible = (
                node.active_ctx
            )
            result.transitions += 1
            t0 = clock()
            child_key = _key_of(step.target, model, canonicalize, equivalence)
            stats.time_keys += clock() - t0
            result.parents.setdefault(child_key, (node.key, step))
            child_sleep = {
                q: fq for q, fq in node.sleep.items()
                if q != tid and not conflicts(fq, fp)
            }
            records = expanded.get(child_key)
            if records is not None and any(
                rec <= frozenset(child_sleep) for rec in records
            ):
                stats.revisits += 1
                if tr is not None and tr.tick():
                    tr.prune(run, "visited", step.target.program)
                # Pruning against an explored subtree can hide races
                # between *its* steps and the current path.  Compensate
                # with the subtree's recorded access summary: every
                # spine node whose outgoing edge conflicts with it is
                # fully expanded.  A terminal child has no subtree,
                # hence no hidden races — no compensation at all.
                node.sub_reads |= fp.reads
                node.sub_writes |= fp.writes
                node.sub_visible = node.sub_visible or fp.visible
                summary = summaries.get(child_key)
                if not step.target.is_terminated():
                    if on_stack.get(child_key) or summary is None or summary[3]:
                        # A cycle (or a summary poisoned by one): the
                        # pruned subtree is still being explored and its
                        # summary is incomplete — expand the whole spine
                        # and poison everything inside the cycle.
                        cut = max(
                            i for i, m in enumerate(stack) if m.key == child_key
                        ) if on_stack.get(child_key) else -1
                        for i, spine in enumerate(stack):
                            spine.backtrack.update(spine.enabled)
                            spine.sleep.clear()
                            if i > cut >= 0:
                                spine.sub_universal = True
                        node.sub_universal = True
                    else:
                        sub_r, sub_w, sub_vis, _universal = summary
                        node.sub_reads |= sub_r
                        node.sub_writes |= sub_w
                        node.sub_visible = node.sub_visible or sub_vis
                        _c_clock, _c_tclock, lw, lr, lv = node.active_ctx
                        hits = set()
                        for var in sub_w:
                            last = lw.get(var)
                            if last is not None:
                                hits.add(last[0])
                            for _reader, i in lr.get(var, {}).items():
                                hits.add(i)
                        for var in sub_r:
                            last = lw.get(var)
                            if last is not None:
                                hits.add(last[0])
                        if sub_vis and lv is not None:
                            hits.add(lv[0])
                        for i in hits:
                            spine = stack[i]
                            spine.backtrack.update(spine.enabled)
                            spine.sleep.clear()
                continue
            edges.append((tid, fp, step_clock))
            child = make_node(
                step.target, child_key, child_sleep, thread_clock,
                last_write, last_reads, last_visible,
            )
            if child is None:
                edges.pop()
                summaries.setdefault(child_key, [set(), set(), False, False])
                node.sub_reads |= fp.reads
                node.sub_writes |= fp.writes
                node.sub_visible = node.sub_visible or fp.visible
            else:
                stack.append(child)
                on_stack[child_key] = on_stack.get(child_key, 0) + 1
                if len(stack) > stats.peak_frontier:
                    stats.peak_frontier = len(stack)
    except _Abort:
        pass
    finally:
        stats.time_total += clock() - t_run
        hits1, misses1, _ = KEY_CACHE.snapshot()
        stats.key_hits += hits1 - hits0
        stats.key_misses += misses1 - misses0
        stats.time_orders += ORDER_TIMER.snapshot() - orders0
        stats.time_model += MODEL_TIMER.snapshot() - model0
        if tr is not None:
            tr.run_end(
                run, stats, result.configs, result.transitions,
                result.truncated,
            )

    return result


__all__ = ["explore_dpor"]
