"""Parsimonious race-reversal DPOR (``"optimal"``, DESIGN.md §13).

The ``"dpor"`` tier (:mod:`.dpor`) schedules each detected race by
inserting a *single initial* of the reversing witness into an
ancestor's backtrack set; from there the reversal is re-discovered step
by step, with every fresh node seeding an arbitrary awake thread and
relying on sleep sets and the visited store to cut the wandering short.
This tier follows "Parsimonious Optimal Dynamic Partial Order
Reduction" (Jonsson et al., arXiv 2405.11128) instead: a race is
scheduled as its full minimal reversing sequence — a *view* — and the
re-exploration *descends the view*, executing exactly the witness steps
in order until the reversal is realised.  Intermediate nodes explore
only the guided direction (plus whatever later races insert at them),
so the detour between reversal and rejoining the visited state space is
as short as the witness itself — the effect wakeup trees buy in
classical optimal DPOR, without maintaining trees:

* **Views, not wakeup trees** — a view is an ordinary tuple of thread
  ids (:class:`~repro.engine.por.deps.RaceWitness`), dead after one
  descent.  Wakeup trees exist to *persist* minimal sequences across
  sleep-set blocking inside a stateless search; here the stateful
  visited store (canonical keys × sleep-set antichains, inherited from
  :mod:`.dpor`) already remembers every explored subtree, so a blocked
  view can simply be dropped — its trace is covered — and nothing needs
  grafting (DESIGN.md §13).
* **At most one scheduled view per head** — a view is only inserted
  when no initial of its witness is already among the node's done,
  active or scheduled heads (the same source-set skip rule as
  ``"dpor"``), so ``pending`` holds at most one view per thread and
  cannot grow beyond the thread count.
* **Equivalence-parameterised keying** — the visited store can key by
  the canonical (Shasha–Snir) key or by the *reads-from* quotient
  (``equivalence="reads-from"``): configurations that agree on events,
  ``rf`` and covered writes but order dead writes differently in ``mo``
  merge, shrinking ``configs`` further (DESIGN.md §13; the per-model
  key hooks keep the knob verdict-preserving — SRA falls back to the
  exact key).

Race detection (vector clocks at node entry), sleep-set inheritance
with conflict wake, the visited-prune access-summary compensation and
the cycle fallback are shared with :mod:`.dpor` — see its module
docstring for those invariants.  What the reduction preserves is the
same contract, enforced by the same parity tests and fuzz oracle:
terminal outcome sets, control-observable violation verdicts,
truncation flags; only ``configs`` may shrink.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.engine.core import ExplorationResult, Violation, _key_of, _state_size
from repro.engine.keys import KEY_CACHE
from repro.engine.por.deps import StepFootprint, conflicts, pending_steps, step_footprint
from repro.engine.por.dpor import _candidates

Clock = Dict[int, int]  # tid -> highest path index happens-before

View = Tuple[int, ...]


class _Abort(Exception):
    """Internal: stop the whole search (violation stop or config cap)."""


@dataclass
class _Node:
    """One configuration on the DFS spine, with its view bookkeeping."""

    config: object
    key: Hashable
    steps: Dict[int, object]  # tid -> PendingStep
    fps: Dict[int, StepFootprint]
    enabled: Tuple[int, ...]
    #: scheduled reversing sequences, at most one per head thread;
    #: sleep-blocked views are retained (a compensation pass may clear
    #: the sleep set while the node is still on the spine)
    pending: List[View]
    done: Set[int] = field(default_factory=set)
    #: tid -> footprint it went to sleep with (inherited + done siblings)
    sleep: Dict[int, StepFootprint] = field(default_factory=dict)
    #: tid -> vector clock of that thread's last executed step on the path
    thread_clock: Dict[int, Clock] = field(default_factory=dict)
    last_write: Dict[str, Tuple[int, int]] = field(default_factory=dict)  # var -> (idx, tid)
    last_reads: Dict[str, Dict[int, int]] = field(default_factory=dict)  # var -> tid -> idx
    last_visible: Optional[Tuple[int, int]] = None
    # iteration state of the thread currently being expanded
    active_tid: Optional[int] = None
    active_fp: Optional[StepFootprint] = None
    active_steps: List = field(default_factory=list)
    active_idx: int = 0
    active_ctx: Optional[tuple] = None  # (step_clock, thread_clock', lw', lr', lv')
    #: the rest of the view being descended: children seed their
    #: pending with it, so the reversal replays without wandering
    active_guide: View = ()
    #: tid -> last conflicting path accesses of its pending step,
    #: computed once at node entry (the tables are node-fixed)
    cands: Dict[int, Set[Tuple[int, int]]] = field(default_factory=dict)
    #: access summary of the subtree explored below this node (folded
    #: up at pop time, recorded per key for the visited-prune fallback)
    sub_reads: Set[str] = field(default_factory=set)
    sub_writes: Set[str] = field(default_factory=set)
    sub_visible: bool = False
    #: summary invalid (a cycle was cut inside this subtree): prunes
    #: against this key must fall back to whole-spine expansion
    sub_universal: bool = False

    def scheduled_heads(self) -> Set[int]:
        """Threads whose exploration from here is done, running or booked."""
        heads = set(self.done)
        if self.active_tid is not None:
            heads.add(self.active_tid)
        heads.update(w[0] for w in self.pending)
        return heads

    def expand_fully(self) -> None:
        """Conservative fallback: schedule every enabled thread and wake
        the sleepers (the whole-node analogue of ``backtrack :=
        enabled; sleep := ∅`` in :mod:`.dpor`)."""
        self.sleep.clear()
        heads = self.scheduled_heads()
        for t in self.enabled:
            if t not in heads:
                self.pending.append((t,))


def explore_optimal(
    program,
    init_values: Mapping,
    model,
    max_events: Optional[int] = None,
    max_configs: Optional[int] = None,
    check_config: Optional[Callable] = None,
    stop_on_violation: bool = False,
    keep_representatives: bool = False,
    canonicalize: bool = True,
    strategy: str = "bfs",
    equivalence: str = "shasha-snir",
) -> ExplorationResult:
    """Parsimonious view-guided DPOR from ``(P, σ_0)``.

    The traversal is inherently depth-first; ``strategy`` is recorded
    in the stats but does not choose a frontier.  ``configs`` counts
    distinct configuration keys, so under ``equivalence="reads-from"``
    it additionally shrinks by the dead-write quotient.
    """
    from repro.c11.compact import ORDER_TIMER
    from repro.interp.memory_model import MODEL_TIMER
    from repro.interp.config import Configuration
    from repro.interp.interpreter import thread_successor_list
    from repro.obs.trace import tracer

    initial = Configuration(program, model.initial(init_values))
    result: ExplorationResult = ExplorationResult(initial)
    result._model = model
    result._canonicalize = canonicalize
    result._equivalence = equivalence
    stats = result.stats
    stats.strategy = strategy
    stats.reduction = "optimal"
    stats.equivalence = equivalence
    track_control = check_config is not None

    tr = tracer()
    run = (
        tr.run_start(
            program, getattr(model, "name", type(model).__name__),
            strategy, "optimal", max_events,
        )
        if tr is not None
        else None
    )

    clock = time.perf_counter
    t_run = clock()
    hits0, misses0, _ = KEY_CACHE.snapshot()
    orders0 = ORDER_TIMER.snapshot()
    model0 = MODEL_TIMER.snapshot()

    #: key -> antichain of sleep-tid sets this key was expanded with
    expanded: Dict[Hashable, List[FrozenSet[int]]] = {}
    first_seen: Set[Hashable] = set()
    stack: List[_Node] = []
    #: edges[i] = (tid, footprint, clock) of the step stack[i] -> stack[i+1]
    edges: List[Tuple[int, StepFootprint, Clock]] = []
    #: key -> [reads, writes, visible, universal] — merged access summary
    #: of every completed exploration from that configuration
    summaries: Dict[Hashable, list] = {}
    #: key -> number of expansions of it currently on the spine
    on_stack: Dict[Hashable, int] = {}

    def visit(config, key) -> None:
        """First-visit bookkeeping (hooks, terminal set, config cap)."""
        if key in first_seen:
            stats.revisits += 1
            return
        if max_configs is not None and len(first_seen) >= max_configs:
            result.truncated = True
            result.capped = True
            raise _Abort
        first_seen.add(key)
        result.configs += 1
        if keep_representatives:
            result.representatives[key] = config
        if check_config is not None:
            t0 = clock()
            messages = check_config(config)
            stats.time_checks += clock() - t0
            for message in messages:
                result.violations.append(Violation(message, config))
                if stop_on_violation:
                    raise _Abort
        if config.is_terminated():
            result.terminal.append(config)

    def _insert_view(idx: int, tid: int, fp: StepFootprint, own: Clock) -> None:
        """Schedule the *minimal reversing sequence* of a race at
        ``stack[idx]`` — the parsimonious insertion rule.

        The witness ``v`` is the path suffix that does not happen-after
        the raced step, and the view is its thread sequence followed by
        ``tid`` — replaying it from the ancestor executes the race the
        other way around with no detour.  ``v`` is program-order closed
        per thread (a step happens-after everything its own thread did),
        so the view's head is the pending step of ``v``'s first thread
        *at the ancestor* and the whole sequence replays thread-granularly.

        The source-set skip rule carries over verbatim: when an initial
        of the witness is already done, active or scheduled at the
        ancestor, that subtree realises an equivalent reversal (or
        re-detects the residual race deeper) and nothing is inserted —
        this is what bounds ``pending`` to one view per head.  When the
        view's head is asleep, guidance is abandoned for a plain awake
        initial exactly as ``"dpor"`` would insert one.
        """
        target = stack[idx]
        raced_tid = edges[idx][0]
        v = [
            j for j in range(idx + 1, len(edges))
            if edges[j][2].get(raced_tid, -1) < idx  # not happens-after the race
        ]
        initials: Set[int] = set()
        for pos, j in enumerate(v):
            if all(
                edges[j][2].get(edges[k][0], -1) < k for k in v[:pos]
            ):
                initials.add(edges[j][0])
        if all(
            edges[k][0] != tid
            and own.get(edges[k][0], -1) < k
            and not conflicts(fp, edges[k][1])
            for k in v
        ):
            initials.add(tid)
        if not initials:  # defensive: tid is initial whenever v is empty
            initials.add(tid)
        if target.scheduled_heads() & initials:
            return  # an equivalent reversal is already booked
        enabled_inits = sorted(q for q in initials if q in target.enabled)
        if not enabled_inits:  # bound-blocked at the ancestor: defensive
            target.expand_fully()
            return
        view: View = tuple(edges[j][0] for j in v) + (tid,)
        head = view[0]
        if head in target.enabled and head not in target.sleep:
            if tr is not None:
                tr.view(run, view, target.config.program)
            target.pending.append(view)
            return
        awake = [q for q in enabled_inits if q not in target.sleep]
        target.pending.append((awake[0],) if awake else (enabled_inits[0],))

    def make_node(config, key, sleep, thread_clock, last_write, last_reads,
                  last_visible, guide: View) -> Optional[_Node]:
        """Book a configuration in; return its node, or ``None`` for leaves."""
        visit(config, key)
        expanded.setdefault(key, []).append(frozenset(sleep))
        if config.is_terminated():
            return None
        steps = pending_steps(config.program)
        at_bound = (
            max_events is not None and _state_size(config.state) >= max_events
        )
        fps: Dict[int, StepFootprint] = {}
        enabled: List[int] = []
        cands: Dict[int, Set[Tuple[int, int]]] = {}
        for tid in sorted(steps):
            step = steps[tid]
            fps[tid] = step_footprint(
                model, config.state, config.program, tid, step,
                track_control,
            )
            if step.is_silent or not at_bound:
                enabled.append(tid)
            else:
                result.truncated = True
        # Race analysis at node entry, for *every* pending step — picked
        # or not: a thread this branch never runs must still get its
        # reversals scheduled at the ancestors (see .dpor).
        for tid in sorted(steps):
            fp = fps[tid]
            cand = _candidates(last_write, last_reads, last_visible, tid, fp)
            cands[tid] = cand
            own = thread_clock.get(tid, {})
            for idx, other in cand:
                if idx > own.get(other, -1):  # concurrent conflict: a race
                    stats.races += 1
                    if tr is not None:
                        tr.race(run, tid, fp, config.program)
                    _insert_view(idx, tid, fp, own)
        if not enabled:
            return None
        # Seed the node's schedule.  Mid-descent the guide continues the
        # reversing view; a guide blocked by the bound falls back to
        # full expansion (every enabled thread), a guide blocked by
        # sleep is covered and degrades to the plain one-awake-thread
        # seed of .dpor.  Fresh unguided nodes seed one awake thread.
        pending: List[View] = []
        if guide:
            head = guide[0]
            if head in enabled and head not in sleep:
                pending.append(guide)
            elif head in steps and head not in enabled:
                pending.extend((t,) for t in enabled)
        if not pending:
            first_awake = next((t for t in enabled if t not in sleep), None)
            if first_awake is not None:
                pending.append((first_awake,))
        return _Node(
            config=config, key=key, steps=steps, fps=fps,
            enabled=tuple(enabled), pending=pending, sleep=dict(sleep),
            thread_clock=thread_clock, last_write=last_write,
            last_reads=last_reads, last_visible=last_visible, cands=cands,
        )

    try:
        t0 = clock()
        init_key = _key_of(initial, model, canonicalize, equivalence)
        stats.time_keys += clock() - t0
        result.parents[init_key] = (None, None)

        root = make_node(initial, init_key, {}, {}, {}, {}, None, ())
        if root is not None:
            stack.append(root)
            on_stack[init_key] = 1
            stats.peak_frontier = 1

        while stack:
            node = stack[-1]
            depth = len(stack) - 1

            if node.active_tid is None:
                # Pick the next runnable view: done-headed views are
                # spent (their head's subtree covers the reversal),
                # sleep-blocked views are retained for a possible wake.
                pick_view: Optional[View] = None
                i = 0
                while i < len(node.pending):
                    head = node.pending[i][0]
                    if head in node.done or head not in node.steps:
                        node.pending.pop(i)
                        continue
                    if head not in node.enabled or head in node.sleep:
                        i += 1  # blocked; keep for a compensation wake
                        continue
                    pick_view = node.pending.pop(i)
                    break
                if pick_view is None:
                    stats.sleep_hits += len(node.pending)
                    stats.pruned += sum(
                        1 for t in node.enabled if t not in node.done
                    )
                    stack.pop()
                    on_stack[node.key] -= 1
                    entry = summaries.setdefault(
                        node.key, [set(), set(), False, False]
                    )
                    entry[0] |= node.sub_reads
                    entry[1] |= node.sub_writes
                    entry[2] = entry[2] or node.sub_visible
                    entry[3] = entry[3] or node.sub_universal
                    if edges:
                        _etid, efp, _eclock = edges.pop()
                        parent = stack[-1]
                        parent.sub_reads |= node.sub_reads | efp.reads
                        parent.sub_writes |= node.sub_writes | efp.writes
                        parent.sub_visible = (
                            parent.sub_visible or node.sub_visible or efp.visible
                        )
                        parent.sub_universal = (
                            parent.sub_universal or node.sub_universal
                        )
                    continue

                pick = pick_view[0]
                fp = node.fps[pick]
                # Races were already detected (and views inserted) at
                # node entry.  The step's clock: program order joined
                # with every conflicting access it extends.
                step_clock: Clock = dict(node.thread_clock.get(pick, {}))
                step_clock[pick] = depth
                for idx, _other in node.cands[pick]:
                    for t, i in edges[idx][2].items():
                        if i > step_clock.get(t, -1):
                            step_clock[t] = i
                thread_clock = dict(node.thread_clock)
                thread_clock[pick] = step_clock
                last_write = node.last_write
                if fp.writes:
                    last_write = dict(last_write)
                    for var in fp.writes:
                        last_write[var] = (depth, pick)
                last_reads = node.last_reads
                if fp.reads:
                    last_reads = dict(last_reads)
                    for var in fp.reads:
                        last_reads[var] = {**last_reads.get(var, {}), pick: depth}
                last_visible = (depth, pick) if fp.visible else node.last_visible

                node.active_tid = pick
                node.active_fp = fp
                node.active_guide = pick_view[1:]
                node.active_ctx = (step_clock, thread_clock, last_write,
                                   last_reads, last_visible)
                t0 = clock()
                node.active_steps = thread_successor_list(
                    node.config, model, pick, node.steps[pick]
                )
                stats.time_expand += clock() - t0
                stats.expanded += 1
                node.active_idx = 0
                continue

            if node.active_idx >= len(node.active_steps):
                # This thread's subtree is complete: it sleeps for the
                # siblings explored after it.
                node.sleep[node.active_tid] = node.active_fp
                node.done.add(node.active_tid)
                node.active_tid = None
                node.active_fp = None
                node.active_steps = []
                node.active_ctx = None
                node.active_guide = ()
                continue

            step = node.active_steps[node.active_idx]
            node.active_idx += 1
            tid, fp = node.active_tid, node.active_fp
            step_clock, thread_clock, last_write, last_reads, last_visible = (
                node.active_ctx
            )
            result.transitions += 1
            t0 = clock()
            child_key = _key_of(step.target, model, canonicalize, equivalence)
            stats.time_keys += clock() - t0
            result.parents.setdefault(child_key, (node.key, step))
            child_sleep = {
                q: fq for q, fq in node.sleep.items()
                if q != tid and not conflicts(fq, fp)
            }
            records = expanded.get(child_key)
            if records is not None and any(
                rec <= frozenset(child_sleep) for rec in records
            ):
                stats.revisits += 1
                if tr is not None and tr.tick():
                    tr.prune(run, "visited", step.target.program)
                # Pruning against an explored subtree can hide races
                # between *its* steps and the current path.  Compensate
                # with the subtree's recorded access summary, exactly
                # as in .dpor (see there for the cycle fallback).
                node.sub_reads |= fp.reads
                node.sub_writes |= fp.writes
                node.sub_visible = node.sub_visible or fp.visible
                summary = summaries.get(child_key)
                if not step.target.is_terminated():
                    if on_stack.get(child_key) or summary is None or summary[3]:
                        cut = max(
                            i for i, m in enumerate(stack) if m.key == child_key
                        ) if on_stack.get(child_key) else -1
                        for i, spine in enumerate(stack):
                            spine.expand_fully()
                            if i > cut >= 0:
                                spine.sub_universal = True
                        node.sub_universal = True
                    else:
                        sub_r, sub_w, sub_vis, _universal = summary
                        node.sub_reads |= sub_r
                        node.sub_writes |= sub_w
                        node.sub_visible = node.sub_visible or sub_vis
                        _c_clock, c_tclock, lw, lr, lv = node.active_ctx
                        # Candidate path accesses that touch a summary
                        # variable, as (path index, acting tid) pairs.
                        pairs = set()
                        for var in sub_w:
                            last = lw.get(var)
                            if last is not None:
                                pairs.add(last)
                            for reader, i in lr.get(var, {}).items():
                                pairs.add((i, reader))
                        for var in sub_r:
                            last = lw.get(var)
                            if last is not None:
                                pairs.add(last)
                        if sub_vis and lv is not None:
                            pairs.add(lv)
                        # Parsimonious filter: every step of the pruned
                        # subtree is performed by a thread live at the
                        # pruned child and happens-after that thread's
                        # vector clock there, so a path access whose
                        # index is inside *every* live thread's clock is
                        # happens-before the whole subtree and cannot
                        # race with it — its node needs no compensation.
                        clocks = [
                            c_tclock.get(t, {})
                            for t in pending_steps(step.target.program)
                        ]
                        for idx, atid in pairs:
                            if any(c.get(atid, -1) < idx for c in clocks):
                                stack[idx].expand_fully()
                continue
            edges.append((tid, fp, step_clock))
            child = make_node(
                step.target, child_key, child_sleep, thread_clock,
                last_write, last_reads, last_visible, node.active_guide,
            )
            if child is None:
                edges.pop()
                summaries.setdefault(child_key, [set(), set(), False, False])
                node.sub_reads |= fp.reads
                node.sub_writes |= fp.writes
                node.sub_visible = node.sub_visible or fp.visible
            else:
                stack.append(child)
                on_stack[child_key] = on_stack.get(child_key, 0) + 1
                if len(stack) > stats.peak_frontier:
                    stats.peak_frontier = len(stack)
    except _Abort:
        pass
    finally:
        stats.time_total += clock() - t_run
        hits1, misses1, _ = KEY_CACHE.snapshot()
        stats.key_hits += hits1 - hits0
        stats.key_misses += misses1 - misses0
        stats.time_orders += ORDER_TIMER.snapshot() - orders0
        stats.time_model += MODEL_TIMER.snapshot() - model0
        if tr is not None:
            tr.run_end(
                run, stats, result.configs, result.transitions,
                result.truncated,
            )

    return result


__all__ = ["explore_optimal"]
