"""A visited-set that spills to disk under a memory budget (DESIGN.md §15).

The exploration engine's ``seen`` set holds one canonical configuration
key per distinct configuration, and on large runs those Python tuple
trees dominate the heap: a token-ring key deep-measures kilobytes while
its dense byte encoding (:func:`~repro.engine.keys.stable_encode`) is an
order of magnitude smaller.  :class:`SpillableVisitedSet` is a drop-in
for the plain set — ``in`` / ``add`` / ``len`` — that starts as one
(fast, hash-based) and, when a configurable entry or estimated-byte
budget is exceeded, converts wholesale to an on-disk hash-bucketed
store:

* every key is reduced to its canonical byte encoding and appended to
  one of ``buckets`` files selected by its blake2b digest
  (length-prefixed records, append-only — no in-place rewrites to
  corrupt);
* an in-memory *first-bytes filter* — a map from the 64-bit digest
  prefix of every stored key to the disk offsets of its records —
  answers the common "definitely new" case without touching disk;
* a filter hit is only a *maybe*: membership is confirmed by reading
  the exact record bytes back at the indexed offsets and comparing
  byte-for-byte, so a saturated filter can cost time but never a false
  "already visited" answer (the unsound direction for a model checker —
  a false positive would silently prune live configurations).  The
  index holds a fixed few dozen bytes per key; the encodings — the
  dominant cost the budget is about — live on disk only.

Because the encoding is injective with respect to key equality (see
``stable_encode``), byte comparison on disk decides exactly the same
membership question the in-memory set's ``==`` decides.

Both the single-process loop (``explore(..., spill_dir=...)``) and each
worker of the sharded explorer (:mod:`repro.engine.shard`) use this
class; sharded workers each own a disjoint key slice, so their stores
never share buckets.  Spill directories are created lazily, are private
to one exploration, and are removed by the owning explorer's
``finally`` — including when a worker crashed mid-run.
"""

from __future__ import annotations

import errno
import hashlib
import os
import secrets
import shutil
from typing import Callable, Dict, Optional

from repro.engine.keys import stable_encode


def key_digest_of(enc: bytes) -> bytes:
    """blake2b digest of an already-encoded key (the bucket/filter key)."""
    return hashlib.blake2b(enc, digest_size=16).digest()

#: Estimated in-memory bytes per *encoded* byte of a key.  Canonical
#: keys are deep trees of small tuples/strings/ints; measured against
#: ``sys.getsizeof`` deep-walks of token-ring and Peterson keys, the
#: Python object overhead multiplies the dense encoding by roughly this
#: factor (pointer-sized slots, per-object headers, the set's own hash
#: table).  The budget arithmetic uses it so ``max_bytes`` approximates
#: real heap footprint, not the (much smaller) encoded footprint.
MEM_OVERHEAD_FACTOR = 8

#: Flat per-entry bookkeeping estimate (set slot + key object header).
MEM_ENTRY_OVERHEAD = 120

#: Sample 1-in-N keys for the running mean encoded size while still in
#: the in-memory phase (encoding every key before any spill is in sight
#: would tax the common small run).
_SAMPLE_EVERY = 8


def program_token(program):
    """A process-stable, equality-faithful token for a program.

    Lowered programs are dense integer pc tuples over a table that is
    constant across one exploration, so ``pcs`` alone distinguishes
    them.  Legacy AST programs are frozen dataclass trees whose ``repr``
    is the full constructor form — deterministic (no hashing) and
    injective over structural equality.
    """
    pcs = getattr(program, "pcs", None)
    if pcs is not None:
        return ("L", pcs)
    return ("P", repr(program.threads))


def encode_config_key(key) -> bytes:
    """Encode an engine ``ConfigKey = (program, state_key)`` densely.

    Raises ``TypeError`` for state keys outside the canonical key
    grammar (e.g. raw state objects under ``canonicalize=False``) — the
    engine refuses to combine those with spilling up front.
    """
    program, state_key = key
    return stable_encode((program_token(program), state_key))


class SpillableVisitedSet:
    """A set of keys, dict-backed until a budget, bucket files after.

    ``max_entries`` / ``max_bytes`` bound the in-memory phase (both
    optional; ``None`` = unbounded, i.e. never spill).  ``encode`` maps
    a key to its canonical bytes (defaults to
    :func:`~repro.engine.keys.stable_encode`; the engine passes
    :func:`encode_config_key`).  ``spill_dir`` is required whenever a
    budget is set — a budget with nowhere to spill would be a silent
    unbounded set.
    """

    def __init__(
        self,
        spill_dir: Optional[str] = None,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
        buckets: int = 64,
        encode: Callable[[object], bytes] = stable_encode,
    ) -> None:
        if (max_entries is not None or max_bytes is not None) and not spill_dir:
            raise ValueError(
                "a visited-set budget needs a spill_dir to overflow into"
            )
        self.spill_dir = spill_dir
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.buckets = max(1, int(buckets))
        self.encode = encode
        self._mem = set()
        self._count = 0
        self.spilled = False
        #: how many times the in-memory phase overflowed (0 or 1 per
        #: set; summed across shards by the stats merge)
        self.spills = 0
        #: keys written to disk so far (filter size)
        self.spilled_keys = 0
        #: confirmed-on-disk record reads a filter hit forced
        self.filter_scans = 0
        #: spill attempts that failed (ENOSPC and kin) and were
        #: absorbed by staying in memory (DESIGN.md §16)
        self.spill_failures = 0
        self._spill_disabled = False
        #: 64-bit digest prefix -> (bucket, payload offset, length) of
        #: every stored record; a prefix collision chains into a list
        self._filter: Dict[int, object] = {}
        self._handles: Dict[int, object] = {}
        self._readers: Dict[int, object] = {}
        self._sizes: Dict[int, int] = {}
        #: the engine probes ``in`` and then ``add``s the same key
        #: object; a one-slot memo spares the second encode
        self._last_key = None
        self._last_enc: Optional[bytes] = None
        self._enc_total = 0
        self._enc_samples = 0
        self._closed = False

    # -- budget arithmetic ---------------------------------------------

    @property
    def estimated_bytes(self) -> int:
        """Estimated heap footprint of the in-memory phase."""
        if self._enc_samples:
            mean_enc = self._enc_total / self._enc_samples
        else:
            mean_enc = 0.0
        return int(
            self._count * (mean_enc * MEM_OVERHEAD_FACTOR + MEM_ENTRY_OVERHEAD)
        )

    def _over_budget(self) -> bool:
        if self._spill_disabled:
            return False
        if self.max_entries is not None and self._count > self.max_entries:
            return True
        if self.max_bytes is not None and self.estimated_bytes > self.max_bytes:
            return True
        return False

    # -- set protocol ---------------------------------------------------

    def __len__(self) -> int:
        return self._count

    def _enc_of(self, key) -> bytes:
        if self._last_key is key:
            return self._last_enc
        enc = self.encode(key)
        self._last_key = key
        self._last_enc = enc
        return enc

    def __contains__(self, key) -> bool:
        if not self.spilled:
            return key in self._mem
        return self._contains_spilled(self._enc_of(key))

    def add(self, key) -> bool:
        """Insert ``key``; returns True when it was new."""
        if not self.spilled:
            before = len(self._mem)
            self._mem.add(key)
            if len(self._mem) == before:
                return False
            self._count += 1
            if self._count % _SAMPLE_EVERY == 1:
                self._enc_total += len(self.encode(key))
                self._enc_samples += 1
            if self._over_budget():
                self._spill()
            return True
        enc = self._enc_of(key)
        if self._contains_spilled(enc):
            return False
        self._append(enc)
        self._count += 1
        return True

    # -- the disk phase -------------------------------------------------

    def _bucket_of(self, digest: bytes) -> int:
        return digest[0] % self.buckets

    def _bucket_path(self, bucket: int) -> str:
        return os.path.join(self.spill_dir, f"bucket-{bucket:03d}.bin")

    def _prefix(self, digest: bytes) -> int:
        return int.from_bytes(digest[8:16], "big")

    def _append(self, enc: bytes) -> None:
        digest = key_digest_of(enc)
        bucket = self._bucket_of(digest)
        handle = self._handles.get(bucket)
        if handle is None:
            handle = open(self._bucket_path(bucket), "ab")
            self._handles[bucket] = handle
        offset = self._sizes.get(bucket, 0)
        handle.write(len(enc).to_bytes(4, "big") + enc)
        self._sizes[bucket] = offset + 4 + len(enc)
        self._index(digest, (bucket, offset + 4, len(enc)))
        self.spilled_keys += 1

    def _index(self, digest: bytes, entry) -> None:
        prefix = self._prefix(digest)
        prior = self._filter.get(prefix)
        if prior is None:
            self._filter[prefix] = entry
        elif isinstance(prior, list):
            prior.append(entry)
        else:
            self._filter[prefix] = [prior, entry]

    def _record_matches(self, entry, enc: bytes) -> bool:
        """Read one indexed record back and compare it byte-for-byte."""
        bucket, offset, length = entry
        if length != len(enc):
            return False
        handle = self._handles.get(bucket)
        if handle is not None:
            handle.flush()
        reader = self._readers.get(bucket)
        if reader is None:
            path = self._bucket_path(bucket)
            if not os.path.exists(path):
                return False
            reader = open(path, "rb")
            self._readers[bucket] = reader
        reader.seek(offset)
        return reader.read(length) == enc

    def _contains_spilled(self, enc: bytes) -> bool:
        digest = key_digest_of(enc)
        candidates = self._filter.get(self._prefix(digest))
        if candidates is None:
            return False
        # Filter hit: confirm against the exact record bytes on disk —
        # never answer "visited" from the (collision-prone) filter alone.
        self.filter_scans += 1
        if not isinstance(candidates, list):
            return self._record_matches(candidates, enc)
        return any(self._record_matches(entry, enc) for entry in candidates)

    def _spill(self) -> None:
        """Convert the in-memory phase to the on-disk store wholesale.

        A failed spill (ENOSPC, a vanished directory, an injected fault
        from :mod:`repro.faults`) is absorbed, never propagated: the
        in-memory set is restored wholesale, spilling is disabled for
        the rest of the run, and the search continues over budget but
        *correct* — a visited set that loses keys would silently prune
        live configurations.  The failure is counted in
        ``spill_failures`` (surfaced through ``EngineStats``).
        """
        mem = self._mem
        try:
            from repro.faults import active_plan

            plan = active_plan()
            if plan is not None and plan.spill_write_fails():
                raise OSError(errno.ENOSPC, "injected ENOSPC on spill write")
            os.makedirs(self.spill_dir, exist_ok=True)
            self.spilled = True
            self.spills += 1
            self._mem = set()
            for key in mem:
                self._append(self.encode(key))
        except OSError:
            self._mem = mem
            self.spilled = False
            self.spills = max(0, self.spills - 1)
            self.spilled_keys = 0
            self._filter.clear()
            for handle in (*self._handles.values(), *self._readers.values()):
                try:
                    handle.close()
                except OSError:
                    pass
            self._handles.clear()
            self._readers.clear()
            self._sizes.clear()
            self._spill_disabled = True
            self.spill_failures += 1

    # -- checkpoint images (DESIGN.md §16) ------------------------------

    def snapshot(self) -> dict:
        """A checkpointable image of the store's entire contents.

        The in-memory phase snapshots as its key set; the disk phase as
        the raw bucket files — the same length-prefixed
        ``stable_encode`` records, byte-for-byte — so a restored store
        answers every membership query identically.
        """
        for handle in self._handles.values():
            handle.flush()
        buckets: Dict[int, bytes] = {}
        if self.spilled:
            for bucket in range(self.buckets):
                path = self._bucket_path(bucket)
                if os.path.exists(path):
                    with open(path, "rb") as handle:
                        buckets[bucket] = handle.read()
        return {
            "mem": set(self._mem),
            "count": self._count,
            "spilled": self.spilled,
            "spills": self.spills,
            "spill_failures": self.spill_failures,
            "spill_disabled": self._spill_disabled,
            "buckets": buckets,
        }

    def restore(self, snap: dict) -> None:
        """Rebuild contents from a :meth:`snapshot` image (fresh store).

        Bucket bytes are written back verbatim and the first-bytes
        filter is rebuilt by scanning the records — the restored store
        is indistinguishable from the one that was snapshotted.
        """
        if self._count or self.spilled:
            raise ValueError("restore() requires a fresh, empty store")
        self._mem = set(snap["mem"])
        self._count = snap["count"]
        self.spills = snap["spills"]
        self.spill_failures = snap.get("spill_failures", 0)
        self._spill_disabled = snap.get("spill_disabled", False)
        if snap["spilled"]:
            os.makedirs(self.spill_dir, exist_ok=True)
            self.spilled = True
            for bucket, blob in snap["buckets"].items():
                with open(self._bucket_path(bucket), "wb") as handle:
                    handle.write(blob)
                offset, end = 0, len(blob)
                while offset < end:
                    length = int.from_bytes(blob[offset:offset + 4], "big")
                    enc = blob[offset + 4:offset + 4 + length]
                    self._index(key_digest_of(enc), (bucket, offset + 4, length))
                    self.spilled_keys += 1
                    offset += 4 + length
                self._sizes[bucket] = end

    # -- lifecycle ------------------------------------------------------

    def close(self, remove: bool = True) -> None:
        """Flush and close bucket handles; ``remove`` deletes the store.

        Idempotent — the engine calls it from ``finally`` blocks, so a
        crash-path second call must not raise.
        """
        if self._closed:
            return
        self._closed = True
        for handle in (*self._handles.values(), *self._readers.values()):
            try:
                handle.close()
            except OSError:
                pass
        self._handles.clear()
        self._readers.clear()
        if remove and self.spill_dir and os.path.isdir(self.spill_dir):
            shutil.rmtree(self.spill_dir, ignore_errors=True)

    def __enter__(self) -> "SpillableVisitedSet":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def claim_run_dir(base: str) -> str:
    """Claim a private spill subdirectory under a *shared* base.

    ``--spill-dir`` points several concurrent runs at one directory;
    bucket files are append-only, so two stores sharing them would
    silently interleave records and corrupt each other's membership
    answers.  Each run therefore claims ``base/run-<pid>-<token>`` and
    spills inside it.  A ``pid`` marker identifies the owner; on every
    claim, sibling ``run-*`` directories whose recorded pid is no
    longer alive are reaped — a crashed run's leftovers do not
    accumulate.  Directories of live pids (and unreadable markers, e.g.
    a sibling mid-creation) are left alone.
    """
    os.makedirs(base, exist_ok=True)
    for entry in os.listdir(base):
        if not entry.startswith("run-"):
            continue
        path = os.path.join(base, entry)
        try:
            with open(os.path.join(path, "pid"), "r", encoding="ascii") as h:
                pid = int(h.read().strip())
        except (OSError, ValueError):
            continue
        if pid == os.getpid():
            continue
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            shutil.rmtree(path, ignore_errors=True)
        except OSError:
            continue
    path = os.path.join(base, f"run-{os.getpid()}-{secrets.token_hex(4)}")
    os.makedirs(path)
    with open(os.path.join(path, "pid"), "w", encoding="ascii") as h:
        h.write(str(os.getpid()))
    return path


__all__ = [
    "MEM_ENTRY_OVERHEAD",
    "MEM_OVERHEAD_FACTOR",
    "SpillableVisitedSet",
    "claim_run_dir",
    "encode_config_key",
    "key_digest_of",
    "program_token",
]
