"""Machine calibration for cross-run performance comparisons.

Raw states/sec measures the host as much as the engine: the same build
explores Peterson at half the rate on a busy CI runner.  Dividing by
:func:`spin_score` — iterations/sec of a fixed pure-Python loop measured
on the same machine at the same moment — cancels the machine out, giving
a dimensionless efficiency figure (*states per million spin iterations*)
that is stable across hosts.  The E12 benchmark records it next to every
baseline (``BENCH_e12_hotpath.json``), ``benchmarks/check_regression.py``
gates on the calibrated ratio, and the CLI's ``run --profile`` /
``suite`` footers print it so an interactive run can be read against the
committed baselines.
"""

from __future__ import annotations

import time


def spin_score(duration: float = 0.1) -> float:
    """Iterations/sec of a fixed pure-Python loop on this machine, now.

    The loop shape is frozen — changing it re-bases every recorded
    baseline.  Callers comparing against a stored measurement must use
    the score stored *with* that measurement, never a fresh one.
    """
    deadline = time.perf_counter() + duration
    count = 0
    acc = 0
    while time.perf_counter() < deadline:
        for i in range(1000):
            acc += i * 3
        count += 1000
    return count / duration


def per_mspin(states_per_sec: float, score: float) -> float:
    """States explored per million spin iterations — the calibrated,
    machine-independent throughput figure."""
    return states_per_sec / score * 1e6 if score else 0.0


__all__ = ["per_mspin", "spin_score"]
