"""The exploration engine subsystem (DESIGN.md §5).

The engine is everything between "here is a program and a memory model"
and "here is what is reachable":

* :mod:`repro.engine.frontier` — pluggable search strategies (BFS, DFS,
  iterative deepening) behind a :class:`~repro.engine.frontier.Frontier`
  abstraction;
* :mod:`repro.engine.keys` — the canonical-key memoization layer, which
  guarantees each state object is canonicalised at most once per
  process;
* :mod:`repro.engine.core` — the bounded exhaustive search itself,
  instrumented with :class:`~repro.engine.stats.EngineStats`;
* :mod:`repro.engine.por` — partial-order reduction (sleep sets and
  source-set DPOR) consulted by ``explore(..., reduction=...)``
  (DESIGN.md §9);
* :mod:`repro.engine.parallel` — a multiprocessing runner fanning the
  litmus suite, case studies and fuzz campaigns across workers.

:mod:`repro.interp.explore` re-exports the core entry points for
backwards compatibility; new code may import from either.
"""

from repro.engine.frontier import (
    BFSFrontier,
    DFSFrontier,
    Frontier,
    STRATEGIES,
    frontier_class,
)
from repro.engine.keys import KEY_CACHE, KeyCacheStats, cached_canonical_key
from repro.engine.stats import EngineStats
from repro.engine.core import (
    ConfigKey,
    ExplorationResult,
    Violation,
    explore,
    reachable_states,
)
from repro.engine.por.deps import REDUCTIONS

__all__ = [
    "BFSFrontier",
    "ConfigKey",
    "DFSFrontier",
    "EngineStats",
    "ExplorationResult",
    "Frontier",
    "KEY_CACHE",
    "KeyCacheStats",
    "REDUCTIONS",
    "STRATEGIES",
    "Violation",
    "cached_canonical_key",
    "explore",
    "frontier_class",
    "reachable_states",
]
