"""Frontier abstractions — the pluggable part of a graph search.

A search strategy is nothing but a discipline for the set of discovered-
but-unexpanded configurations: pop oldest-first and the search is
breadth-first, pop newest-first and it is depth-first.  Iterative
deepening (``iddfs``) is not a frontier — it is a loop of depth-first
runs over growing ``max_events`` bounds, handled by the engine core —
but it is registered here so every strategy name resolves through one
function (see DESIGN.md §5).

Because exploration deduplicates by canonical key, all strategies visit
the same configuration set and count the same transitions; they differ
in memory profile (peak frontier size) and in which counterexample is
found first (BFS finds a shortest one).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, List, Tuple, Type, TypeVar

T = TypeVar("T")

#: Strategy names accepted by ``explore(strategy=...)`` and the CLI.
STRATEGIES = ("bfs", "dfs", "iddfs")


class Frontier(Generic[T]):
    """The set of discovered, not-yet-expanded search nodes."""

    def push(self, item: T) -> None:
        raise NotImplementedError

    def pop(self) -> T:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __bool__(self) -> bool:
        return len(self) > 0

    def snapshot(self) -> List[T]:
        """The pending items, in an order ``restore`` understands.

        ``restore(snapshot())`` must reproduce the frontier exactly —
        same items, same future pop order — so a checkpointed search
        resumes byte-identically (DESIGN.md §16).
        """
        raise NotImplementedError

    def restore(self, items: List[T]) -> None:
        """Replace the frontier's contents with a prior ``snapshot``."""
        raise NotImplementedError


class BFSFrontier(Frontier[T]):
    """FIFO frontier — breadth-first search, shortest counterexamples."""

    def __init__(self) -> None:
        self._items: Deque[T] = deque()

    def push(self, item: T) -> None:
        self._items.append(item)

    def pop(self) -> T:
        return self._items.popleft()

    def __len__(self) -> int:
        return len(self._items)

    def snapshot(self) -> List[T]:
        return list(self._items)

    def restore(self, items: List[T]) -> None:
        self._items = deque(items)


class DFSFrontier(Frontier[T]):
    """LIFO frontier — depth-first search, smallest memory footprint."""

    def __init__(self) -> None:
        self._items: List[T] = []

    def push(self, item: T) -> None:
        self._items.append(item)

    def pop(self) -> T:
        return self._items.pop()

    def __len__(self) -> int:
        return len(self._items)

    def snapshot(self) -> List[T]:
        return list(self._items)

    def restore(self, items: List[T]) -> None:
        self._items = list(items)


class LevelFrontier(Frontier[T]):
    """A FIFO frontier with an explicit level (superstep) boundary.

    The sharded explorer (DESIGN.md §15) runs breadth-first search as
    bulk-synchronous supersteps: every configuration at depth ``d`` is
    expanded before any at ``d+1``, with one cross-shard message
    exchange per level.  ``take_level`` drains the current level
    wholesale; pushes during a superstep accumulate into the *next*
    level.  Popping item-by-item still works (and is FIFO within the
    level order), so the class remains a :class:`Frontier`.
    """

    def __init__(self) -> None:
        self._current: Deque[T] = deque()
        self._next: List[T] = []

    def push(self, item: T) -> None:
        self._next.append(item)

    def pop(self) -> T:
        if not self._current:
            self.advance()
        return self._current.popleft()

    def take_level(self) -> List[T]:
        """Drain and return every item of the current level."""
        if not self._current:
            self.advance()
        items = list(self._current)
        self._current.clear()
        return items

    def advance(self) -> None:
        """Promote the accumulated next level to current."""
        self._current.extend(self._next)
        self._next.clear()

    def __len__(self) -> int:
        return len(self._current) + len(self._next)

    def snapshot(self) -> List[T]:
        # two lists, kept apart so the level boundary survives a resume
        return [list(self._current), list(self._next)]

    def restore(self, items: List[T]) -> None:
        current, upcoming = items
        self._current = deque(current)
        self._next = list(upcoming)


def frontier_class(strategy: str) -> Type[Frontier]:
    """The frontier class realising ``strategy``.

    ``iddfs`` maps to the depth-first frontier: each deepening round is
    a depth-first search under a tightened event bound.
    """
    normalized = strategy.lower()
    if normalized == "bfs":
        return BFSFrontier
    if normalized in ("dfs", "iddfs"):
        return DFSFrontier
    raise ValueError(
        f"unknown search strategy {strategy!r}; choose from {STRATEGIES}"
    )
