"""The canonical-key memoization layer (DESIGN.md §4).

Canonical keys are the single most expensive pure function on the
exploration hot path (an ``O(n log n)`` renaming of every event, plus
sorted ``rf``/``mo`` encodings), and the seed code recomputed them
freely: once when a state was discovered by ``explore``, again when
``reachable_states``' ``check_config`` hook recorded the same state,
and again in the completeness/soundness checkers.  This module makes
every canonical key a compute-once value:

* :func:`cached_canonical_key` stores the key on the state object
  itself (the ``_canon_key`` slot of :class:`~repro.c11.state.C11State`
  and :class:`~repro.c11.prestate.PreExecutionState`) so that any later
  keying of the same object is a dictionary-free attribute read;
* the process-wide :data:`KEY_CACHE` counts hits and misses, which the
  engine snapshots per run into
  :class:`~repro.engine.stats.EngineStats`.

All canonical-key consumers (the RA/SRA/PE models'
``canonical_state_key``, and through them ``explore``,
``reachable_states`` and the checking package) route through here.
States without a ``_canon_key`` slot (hand-assembled test fixtures,
foreign state types) fall back to a plain computation and are counted
as ``uncached``.
"""

from __future__ import annotations

from typing import Hashable


class KeyCacheStats:
    """Process-wide canonical-key cache counters."""

    __slots__ = ("hits", "misses", "uncached")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.uncached = 0

    def snapshot(self) -> tuple:
        return (self.hits, self.misses, self.uncached)

    def __repr__(self) -> str:
        return (
            f"KeyCacheStats(hits={self.hits}, misses={self.misses}, "
            f"uncached={self.uncached})"
        )


#: The one cache-counter instance of this process.  Workers of the
#: parallel runner each get their own copy (fork/spawn isolation).
KEY_CACHE = KeyCacheStats()

# Lazily-bound import-cycle breakers (see cached_canonical_key).
_compact_mod = None
_canon_mod = None


def cached_canonical_key(state) -> Hashable:
    """``canonical_key(state)``, computed at most once per state object.

    The canonical key of a state never changes (states are immutable
    value objects), so the first computation is stored on the object and
    every further call is a cache hit.  Note the cache is per *object*:
    two differently-tagged states with the same canonical key each pay
    one computation — collapsing those is exactly what the explorer's
    ``seen`` set does with the returned keys.
    """
    # Imported at first call: repro.interp transitively imports this
    # module (via the memory models), so a module-level import here
    # would close an import cycle.  The *modules* are memoized in
    # globals (the import machinery's fromlist handling is measurable
    # at once-per-configuration rates) but the attributes are looked up
    # per call, so monkeypatched instrumentation still takes effect.
    global _compact_mod, _canon_mod
    if _canon_mod is None:
        from repro.c11 import compact as _compact_mod
        from repro.interp import canon as _canon_mod
    CachedKey = _compact_mod.CachedKey
    canonical_key = _canon_mod.canonical_key

    try:
        cached = state._canon_key
    except AttributeError:
        KEY_CACHE.uncached += 1
        return canonical_key(state)
    if cached is not None:
        KEY_CACHE.hits += 1
        return cached
    KEY_CACHE.misses += 1
    key = canonical_key(state)
    if type(key) is tuple:
        # Pre-hash the nested structure once; every seen-set/parent-map
        # operation on the key reuses it (DESIGN.md §11).
        key = CachedKey(key)
    state._canon_key = key
    return key


def cached_reads_from_key(state, live_tids) -> Hashable:
    """``reads_from_key(state, live_tids)``, memoized per state object.

    The reads-from key (DESIGN.md §13) additionally depends on which
    threads may still step — dead-write detection consults the
    observable sets of the *live* threads only — so the memo slot
    (``_rf_key``) stores the live-set signature alongside the key and
    recomputes on mismatch.  In practice the explorer keys each state
    object once, so the signature guard is belt and braces.
    """
    global _compact_mod, _canon_mod
    if _canon_mod is None:
        from repro.c11 import compact as _compact_mod
        from repro.interp import canon as _canon_mod
    CachedKey = _compact_mod.CachedKey
    reads_from_key = _canon_mod.reads_from_key

    sig = frozenset(live_tids)
    try:
        cached = state._rf_key
    except AttributeError:
        KEY_CACHE.uncached += 1
        return reads_from_key(state, sig)
    if cached is not None and cached[0] == sig:
        KEY_CACHE.hits += 1
        return cached[1]
    KEY_CACHE.misses += 1
    key = reads_from_key(state, sig)
    if type(key) is tuple:
        key = CachedKey(key)
    state._rf_key = (sig, key)
    return key
