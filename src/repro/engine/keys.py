"""The canonical-key memoization layer (DESIGN.md §4).

Canonical keys are the single most expensive pure function on the
exploration hot path (an ``O(n log n)`` renaming of every event, plus
sorted ``rf``/``mo`` encodings), and the seed code recomputed them
freely: once when a state was discovered by ``explore``, again when
``reachable_states``' ``check_config`` hook recorded the same state,
and again in the completeness/soundness checkers.  This module makes
every canonical key a compute-once value:

* :func:`cached_canonical_key` stores the key on the state object
  itself (the ``_canon_key`` slot of :class:`~repro.c11.state.C11State`
  and :class:`~repro.c11.prestate.PreExecutionState`) so that any later
  keying of the same object is a dictionary-free attribute read;
* the process-wide :data:`KEY_CACHE` counts hits and misses, which the
  engine snapshots per run into
  :class:`~repro.engine.stats.EngineStats`.

All canonical-key consumers (the RA/SRA/PE models'
``canonical_state_key``, and through them ``explore``,
``reachable_states`` and the checking package) route through here.
States without a ``_canon_key`` slot (hand-assembled test fixtures,
foreign state types) fall back to a plain computation and are counted
as ``uncached``.
"""

from __future__ import annotations

import hashlib
from typing import Hashable


class KeyCacheStats:
    """Process-wide canonical-key cache counters."""

    __slots__ = ("hits", "misses", "uncached")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.uncached = 0

    def snapshot(self) -> tuple:
        return (self.hits, self.misses, self.uncached)

    def __repr__(self) -> str:
        return (
            f"KeyCacheStats(hits={self.hits}, misses={self.misses}, "
            f"uncached={self.uncached})"
        )


#: The one cache-counter instance of this process.  Workers of the
#: parallel runner each get their own copy (fork/spawn isolation).
KEY_CACHE = KeyCacheStats()

# Lazily-bound import-cycle breakers (see cached_canonical_key).
_compact_mod = None
_canon_mod = None


def cached_canonical_key(state) -> Hashable:
    """``canonical_key(state)``, computed at most once per state object.

    The canonical key of a state never changes (states are immutable
    value objects), so the first computation is stored on the object and
    every further call is a cache hit.  Note the cache is per *object*:
    two differently-tagged states with the same canonical key each pay
    one computation — collapsing those is exactly what the explorer's
    ``seen`` set does with the returned keys.
    """
    # Imported at first call: repro.interp transitively imports this
    # module (via the memory models), so a module-level import here
    # would close an import cycle.  The *modules* are memoized in
    # globals (the import machinery's fromlist handling is measurable
    # at once-per-configuration rates) but the attributes are looked up
    # per call, so monkeypatched instrumentation still takes effect.
    global _compact_mod, _canon_mod
    if _canon_mod is None:
        from repro.c11 import compact as _compact_mod
        from repro.interp import canon as _canon_mod
    CachedKey = _compact_mod.CachedKey
    canonical_key = _canon_mod.canonical_key

    try:
        cached = state._canon_key
    except AttributeError:
        KEY_CACHE.uncached += 1
        return canonical_key(state)
    if cached is not None:
        KEY_CACHE.hits += 1
        return cached
    KEY_CACHE.misses += 1
    key = canonical_key(state)
    if type(key) is tuple:
        # Pre-hash the nested structure once; every seen-set/parent-map
        # operation on the key reuses it (DESIGN.md §11).
        key = CachedKey(key)
    state._canon_key = key
    return key


# ----------------------------------------------------------------------
# Stable cross-process digests (DESIGN.md §15)
# ----------------------------------------------------------------------
#
# ``hash()`` over canonical keys is salted per process (strings), so it
# can never decide which shard owns a configuration: two workers would
# disagree about every key.  ``stable_encode`` maps the key structures
# the engine produces — nested tuples of str/int/None, plus frozensets
# and bytes for robustness — to a canonical byte string that is
# *injective with respect to equality* (equal keys encode equally,
# distinct keys distinctly), and ``key_digest`` hashes that encoding
# with blake2b.  The same encoding doubles as the dense on-disk record
# format of :class:`~repro.engine.visited.SpillableVisitedSet`, where
# injectivity is what makes byte comparison an exact membership test.

#: bool must encode as int: ``True == 1`` in Python, and the in-memory
#: visited set merges them — the byte encoding has to agree.
_INT_TAG = b"i"


def _enc_int(obj) -> bytes:
    payload = str(int(obj)).encode("ascii")
    return _INT_TAG + len(payload).to_bytes(4, "big") + payload


def _enc_str(obj) -> bytes:
    payload = obj.encode("utf-8")
    return b"s" + len(payload).to_bytes(4, "big") + payload


#: Small ints and short strings recur thousands of times per key
#: (program counters, values, tids, location/mode names); their
#: encodings are immutable bytes, so memoizing them trims the hot path
#: without changing a single output byte.
_INT_CACHE = {i: _enc_int(i) for i in range(-16, 257)}
_STR_CACHE: dict = {}
_STR_CACHE_MAX = 4096

_TUPLE_HEADER = b"t\x00\x00\x00\x00"
_NONE_ENC = b"N" + (0).to_bytes(4, "big")


def _encode_into(obj, out: bytearray) -> None:
    """Append the canonical encoding of ``obj`` to ``out``.

    Containers reserve their 4-byte length field up front and backpatch
    it once the payload is written — one pass, no intermediate joins.
    """
    kind = type(obj)
    if kind is tuple:
        out += _TUPLE_HEADER
        at = len(out) - 4
        # leaves are inlined: a token-ring key is ~200 nodes, most of
        # them small ints and short strings, and the call overhead of
        # recursing per leaf dominates the encode
        int_cache = _INT_CACHE
        str_cache = _STR_CACHE
        for item in obj:
            k = type(item)
            if k is int or k is bool:
                cached = int_cache.get(item)
                out += cached if cached is not None else _enc_int(item)
            elif k is str:
                cached = str_cache.get(item)
                if cached is None:
                    cached = _enc_str(item)
                    if len(str_cache) < _STR_CACHE_MAX:
                        str_cache[item] = cached
                out += cached
            elif item is None:
                out += _NONE_ENC
            else:
                _encode_into(item, out)
        out[at:at + 4] = (len(out) - at - 4).to_bytes(4, "big")
    elif kind is int or kind is bool:
        cached = _INT_CACHE.get(obj)
        out += cached if cached is not None else _enc_int(obj)
    elif kind is str:
        cached = _STR_CACHE.get(obj)
        if cached is None:
            cached = _enc_str(obj)
            if len(_STR_CACHE) < _STR_CACHE_MAX:
                _STR_CACHE[obj] = cached
        out += cached
    elif obj is None:
        out += _NONE_ENC
    elif kind is bytes:
        out += b"b" + len(obj).to_bytes(4, "big") + obj
    elif kind is frozenset:
        # Canonical element order: sort by encoded bytes (elements of a
        # set the engine builds need not be mutually orderable, bytes
        # are).
        out += b"f\x00\x00\x00\x00"
        at = len(out) - 4
        for enc in sorted(stable_encode(item) for item in obj):
            out += enc
        out[at:at + 4] = (len(out) - at - 4).to_bytes(4, "big")
    else:
        parts = getattr(obj, "parts", None)
        if parts is not None and type(obj).__name__ == "CachedKey":
            _encode_into(parts, out)
        else:
            raise TypeError(
                "stable_encode: unsupported key component "
                f"{type(obj).__name__!r}"
            )


def stable_encode(obj) -> bytes:
    """A canonical, process-independent byte encoding of a key.

    Every encoding is self-delimiting (tag byte + 4-byte length +
    payload), so concatenations inside containers stay injective.
    :class:`~repro.c11.compact.CachedKey` encodes as its raw parts —
    matching its ``__eq__``, which is transparent against plain tuples.
    Unsupported types raise ``TypeError``: a silent fallback (pickle,
    repr) could depend on process state and corrupt shard routing.
    """
    out = bytearray()
    _encode_into(obj, out)
    return bytes(out)


def key_digest(key) -> bytes:
    """A 16-byte digest of ``key``, stable across processes and runs.

    This — not ``hash()`` — is what shard assignment routes through:
    Python string hashing is ``PYTHONHASHSEED``-salted, so the builtin
    hash of the same canonical key differs between the worker processes
    of one sharded exploration.  blake2b over :func:`stable_encode` is
    deterministic everywhere, including across fork/spawn start methods
    (pinned by the spawn-vs-fork test in ``tests/test_key_digest.py``).
    """
    return hashlib.blake2b(stable_encode(key), digest_size=16).digest()


def shard_of(digest: bytes, shards: int) -> int:
    """The shard owning a key with ``digest`` (mod-N over the prefix)."""
    return int.from_bytes(digest[:8], "big") % shards


def cached_reads_from_key(state, live_tids) -> Hashable:
    """``reads_from_key(state, live_tids)``, memoized per state object.

    The reads-from key (DESIGN.md §13) additionally depends on which
    threads may still step — dead-write detection consults the
    observable sets of the *live* threads only — so the memo slot
    (``_rf_key``) stores the live-set signature alongside the key and
    recomputes on mismatch.  In practice the explorer keys each state
    object once, so the signature guard is belt and braces.
    """
    global _compact_mod, _canon_mod
    if _canon_mod is None:
        from repro.c11 import compact as _compact_mod
        from repro.interp import canon as _canon_mod
    CachedKey = _compact_mod.CachedKey
    reads_from_key = _canon_mod.reads_from_key

    sig = frozenset(live_tids)
    try:
        cached = state._rf_key
    except AttributeError:
        KEY_CACHE.uncached += 1
        return reads_from_key(state, sig)
    if cached is not None and cached[0] == sig:
        KEY_CACHE.hits += 1
        return cached[1]
    KEY_CACHE.misses += 1
    key = reads_from_key(state, sig)
    if type(key) is tuple:
        key = CachedKey(key)
    state._rf_key = (sig, key)
    return key
