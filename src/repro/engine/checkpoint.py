"""Checkpoint/resume for the exploration engine (DESIGN.md §16).

A checkpoint is the *complete* loop state of a paused search — frontier
(in exact pop order), visited set, parent map, accumulated counters and
:class:`~repro.engine.stats.EngineStats` — written as one atomic,
versioned file.  Because the engine's searches are deterministic
functions of that loop state, a resumed run replays the remaining
search exactly: configs, transitions, terminal outcome sets and
counterexamples are byte-identical to the uninterrupted run (pinned by
the kill-and-resume parity tests in ``tests/test_checkpoint.py``).

File format (``repro-ckpt/1``)::

    b"repro-ckpt/1\\n"  +  pickle({"fingerprint": ..., "payload": ...})

* The **fingerprint** identifies the run the state belongs to: a digest
  of the program source, the model name, the bounds, strategy,
  reduction, equivalence and shard count.  Resuming checks every field
  and refuses a mismatch — resuming Peterson's frontier into a litmus
  test would otherwise fail in silently wrong ways.
* The **payload** is algorithm-tagged loop state (``"plain"`` for the
  unreduced loop, ``"sleep"`` for sleep sets, ``"shard"`` for the
  bulk-synchronous sharded search, one entry per shard core).  Keys
  and configurations travel by pickle — safe because every cached hash
  in the object graph (``CachedKey``, ``Program``, lowered programs)
  rebuilds on unpickle rather than shipping its process-salted value.
  A spilled visited set snapshots as its raw bucket-file bytes: the
  same length-prefixed ``stable_encode`` records it keeps on disk
  (:mod:`repro.engine.visited`), so restore is byte-exact.

Writes go to a temporary file in the target directory followed by
``os.replace`` — a crash mid-checkpoint leaves the previous checkpoint
intact, never a torn file.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from typing import Optional, Tuple

MAGIC = b"repro-ckpt/1\n"
SCHEMA_NAME = "repro-ckpt/1"


class CheckpointError(RuntimeError):
    """A checkpoint file is unreadable, foreign, or mismatched."""


def _program_text(program) -> str:
    """The structural identity of a program, lowered or not."""
    table = getattr(program, "table", None)
    source = table.source if table is not None else program
    return repr(source.threads)


def run_fingerprint(
    program,
    init_values,
    model,
    *,
    max_events,
    max_configs,
    strategy: str,
    reduction: str,
    equivalence: str,
    canonicalize: bool,
    shards: int,
) -> dict:
    """The identity a checkpoint must match to be resumable.

    Everything that shapes the visited *set* or the visit *order* is
    included; resource configuration (spill budgets, process mode,
    checkpoint cadence) is deliberately not — a run may legitimately
    resume on a machine with different budgets.
    """
    program_digest = hashlib.blake2b(
        _program_text(program).encode("utf-8"), digest_size=16
    ).hexdigest()
    init_digest = hashlib.blake2b(
        repr(sorted((str(k), v) for k, v in init_values.items())).encode("utf-8"),
        digest_size=16,
    ).hexdigest()
    return {
        "schema": SCHEMA_NAME,
        "program": program_digest,
        "lowered": getattr(program, "pcs", None) is not None,
        "init_values": init_digest,
        "model": getattr(model, "name", type(model).__name__),
        "max_events": max_events,
        "max_configs": max_configs,
        "strategy": strategy,
        "reduction": reduction,
        "equivalence": equivalence,
        "canonicalize": canonicalize,
        "shards": shards,
    }


def write_checkpoint(path: str, fingerprint: dict, payload: dict) -> None:
    """Atomically write one checkpoint file (write-temp + rename)."""
    blob = MAGIC + pickle.dumps(
        {"fingerprint": fingerprint, "payload": payload},
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp = os.path.join(
        directory, f".{os.path.basename(path)}.tmp-{os.getpid()}"
    )
    try:
        with open(tmp, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            try:
                os.unlink(tmp)
            except OSError:
                pass


def read_checkpoint(
    path: str, expect: Optional[dict] = None
) -> Tuple[dict, dict]:
    """Load ``(fingerprint, payload)``; verify ``expect`` if given.

    Raises :class:`CheckpointError` on a missing/foreign/torn file or
    on any fingerprint field that disagrees with the resuming run's.
    """
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from exc
    if not blob.startswith(MAGIC):
        raise CheckpointError(
            f"{path!r} is not a {SCHEMA_NAME} checkpoint "
            "(bad magic; wrong file or torn write)"
        )
    try:
        document = pickle.loads(blob[len(MAGIC):])
        fingerprint = document["fingerprint"]
        payload = document["payload"]
    except Exception as exc:
        raise CheckpointError(
            f"checkpoint {path!r} is corrupt: {exc}"
        ) from exc
    if expect is not None:
        mismatched = [
            f"{field}: checkpoint={fingerprint.get(field)!r} "
            f"run={value!r}"
            for field, value in expect.items()
            if fingerprint.get(field) != value
        ]
        if mismatched:
            raise CheckpointError(
                f"checkpoint {path!r} belongs to a different run — "
                + "; ".join(mismatched)
            )
    return fingerprint, payload


# ----------------------------------------------------------------------
# Visited-set snapshots (shared by the plain, sleep and sharded loops)
# ----------------------------------------------------------------------


def snapshot_seen(seen) -> Tuple[str, object]:
    """A checkpointable image of a visited set (plain or spillable)."""
    snapshot = getattr(seen, "snapshot", None)
    if snapshot is not None:
        return ("spill", snapshot())
    return ("set", set(seen))


def restore_seen(image: Tuple[str, object], spill_store):
    """Rebuild a visited set from a :func:`snapshot_seen` image.

    With a ``spill_store`` (the resuming run configured a budget) both
    image kinds restore into it; a plain-set image simply re-adds its
    keys, which may re-spill under the new budget.  Without one, a
    spilled image cannot be decoded back into keys — the on-disk
    records are one-way encodings — so resuming requires the spill
    budget the original run had.
    """
    kind, snap = image
    if spill_store is not None:
        if kind == "spill":
            spill_store.restore(snap)
        else:
            for key in snap:
                spill_store.add(key)
        return spill_store
    if kind == "spill":
        raise CheckpointError(
            "checkpoint holds a spilled visited set; resume with the "
            "same --spill/--spill-dir budget to reopen it"
        )
    return set(snap)


__all__ = [
    "MAGIC",
    "SCHEMA_NAME",
    "CheckpointError",
    "run_fingerprint",
    "write_checkpoint",
    "read_checkpoint",
    "snapshot_seen",
    "restore_seen",
]
