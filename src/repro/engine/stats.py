"""Engine statistics: what one exploration run cost, and where.

Every :class:`~repro.engine.core.ExplorationResult` carries an
:class:`EngineStats` describing the run that produced it: which search
strategy ran, how large the frontier grew, how the canonical-key cache
behaved and how wall time split across the engine's three phases
(successor expansion, canonical keying, check hooks).  The CLI prints
these with ``--stats`` and the E8 scalability benchmark reports them
alongside its series (see DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class EngineStats:
    """Counters and phase timings of one exploration run."""

    strategy: str = "bfs"
    #: Largest number of configurations ever waiting in the frontier.
    peak_frontier: int = 0
    #: Canonical-key cache behaviour during this run (deltas of the
    #: process-wide :data:`~repro.engine.keys.KEY_CACHE`).
    key_hits: int = 0
    key_misses: int = 0
    #: Wall time of the whole run and of its phases, in seconds.  The
    #: phases overlap nothing but do not cover queue bookkeeping, so
    #: their sum is below ``time_total``.
    time_total: float = 0.0
    time_expand: float = 0.0
    time_keys: float = 0.0
    time_checks: float = 0.0
    #: Number of deepening rounds (1 unless the strategy is ``iddfs``).
    iterations: int = 1

    @property
    def key_rate(self) -> float:
        """Cache hit rate over this run (0.0 when nothing was keyed)."""
        keyed = self.key_hits + self.key_misses
        return self.key_hits / keyed if keyed else 0.0

    def merge_round(self, other: "EngineStats") -> None:
        """Fold one deepening round's stats into a cumulative record."""
        self.peak_frontier = max(self.peak_frontier, other.peak_frontier)
        self.key_hits += other.key_hits
        self.key_misses += other.key_misses
        self.time_total += other.time_total
        self.time_expand += other.time_expand
        self.time_keys += other.time_keys
        self.time_checks += other.time_checks

    def summary(self) -> str:
        """One human-readable line, used by the CLI and benchmarks."""
        keyed = self.key_hits + self.key_misses
        rate = f"{100.0 * self.key_rate:.0f}%" if keyed else "n/a"
        rounds = f" rounds={self.iterations}" if self.iterations > 1 else ""
        return (
            f"strategy={self.strategy}{rounds} peak-frontier={self.peak_frontier} "
            f"key-cache={self.key_hits}/{keyed} ({rate}) "
            f"time={self.time_total * 1e3:.1f}ms "
            f"(expand={self.time_expand * 1e3:.1f} "
            f"keys={self.time_keys * 1e3:.1f} "
            f"checks={self.time_checks * 1e3:.1f})"
        )
