"""Engine statistics: what one exploration run cost, and where.

Every :class:`~repro.engine.core.ExplorationResult` carries an
:class:`EngineStats` describing the run that produced it: which search
strategy and reduction ran, how large the frontier grew, how the
canonical-key cache behaved, how wall time split across the engine's
three phases (successor expansion, canonical keying, check hooks), and
— under partial-order reduction (DESIGN.md §9) — how much the reduction
pruned.  The CLI prints these with ``--stats``, the ``suite`` footer
aggregates them across jobs and the E4/E8 benchmarks emit them as JSON.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class EngineStats:
    """Counters and phase timings of one exploration run."""

    strategy: str = "bfs"
    #: Which partial-order reduction ran
    #: ("none" | "sleep" | "dpor" | "optimal").
    reduction: str = "none"
    #: Which state equivalence keyed the visited store
    #: ("shasha-snir" | "reads-from"); only "dpor"/"optimal" consult it.
    equivalence: str = "shasha-snir"
    #: Largest number of configurations ever waiting in the frontier
    #: (for the DPOR depth-first traversal: the peak spine depth).
    peak_frontier: int = 0
    #: Canonical-key cache behaviour during this run (deltas of the
    #: process-wide :data:`~repro.engine.keys.KEY_CACHE`).
    key_hits: int = 0
    key_misses: int = 0
    #: Wall time of the whole run and of its phases, in seconds.  The
    #: phases overlap nothing but do not cover queue bookkeeping, so
    #: their sum is below ``time_total``.
    time_total: float = 0.0
    time_expand: float = 0.0
    time_keys: float = 0.0
    time_checks: float = 0.0
    #: Wall time spent deriving orders (hb/eco bitset sweeps, SRA
    #: acyclicity, and any fallback Relation closures) — the delta of
    #: the process-wide :data:`repro.c11.compact.ORDER_TIMER` over this
    #: run.  A *subset* of ``time_expand``/``time_checks`` (derivations
    #: happen inside expansion and check hooks), reported separately so
    #: footers can attribute time to closure work (DESIGN.md §11).
    time_orders: float = 0.0
    #: Wall time spent inside memory-model ``transitions_list`` calls —
    #: the delta of :data:`repro.interp.memory_model.MODEL_TIMER`.  On
    #: the lowered dispatch path ``time_orders ⊆ time_model ⊆
    #: time_expand``; ``time_expand - time_model`` is the program-side
    #: stepping cost the lowering IR (DESIGN.md §12) targets.  The
    #: legacy walker answers through generators and leaves this zero.
    time_model: float = 0.0
    #: Number of deepening rounds (1 unless the strategy is ``iddfs``).
    iterations: int = 1
    #: Thread-expansions performed / skipped by the reduction.  One
    #: "expansion" is one thread's pending step resolved against the
    #: memory model; ``pruned`` counts enabled threads a reduction chose
    #: not to expand at some configuration (0 when reduction is "none").
    expanded: int = 0
    pruned: int = 0
    #: How often a sleeping thread was skipped (subset of ``pruned``).
    sleep_hits: int = 0
    #: Races detected by DPOR (backtrack-point insertions attempted).
    races: int = 0
    #: Arrivals at an already-expanded configuration: covered prunes
    #: plus re-expansions under an incomparable sleep set.
    revisits: int = 0
    #: How many hash-partitioned shards ran this exploration (1 = the
    #: ordinary single-owner search; DESIGN.md §15).
    shards: int = 1
    #: Cross-shard successor messages routed out of / into this shard's
    #: worker (equal in total across a completed run — the count-based
    #: termination check).
    shard_sent: int = 0
    shard_recv: int = 0
    #: Superstep rounds the sharded search synchronised on (max-merged:
    #: every shard participates in every round).
    shard_rounds: int = 0
    #: Visited-set spill events and keys moved to the on-disk store.
    spills: int = 0
    spilled_keys: int = 0
    #: Fault-tolerance block (DESIGN.md §16).  ``faults`` counts worker
    #: deaths (and injected faults) the run survived, ``retries`` the
    #: sharded attempts restarted after one, ``respawns`` the worker
    #: processes relaunched for those attempts.
    faults: int = 0
    retries: int = 0
    respawns: int = 0
    #: Spill writes that failed (e.g. ENOSPC) and were absorbed by
    #: falling back to the in-memory set.
    spill_failures: int = 0
    #: Checkpoint snapshots written during the run, and whether the run
    #: itself started from one (0 | 1).
    checkpoints: int = 0
    resumed: int = 0

    @property
    def key_rate(self) -> float:
        """Cache hit rate over this run (0.0 when nothing was keyed)."""
        keyed = self.key_hits + self.key_misses
        return self.key_hits / keyed if keyed else 0.0

    @property
    def reduction_ratio(self) -> float:
        """Fraction of enabled thread-expansions the reduction skipped
        (0.0 for unreduced runs)."""
        total = self.expanded + self.pruned
        return self.pruned / total if total else 0.0

    def merge_round(self, other: "EngineStats") -> None:
        """Fold one deepening round's stats into a cumulative record."""
        self.peak_frontier = max(self.peak_frontier, other.peak_frontier)
        self.key_hits += other.key_hits
        self.key_misses += other.key_misses
        self.time_total += other.time_total
        self.time_expand += other.time_expand
        self.time_keys += other.time_keys
        self.time_checks += other.time_checks
        self.time_orders += other.time_orders
        self.time_model += other.time_model
        self.expanded += other.expanded
        self.pruned += other.pruned
        self.sleep_hits += other.sleep_hits
        self.races += other.races
        self.revisits += other.revisits
        self.shard_sent += other.shard_sent
        self.shard_recv += other.shard_recv
        self.shard_rounds = max(self.shard_rounds, other.shard_rounds)
        self.spills += other.spills
        self.spilled_keys += other.spilled_keys
        self.faults += other.faults
        self.retries += other.retries
        self.respawns += other.respawns
        self.spill_failures += other.spill_failures
        self.checkpoints += other.checkpoints
        self.resumed = max(self.resumed, other.resumed)

    def summary(self) -> str:
        """One human-readable line, used by the CLI and benchmarks."""
        keyed = self.key_hits + self.key_misses
        rate = f"{100.0 * self.key_rate:.0f}%" if keyed else "n/a"
        rounds = f" rounds={self.iterations}" if self.iterations > 1 else ""
        line = (
            f"strategy={self.strategy}{rounds} peak-frontier={self.peak_frontier} "
            f"key-cache={self.key_hits}/{keyed} ({rate}) "
            f"time={self.time_total * 1e3:.1f}ms "
            f"(expand={self.time_expand * 1e3:.1f} "
            f"model={self.time_model * 1e3:.1f} "
            f"keys={self.time_keys * 1e3:.1f} "
            f"checks={self.time_checks * 1e3:.1f} "
            f"orders={self.time_orders * 1e3:.1f})"
        )
        if self.reduction != "none":
            line += (
                f" reduction={self.reduction} "
                f"pruned={self.pruned}/{self.expanded + self.pruned} "
                f"({100.0 * self.reduction_ratio:.0f}%) "
                f"sleep-hits={self.sleep_hits} races={self.races} "
                f"revisits={self.revisits}"
            )
            if self.equivalence != "shasha-snir":
                line += f" equivalence={self.equivalence}"
        if self.shards > 1:
            line += (
                f" shards={self.shards} rounds={self.shard_rounds} "
                f"routed={self.shard_sent}/{self.shard_recv}"
            )
        if self.spills:
            line += f" spills={self.spills} spilled-keys={self.spilled_keys}"
        if self.faults or self.retries or self.respawns or self.spill_failures:
            line += (
                f" faults={self.faults} retries={self.retries} "
                f"respawns={self.respawns} spill-failures={self.spill_failures}"
            )
        if self.checkpoints or self.resumed:
            line += f" checkpoints={self.checkpoints}"
            if self.resumed:
                line += " resumed"
        return line
