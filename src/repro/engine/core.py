"""The exploration engine: bounded exhaustive search over ``(P, σ)``.

This is the model-checking core of the reproduction (DESIGN.md §5): an
exhaustive enumeration of every configuration reachable under a memory
model, deduplicated by canonical keys (program syntax × state up to tag
renaming), with a pluggable search strategy
(:mod:`repro.engine.frontier`), memoized canonical keys
(:mod:`repro.engine.keys`), per-run statistics
(:mod:`repro.engine.stats`) and optional partial-order reduction
(:mod:`repro.engine.por`, selected by ``explore(reduction=...)``).

Busy-wait loops make weak-memory state spaces infinite (every loop
iteration appends fresh read events), so exploration is *bounded* by the
number of program events per state (``max_events``); hitting the bound
is recorded (``truncated``) so results honestly distinguish "verified up
to bound" from "verified".  τ-cycles (e.g. ``while true do skip``) are
harmless: revisited configurations are not re-expanded.

Hooks:

* ``check_config(config)`` — return a list of violation messages for a
  configuration (safety properties, e.g. mutual exclusion);
* ``check_step(step)`` — likewise for transitions (used by the
  verification-calculus soundness experiments, which are per-transition
  statements).

Counterexample traces are reconstructed from the parent map; a
step-level violation's trace ends with the violating step itself.

The public entry points :func:`explore` and :func:`reachable_states`
are re-exported by :mod:`repro.interp.explore`, the historical home of
this code — import from there unless you need engine internals.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Generic,
    Hashable,
    List,
    Mapping,
    Optional,
    Tuple,
    TypeVar,
)

from repro.engine.frontier import frontier_class
from repro.engine.keys import KEY_CACHE
from repro.engine.stats import EngineStats
from repro.lang.actions import Value, Var
from repro.lang.program import Program

if TYPE_CHECKING:  # runtime imports are deferred to break the
    # repro.interp -> memory models -> repro.engine import cycle
    from repro.interp.config import Configuration
    from repro.interp.interpreter import InterpretedStep
    from repro.interp.memory_model import MemoryModel

S = TypeVar("S")

ConfigKey = Tuple[Program, Hashable]


@dataclass
class Violation(Generic[S]):
    """One failed check, with the configuration it failed at."""

    message: str
    config: Configuration[S]
    step: Optional[InterpretedStep[S]] = None

    def __str__(self) -> str:
        return self.message


@dataclass
class ExplorationResult(Generic[S]):
    """Everything a bounded exploration learned."""

    initial: Configuration[S]
    configs: int = 0
    transitions: int = 0
    terminal: List[Configuration[S]] = field(default_factory=list)
    violations: List[Violation[S]] = field(default_factory=list)
    truncated: bool = False
    #: whether truncation was caused by the max_configs cap (as opposed
    #: to the max_events bound) — deepening cannot recover from a cap
    capped: bool = False
    #: canonical key -> representative configuration
    representatives: Dict[ConfigKey, Configuration[S]] = field(default_factory=dict)
    #: child key -> (parent key, step) for trace reconstruction
    parents: Dict[ConfigKey, Tuple[Optional[ConfigKey], Optional[InterpretedStep[S]]]] = field(
        default_factory=dict
    )
    #: what the run cost (strategy, frontier, key cache, phase timings)
    stats: EngineStats = field(default_factory=EngineStats)

    @property
    def ok(self) -> bool:
        """No violation found (within the explored bound)."""
        return not self.violations

    def trace_to(self, key: ConfigKey) -> List[InterpretedStep[S]]:
        """The step sequence from the initial configuration to ``key``."""
        steps: List[InterpretedStep[S]] = []
        cursor: Optional[ConfigKey] = key
        while cursor is not None:
            parent, step = self.parents[cursor]
            if step is not None:
                steps.append(step)
            cursor = parent
        steps.reverse()
        return steps

    def counterexample(self) -> Optional[List[InterpretedStep[S]]]:
        """A trace to the first violation, if any.

        For a configuration-level violation this is the step sequence
        reaching the violating configuration.  For a step-level
        violation, ``Violation.config`` is the *source* of the violating
        transition, so the violating step is appended — the returned
        trace actually exhibits the violation.
        """
        if not self.violations:
            return None
        v = self.violations[0]
        key = _key_of(v.config, self._model, self._canonicalize, self._equivalence)
        steps = self.trace_to(key)
        if v.step is not None:
            steps.append(v.step)
        return steps

    # Attached by `explore` so traces can be rebuilt.
    _model: Optional[MemoryModel[S]] = None
    _canonicalize: bool = True
    #: the state equivalence the parent map was keyed under — trace
    #: reconstruction must rekey violations with the same function
    _equivalence: str = "shasha-snir"


def _state_size(state) -> int:
    """Number of program events in an event-based state (0 otherwise)."""
    compact = getattr(state, "_compact", None)
    if compact is not None:
        return len(compact.events_seq) - len(compact.inits)
    events = getattr(state, "events", None)
    if events is None:
        return 0
    return sum(1 for e in events if not e.is_init)


def _key_of(
    config: Configuration[S],
    model: MemoryModel[S],
    canonicalize: bool = True,
    equivalence: str = "shasha-snir",
) -> ConfigKey:
    if not canonicalize:
        return (config.program, config.state)
    if equivalence == "reads-from":
        from repro.engine.por.deps import pending_steps

        live = pending_steps(config.program).keys()
        return (config.program, model.reads_from_state_key(config.state, live))
    return (config.program, model.canonical_state_key(config.state))


def explore(
    program: Program,
    init_values: Mapping[Var, Value],
    model: MemoryModel[S],
    max_events: Optional[int] = None,
    max_configs: Optional[int] = None,
    check_config: Optional[Callable[[Configuration[S]], List[str]]] = None,
    check_step: Optional[Callable[[InterpretedStep[S]], List[str]]] = None,
    stop_on_violation: bool = False,
    keep_representatives: bool = False,
    canonicalize: bool = True,
    strategy: str = "bfs",
    reduction: str = "none",
    equivalence: str = "shasha-snir",
    shards: int = 1,
    shard_processes: Optional[bool] = None,
    spill_dir: Optional[str] = None,
    spill_max_entries: Optional[int] = None,
    spill_max_bytes: Optional[int] = None,
    checkpoint: Optional[str] = None,
    checkpoint_every: Optional[int] = None,
    resume: Optional[str] = None,
) -> ExplorationResult[S]:
    """Bounded exhaustive exploration from ``(P, σ_0)``.

    ``max_events`` bounds the number of program events per state — the
    loop-unrolling bound; ``max_configs`` is a hard safety net on the
    total number of distinct configurations.  ``canonicalize=False``
    disables tag-renaming deduplication (states then only merge when
    their tags coincide) — exists for the E10 ablation, which quantifies
    what canonicalisation buys.

    ``strategy`` selects the search order: ``"bfs"`` (default, shortest
    counterexamples), ``"dfs"`` (smallest frontier) or ``"iddfs"``
    (depth-first rounds under ``max_events`` bounds growing 1, 2, …,
    ``max_events``; requires a bound, else it is plain DFS).  On runs
    that explore to exhaustion, all strategies visit the same
    configurations and report identical counts — exploration is a graph
    search with canonical dedup, so the visit *order* cannot change the
    visited *set*.  With ``max_configs`` or ``stop_on_violation`` the
    run ends early and *which* subset was explored does depend on the
    order; such results are strategy-dependent (and flagged
    ``truncated`` in the capped case).

    ``reduction`` selects a partial-order reduction (DESIGN.md §9):
    ``"none"`` (this loop), ``"sleep"`` (sleep-set transition pruning —
    visits the same configurations, hook-safe for any ``check_config``
    property) or ``"dpor"`` (source-set DPOR — prunes configurations
    while preserving terminal outcome sets, control-observable
    violation verdicts and truncation flags; only ``configs`` may
    shrink).  Reduced runs perform their own traversal: ``"dpor"`` is
    inherently depth-first and ``"sleep"`` skips the deepening loop.
    ``check_step`` hooks quantify over transitions.  Under ``"sleep"``
    they fire only on the transitions the reduction keeps, but because
    sleep sets visit every configuration the full search visits, an
    *inductive* step property (one whose per-transition failures imply a
    failure on some kept transition along an explored path — proof
    outlines, DESIGN.md §10) reaches the same verdict; the hook is
    therefore allowed.  ``"dpor"``/``"optimal"`` prune configurations
    themselves, so combining them with ``check_step`` raises
    ``ValueError``.

    ``equivalence`` selects the state abstraction the reducing
    explorers key their prune store by (DESIGN.md §13):
    ``"shasha-snir"`` (default, the canonical key) or ``"reads-from"``
    (the observation quotient — states differing only in the ``mo`` of
    dead writes merge).  Only ``"dpor"`` and ``"optimal"`` consult it;
    the unreduced and sleep searches enumerate configurations
    themselves, so a coarser key would change *what* they visit, and a
    non-default equivalence raises ``ValueError`` there.

    ``shards > 1`` runs the hash-partitioned sharded search
    (:mod:`repro.engine.shard`, DESIGN.md §15): breadth-first only,
    reductions ``"none"``/``"sleep"``, canonical keys.  The parity
    contract guarantees identical configuration/transition counts and
    outcome sets for every shard count on exhaustive runs.
    ``shard_processes`` forces (True) or forbids (False) real worker
    processes; the default auto-selects.

    ``spill_dir`` plus ``spill_max_entries``/``spill_max_bytes`` bound
    the in-memory visited set: past the budget, keys overflow to an
    on-disk store under ``spill_dir``
    (:class:`~repro.engine.visited.SpillableVisitedSet`) that is
    removed when the run finishes.  Spilling requires canonical keys
    and is supported by the unreduced, sleep and sharded searches.

    ``checkpoint`` names a ``repro-ckpt/1`` file
    (:mod:`repro.engine.checkpoint`, DESIGN.md §16) rewritten
    atomically every ``checkpoint_every`` configurations (default
    1000); ``resume`` loads such a file — after verifying it belongs
    to this exact run — and continues the search to a byte-identical
    final result.  Both require canonical keys, the ``"none"``/
    ``"sleep"`` reductions, and a ``"bfs"``/``"dfs"`` strategy
    (``iddfs`` restarts its frontier per round; the backtracking
    reductions keep per-key state the snapshot format does not cover).
    """
    from repro.engine.por import EQUIVALENCES, REDUCTIONS, explore_reduced
    from repro.interp.compiled import maybe_lower

    spilling = spill_max_entries is not None or spill_max_bytes is not None
    if spilling and spill_dir is None:
        raise ValueError("a visited-set spill budget needs spill_dir")
    if spill_dir is not None and not canonicalize:
        raise ValueError(
            "visited-set spilling encodes canonical keys; "
            "canonicalize=False has no encodable key"
        )
    if spill_dir is not None and reduction not in ("none", "sleep"):
        raise ValueError(
            f"visited-set spilling supports the 'none' and 'sleep' "
            f"searches; reduction={reduction!r} keeps per-key backtrack "
            "state that cannot overflow"
        )
    if checkpoint is not None or resume is not None:
        if not canonicalize:
            raise ValueError(
                "checkpoint/resume snapshots canonical keys; "
                "canonicalize=False has no snapshottable key"
            )
        if reduction not in ("none", "sleep"):
            raise ValueError(
                f"checkpoint/resume supports the 'none' and 'sleep' "
                f"searches; reduction={reduction!r} keeps per-key "
                "backtrack state the snapshot format does not cover"
            )
        if strategy not in ("bfs", "dfs"):
            raise ValueError(
                f"checkpoint/resume supports the 'bfs' and 'dfs' "
                f"strategies, not {strategy!r}"
            )
    if checkpoint_every is not None and checkpoint_every < 1:
        raise ValueError("checkpoint_every must be >= 1")
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if shards > 1:
        from repro.engine.shard import explore_sharded

        return explore_sharded(
            program,
            init_values,
            model,
            shards,
            max_events=max_events,
            max_configs=max_configs,
            check_config=check_config,
            check_step=check_step,
            stop_on_violation=stop_on_violation,
            keep_representatives=keep_representatives,
            canonicalize=canonicalize,
            strategy=strategy,
            reduction=reduction,
            equivalence=equivalence,
            processes=shard_processes,
            spill_dir=spill_dir,
            spill_max_entries=spill_max_entries,
            spill_max_bytes=spill_max_bytes,
            checkpoint=checkpoint,
            checkpoint_every=checkpoint_every,
            resume=resume,
        )

    # Compile once per run: every representation decision happens here,
    # so the deepening loop, the reduced traversals and the plain search
    # all see the same (possibly lowered) program.  A pass-through when
    # the gate is off, the program is already lowered, or the compiler
    # refuses (DESIGN.md §12).
    program = maybe_lower(program)

    if reduction not in REDUCTIONS:
        raise ValueError(
            f"unknown reduction {reduction!r}; choose from {REDUCTIONS}"
        )
    if equivalence not in EQUIVALENCES:
        raise ValueError(
            f"unknown equivalence {equivalence!r}; choose from {EQUIVALENCES}"
        )
    if equivalence != "shasha-snir" and reduction not in ("dpor", "optimal"):
        raise ValueError(
            f"equivalence {equivalence!r} only applies to the 'dpor' and "
            f"'optimal' reductions; reduction={reduction!r} enumerates "
            "configurations itself and must key them exactly"
        )
    fingerprint = None
    resume_payload = None
    if checkpoint is not None or resume is not None:
        from repro.engine.checkpoint import run_fingerprint, read_checkpoint

        fingerprint = run_fingerprint(
            program, init_values, model,
            max_events=max_events, max_configs=max_configs,
            strategy=strategy, reduction=reduction,
            equivalence=equivalence, canonicalize=canonicalize, shards=1,
        )
        if resume is not None:
            _, resume_payload = read_checkpoint(resume, expect=fingerprint)

    if reduction != "none":
        if check_step is not None and reduction != "sleep":
            raise ValueError(
                "check_step hooks quantify over transitions, and the "
                f"{reduction!r} reduction prunes configurations outright; "
                "use reduction='sleep' (configuration-identical) or 'none'"
            )
        kwargs_step = {}
        if check_step is not None:
            kwargs_step["check_step"] = check_step
        if reduction in ("dpor", "optimal"):
            kwargs_step["equivalence"] = equivalence
        if spill_dir is not None and reduction == "sleep":
            kwargs_step["spill_dir"] = spill_dir
            kwargs_step["spill_max_entries"] = spill_max_entries
            kwargs_step["spill_max_bytes"] = spill_max_bytes
        if reduction == "sleep" and (
            checkpoint is not None or resume_payload is not None
        ):
            kwargs_step["checkpoint"] = checkpoint
            kwargs_step["checkpoint_every"] = checkpoint_every
            kwargs_step["resume_payload"] = resume_payload
            kwargs_step["fingerprint"] = fingerprint
        return explore_reduced(
            program,
            init_values,
            model,
            reduction,
            max_events=max_events,
            max_configs=max_configs,
            check_config=check_config,
            stop_on_violation=stop_on_violation,
            keep_representatives=keep_representatives,
            canonicalize=canonicalize,
            strategy=strategy,
            **kwargs_step,
        )
    if strategy == "iddfs" and max_events is not None and max_events >= 1:
        return _explore_deepening(
            program,
            init_values,
            model,
            max_events=max_events,
            max_configs=max_configs,
            check_config=check_config,
            check_step=check_step,
            stop_on_violation=stop_on_violation,
            keep_representatives=keep_representatives,
            canonicalize=canonicalize,
            spill_dir=spill_dir,
            spill_max_entries=spill_max_entries,
            spill_max_bytes=spill_max_bytes,
        )
    return _explore_once(
        program,
        init_values,
        model,
        max_events=max_events,
        max_configs=max_configs,
        check_config=check_config,
        check_step=check_step,
        stop_on_violation=stop_on_violation,
        keep_representatives=keep_representatives,
        canonicalize=canonicalize,
        strategy=strategy,
        spill_dir=spill_dir,
        spill_max_entries=spill_max_entries,
        spill_max_bytes=spill_max_bytes,
        checkpoint=checkpoint,
        checkpoint_every=checkpoint_every,
        resume_payload=resume_payload,
        fingerprint=fingerprint,
    )


def _explore_deepening(
    program: Program,
    init_values: Mapping[Var, Value],
    model: MemoryModel[S],
    max_events: int,
    **kwargs,
) -> ExplorationResult[S]:
    """Iterative deepening over the event bound.

    Each round is a depth-first search truncated at a growing bound; a
    round that never hits its bound has exhausted the state space, so
    deeper rounds would revisit it verbatim and the loop stops early.
    The final round's result is returned (it is exactly what a single
    run at its bound computes); stats accumulate across rounds.
    """
    cumulative = EngineStats(strategy="iddfs")
    rounds = 0
    result: Optional[ExplorationResult[S]] = None
    for bound in range(1, max_events + 1):
        result = _explore_once(
            program,
            init_values,
            model,
            max_events=bound,
            strategy="iddfs",
            **kwargs,
        )
        rounds += 1
        cumulative.merge_round(result.stats)
        if kwargs.get("stop_on_violation") and result.violations:
            break
        if not result.truncated:
            break
        if result.capped:
            # The config cap, not the event bound, cut the round short:
            # deeper rounds would re-run the identical capped search.
            break
    assert result is not None  # max_events >= 1 guaranteed by range start
    cumulative.iterations = rounds
    result.stats = cumulative
    return result


def _explore_once(
    program: Program,
    init_values: Mapping[Var, Value],
    model: MemoryModel[S],
    max_events: Optional[int] = None,
    max_configs: Optional[int] = None,
    check_config: Optional[Callable[[Configuration[S]], List[str]]] = None,
    check_step: Optional[Callable[[InterpretedStep[S]], List[str]]] = None,
    stop_on_violation: bool = False,
    keep_representatives: bool = False,
    canonicalize: bool = True,
    strategy: str = "bfs",
    spill_dir: Optional[str] = None,
    spill_max_entries: Optional[int] = None,
    spill_max_bytes: Optional[int] = None,
    checkpoint: Optional[str] = None,
    checkpoint_every: Optional[int] = None,
    resume_payload: Optional[dict] = None,
    fingerprint: Optional[dict] = None,
) -> ExplorationResult[S]:
    """One search run with a fixed frontier discipline and bounds."""
    from repro.c11.compact import ORDER_TIMER
    from repro.interp.memory_model import MODEL_TIMER
    from repro.interp.config import Configuration
    from repro.interp.interpreter import successor_list
    from repro.obs.trace import tracer

    initial = Configuration(program, model.initial(init_values))
    result: ExplorationResult[S] = ExplorationResult(initial)
    result._model = model
    result._canonicalize = canonicalize
    stats = result.stats
    stats.strategy = strategy

    tr = tracer()
    run = (
        tr.run_start(
            program, getattr(model, "name", type(model).__name__),
            strategy, "none", max_events,
        )
        if tr is not None
        else None
    )

    clock = time.perf_counter
    t_run = clock()
    hits0, misses0, _ = KEY_CACHE.snapshot()
    orders0 = ORDER_TIMER.snapshot()
    model0 = MODEL_TIMER.snapshot()

    spill_store = None
    if spill_max_entries is not None or spill_max_bytes is not None:
        from repro.engine.visited import SpillableVisitedSet, encode_config_key

        spill_store = SpillableVisitedSet(
            spill_dir=spill_dir,
            max_entries=spill_max_entries,
            max_bytes=spill_max_bytes,
            encode=encode_config_key,
        )

    from repro.faults import FaultInterrupt, active_plan

    plan = active_plan()
    last_ckpt: Optional[str] = None

    try:
        t0 = clock()
        init_key = _key_of(initial, model, canonicalize)
        stats.time_keys += clock() - t0

        frontier = frontier_class(strategy)()
        # Once the max_configs cap is hit, nothing new can ever be
        # enqueued, so canonical keying of successors becomes pure dead
        # work and is skipped.  Remaining frontier entries are still
        # popped, counted and checked exactly as before the cap — with
        # one shortcut: when there is no step hook, generating their
        # successors can observe nothing, so expansion is skipped too
        # (which only makes `transitions` a count over *expanded*
        # configurations on such capped runs).
        capped = False
        if resume_payload is not None:
            from repro.engine.checkpoint import restore_seen

            loop = resume_payload
            seen = restore_seen(loop["seen"], spill_store)
            frontier.restore(loop["frontier"])
            result.parents = loop["parents"]
            result.terminal = loop["terminal"]
            result.violations = loop["violations"]
            result.representatives = loop["representatives"]
            result.configs = loop["configs"]
            result.transitions = loop["transitions"]
            result.truncated = loop["truncated"]
            result.capped = capped = loop["capped"]
            result.stats = stats = loop["stats"]
            stats.resumed = 1
        else:
            if spill_store is not None:
                seen = spill_store
                seen.add(init_key)
            else:
                seen = {init_key}
            result.parents[init_key] = (None, None)
            frontier.push((initial, init_key))
            stats.peak_frontier = 1

        def write_ckpt() -> None:
            import dataclasses

            from repro.engine.checkpoint import snapshot_seen, write_checkpoint

            # the snapshot's stats must look like the run ended here:
            # fold in this segment's process-wide counter deltas
            snap_stats = dataclasses.replace(stats)
            snap_stats.checkpoints += 1
            h1, m1, _ = KEY_CACHE.snapshot()
            snap_stats.key_hits += h1 - hits0
            snap_stats.key_misses += m1 - misses0
            snap_stats.time_total += clock() - t_run
            snap_stats.time_orders += ORDER_TIMER.snapshot() - orders0
            snap_stats.time_model += MODEL_TIMER.snapshot() - model0
            write_checkpoint(checkpoint, fingerprint, {
                "algo": "plain",
                "frontier": frontier.snapshot(),
                "seen": snapshot_seen(seen),
                "parents": result.parents,
                "terminal": result.terminal,
                "violations": result.violations,
                "representatives": result.representatives,
                "configs": result.configs,
                "transitions": result.transitions,
                "truncated": result.truncated,
                "capped": result.capped,
                "stats": snap_stats,
            })
            stats.checkpoints += 1
            if tr is not None:
                tr.emit(
                    "ckpt", run=run, path=checkpoint,
                    configs=result.configs, action="write",
                )

        next_ckpt = None
        if checkpoint is not None:
            every = checkpoint_every or 1000
            next_ckpt = result.configs + every

        while frontier:
            if next_ckpt is not None and result.configs >= next_ckpt:
                write_ckpt()
                last_ckpt = checkpoint
                next_ckpt = result.configs + every
            if plan is not None and plan.interrupt_due(result.configs):
                if tr is not None:
                    tr.emit(
                        "fault", run=run, kind="interrupt",
                        detail=f"configs={result.configs}",
                    )
                raise FaultInterrupt(
                    f"injected interrupt at {result.configs} configurations",
                    checkpoint=last_ckpt,
                )
            config, key = frontier.pop()
            result.configs += 1
            if tr is not None and tr.tick():
                hits_now, misses_now, _ = KEY_CACHE.snapshot()
                tr.emit(
                    "node", run=run, n=result.configs,
                    pcs=[config.program.pc(t) for t in config.program.tids],
                    keys=[hits_now - hits0, misses_now - misses0],
                )
            if keep_representatives:
                result.representatives[key] = config

            if check_config is not None:
                t0 = clock()
                messages = check_config(config)
                stats.time_checks += clock() - t0
                for message in messages:
                    result.violations.append(Violation(message, config))
                    if stop_on_violation:
                        return result

            if config.is_terminated():
                result.terminal.append(config)
                continue

            if capped and check_step is None:
                result.truncated = True
                continue

            at_bound = (
                max_events is not None and _state_size(config.state) >= max_events
            )

            t0 = clock()
            steps = successor_list(config, model)
            stats.time_expand += clock() - t0

            for step in steps:
                if at_bound and step.event is not None:
                    result.truncated = True
                    continue
                result.transitions += 1

                if check_step is not None:
                    t0 = clock()
                    messages = check_step(step)
                    stats.time_checks += clock() - t0
                    for message in messages:
                        result.violations.append(Violation(message, config, step))
                        if stop_on_violation:
                            return result

                if capped:
                    continue
                t0 = clock()
                child_key = _key_of(step.target, model, canonicalize)
                stats.time_keys += clock() - t0
                if child_key in seen:
                    continue
                if max_configs is not None and len(seen) >= max_configs:
                    result.truncated = True
                    result.capped = True
                    capped = True
                    continue
                seen.add(child_key)
                result.parents[child_key] = (key, step)
                frontier.push((step.target, child_key))
                if len(frontier) > stats.peak_frontier:
                    stats.peak_frontier = len(frontier)
    finally:
        if spill_store is not None:
            stats.spills += spill_store.spills
            stats.spilled_keys += spill_store.spilled_keys
            stats.spill_failures += spill_store.spill_failures
            spill_store.close()
        stats.time_total += clock() - t_run
        hits1, misses1, _ = KEY_CACHE.snapshot()
        stats.key_hits += hits1 - hits0
        stats.key_misses += misses1 - misses0
        stats.time_orders += ORDER_TIMER.snapshot() - orders0
        stats.time_model += MODEL_TIMER.snapshot() - model0
        if tr is not None:
            tr.run_end(
                run, stats, result.configs, result.transitions,
                result.truncated,
            )

    return result


def reachable_states(
    program: Program,
    init_values: Mapping[Var, Value],
    model: MemoryModel[S],
    max_events: Optional[int] = None,
    max_configs: Optional[int] = None,
    strategy: str = "bfs",
    reduction: str = "none",
) -> Tuple[List[S], ExplorationResult[S]]:
    """All distinct memory states reachable (deduplicated by the model's
    canonical key), plus the exploration result.

    The ``record`` hook keys every state a second time; thanks to the
    memoization layer that second keying is a cache hit, not a repeat of
    the ``O(n log n)`` canonicalisation (DESIGN.md §4).

    ``reduction="sleep"`` still enumerates every reachable state (sleep
    sets prune transitions, not configurations); ``"dpor"`` prunes
    configurations and thus returns a *subset* of the reachable states —
    fine for reaching terminal states fast, wrong for per-state
    universal checks, which is why the soundness/completeness checkers
    keep the default.
    """
    states: Dict[Hashable, S] = {}

    def record(config: Configuration[S]) -> List[str]:
        states.setdefault(model.canonical_state_key(config.state), config.state)
        return []

    result = explore(
        program,
        init_values,
        model,
        max_events=max_events,
        max_configs=max_configs,
        check_config=record,
        strategy=strategy,
        reduction=reduction,
    )
    return list(states.values()), result
