"""Sharded single-run exploration (DESIGN.md §15).

One exploration, hash-partitioned across ``N`` shards: shard ``i`` owns
exactly the configurations whose canonical-key digest satisfies
``shard_of(digest, N) == i`` (:func:`~repro.engine.keys.shard_of` over
the stable blake2b digest — never ``hash()``, which is salted per
process).  Each shard keeps the visited-set slice, parent-map slice and
frontier slice for its own keys; successors discovered by one shard but
owned by another are routed to the owner in batches.

The search is bulk-synchronous breadth-first: one *superstep* per BFS
level.  In phase A every shard expands its level-``r`` frontier in
**path-signature order** — each frontier item carries the tuple of
emission ordinals along its discovery path, whose lexicographic order
is exactly the single-process FIFO order — and emits one message per
surviving transition.  At the level barrier, phase B has every shard
sort its inbox by signature and replay the single-process push sequence
for its own keys: dedup (first arrival in signature order wins the
parent slot), config cap, and — under the sleep-set reduction — the
push-time covered check against the sleep-record antichain *as of the
sender's pop stamp* (records are stamped ``(level, signature)``; a push
by the parent popped at stamp ``t`` consults only records ``<= t``,
which is precisely the set of records the single-process loop had
appended when it performed that push).  Phase A never reads another
shard's state and phase B replays a per-key operation sequence
identical to the single-process interleaving, which is the induction
behind the parity contract: exhaustive sharded runs report the same
configuration and transition counts, byte-identical terminal/outcome
sets, the same per-key parent choices and the same violation verdicts
as the single-process search, for every ``N``.

Termination is decided by counting, one round per superstep: each shard
reports how many messages it sent and received and how many items its
next level holds; the coordinator checks global ``sent == recv`` (no
message in flight — Mattern-style counting; with one exchange per
barrier a termination token degenerates to exactly this sum) and stops
when every next frontier is empty.

Two execution modes share the same :class:`_ShardCore` superstep code:

* **process mode** — one worker process per shard (fork start method:
  programs, models and check hooks reach workers through fork'd memory;
  only queue messages are pickled).  Messages and final results pack
  configurations as ``(pcs, state)`` against the run's one lowered
  table, sidestepping ``LoweredProgram.__reduce__``'s re-lowering on
  every unpickle.
* **in-process mode** — the same supersteps run sequentially over all
  shards in one process.  This is the reference the parity matrix
  compares process mode against, and the only mode available inside
  daemonic pool workers (the fuzz ``shard-parity`` oracle), which may
  not fork children.

Every routed message carries the sender-computed key digest; the
receiving shard re-derives ownership and raises on a mis-routed
configuration — the canary the parity test matrix deliberately trips by
patching :func:`_dest_for`.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.engine.core import ExplorationResult, Violation, _key_of, _state_size
from repro.engine.frontier import LevelFrontier
from repro.engine.keys import KEY_CACHE, key_digest, shard_of, stable_encode
from repro.engine.stats import EngineStats
from repro.engine.visited import SpillableVisitedSet, encode_config_key, program_token

#: Reductions the sharded search supports: the two whose traversals the
#: superstep replay reproduces exactly.  The DPOR tiers are inherently
#: depth-first with global backtrack state — out of scope by design.
SHARDABLE_REDUCTIONS = ("none", "sleep")

#: supervision policy: how many times a round of worker deaths is
#: retried (respawning the fleet, resuming from the last checkpoint)
#: before the run degrades to the in-process supersteps
MAX_ATTEMPTS = 3
_BACKOFF_BASE = 0.25  # seconds; doubled per retry, capped below
_BACKOFF_CAP = 2.0


class WorkerDied(RuntimeError):
    """A shard worker exited without reporting (kill, OOM, crash-loop).

    Raised by the coordinator's collect loop when a queue timeout finds
    dead workers; the supervisor in :func:`_run_sharded_supervised`
    catches it and retries the attempt instead of deadlocking the round.
    """

    def __init__(self, pids: List[int]) -> None:
        super().__init__(f"shard worker(s) {pids} died without reporting")
        self.pids = pids


def key_digest_for(key) -> bytes:
    """Stable digest of a full ``ConfigKey = (program, state_key)``.

    Routed through :meth:`~repro.c11.compact.CachedKey.digest` when the
    state key carries one — canonical keys are interned, so the digest
    of a revisited state is a cached attribute read, not a re-encode.
    """
    program, state_key = key
    digest_method = getattr(state_key, "digest", None)
    state_digest = (
        digest_method() if digest_method is not None else key_digest(state_key)
    )
    return hashlib.blake2b(
        stable_encode(program_token(program)) + state_digest, digest_size=16
    ).digest()


def _dest_for(digest: bytes, shards: int) -> int:
    """The shard a successor is routed to.

    A separate seam from :func:`~repro.engine.keys.shard_of` (which the
    *receiver* uses to verify ownership) so the broken-partition canary
    test can mis-route sends without also disarming the check.
    """
    return shard_of(digest, shards)


@dataclass
class _ShardSpec:
    """Everything one shard worker needs (shared via fork, not pickle)."""

    program: Any
    init_values: Mapping
    model: Any
    shards: int
    reduction: str = "none"
    max_events: Optional[int] = None
    #: per-shard slice of the global config cap (None = uncapped)
    max_configs: Optional[int] = None
    check_config: Optional[Callable] = None
    check_step: Optional[Callable] = None
    stop_on_violation: bool = False
    keep_representatives: bool = False
    spill_dir: Optional[str] = None
    spill_max_entries: Optional[int] = None
    spill_max_bytes: Optional[int] = None
    #: trace run id of the enclosing run (None = tracing off)
    run_id: Optional[str] = None
    #: checkpoint file + cadence (configs between snapshots) and the
    #: fingerprint the file is stamped with (DESIGN.md §16)
    checkpoint: Optional[str] = None
    checkpoint_every: Optional[int] = None
    fingerprint: Optional[dict] = None
    #: fault-injection spec for the *workers* — passed explicitly (never
    #: read from the environment in a worker) so the supervisor can hand
    #: respawned workers a disarmed plan and recovery cannot loop
    fault_spec: Optional[str] = None


class _ShardCore:
    """One shard's state plus the phase A / phase B superstep logic.

    Frontier items and routed messages are
    ``(sig, step, config, key, parent_key, sleep, digest)`` — the path
    signature, the discovering transition (``None`` only for the seeded
    initial configuration), the configuration and its canonical key, the
    *sender's* key for the parent (receivers never re-canonicalize), the
    child sleep-set dict (``None`` under ``reduction="none"``) and the
    key digest the sender routed by.
    """

    def __init__(self, spec: _ShardSpec, index: int) -> None:
        self.spec = spec
        self.index = index
        self.stats = EngineStats(strategy="bfs", reduction=spec.reduction)
        self.frontier: LevelFrontier = LevelFrontier()
        self.parents: Dict[Any, Tuple[Any, Any]] = {}
        self.representatives: Dict[Any, Any] = {}
        #: (stamp, Configuration) — stamped for deterministic merge
        self.terminal: List[Tuple[tuple, Any]] = []
        #: (stamp, Violation)
        self.violations: List[Tuple[tuple, Violation]] = []
        self.configs = 0
        self.transitions = 0
        self.truncated = False
        self.capped = False
        self.level = 0
        if spec.spill_max_entries is not None or spec.spill_max_bytes is not None:
            shard_dir = os.path.join(spec.spill_dir, f"shard-{index}")
            self.visited = SpillableVisitedSet(
                spill_dir=shard_dir,
                max_entries=spec.spill_max_entries,
                max_bytes=spec.spill_max_bytes,
                encode=encode_config_key,
            )
        else:
            self.visited = None
            self._seen = set()
        #: sleep reduction: key -> list of (pop stamp, frozen sleep set),
        #: stamped so phase B can reconstruct the sender's push-time view
        self.antichain: Dict[Any, List[Tuple[tuple, frozenset]]] = {}

    # -- visited-set facade --------------------------------------------

    def _visited_add(self, key) -> bool:
        if self.visited is not None:
            return self.visited.add(key)
        before = len(self._seen)
        self._seen.add(key)
        return len(self._seen) != before

    def _visited_has(self, key) -> bool:
        if self.visited is not None:
            return key in self.visited
        return key in self._seen

    def _visited_len(self) -> int:
        if self.visited is not None:
            return len(self.visited)
        return len(self._seen)

    def seed(self, initial, init_key) -> None:
        """Install the initial configuration (owner shard only)."""
        self._visited_add(init_key)
        self.parents[init_key] = (None, None)
        self.frontier.push(((), None, initial, init_key, None, {}, None))
        self.stats.peak_frontier = 1

    # -- phase A: expand the current level -----------------------------

    def expand_level(self) -> List[List[tuple]]:
        """Expand every current-level item in signature order.

        Returns the per-destination outgoing message lists (index
        ``self.index`` holds the local deliveries).
        """
        spec = self.spec
        clock = time.perf_counter
        t_phase = clock()
        outgoing: List[List[tuple]] = [[] for _ in range(spec.shards)]
        level_items = sorted(self.frontier.take_level(), key=lambda it: it[0])
        for item in level_items:
            sig, _step, config, key, _parent, sleep, _digest = item
            stamp = (self.level, sig)
            if spec.reduction == "sleep":
                self._expand_sleep(stamp, config, key, sleep, outgoing)
            else:
                self._expand_plain(stamp, config, key, outgoing)
            if spec.stop_on_violation and self.violations:
                break
        self.stats.time_total += clock() - t_phase
        return outgoing

    def _check_config(self, stamp, config) -> None:
        spec = self.spec
        if spec.check_config is None:
            return
        clock = time.perf_counter
        t0 = clock()
        messages = spec.check_config(config)
        self.stats.time_checks += clock() - t0
        for message in messages:
            self.violations.append((stamp, Violation(message, config)))

    def _check_step(self, stamp, config, step) -> None:
        spec = self.spec
        if spec.check_step is None:
            return
        clock = time.perf_counter
        t0 = clock()
        messages = spec.check_step(step)
        self.stats.time_checks += clock() - t0
        for message in messages:
            self.violations.append((stamp, Violation(message, config, step)))

    def _emit(self, outgoing, sig, step, key, child_key, child_sleep) -> None:
        digest = key_digest_for(child_key)
        dest = _dest_for(digest, self.spec.shards)
        outgoing[dest].append(
            (sig, step, step.target, child_key, key, child_sleep, digest)
        )

    def _expand_plain(self, stamp, config, key, outgoing) -> None:
        from repro.interp.interpreter import successor_list

        spec = self.spec
        clock = time.perf_counter
        self.configs += 1
        if spec.keep_representatives:
            self.representatives[key] = config
        self._check_config(stamp, config)
        if config.is_terminated():
            self.terminal.append((stamp, config))
            return
        if self.capped and spec.check_step is None:
            self.truncated = True
            return
        at_bound = (
            spec.max_events is not None
            and _state_size(config.state) >= spec.max_events
        )
        t0 = clock()
        steps = successor_list(config, spec.model)
        self.stats.time_expand += clock() - t0
        seq = 0
        for step in steps:
            if at_bound and step.event is not None:
                self.truncated = True
                continue
            self.transitions += 1
            self._check_step(stamp, config, step)
            if self.capped:
                continue
            t0 = clock()
            child_key = _key_of(step.target, spec.model)
            self.stats.time_keys += clock() - t0
            self._emit(outgoing, stamp[1] + (seq,), step, key, child_key, None)
            seq += 1

    def _expand_sleep(self, stamp, config, key, sleep, outgoing) -> None:
        from repro.engine.por.deps import conflicts, pending_steps, step_footprint
        from repro.interp.interpreter import thread_successor_list

        spec = self.spec
        clock = time.perf_counter
        sleeping = frozenset(sleep)
        records = self.antichain.get(key)
        if records is not None:
            # Pop-time covered check: pops of this key all happen on
            # this shard, in stamp order, so every record present is
            # causally earlier — the single-process view exactly.
            if any(rec <= sleeping for _, rec in records):
                return  # covered arrival: strictly less awake
            self.stats.revisits += 1
        self.antichain.setdefault(key, []).append((stamp, sleeping))

        if records is None:  # first visit: hooks fire exactly once per key
            self.configs += 1
            if spec.keep_representatives:
                self.representatives[key] = config
            self._check_config(stamp, config)
            if config.is_terminated():
                self.terminal.append((stamp, config))

        if config.is_terminated():
            return

        steps = pending_steps(config.program)
        at_bound = (
            spec.max_events is not None
            and _state_size(config.state) >= spec.max_events
        )
        track_control = spec.check_config is not None
        awake_sleep = dict(sleep)
        seq = 0
        for tid in sorted(steps):
            step = steps[tid]
            if tid in sleep:
                self.stats.sleep_hits += 1
                self.stats.pruned += 1
                if at_bound and not step.is_silent:
                    self.truncated = True
                continue
            if at_bound and not step.is_silent:
                self.truncated = True
                continue
            fp = step_footprint(
                spec.model, config.state, config.program, tid, step,
                track_control,
            )
            self.stats.expanded += 1
            t0 = clock()
            successors = thread_successor_list(config, spec.model, tid, step)
            self.stats.time_expand += clock() - t0
            child_sleep = {
                q: fq for q, fq in awake_sleep.items()
                if q != tid and not conflicts(fq, fp)
            }
            for child in successors:
                self.transitions += 1
                self._check_step(stamp, config, child)
                if self.capped:
                    continue
                t0 = clock()
                child_key = _key_of(child.target, spec.model)
                self.stats.time_keys += clock() - t0
                self._emit(
                    outgoing, stamp[1] + (seq,), child, key, child_key,
                    child_sleep,
                )
                seq += 1
            awake_sleep[tid] = fp  # sleeps for the remaining siblings

    # -- phase B: integrate routed arrivals ----------------------------

    def integrate(self, arrivals: List[tuple]) -> None:
        """Replay the push sequence for this shard's keys, in global
        signature order — the barrier half of the superstep."""
        spec = self.spec
        arrivals.sort(key=lambda message: message[0])
        for sig, step, child_config, child_key, parent_key, child_sleep, digest in arrivals:
            if shard_of(digest, spec.shards) != self.index:
                raise RuntimeError(
                    f"mis-routed configuration: digest owner is shard "
                    f"{shard_of(digest, spec.shards)}, delivered to shard "
                    f"{self.index} — partition function broken"
                )
            if spec.reduction == "sleep":
                self._integrate_sleep(
                    sig, step, child_config, child_key, parent_key,
                    child_sleep, digest,
                )
            else:
                self._integrate_plain(
                    sig, step, child_config, child_key, parent_key, digest
                )
        self.level += 1
        self.frontier.advance()
        if len(self.frontier) > self.stats.peak_frontier:
            self.stats.peak_frontier = len(self.frontier)

    def _cap_hit(self) -> bool:
        spec = self.spec
        if spec.max_configs is not None and self._visited_len() >= spec.max_configs:
            self.truncated = True
            self.capped = True
            return True
        return False

    def _integrate_plain(
        self, sig, step, child_config, child_key, parent_key, digest
    ) -> None:
        if self._visited_has(child_key):
            return
        if self.capped or self._cap_hit():
            return
        self._visited_add(child_key)
        self.parents[child_key] = (parent_key, step)
        self.frontier.push(
            (sig, step, child_config, child_key, parent_key, None, digest)
        )

    def _integrate_sleep(
        self, sig, step, child_config, child_key, parent_key, child_sleep, digest
    ) -> None:
        if not self._visited_has(child_key):
            if self.capped or self._cap_hit():
                return
            self._visited_add(child_key)
        self.parents.setdefault(child_key, (parent_key, step))
        recs = self.antichain.get(child_key)
        if recs is not None:
            frozen = frozenset(child_sleep)
            # The sender pushed this child while popping the parent at
            # stamp (level, sig[:-1]); the single-process loop's
            # push-time check saw exactly the records appended by pops
            # up to and including that one (module docstring).
            parent_stamp = (self.level, sig[:-1])
            if any(
                rec <= frozen
                for rec_stamp, rec in recs if rec_stamp <= parent_stamp
            ):
                return  # already expanded at least this awake
        self.frontier.push(
            (sig, step, child_config, child_key, parent_key, child_sleep, digest)
        )

    # -- results --------------------------------------------------------

    def snapshot(self) -> dict:
        """Checkpoint image of this shard's dynamic state (DESIGN.md §16).

        Taken at a superstep barrier (post-integration), where every
        shard's state is a pure function of the supersteps so far — the
        per-shard analogue of the single-process loop snapshot.
        """
        import dataclasses

        from repro.engine.checkpoint import snapshot_seen

        seen = self.visited if self.visited is not None else self._seen
        return {
            "level": self.level,
            "frontier": self.frontier.snapshot(),
            "seen": snapshot_seen(seen),
            "antichain": {key: list(recs) for key, recs in self.antichain.items()},
            "parents": dict(self.parents),
            "representatives": dict(self.representatives),
            "terminal": list(self.terminal),
            "violations": list(self.violations),
            "configs": self.configs,
            "transitions": self.transitions,
            "truncated": self.truncated,
            "capped": self.capped,
            "stats": dataclasses.replace(self.stats),
        }

    def restore(self, snap: dict) -> None:
        """Rebuild this (freshly constructed) core from a snapshot."""
        from repro.engine.checkpoint import restore_seen

        store = restore_seen(snap["seen"], self.visited)
        if self.visited is None:
            self._seen = store
        self.level = snap["level"]
        self.frontier.restore(snap["frontier"])
        self.antichain = snap["antichain"]
        self.parents = snap["parents"]
        self.representatives = snap["representatives"]
        self.terminal = snap["terminal"]
        self.violations = snap["violations"]
        self.configs = snap["configs"]
        self.transitions = snap["transitions"]
        self.truncated = snap["truncated"]
        self.capped = snap["capped"]
        self.stats = snap["stats"]
        self.stats.resumed = 1

    def finish(self) -> dict:
        """Close the spill store and package this shard's outcome."""
        if self.visited is not None:
            self.stats.spills = self.visited.spills
            self.stats.spilled_keys = self.visited.spilled_keys
            self.stats.spill_failures = self.visited.spill_failures
            self.visited.close()
        return {
            "configs": self.configs,
            "transitions": self.transitions,
            "truncated": self.truncated,
            "capped": self.capped,
            "terminal": self.terminal,
            "violations": self.violations,
            "parents": self.parents,
            "representatives": self.representatives,
            "stats": self.stats,
        }


def _merge_results(
    spec: _ShardSpec, initial, payloads: List[dict], wall: float
) -> ExplorationResult:
    """Fold per-shard payloads into one ExplorationResult."""
    result = ExplorationResult(initial)
    result._model = spec.model
    result._canonicalize = True
    merged = result.stats
    merged.strategy = "bfs"
    merged.reduction = spec.reduction
    rounds = 0
    terminal: List[Tuple[tuple, Any]] = []
    violations: List[Tuple[tuple, Violation]] = []
    for payload in payloads:
        result.configs += payload["configs"]
        result.transitions += payload["transitions"]
        result.truncated = result.truncated or payload["truncated"]
        result.capped = result.capped or payload["capped"]
        terminal.extend(payload["terminal"])
        violations.extend(payload["violations"])
        result.parents.update(payload["parents"])
        result.representatives.update(payload["representatives"])
        merged.merge_round(payload["stats"])
        rounds = max(rounds, payload["stats"].shard_rounds)
    # (level, signature) order is the single-process BFS pop order, so
    # the merged lists read exactly as the unsharded run's would
    terminal.sort(key=lambda pair: pair[0])
    violations.sort(key=lambda pair: pair[0])
    result.terminal = [config for _, config in terminal]
    result.violations = [violation for _, violation in violations]
    merged.shards = spec.shards
    merged.shard_rounds = rounds
    # per-shard phase timings sum across workers; the run's total is the
    # coordinator's wall clock (under process mode the sum exceeds it —
    # that surplus is exactly what parallel hardware buys back)
    merged.time_total = wall
    return result


def _emit_shard_spans(tr, run_id, payloads: List[dict]) -> None:
    """One ``span`` per shard: where each worker's expand time went."""
    if tr is None or run_id is None:
        return
    for index, payload in enumerate(payloads):
        tr.emit(
            "span", run=run_id, name=f"shard{index}",
            dur=payload["stats"].time_total,
        )


# ======================================================================
# In-process mode
# ======================================================================


def _explore_sharded_inprocess(
    spec: _ShardSpec, initial, init_key, resume_payload: Optional[dict] = None
) -> ExplorationResult:
    from repro.c11.compact import ORDER_TIMER
    from repro.engine.checkpoint import write_checkpoint
    from repro.faults import FaultInterrupt, active_plan
    from repro.interp.memory_model import MODEL_TIMER
    from repro.obs.trace import tracer

    tr = tracer()
    plan = active_plan()  # kill-worker has no target in-process; ignored
    clock = time.perf_counter
    t_run = clock()
    hits0, misses0, _ = KEY_CACHE.snapshot()
    orders0 = ORDER_TIMER.snapshot()
    model0 = MODEL_TIMER.snapshot()
    cores = [_ShardCore(spec, i) for i in range(spec.shards)]
    rounds = 0
    ckpt_count = 0
    last_ckpt: Optional[str] = None
    if resume_payload is not None:
        for core, blob in zip(cores, resume_payload["cores"]):
            core.restore(pickle.loads(blob))
        rounds = cores[0].level
        ckpt_count = resume_payload.get("checkpoints", 0)
        if ckpt_count:
            last_ckpt = spec.checkpoint
    else:
        cores[_dest_for(key_digest_for(init_key), spec.shards)].seed(
            initial, init_key
        )
    every = spec.checkpoint_every or 1000
    next_ckpt = (
        sum(core.configs for core in cores) + every
        if spec.checkpoint is not None
        else None
    )
    payloads: Optional[List[dict]] = None
    try:
        while True:
            outgoing_all = [core.expand_level() for core in cores]
            stop = False
            for i, core in enumerate(cores):
                inbox = [
                    message
                    for j in range(spec.shards)
                    for message in outgoing_all[j][i]
                ]
                sent = sum(
                    len(batch)
                    for k, batch in enumerate(outgoing_all[i]) if k != i
                )
                recv = sum(
                    len(outgoing_all[j][i])
                    for j in range(spec.shards) if j != i
                )
                core.stats.shard_sent += sent
                core.stats.shard_recv += recv
                core.integrate(inbox)
                if tr is not None and spec.run_id is not None:
                    tr.emit(
                        "shard", run=spec.run_id, shard=i, round=rounds,
                        sent=sent, recv=recv, frontier=len(core.frontier),
                    )
                if spec.stop_on_violation and core.violations:
                    stop = True
            rounds += 1
            for core in cores:
                core.stats.shard_rounds = rounds
            if stop or all(len(core.frontier) == 0 for core in cores):
                break
            total = sum(core.configs for core in cores)
            if next_ckpt is not None and total >= next_ckpt:
                ckpt_count += 1
                write_checkpoint(spec.checkpoint, spec.fingerprint, {
                    "algo": "shard",
                    "cores": [pickle.dumps(core.snapshot()) for core in cores],
                    "checkpoints": ckpt_count,
                })
                last_ckpt = spec.checkpoint
                next_ckpt = total + every
                if tr is not None and spec.run_id is not None:
                    tr.emit(
                        "ckpt", run=spec.run_id, path=spec.checkpoint,
                        configs=total, action="write",
                    )
            if plan is not None and plan.interrupt_due(total):
                if tr is not None and spec.run_id is not None:
                    tr.emit(
                        "fault", run=spec.run_id, kind="interrupt",
                        detail=f"configs={total}",
                    )
                raise FaultInterrupt(
                    f"injected interrupt at {total} configurations",
                    checkpoint=last_ckpt,
                )
        payloads = [core.finish() for core in cores]
    finally:
        for core in cores:
            if core.visited is not None:
                core.visited.close()
    wall = clock() - t_run
    result = _merge_results(spec, initial, payloads, wall)
    result.stats.checkpoints += ckpt_count
    hits1, misses1, _ = KEY_CACHE.snapshot()
    result.stats.key_hits = hits1 - hits0
    result.stats.key_misses = misses1 - misses0
    result.stats.time_orders = ORDER_TIMER.snapshot() - orders0
    result.stats.time_model = MODEL_TIMER.snapshot() - model0
    _emit_shard_spans(tr, spec.run_id, payloads)
    return result


# ======================================================================
# Process mode
# ======================================================================


def _pack_config(config, table):
    """Configuration → wire form (pcs against the run's one table)."""
    program = config.program
    if table is not None and getattr(program, "table", None) is table:
        return ("pcs", program.pcs, config.state)
    return ("cfg", config)


def _unpack_config(packed, table):
    from repro.interp.compiled import LoweredProgram
    from repro.interp.config import Configuration

    if packed[0] == "pcs":
        return Configuration(LoweredProgram(table, packed[1]), packed[2])
    return packed[1]


def _pack_step(step, table):
    if step is None:
        return None
    return (
        _pack_config(step.source, table),
        step.tid,
        _pack_config(step.target, table),
        step.event,
        step.observed,
        step.read_value,
    )


def _unpack_step(packed, table):
    from repro.interp.interpreter import InterpretedStep

    if packed is None:
        return None
    source, tid, target, event, observed, read_value = packed
    return InterpretedStep(
        _unpack_config(source, table), tid, _unpack_config(target, table),
        event, observed, read_value,
    )


def _pack_message(message, table):
    sig, step, _child_config, child_key, parent_key, child_sleep, digest = message
    # the child configuration is step.target — rebuilt on the far side
    return (sig, _pack_step(step, table), child_key, parent_key, child_sleep, digest)


def _unpack_message(packed, table):
    sig, step_packed, child_key, parent_key, child_sleep, digest = packed
    step = _unpack_step(step_packed, table)
    return (sig, step, step.target, child_key, parent_key, child_sleep, digest)


def _pack_payload(payload: dict, table) -> dict:
    payload["terminal"] = [
        (stamp, _pack_config(config, table))
        for stamp, config in payload["terminal"]
    ]
    payload["violations"] = [
        (
            stamp,
            (v.message, _pack_config(v.config, table), _pack_step(v.step, table)),
        )
        for stamp, v in payload["violations"]
    ]
    payload["parents"] = {
        key: (parent, _pack_step(step, table))
        for key, (parent, step) in payload["parents"].items()
    }
    payload["representatives"] = {
        key: _pack_config(config, table)
        for key, config in payload["representatives"].items()
    }
    return payload


def _unpack_payload(payload: dict, table) -> dict:
    payload["terminal"] = [
        (stamp, _unpack_config(config, table))
        for stamp, config in payload["terminal"]
    ]
    payload["violations"] = [
        (
            stamp,
            Violation(
                message, _unpack_config(config, table),
                _unpack_step(step, table),
            ),
        )
        for stamp, (message, config, step) in payload["violations"]
    ]
    payload["parents"] = {
        key: (parent, _unpack_step(step, table))
        for key, (parent, step) in payload["parents"].items()
    }
    payload["representatives"] = {
        key: _unpack_config(config, table)
        for key, config in payload["representatives"].items()
    }
    return payload


def _shard_worker(
    spec, index, inboxes, coord_queue, ctrl_queue, resume_blob=None
) -> None:
    """One shard's worker process (fork entry point).

    Fault injection is driven *only* by ``spec.fault_spec`` — never the
    environment — so the supervisor controls exactly which attempt is
    faulty; ``resume_blob`` is this shard's pickled core snapshot from a
    checkpoint (None = fresh start).
    """
    import signal

    from repro.c11.compact import ORDER_TIMER
    from repro.faults import FaultPlan
    from repro.interp.config import Configuration
    from repro.interp.memory_model import MODEL_TIMER
    from repro.obs.trace import tracer

    # the coordinator's SIGTERM-to-exception handler travels across
    # fork; in a worker `terminate()` should just kill, not raise
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    plan = FaultPlan(spec.fault_spec) if spec.fault_spec else None
    core = _ShardCore(spec, index)
    table = getattr(spec.program, "table", None)
    tr = tracer()
    hits0, misses0, _ = KEY_CACHE.snapshot()
    orders0 = ORDER_TIMER.snapshot()
    model0 = MODEL_TIMER.snapshot()
    initial = Configuration(spec.program, spec.model.initial(spec.init_values))
    init_key = _key_of(initial, spec.model)
    rounds = 0
    if resume_blob is not None:
        core.restore(pickle.loads(resume_blob))
        rounds = core.level  # snapshots are taken at superstep barriers
    elif _dest_for(key_digest_for(init_key), spec.shards) == index:
        core.seed(initial, init_key)
    try:
        while True:
            if plan is not None and plan.kill_worker_now(index, rounds):
                os._exit(1)  # simulated hard death: no cleanup, no report
            outgoing = core.expand_level()
            sent = 0
            for dest in range(spec.shards):
                if dest == index:
                    continue
                batch = [_pack_message(m, table) for m in outgoing[dest]]
                sent += len(batch)
                if plan is not None:
                    plan.delay_send(index)
                # Pickle here, in the worker's main thread: Queue.put
                # defers pickling to a feeder thread, where an
                # unpicklable payload (a program that lowered to
                # closures and missed the (pcs, state) fast path) would
                # kill the feeder silently and deadlock the round.
                # Raising here lands in the crash report instead.
                inboxes[dest].put(("batch", rounds, index, pickle.dumps(batch)))
            inbox = list(outgoing[index])
            recv = 0
            for _ in range(spec.shards - 1):
                tag, r, _sender, blob = inboxes[index].get()
                assert tag == "batch" and r == rounds, (tag, r, rounds)
                batch = pickle.loads(blob)
                recv += len(batch)
                inbox.extend(_unpack_message(m, table) for m in batch)
            core.stats.shard_sent += sent
            core.stats.shard_recv += recv
            core.integrate(inbox)
            if tr is not None and spec.run_id is not None:
                tr.emit(
                    "shard", run=spec.run_id, shard=index, round=rounds,
                    sent=sent, recv=recv, frontier=len(core.frontier),
                )
            rounds += 1
            core.stats.shard_rounds = rounds
            coord_queue.put((
                "round", index, rounds - 1, len(core.frontier), sent, recv,
                bool(core.violations), core.configs,
            ))
            command = ctrl_queue.get()
            if command[0] == "stop":
                break
            if len(command) > 1 and command[1]:
                # checkpoint request: snapshot the barrier state, pickled
                # in the main thread like every other payload
                coord_queue.put(("ckpt", index, pickle.dumps(core.snapshot())))
        hits1, misses1, _ = KEY_CACHE.snapshot()
        core.stats.key_hits = hits1 - hits0
        core.stats.key_misses = misses1 - misses0
        core.stats.time_orders = ORDER_TIMER.snapshot() - orders0
        core.stats.time_model = MODEL_TIMER.snapshot() - model0
        # pickled in the main thread for the same reason as batches
        coord_queue.put(
            ("result", index, pickle.dumps(_pack_payload(core.finish(), table)))
        )
    except BaseException:  # noqa: BLE001 — report, then let it propagate
        import traceback

        coord_queue.put(("crash", index, traceback.format_exc()))
        raise
    finally:
        if core.visited is not None:
            core.visited.close()


def _explore_sharded_processes(
    spec: _ShardSpec, initial, init_key, resume_payload: Optional[dict] = None
) -> ExplorationResult:
    import multiprocessing
    import queue as queue_mod

    from repro.engine.checkpoint import write_checkpoint
    from repro.faults import FaultInterrupt, active_plan
    from repro.obs.trace import tracer

    tr = tracer()
    plan = active_plan()  # coordinator-side probes (interrupt) only
    clock = time.perf_counter
    t_run = clock()
    ctx = multiprocessing.get_context()
    inboxes = [ctx.Queue() for _ in range(spec.shards)]
    coord_queue = ctx.Queue()
    ctrls = [ctx.Queue() for _ in range(spec.shards)]
    blobs = (
        resume_payload["cores"] if resume_payload is not None
        else [None] * spec.shards
    )
    ckpt_count = (
        resume_payload.get("checkpoints", 0) if resume_payload is not None else 0
    )
    workers = [
        ctx.Process(
            target=_shard_worker,
            args=(spec, i, inboxes, coord_queue, ctrls[i], blobs[i]),
            daemon=True,
        )
        for i in range(spec.shards)
    ]
    for worker in workers:
        worker.start()

    stash: List[tuple] = []

    def collect(expected_tag: str, count: int) -> List[tuple]:
        got: List[tuple] = []
        kept: List[tuple] = []
        for message in stash:
            if message[0] == expected_tag and len(got) < count:
                got.append(message)
            else:
                kept.append(message)
        stash[:] = kept
        while len(got) < count:
            try:
                message = coord_queue.get(timeout=1.0)
            except queue_mod.Empty:
                dead = [w for w in workers if not w.is_alive()]
                if dead:
                    raise WorkerDied([w.pid for w in dead])
                continue
            if message[0] == "crash":
                raise RuntimeError(f"shard {message[1]} crashed:\n{message[2]}")
            if message[0] != expected_tag:
                # a fast worker's next-round report can land while this
                # barrier's checkpoint blobs are still being collected
                stash.append(message)
                continue
            got.append(message)
        return got

    every = spec.checkpoint_every or 1000
    next_ckpt: Optional[int] = None
    last_ckpt: Optional[str] = spec.checkpoint if ckpt_count else None
    payloads: Optional[List[dict]] = None
    failed = True
    try:
        while True:
            reports = collect("round", spec.shards)
            sent = sum(report[4] for report in reports)
            recv = sum(report[5] for report in reports)
            if sent != recv:  # the count-based termination invariant
                raise RuntimeError(
                    f"sharded termination count mismatch: {sent} routed "
                    f"out, {recv} delivered"
                )
            frontier_total = sum(report[3] for report in reports)
            violated = any(report[6] for report in reports)
            total_configs = sum(report[7] for report in reports)
            done = frontier_total == 0 or (spec.stop_on_violation and violated)
            do_ckpt = False
            if spec.checkpoint is not None and not done:
                if next_ckpt is None:
                    next_ckpt = (
                        total_configs + every if resume_payload is not None
                        else every
                    )
                do_ckpt = total_configs >= next_ckpt
            if plan is not None and not done and plan.interrupt_due(total_configs):
                for ctrl in ctrls:
                    ctrl.put(("stop",))
                if tr is not None and spec.run_id is not None:
                    tr.emit(
                        "fault", run=spec.run_id, kind="interrupt",
                        detail=f"configs={total_configs}",
                    )
                raise FaultInterrupt(
                    f"injected interrupt at {total_configs} configurations",
                    checkpoint=last_ckpt,
                )
            for ctrl in ctrls:
                ctrl.put(("stop",) if done else ("continue", do_ckpt))
            if done:
                break
            if do_ckpt:
                snaps = collect("ckpt", spec.shards)
                ckpt_count += 1
                write_checkpoint(spec.checkpoint, spec.fingerprint, {
                    "algo": "shard",
                    "cores": [
                        blob
                        for _, _, blob in sorted(snaps, key=lambda s: s[1])
                    ],
                    "checkpoints": ckpt_count,
                })
                last_ckpt = spec.checkpoint
                next_ckpt = total_configs + every
                if tr is not None and spec.run_id is not None:
                    tr.emit(
                        "ckpt", run=spec.run_id, path=spec.checkpoint,
                        configs=total_configs, action="write",
                    )
        results = collect("result", spec.shards)
        table = getattr(spec.program, "table", None)
        payloads = [
            _unpack_payload(pickle.loads(blob), table)
            for _, _, blob in sorted(results, key=lambda r: r[1])
        ]
        failed = False
    finally:
        for worker in workers:
            # on failure the surviving workers are blocked mid-exchange;
            # a graceful join would only burn the timeout per worker
            worker.join(timeout=0.2 if failed else 5.0)
            if worker.is_alive():
                worker.terminate()
                worker.join(timeout=5.0)
        for q in [coord_queue, *inboxes, *ctrls]:
            q.close()
            q.cancel_join_thread()
        if spec.spill_dir is not None:
            # a worker crash may have left per-shard stores behind
            import shutil

            for i in range(spec.shards):
                shard_dir = os.path.join(spec.spill_dir, f"shard-{i}")
                if os.path.isdir(shard_dir):
                    shutil.rmtree(shard_dir, ignore_errors=True)
    wall = clock() - t_run
    result = _merge_results(spec, initial, payloads, wall)
    result.stats.checkpoints += ckpt_count
    _emit_shard_spans(tracer(), spec.run_id, payloads)
    return result


def _run_sharded_supervised(
    spec: _ShardSpec, initial, init_key, resume_payload: Optional[dict]
) -> ExplorationResult:
    """Attempt-level supervision around the process-mode search.

    Each attempt runs the whole worker fleet; when :class:`WorkerDied`
    reports silent deaths, the fleet is torn down and respawned after a
    capped exponential backoff, resuming from the latest checkpoint on
    disk (or the original resume point, or scratch).  After
    :data:`MAX_ATTEMPTS` the run degrades to the in-process supersteps,
    whose parity contract guarantees identical results.  Fault specs are
    armed on the first attempt only, so injected kills cannot loop.
    """
    from repro.engine.checkpoint import CheckpointError, read_checkpoint
    from repro.faults import active_plan
    from repro.obs.trace import tracer

    tr = tracer()

    def emit_fault(kind: str, detail: str) -> None:
        if tr is not None and spec.run_id is not None:
            tr.emit("fault", run=spec.run_id, kind=kind, detail=detail)

    plan = active_plan()
    spec.fault_spec = plan.spec if plan is not None else None
    faults = retries = respawns = 0
    attempt = 0
    while True:
        payload = resume_payload
        if attempt > 0:
            spec.fault_spec = None  # disarm worker-side faults on retries
            if spec.checkpoint is not None and os.path.exists(spec.checkpoint):
                try:
                    _, ckpt = read_checkpoint(
                        spec.checkpoint, expect=spec.fingerprint
                    )
                    if ckpt.get("algo") == "shard":
                        payload = ckpt
                except CheckpointError:
                    pass  # torn/foreign file: restart from the original point
        try:
            result = _explore_sharded_processes(spec, initial, init_key, payload)
            break
        except WorkerDied as death:
            faults += len(death.pids)
            emit_fault("worker-death", str(death))
            attempt += 1
            if attempt >= MAX_ATTEMPTS:
                emit_fault(
                    "degrade",
                    f"in-process fallback after {attempt} failed attempts",
                )
                result = _explore_sharded_inprocess(
                    spec, initial, init_key, payload
                )
                break
            retries += 1
            respawns += spec.shards
            emit_fault("respawn", f"attempt {attempt + 1}/{MAX_ATTEMPTS}")
            time.sleep(min(_BACKOFF_CAP, _BACKOFF_BASE * (2 ** (attempt - 1))))
    result.stats.faults += faults
    result.stats.retries += retries
    result.stats.respawns += respawns
    return result


# ======================================================================
# Entry point
# ======================================================================


class ShardedExplorer:
    """The hash-partitioned explorer: validate once, run many.

    Thin stateful wrapper over :func:`explore_sharded` for callers that
    run several explorations under one partitioning configuration (the
    benchmark harness); one-shot callers use the function directly.
    """

    def __init__(
        self,
        shards: int,
        processes: Optional[bool] = None,
        spill_dir: Optional[str] = None,
        spill_max_entries: Optional[int] = None,
        spill_max_bytes: Optional[int] = None,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.shards = shards
        self.processes = processes
        self.spill_dir = spill_dir
        self.spill_max_entries = spill_max_entries
        self.spill_max_bytes = spill_max_bytes

    def explore(self, program, init_values, model, **kwargs) -> ExplorationResult:
        return explore_sharded(
            program, init_values, model, self.shards,
            processes=self.processes, spill_dir=self.spill_dir,
            spill_max_entries=self.spill_max_entries,
            spill_max_bytes=self.spill_max_bytes, **kwargs,
        )


def explore_sharded(
    program,
    init_values: Mapping,
    model,
    shards: int,
    max_events: Optional[int] = None,
    max_configs: Optional[int] = None,
    check_config: Optional[Callable] = None,
    check_step: Optional[Callable] = None,
    stop_on_violation: bool = False,
    keep_representatives: bool = False,
    canonicalize: bool = True,
    strategy: str = "bfs",
    reduction: str = "none",
    equivalence: str = "shasha-snir",
    processes: Optional[bool] = None,
    spill_dir: Optional[str] = None,
    spill_max_entries: Optional[int] = None,
    spill_max_bytes: Optional[int] = None,
    checkpoint: Optional[str] = None,
    checkpoint_every: Optional[int] = None,
    resume: Optional[str] = None,
) -> ExplorationResult:
    """Hash-partitioned exploration across ``shards`` workers.

    Accepts the single-process ``explore`` surface where the sharded
    search can honour its parity contract, and rejects the rest up
    front: breadth-first only (the superstep structure *is* BFS),
    reductions ``"none"``/``"sleep"``, the exact Shasha–Snir
    equivalence, and canonical keys (the digest partition function is
    defined on them).

    ``processes=None`` auto-selects: real worker processes when the
    current process may fork children, the in-process supersteps
    otherwise (daemonic pool workers — the fuzz oracle's home — may
    not fork).  ``shards=1`` always runs in-process: one worker has
    nothing to overlap.

    Semantic deltas against the single-process loop, both flag-visible:
    ``stop_on_violation`` stops at the end of the superstep that found
    the violation (same verdict and same first violation, possibly more
    configs counted), and ``max_configs`` caps each shard at
    ``ceil(max_configs / shards)`` (capped runs are order-dependent in
    the single-process engine already; ``truncated``/``capped``
    propagate whenever any shard hits its slice).

    ``checkpoint``/``checkpoint_every``/``resume`` give the sharded
    search the single-process checkpoint surface (DESIGN.md §16):
    snapshots are taken at superstep barriers — per-shard core images
    assembled by the coordinator into ONE atomic ``repro-ckpt/1`` file
    with algorithm tag ``"shard"`` — and resume requires the identical
    shard count (it is part of the fingerprint).  Process mode runs
    under attempt-level supervision: silently dying workers are
    detected, the fleet respawned from the latest checkpoint with
    capped backoff, and after :data:`MAX_ATTEMPTS` failed attempts the
    run degrades to the in-process supersteps instead of failing.
    """
    from repro.interp.compiled import maybe_lower
    from repro.interp.config import Configuration
    from repro.obs.trace import tracer

    if shards < 1:
        raise ValueError("shards must be >= 1")
    if strategy != "bfs":
        raise ValueError(
            "sharded exploration is breadth-first by construction; "
            f"strategy={strategy!r} is not shardable"
        )
    if reduction not in SHARDABLE_REDUCTIONS:
        raise ValueError(
            f"reduction {reduction!r} is not shardable; choose from "
            f"{SHARDABLE_REDUCTIONS} (the DPOR tiers are depth-first with "
            "global backtrack state)"
        )
    if equivalence != "shasha-snir":
        raise ValueError(
            "sharded exploration keys configurations exactly; "
            f"equivalence={equivalence!r} is not shardable"
        )
    if not canonicalize:
        raise ValueError(
            "sharded exploration partitions by canonical-key digest; "
            "canonicalize=False has no digestable key"
        )
    if (spill_max_entries is not None or spill_max_bytes is not None) and (
        spill_dir is None
    ):
        raise ValueError("a visited-set spill budget needs spill_dir")
    if processes is None:
        import multiprocessing

        processes = not multiprocessing.current_process().daemon

    program = maybe_lower(program)
    fingerprint = None
    resume_payload = None
    if checkpoint is not None or resume is not None:
        from repro.engine.checkpoint import (
            CheckpointError,
            read_checkpoint,
            run_fingerprint,
        )

        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        fingerprint = run_fingerprint(
            program, init_values, model,
            max_events=max_events, max_configs=max_configs,
            strategy="bfs", reduction=reduction, equivalence=equivalence,
            canonicalize=True, shards=shards,
        )
        if resume is not None:
            _, resume_payload = read_checkpoint(resume, expect=fingerprint)
            if resume_payload.get("algo") != "shard":
                raise CheckpointError(
                    f"checkpoint {resume!r} holds "
                    f"{resume_payload.get('algo')!r} loop state, not the "
                    "sharded search's per-core snapshots"
                )
    spec = _ShardSpec(
        program=program,
        init_values=init_values,
        model=model,
        shards=shards,
        reduction=reduction,
        max_events=max_events,
        max_configs=(
            None if max_configs is None else max(1, -(-max_configs // shards))
        ),
        check_config=check_config,
        check_step=check_step,
        stop_on_violation=stop_on_violation,
        keep_representatives=keep_representatives,
        spill_dir=spill_dir,
        spill_max_entries=spill_max_entries,
        spill_max_bytes=(
            None if spill_max_bytes is None
            else max(1, spill_max_bytes // shards)
        ),
        checkpoint=checkpoint,
        checkpoint_every=checkpoint_every,
        fingerprint=fingerprint,
    )

    tr = tracer()
    run = (
        tr.run_start(
            program, getattr(model, "name", type(model).__name__),
            "bfs", reduction, max_events,
        )
        if tr is not None
        else None
    )
    spec.run_id = run

    initial = Configuration(program, model.initial(init_values))
    init_key = _key_of(initial, model)
    if processes and shards > 1:
        import signal
        import threading

        # SIGTERM must run the teardown path (terminate workers, close
        # queue feeders) rather than killing the coordinator mid-round
        # and orphaning the fleet; signal handlers only install from the
        # main thread, elsewhere the default disposition already applies
        # to the whole process group.
        previous_handler = None
        installed = False
        if threading.current_thread() is threading.main_thread():
            def _on_sigterm(signum, frame):
                raise KeyboardInterrupt("SIGTERM")

            previous_handler = signal.signal(signal.SIGTERM, _on_sigterm)
            installed = True
        try:
            result = _run_sharded_supervised(
                spec, initial, init_key, resume_payload
            )
        finally:
            if installed:
                signal.signal(signal.SIGTERM, previous_handler)
    else:
        result = _explore_sharded_inprocess(
            spec, initial, init_key, resume_payload
        )
    if tr is not None:
        tr.run_end(
            run, result.stats, result.configs, result.transitions,
            result.truncated,
        )
    return result


__all__ = [
    "MAX_ATTEMPTS",
    "SHARDABLE_REDUCTIONS",
    "ShardedExplorer",
    "WorkerDied",
    "explore_sharded",
    "key_digest_for",
]
