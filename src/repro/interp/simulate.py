"""Randomised simulation — sampling schedules instead of exhausting them.

Bounded exhaustive exploration (``repro.interp.explore``) is the ground
truth but grows exponentially with the event bound.  For larger bounds
this module samples random maximal runs: at every configuration a
uniformly random enabled transition is taken (seeded, hence
reproducible).  Sampling can *refute* safety properties (a hit is a real
counterexample, complete with trace) and estimate outcome frequencies,
but can never verify — the E10 ablation benchmark quantifies that
trade-off against exhaustive search.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Generic, List, Mapping, Optional, Tuple, TypeVar

from repro.interp.config import Configuration
from repro.interp.interpreter import InterpretedStep, configuration_successors
from repro.interp.memory_model import MemoryModel
from repro.lang.actions import Value, Var
from repro.lang.program import Program

S = TypeVar("S")


@dataclass
class RunResult(Generic[S]):
    """One sampled maximal run."""

    final: Configuration[S]
    steps: List[InterpretedStep[S]]
    terminated: bool  # program finished (vs. step/event budget exhausted)
    violation: Optional[str] = None


@dataclass
class SimulationReport(Generic[S]):
    """Aggregate over all sampled runs."""

    runs: int = 0
    terminated: int = 0
    violations: List[RunResult[S]] = field(default_factory=list)
    #: outcome key -> frequency (key produced by the caller's classifier)
    outcomes: Dict[object, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def frequency(self, key: object) -> float:
        return self.outcomes.get(key, 0) / self.runs if self.runs else 0.0


def _state_size(state) -> int:
    events = getattr(state, "events", None)
    if events is None:
        return 0
    return sum(1 for e in events if not e.is_init)


def sample_run(
    program: Program,
    init_values: Mapping[Var, Value],
    model: MemoryModel[S],
    rng: random.Random,
    max_steps: int = 200,
    max_events: Optional[int] = None,
    check_config: Optional[Callable[[Configuration[S]], List[str]]] = None,
) -> RunResult[S]:
    """One random maximal run (uniform over enabled transitions)."""
    config = Configuration(program, model.initial(init_values))
    steps: List[InterpretedStep[S]] = []
    for _ in range(max_steps):
        if check_config is not None:
            messages = check_config(config)
            if messages:
                return RunResult(config, steps, False, violation=messages[0])
        if config.is_terminated():
            return RunResult(config, steps, True)
        at_bound = (
            max_events is not None and _state_size(config.state) >= max_events
        )
        enabled = [
            s
            for s in configuration_successors(config, model)
            if not (at_bound and s.event is not None)
        ]
        if not enabled:
            return RunResult(config, steps, False)
        step = rng.choice(enabled)
        steps.append(step)
        config = step.target
    return RunResult(config, steps, config.is_terminated())


def simulate(
    program: Program,
    init_values: Mapping[Var, Value],
    model: MemoryModel[S],
    runs: int = 100,
    seed: int = 0,
    max_steps: int = 200,
    max_events: Optional[int] = None,
    check_config: Optional[Callable[[Configuration[S]], List[str]]] = None,
    classify: Optional[Callable[[Configuration[S]], object]] = None,
    stop_on_violation: bool = False,
) -> SimulationReport[S]:
    """Sample ``runs`` random schedules and aggregate.

    ``classify`` maps a terminal configuration to an outcome key whose
    frequency is tallied (e.g. the tuple of final register values).
    """
    rng = random.Random(seed)
    report: SimulationReport[S] = SimulationReport()
    for _ in range(runs):
        result = sample_run(
            program,
            init_values,
            model,
            rng,
            max_steps=max_steps,
            max_events=max_events,
            check_config=check_config,
        )
        report.runs += 1
        if result.violation is not None:
            report.violations.append(result)
            if stop_on_violation:
                break
        if result.terminated:
            report.terminated += 1
            if classify is not None:
                key = classify(result.final)
                report.outcomes[key] = report.outcomes.get(key, 0) + 1
    return report
