"""Lowered programs: dense machine states over compiled step tables.

The bridge between the compiler (:mod:`repro.lang.lower`) and the
interpreted semantics.  A :class:`LoweredTable` is computed **once per
source** :class:`~repro.lang.program.Program` (cached on the program
object, like its hash) and shared by every configuration of a run; a
:class:`LoweredProgram` is then just the table plus one ``(pc, vals)``
pair per thread — hashing and equality are over small integer tuples
instead of command ASTs, which is where the engine's seen-set and
parent-map operations spend their time on the legacy representation.

:class:`LoweredStep` is protocol-compatible with
:class:`~repro.lang.semantics.PendingStep` (``kind``/``var``/``wrval``/
``wrfun``/``write_value``/``action``/``is_read_hole``/``is_silent``, and
a slow-path ``resume`` for debugging), so the four memory models consume
it unchanged — with two hot-path upgrades: steps are interned per
``(instruction, vals)`` so identical thread states across
configurations share one object, and ``action()`` memoizes per read
value through the global action interner.

Lowering is **gated**: ``REPRO_NO_LOWER=1`` (mirroring
``REPRO_NO_COMPACT``) keeps the legacy AST walker for A/B measurement,
:func:`lowering_disabled` forces it per call site (the fuzz oracle), and
a program whose threads the compiler refuses (alias risk — see
:mod:`repro.lang.lower`) silently stays legacy.  Either way the
exploration results are byte-identical; only the representation of
``config.program`` differs (enforced by the lowering parity tests and
the ``--check-lowering`` fuzz oracle).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

from repro.lang.actions import ActionKind, TAU, Value, Var, intern_action
from repro.lang.lower import (
    PC_TERM,
    Instr,
    ThreadTable,
    concretize,
    eval_ops,
    lower_thread,
)
from repro.lang.program import Program, Tid
from repro.lang.syntax import Com, PC_DONE, Skip, truthy

SKIP = Skip()

#: Machine state of one thread: table index plus placeholder values.
ThreadState = Tuple[int, Tuple[Value, ...]]


class LoweredStep:
    """The pending step of one lowered thread state.

    Interned per ``(instruction, vals)`` — see :func:`step_of` — so the
    reduction layer's per-node footprint loop and the interpreter's
    expansion share one object per distinct thread state.  The write
    value of a computed write (a partially evaluated assignment such as
    ``y := v0 + 1``) is folded at construction, so memory models see an
    ordinary constant-``wrval`` step.
    """

    __slots__ = ("instr", "vals", "kind", "var", "wrval", "wrfun",
                 "_actions", "_taken")

    def __init__(self, instr: Instr, vals: Tuple[Value, ...]) -> None:
        self.instr = instr
        self.vals = vals
        self.kind = instr.kind
        self.var = instr.var
        if instr.wrops is not None:
            self.wrval: Optional[Value] = eval_ops(instr.wrops, vals)
        else:
            self.wrval = instr.wrval
        self.wrfun = instr.wrfun
        self._actions: dict = {}
        self._taken: Optional[bool] = None

    @property
    def is_read_hole(self) -> bool:
        return self.kind.is_read

    @property
    def is_silent(self) -> bool:
        return self.kind.is_silent

    @property
    def taken(self) -> bool:
        """Which arm a branch instruction resolves to (memoized)."""
        t = self._taken
        if t is None:
            t = truthy(eval_ops(self.instr.guard_ops, self.vals))
            self._taken = t
        return t

    @property
    def control_visible(self) -> bool:
        """Whether this step changes ``(pc, terminated)`` of its thread.

        Read straight off the table entry — the lowered replacement for
        ``step_changes_control``'s per-node ``resume`` probing; a branch
        picks the precomputed bit of its resolved arm.
        """
        i = self.instr
        if i.is_branch:
            return i.vis_then if self.taken else i.vis_else
        return i.visible

    def write_value(self, read_value: Optional[Value] = None) -> Value:
        if self.wrfun is not None:
            if read_value is None:
                raise ValueError("computed update needs its read value")
            return self.wrfun(read_value)
        assert self.wrval is not None
        return self.wrval

    def action(self, read_value: Optional[Value] = None):
        a = self._actions.get(read_value)
        if a is None:
            kind = self.kind
            if kind is ActionKind.TAU:
                a = TAU
            elif kind is ActionKind.WR or kind is ActionKind.WRR:
                a = intern_action(kind, self.var, wrval=self.wrval)
            elif read_value is None:
                raise ValueError("read step needs a value for its hole")
            elif kind is ActionKind.UPD:
                a = intern_action(kind, self.var, rdval=read_value,
                                  wrval=self.write_value(read_value))
            else:
                a = intern_action(kind, self.var, rdval=read_value)
            self._actions[read_value] = a
        return a

    def resume(self, value: Optional[Value] = None) -> Com:
        """Slow-path compatibility: the concrete successor command.

        Reconstructs the concrete state and steps it with the legacy
        walker — exact by construction, off the hot path (the engine
        applies steps through the table instead).
        """
        from repro.lang.semantics import command_steps

        com = concretize(self.instr.com, self.vals)
        step = next(command_steps(com))
        return step.resume(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LoweredStep(pc={self.instr.pc}, {self.kind.value}, vals={self.vals})"


def step_of(instr: Instr, vals: Tuple[Value, ...]) -> LoweredStep:
    """The interned :class:`LoweredStep` of one thread state."""
    step = instr.steps.get(vals)
    if step is None:
        step = LoweredStep(instr, vals)
        instr.steps[vals] = step
    return step


class LoweredTable:
    """The compiled step tables of a whole program, slot-indexed."""

    __slots__ = ("source", "tids", "threads", "slot_of", "entry", "base_hash")

    def __init__(self, source: Program, tables: List[ThreadTable]) -> None:
        self.source = source
        self.tids: Tuple[Tid, ...] = source.tids
        self.threads: Tuple[List[Instr], ...] = tuple(t.instrs for t in tables)
        self.slot_of: Dict[Tid, int] = {tid: i for i, tid in enumerate(self.tids)}
        self.base_hash = hash(source)
        for slot, instrs in enumerate(self.threads):
            for ins in instrs:
                ins.slot = slot
        self.entry = LoweredProgram(
            self, tuple((t.entry_pc, ()) for t in tables)
        )


class LoweredProgram:
    """A program as dense thread states over a shared step table.

    Drop-in for :class:`~repro.lang.program.Program` everywhere the
    engine touches programs during exploration (``tids``/``pc``/
    ``command``/``is_terminated``/``terminated_threads``/``__str__``),
    with integer-tuple hashing/equality — the canonical configuration
    key therefore encodes table-index pcs, not ASTs.
    """

    __slots__ = ("table", "pcs", "_hash", "_steps", "_done")

    def __init__(self, table: LoweredTable, pcs: Tuple[ThreadState, ...]) -> None:
        self.table = table
        self.pcs = pcs
        self._hash = table.base_hash ^ hash(pcs)
        self._steps: Optional[Dict[Tid, LoweredStep]] = None
        self._done: Optional[bool] = None

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if type(other) is not LoweredProgram:
            return NotImplemented
        return self.pcs == other.pcs and (
            self.table is other.table or self.table.source == other.table.source
        )

    def __reduce__(self):
        # The table is a deterministic function of the source program;
        # ship (source, pcs) and re-lower on the other side.
        return (_restore_lowered, (self.table.source, self.pcs))

    # -- Program protocol ----------------------------------------------

    @property
    def tids(self) -> Tuple[Tid, ...]:
        return self.table.tids

    @property
    def threads(self) -> Tuple[Tuple[Tid, Com], ...]:
        """Compatibility view: concrete commands per thread (slow path)."""
        return tuple((tid, self.command(tid)) for tid in self.table.tids)

    def command(self, tid: Tid) -> Com:
        slot = self.table.slot_of[tid]
        pc, vals = self.pcs[slot]
        if pc == PC_TERM:
            return SKIP
        return concretize(self.table.threads[slot][pc].com, vals)

    def pc(self, tid: Tid) -> int:
        slot = self.table.slot_of[tid]
        pc = self.pcs[slot][0]
        if pc == PC_TERM:
            return PC_DONE
        return self.table.threads[slot][pc].label

    def is_terminated(self) -> bool:
        done = self._done
        if done is None:
            done = all(p[0] == PC_TERM for p in self.pcs)
            self._done = done
        return done

    def terminated_threads(self) -> Tuple[Tid, ...]:
        return tuple(
            tid for tid, (pc, _vals) in zip(self.table.tids, self.pcs)
            if pc == PC_TERM
        )

    def source_program(self) -> Program:
        """The equivalent legacy :class:`Program` (concretized)."""
        return Program(self.threads)

    def __str__(self) -> str:
        return " || ".join(f"[{t}] {c}" for t, c in self.threads)

    # -- lowered-machine operations ------------------------------------

    def update_slot(
        self, slot: int, pc: int, vals: Tuple[Value, ...]
    ) -> "LoweredProgram":
        """The program after thread slot ``slot`` steps to ``(pc, vals)``."""
        pcs = self.pcs
        return LoweredProgram(
            self.table, pcs[:slot] + ((pc, vals),) + pcs[slot + 1:]
        )

    def pending_steps(self) -> Dict[Tid, LoweredStep]:
        """The one pending step per live thread (computed once per node)."""
        steps = self._steps
        if steps is None:
            steps = {}
            table = self.table
            for slot, (pc, vals) in enumerate(self.pcs):
                if pc != PC_TERM:
                    steps[table.tids[slot]] = step_of(table.threads[slot][pc], vals)
            self._steps = steps
        return steps


def _restore_lowered(source: Program, pcs: Tuple[ThreadState, ...]) -> LoweredProgram:
    table = lowered_table(source)
    assert table is not None, "a lowered program must re-lower deterministically"
    return LoweredProgram(table, pcs)


# ======================================================================
# The gate
# ======================================================================

_UNSET = object()
_FORCE_DISABLED = 0


def lowering_enabled() -> bool:
    """Whether new explorations compile programs to step tables.

    ``REPRO_NO_LOWER=1`` (environment, mirroring ``REPRO_NO_COMPACT``)
    or an enclosing :func:`lowering_disabled` keeps the legacy walker.
    """
    return not _FORCE_DISABLED and not os.environ.get("REPRO_NO_LOWER")


@contextmanager
def lowering_disabled():
    """Force the legacy AST representation inside the ``with`` block.

    Used by the ``--check-lowering`` fuzz oracle and the benchmark A/B
    harness to replay the same exploration on both representations.
    """
    global _FORCE_DISABLED
    _FORCE_DISABLED += 1
    try:
        yield
    finally:
        _FORCE_DISABLED -= 1


def lowered_table(program: Program) -> Optional[LoweredTable]:
    """The step table of ``program``, compiled once and cached on it.

    ``None`` when some thread is not exactly lowerable (alias risk);
    the negative result is cached too.  Independent of the gate — the
    cache must survive ``lowering_disabled`` blocks unchanged.
    """
    cached = program.__dict__.get("_lowered", _UNSET)
    if cached is _UNSET:
        tables: List[ThreadTable] = []
        lowerable = True
        for _tid, com in program.threads:
            t = lower_thread(com)
            if t is None:
                lowerable = False
                break
            tables.append(t)
        cached = LoweredTable(program, tables) if lowerable else None
        object.__setattr__(program, "_lowered", cached)
    return cached


def maybe_lower(program):
    """``program`` compiled to its lowered entry state, when possible.

    Legacy programs pass through when the gate is off or the compiler
    refuses; lowered programs pass through unchanged.  This is the one
    entry point the engine calls (at ``explore``/``initial_configuration``
    time) — everything downstream dispatches on the program's type.
    """
    if type(program) is not Program or not lowering_enabled():
        return program
    table = lowered_table(program)
    return program if table is None else table.entry


__all__ = [
    "LoweredProgram",
    "LoweredStep",
    "LoweredTable",
    "lowered_table",
    "lowering_disabled",
    "lowering_enabled",
    "maybe_lower",
    "step_of",
]
