"""Strong release-acquire (SRA) — the Lahav et al. comparator model.

The paper's related work (§6) situates the RAR fragment against Lahav,
Giannarakis and Vafeiadis' *taming release-acquire* model [16], "a
stronger release-acquire model, where ``sb ∪ rf ∪ mo`` is required to be
acyclic" (the paper's own fragment only demands ``sb ∪ rf`` acyclic).
Having it pluggable makes the difference *observable*: 2+2W's weak
outcome builds an ``sb ∪ mo`` cycle — allowed under RA, forbidden under
SRA — while store buffering stays allowed under both (it needs a full SC
order to forbid).

Operationally, SRA is the RA event semantics with transitions into
states whose ``sb ∪ rf ∪ mo`` is cyclic pruned away.  This is adequate
for reachability: every relation involved only grows along a run, and
restrictions of acyclic relations are acyclic, so any SRA-consistent
complete execution is reachable through SRA-consistent prefixes
(the same prefix-restriction argument as Theorem 4.8).
"""

from __future__ import annotations

from typing import Hashable, Iterator, Mapping

from repro.c11.state import C11State, initial_state
from repro.engine.keys import cached_canonical_key
from repro.interp.memory_model import MemoryModel, MemoryTransition
from repro.interp.ra_model import RAMemoryModel
from repro.lang.actions import Value, Var
from repro.lang.program import Tid
from repro.lang.semantics import PendingStep


def sra_consistent(state: C11State) -> bool:
    """Whether ``sb ∪ rf ∪ mo`` is acyclic (the SRA strengthening).

    Sequence-backed states (DESIGN.md §11) answer over the interned
    immediate-successor graph — per-thread and per-variable chains plus
    the ``rf`` edges, O(n) edges total — which has a cycle exactly when
    the transitive union does.  Hand-assembled states materialise the
    union as before."""
    c = state.compact
    if c is not None:
        return c.union_acyclic()
    return (state.sb | state.rf | state.mo).is_acyclic()


class SRAMemoryModel(MemoryModel[C11State]):
    """RA filtered to SRA-consistent states."""

    name = "SRA"

    def __init__(self) -> None:
        self._ra = RAMemoryModel()

    def initial(self, init_values: Mapping[Var, Value]) -> C11State:
        return initial_state(init_values)

    def transitions(
        self, state: C11State, tid: Tid, step: PendingStep
    ) -> Iterator[MemoryTransition[C11State]]:
        for mt in self._ra.transitions(state, tid, step):
            if sra_consistent(mt.target):
                yield mt

    def transitions_list(self, state: C11State, tid: Tid, step: PendingStep):
        # Route subclasses that override `transitions` through it.
        if type(self) is not SRAMemoryModel:
            return super().transitions_list(state, tid, step)
        return [
            mt
            for mt in self._ra.transitions_list(state, tid, step)
            if sra_consistent(mt.target)
        ]

    def canonical_state_key(self, state: C11State) -> Hashable:
        return cached_canonical_key(state)

    def reads_from_state_key(self, state: C11State, live_tids) -> Hashable:
        """SRA keeps the canonical key under ``--equivalence reads-from``.

        The dead-write quotient is *unsound* here: ``sra_consistent``
        reads the full ``mo`` into the ``sb ∪ rf ∪ mo`` acyclicity
        check, and a later write placed mo-between two dead writes can
        close a cycle through one dead-dead order but not the other —
        the two states the quotient would merge admit different
        continuations.  Falling back to the exact key keeps the
        equivalence knob verdict-preserving for every model
        (DESIGN.md §13)."""
        return cached_canonical_key(state)

    def step_footprint(self, state: C11State, tid: Tid, step: PendingStep):
        """RA footprints remain exact under the SRA filter.

        ``sb ∪ rf ∪ mo`` only ever grows along a run and restrictions of
        acyclic relations are acyclic, so an intermediate state of a
        two-step sequence is never the cyclic one when the final state is
        acyclic — both orders of commuting RA steps are pruned (or kept)
        together, and the RA commutation argument carries over verbatim.
        """
        return self._ra.step_footprint(state, tid, step)
