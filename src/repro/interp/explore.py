"""Bounded exhaustive exploration of interpreted configurations.

This is the model-checking engine of the reproduction: a breadth-first
enumeration of every configuration ``(P, σ)`` reachable under a memory
model, deduplicated by canonical keys (program syntax × state up to tag
renaming).

Busy-wait loops make weak-memory state spaces infinite (every loop
iteration appends fresh read events), so exploration is *bounded* by the
number of program events per state (``max_events``); hitting the bound
is recorded (``truncated``) so results honestly distinguish "verified up
to bound" from "verified".  τ-cycles (e.g. ``while true do skip``) are
harmless: revisited configurations are not re-expanded.

Hooks:

* ``check_config(config)`` — return a list of violation messages for a
  configuration (safety properties, e.g. mutual exclusion);
* ``check_step(step)`` — likewise for transitions (used by the
  verification-calculus soundness experiments, which are per-transition
  statements).

Counterexample traces are reconstructed from the parent map.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Generic,
    Hashable,
    List,
    Mapping,
    Optional,
    Tuple,
    TypeVar,
)

from repro.interp.config import Configuration
from repro.interp.interpreter import InterpretedStep, configuration_successors
from repro.interp.memory_model import MemoryModel
from repro.lang.actions import Value, Var
from repro.lang.program import Program

S = TypeVar("S")

ConfigKey = Tuple[Program, Hashable]


@dataclass
class Violation(Generic[S]):
    """One failed check, with the configuration it failed at."""

    message: str
    config: Configuration[S]
    step: Optional[InterpretedStep[S]] = None

    def __str__(self) -> str:
        return self.message


@dataclass
class ExplorationResult(Generic[S]):
    """Everything a bounded exploration learned."""

    initial: Configuration[S]
    configs: int = 0
    transitions: int = 0
    terminal: List[Configuration[S]] = field(default_factory=list)
    violations: List[Violation[S]] = field(default_factory=list)
    truncated: bool = False
    #: canonical key -> representative configuration
    representatives: Dict[ConfigKey, Configuration[S]] = field(default_factory=dict)
    #: child key -> (parent key, step) for trace reconstruction
    parents: Dict[ConfigKey, Tuple[Optional[ConfigKey], Optional[InterpretedStep[S]]]] = field(
        default_factory=dict
    )

    @property
    def ok(self) -> bool:
        """No violation found (within the explored bound)."""
        return not self.violations

    def trace_to(self, key: ConfigKey) -> List[InterpretedStep[S]]:
        """The step sequence from the initial configuration to ``key``."""
        steps: List[InterpretedStep[S]] = []
        cursor: Optional[ConfigKey] = key
        while cursor is not None:
            parent, step = self.parents[cursor]
            if step is not None:
                steps.append(step)
            cursor = parent
        steps.reverse()
        return steps

    def counterexample(self) -> Optional[List[InterpretedStep[S]]]:
        """A trace to the first violation, if any."""
        if not self.violations:
            return None
        v = self.violations[0]
        key = _key_of(v.config, self._model, self._canonicalize)
        return self.trace_to(key)

    # Attached by `explore` so traces can be rebuilt.
    _model: Optional[MemoryModel[S]] = None
    _canonicalize: bool = True


def _state_size(state) -> int:
    """Number of program events in an event-based state (0 otherwise)."""
    events = getattr(state, "events", None)
    if events is None:
        return 0
    return sum(1 for e in events if not e.is_init)


def _key_of(
    config: Configuration[S], model: MemoryModel[S], canonicalize: bool = True
) -> ConfigKey:
    if canonicalize:
        return (config.program, model.canonical_state_key(config.state))
    return (config.program, config.state)


def explore(
    program: Program,
    init_values: Mapping[Var, Value],
    model: MemoryModel[S],
    max_events: Optional[int] = None,
    max_configs: Optional[int] = None,
    check_config: Optional[Callable[[Configuration[S]], List[str]]] = None,
    check_step: Optional[Callable[[InterpretedStep[S]], List[str]]] = None,
    stop_on_violation: bool = False,
    keep_representatives: bool = False,
    canonicalize: bool = True,
) -> ExplorationResult[S]:
    """Breadth-first bounded exploration from ``(P, σ_0)``.

    ``max_events`` bounds the number of program events per state — the
    loop-unrolling bound; ``max_configs`` is a hard safety net on the
    total number of distinct configurations.  ``canonicalize=False``
    disables tag-renaming deduplication (states then only merge when
    their tags coincide) — exists for the E10 ablation, which quantifies
    what canonicalisation buys.
    """
    initial = Configuration(program, model.initial(init_values))
    result: ExplorationResult[S] = ExplorationResult(initial)
    result._model = model
    result._canonicalize = canonicalize

    init_key = _key_of(initial, model, canonicalize)
    seen = {init_key}
    result.parents[init_key] = (None, None)
    queue = deque([(initial, init_key)])

    while queue:
        config, key = queue.popleft()
        result.configs += 1
        if keep_representatives:
            result.representatives[key] = config

        if check_config is not None:
            for message in check_config(config):
                result.violations.append(Violation(message, config))
                if stop_on_violation:
                    return result

        if config.is_terminated():
            result.terminal.append(config)
            continue

        at_bound = (
            max_events is not None and _state_size(config.state) >= max_events
        )

        expanded_any = False
        for step in configuration_successors(config, model):
            if at_bound and step.event is not None:
                result.truncated = True
                continue
            result.transitions += 1
            expanded_any = True

            if check_step is not None:
                for message in check_step(step):
                    result.violations.append(Violation(message, config, step))
                    if stop_on_violation:
                        return result

            child_key = _key_of(step.target, model, canonicalize)
            if child_key in seen:
                continue
            if max_configs is not None and len(seen) >= max_configs:
                result.truncated = True
                continue
            seen.add(child_key)
            result.parents[child_key] = (key, step)
            queue.append((step.target, child_key))

        if not expanded_any and not config.is_terminated():
            # Deadlocked or fully truncated configuration; nothing to do —
            # `truncated` already records the latter.
            pass

    return result


def reachable_states(
    program: Program,
    init_values: Mapping[Var, Value],
    model: MemoryModel[S],
    max_events: Optional[int] = None,
    max_configs: Optional[int] = None,
) -> Tuple[List[S], ExplorationResult[S]]:
    """All distinct memory states reachable (deduplicated by the model's
    canonical key), plus the exploration result."""
    states: Dict[Hashable, S] = {}

    def record(config: Configuration[S]) -> List[str]:
        states.setdefault(model.canonical_state_key(config.state), config.state)
        return []

    result = explore(
        program,
        init_values,
        model,
        max_events=max_events,
        max_configs=max_configs,
        check_config=record,
    )
    return list(states.values()), result
