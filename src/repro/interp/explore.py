"""Bounded exhaustive exploration of interpreted configurations.

Historical home of the model-checking loop, kept as the stable public
API: the implementation now lives in the engine subsystem
(:mod:`repro.engine`, DESIGN.md §5), which adds pluggable search
strategies (BFS / DFS / iterative deepening), a canonical-key
memoization layer and per-run engine statistics.  Everything importable
from here before the extraction is still importable from here:

* :func:`explore` — bounded exhaustive search from ``(P, σ_0)``;
* :func:`reachable_states` — distinct reachable memory states;
* :class:`ExplorationResult`, :class:`Violation` — what a run learned;
* ``ConfigKey``, ``_key_of``, ``_state_size`` — keying helpers.

See :mod:`repro.engine.core` for the engine's own documentation.
"""

from __future__ import annotations

from repro.engine.core import (
    ConfigKey,
    ExplorationResult,
    Violation,
    _key_of,
    _state_size,
    explore,
    reachable_states,
)
from repro.engine.por.deps import REDUCTIONS

__all__ = [
    "ConfigKey",
    "ExplorationResult",
    "REDUCTIONS",
    "Violation",
    "explore",
    "reachable_states",
]
