"""A sequentially consistent memory model (baseline comparator).

Not part of the paper's contribution, but indispensable for evaluating
it: litmus-test verdicts under the RA semantics are only meaningful
relative to what interleaving semantics allows (E7), and the paper's
framing — "conventional reasoning over SC memory" — is what the
verification calculus is measured against.

SC memory is the classic store: a mapping from variables to values.
Reads return the current value, writes overwrite it, updates do both
atomically.  States are tuples of sorted ``(var, value)`` pairs so they
hash and compare structurally.
"""

from __future__ import annotations

from typing import Hashable, Iterator, Mapping, Optional, Tuple

from repro.interp.memory_model import MemoryModel, MemoryTransition
from repro.lang.actions import ActionKind, Value, Var
from repro.lang.program import Tid
from repro.lang.semantics import PendingStep

SCState = Tuple[Tuple[Var, Value], ...]


def sc_store(mapping: Mapping[Var, Value]) -> SCState:
    """Build an SC state from a ``{var: value}`` mapping."""
    return tuple(sorted(mapping.items()))


def sc_lookup(state: SCState, var: Var) -> Value:
    """The current value of ``var``."""
    for x, v in state:
        if x == var:
            return v
    raise KeyError(var)


def sc_update(state: SCState, var: Var, value: Value) -> SCState:
    """The store after writing ``value`` to ``var``."""
    return tuple((x, value if x == var else v) for x, v in state)


class SCMemoryModel(MemoryModel[SCState]):
    """Sequential consistency: one global store, atomic accesses."""

    name = "SC"

    def initial(self, init_values: Mapping[Var, Value]) -> SCState:
        return sc_store(init_values)

    def transitions(
        self, state: SCState, tid: Tid, step: PendingStep
    ) -> Iterator[MemoryTransition[SCState]]:
        assert not step.is_silent
        assert step.var is not None
        kind = step.kind
        if kind in (ActionKind.RD, ActionKind.RDA):
            yield MemoryTransition(
                target=state, read_value=sc_lookup(state, step.var)
            )
        elif kind in (ActionKind.WR, ActionKind.WRR):
            assert step.wrval is not None
            yield MemoryTransition(
                target=sc_update(state, step.var, step.wrval)
            )
        elif kind is ActionKind.UPD:
            read = sc_lookup(state, step.var)
            yield MemoryTransition(
                target=sc_update(state, step.var, step.write_value(read)),
                read_value=read,
            )
        else:  # pragma: no cover - defensive
            raise ValueError(f"unexpected step kind {kind}")

    def transitions_list(self, state: SCState, tid: Tid, step: PendingStep):
        # Every SC step is deterministic: build the singleton directly.
        # Subclasses that override `transitions` (test doubles) must keep
        # being routed through it.
        if type(self) is not SCMemoryModel:
            return super().transitions_list(state, tid, step)
        kind = step.kind
        if kind in (ActionKind.RD, ActionKind.RDA):
            return [MemoryTransition(
                target=state, read_value=sc_lookup(state, step.var)
            )]
        if kind in (ActionKind.WR, ActionKind.WRR):
            return [MemoryTransition(
                target=sc_update(state, step.var, step.wrval)
            )]
        read = sc_lookup(state, step.var)
        return [MemoryTransition(
            target=sc_update(state, step.var, step.write_value(read)),
            read_value=read,
        )]

    def step_footprint(self, state: SCState, tid: Tid, step: PendingStep):
        """The textbook footprint: SC accesses touch exactly their cell.

        Reads return the cell's value and writes overwrite it, so two
        steps on distinct variables commute outright and two reads of the
        same variable commute too — the default same-location/≥-1-write
        relation is exact.
        """
        return super().step_footprint(state, tid, step)
