"""Canonical keys for C11 states and configurations.

Event tags are an artefact of the order in which an execution was
constructed: two interleavings that produce the same events, ``sb``,
``rf`` and ``mo`` differ only in tag numbering.  The semantics never
inspects tags (beyond freshness), so exploration deduplicates states
*up to tag renaming*.

The renaming is canonical because ``sb|_t`` is a strict total order for
every thread (SB-Total): an event is identified by ``(tid, position of
the event in its thread's sb order)``; initialising writes are identified
by their variable.  ``sb`` itself need not be part of the key — for every
state built by ``(D, sb) + e`` it is exactly the canonical shape
(initialisers first, per-thread total order), which the soundness checker
verifies on every reachable state.

Memoization (DESIGN.md §4): the event-identity map is cached on the
state object (``_canon_ids``) and *propagated incrementally* — appending
an event via ``(D, sb) + e`` places it sb-last in its thread, so the
child's identity map is the parent's plus one entry, and adding ``rf`` /
``mo`` edges changes no identities at all.  ``C11State.add_event`` /
``with_rf`` / ``insert_mo_after`` exploit exactly this, which removes
the dominant cost of keying from the exploration hot path.  The final
key is additionally memoized per object by
:func:`repro.engine.keys.cached_canonical_key`.
"""

from __future__ import annotations

from typing import Dict, Hashable, Tuple

from repro.c11.events import Event
from repro.c11.prestate import PreExecutionState
from repro.c11.state import C11State

EventKey = Tuple


def _event_ids(state) -> Dict[Event, EventKey]:
    """Map each event to its canonical identity (cached on the state)."""
    cached = getattr(state, "_canon_ids", None)
    if cached is not None:
        return cached
    ids: Dict[Event, EventKey] = {}
    tids = sorted({e.tid for e in state.events})
    for tid in tids:
        if tid == 0:
            for e in state.events:
                if e.is_init:
                    ids[e] = ("init", e.var)
            continue
        for pos, e in enumerate(_thread_events(state, tid)):
            ids[e] = ("e", tid, pos)
    try:
        state._canon_ids = ids
    except AttributeError:  # foreign state types without the slot
        pass
    return ids


def _thread_events(state, tid) -> Tuple[Event, ...]:
    if isinstance(state, (C11State, PreExecutionState)):
        return state.events_of(tid)
    # Foreign state types: order thread events by tag (tags increase
    # along sb for states built by +, so tag order is sb order).
    mine = sorted((e for e in state.events if e.tid == tid), key=lambda e: e.tag)
    return tuple(mine)


def canonical_key(state) -> Hashable:
    """A hashable key identifying the state up to tag renaming.

    Works for both :class:`C11State` (events + rf + mo) and
    :class:`PreExecutionState` (events only).

    ``rf`` and ``mo`` are encoded from their *sequence* forms
    (DESIGN.md §11): ``rf`` as the sorted identity pairs of its
    read→write map, ``mo`` as the sorted tuple of per-variable identity
    sequences — no O(n²) pair-set detour.  States without a compact
    representation derive the same sequences from their relations
    (``writes_on`` orders each variable's writes by mo-predecessor
    count), so compact-built and hand-assembled encodings of equal
    states coincide; like the identity scheme itself, this assumes
    MO-Valid states (``mo|_x`` total), which every keyed consumer
    — exploration, candidates, justifications — guarantees.
    """
    ids = _event_ids(state)

    def describe(e: Event) -> Tuple:
        return e.described(ids[e])

    events_part = tuple(sorted(describe(e) for e in state.events))
    if isinstance(state, PreExecutionState):
        return (events_part,)
    compact = state.compact if isinstance(state, C11State) else None
    if compact is not None:
        seq = compact.events_seq
        rf_part = tuple(
            sorted((ids[seq[w]], ids[seq[r]]) for r, w in compact.rf.items())
        )
        mo_part = tuple(
            sorted(
                tuple(ids[w] for w in var_seq)
                for var_seq in compact.mo.values()
            )
        )
    else:
        rf_part = tuple(sorted((ids[w], ids[r]) for w, r in state.rf.pairs))
        mo_part = tuple(
            sorted(
                tuple(ids[w] for w in state.writes_on(x))
                for x in state.variables()
            )
        )
    return (events_part, rf_part, mo_part)


def reads_from_key(state, live_tids) -> Hashable:
    """A key identifying the state up to *reads-from equivalence*.

    The observation abstraction of DESIGN.md §13: events, the ``rf``
    map and the covered-write mask are kept exactly, while the
    per-variable modification order is quotiented over its *dead*
    writes — writes that were never read, are not covered, are
    observable to no thread in ``live_tids``, and are not mo-maximal.
    Within each maximal contiguous run of dead writes the identities
    are sorted, so two states differing only in the relative ``mo`` of
    such writes collapse to one key.

    Soundness (for RA reachability with outcomes read off the mo-final
    write per variable, :func:`repro.litmus.registry.final_values`):
    observability only ever shrinks along a run, so a dead write stays
    dead; a dead write can never be read from nor serve as a write/RMW
    placement target (it is unobservable to every thread that still
    has steps); and permuting dead writes *within a run* changes no
    ``hb`` edge (``hb`` is a function of events, ``sb`` and ``rf``
    alone) and no observable set of any live thread — an encountered
    mo-successor supersedes the same writes either way.  The quotient
    is **not** sound under SRA, whose consistency check reads the full
    ``mo`` into an acyclicity test; SRA therefore keeps the canonical
    key (see :class:`repro.interp.sra_model.SRAMemoryModel`).

    ``live_tids`` are the threads that may still take a step — the
    explorer passes the domain of its pending-step map.  States without
    a compact form fall back to the canonical key (exact, merely finer).
    """
    if not isinstance(state, C11State):
        return canonical_key(state)
    compact = state.compact
    if compact is None:
        return canonical_key(state)
    ids = _event_ids(state)
    events_part = tuple(sorted(e.described(ids[e]) for e in state.events))
    seq = compact.events_seq
    rf_part = tuple(
        sorted((ids[seq[w]], ids[seq[r]]) for r, w in compact.rf.items())
    )
    covered_part = tuple(
        sorted(ids[e] for e in compact.events_from_mask(compact.covered))
    )
    read_mask = 0
    for w_i in compact.rf.values():
        read_mask |= 1 << w_i
    pinned = read_mask | compact.covered
    mo_part = []
    for var, var_seq in compact.mo.items():
        pseq = compact.mo_pos[var]
        obs = 0
        for tid in live_tids:
            if not compact.encountered_mask(tid):
                obs = -1  # thread saw nothing: everything observable
                break
            for _, w_i in compact._observable(tid, var):
                obs |= 1 << w_i
        alive = pinned | obs
        encoded = []
        run = []
        last = len(var_seq) - 1
        for k, w in enumerate(var_seq):
            if k != last and not (alive >> pseq[k]) & 1:
                run.append(ids[w])
                continue
            if run:
                encoded.append(("dead", tuple(sorted(run))))
                run = []
            encoded.append(ids[w])
        mo_part.append(tuple(encoded))
    return (events_part, rf_part, covered_part, tuple(sorted(mo_part)))
