"""Canonical keys for C11 states and configurations.

Event tags are an artefact of the order in which an execution was
constructed: two interleavings that produce the same events, ``sb``,
``rf`` and ``mo`` differ only in tag numbering.  The semantics never
inspects tags (beyond freshness), so exploration deduplicates states
*up to tag renaming*.

The renaming is canonical because ``sb|_t`` is a strict total order for
every thread (SB-Total): an event is identified by ``(tid, position of
the event in its thread's sb order)``; initialising writes are identified
by their variable.  ``sb`` itself need not be part of the key — for every
state built by ``(D, sb) + e`` it is exactly the canonical shape
(initialisers first, per-thread total order), which the soundness checker
verifies on every reachable state.

Memoization (DESIGN.md §4): the event-identity map is cached on the
state object (``_canon_ids``) and *propagated incrementally* — appending
an event via ``(D, sb) + e`` places it sb-last in its thread, so the
child's identity map is the parent's plus one entry, and adding ``rf`` /
``mo`` edges changes no identities at all.  ``C11State.add_event`` /
``with_rf`` / ``insert_mo_after`` exploit exactly this, which removes
the dominant cost of keying from the exploration hot path.  The final
key is additionally memoized per object by
:func:`repro.engine.keys.cached_canonical_key`.
"""

from __future__ import annotations

from typing import Dict, Hashable, Tuple

from repro.c11.events import Event
from repro.c11.prestate import PreExecutionState
from repro.c11.state import C11State

EventKey = Tuple


def _event_ids(state) -> Dict[Event, EventKey]:
    """Map each event to its canonical identity (cached on the state)."""
    cached = getattr(state, "_canon_ids", None)
    if cached is not None:
        return cached
    ids: Dict[Event, EventKey] = {}
    tids = sorted({e.tid for e in state.events})
    for tid in tids:
        if tid == 0:
            for e in state.events:
                if e.is_init:
                    ids[e] = ("init", e.var)
            continue
        for pos, e in enumerate(_thread_events(state, tid)):
            ids[e] = ("e", tid, pos)
    try:
        state._canon_ids = ids
    except AttributeError:  # foreign state types without the slot
        pass
    return ids


def _thread_events(state, tid) -> Tuple[Event, ...]:
    if isinstance(state, (C11State, PreExecutionState)):
        return state.events_of(tid)
    # Foreign state types: order thread events by tag (tags increase
    # along sb for states built by +, so tag order is sb order).
    mine = sorted((e for e in state.events if e.tid == tid), key=lambda e: e.tag)
    return tuple(mine)


def canonical_key(state) -> Hashable:
    """A hashable key identifying the state up to tag renaming.

    Works for both :class:`C11State` (events + rf + mo) and
    :class:`PreExecutionState` (events only).

    ``rf`` and ``mo`` are encoded from their *sequence* forms
    (DESIGN.md §11): ``rf`` as the sorted identity pairs of its
    read→write map, ``mo`` as the sorted tuple of per-variable identity
    sequences — no O(n²) pair-set detour.  States without a compact
    representation derive the same sequences from their relations
    (``writes_on`` orders each variable's writes by mo-predecessor
    count), so compact-built and hand-assembled encodings of equal
    states coincide; like the identity scheme itself, this assumes
    MO-Valid states (``mo|_x`` total), which every keyed consumer
    — exploration, candidates, justifications — guarantees.
    """
    ids = _event_ids(state)

    def describe(e: Event) -> Tuple:
        return e.described(ids[e])

    events_part = tuple(sorted(describe(e) for e in state.events))
    if isinstance(state, PreExecutionState):
        return (events_part,)
    compact = state.compact if isinstance(state, C11State) else None
    if compact is not None:
        seq = compact.events_seq
        rf_part = tuple(
            sorted((ids[seq[w]], ids[seq[r]]) for r, w in compact.rf.items())
        )
        mo_part = tuple(
            sorted(
                tuple(ids[w] for w in var_seq)
                for var_seq in compact.mo.values()
            )
        )
    else:
        rf_part = tuple(sorted((ids[w], ids[r]) for w, r in state.rf.pairs))
        mo_part = tuple(
            sorted(
                tuple(ids[w] for w in state.writes_on(x))
                for x in state.variables()
            )
        )
    return (events_part, rf_part, mo_part)
