"""The pluggable memory-model interface of the interpreted semantics.

Section 3.3 keeps the program semantics agnostic of the memory model: a
model only needs to say (a) what its initial state is and (b) which
transitions it allows for a given pending program step.  Three models
implement this interface:

* :class:`~repro.interp.ra_model.RAMemoryModel` — the paper's RA event
  semantics (Figure 3);
* :class:`~repro.interp.pe_model.PEMemoryModel` — pre-executions
  (Section 4.1), where reads return arbitrary values from a finite
  domain;
* :class:`~repro.interp.sc.SCMemoryModel` — a sequentially consistent
  store, the baseline that litmus tests are compared against.
"""

from __future__ import annotations

import abc
from typing import FrozenSet, Generic, Hashable, Iterator, Mapping, Optional, Tuple, TypeVar

from repro.c11.events import Event
from repro.lang.actions import Value, Var
from repro.lang.program import Tid
from repro.lang.semantics import PendingStep

S = TypeVar("S", bound=Hashable)

class ModelTimerStats:
    """Process-wide accumulator of time spent inside memory models.

    The same discipline as :data:`repro.c11.compact.ORDER_TIMER`: the
    lowered dispatch path (DESIGN.md §12) charges every
    ``transitions_list`` call here, the engine snapshots the delta
    around a run as ``EngineStats.time_model``, and footers subtract it
    from ``time_expand`` to expose what lowering actually removed — the
    *program-stepping* share of expansion.  Order derivations happen
    inside model calls, so ``time_orders ⊆ time_model ⊆ time_expand``
    on the lowered path; the legacy walker answers through generators
    and leaves this timer untouched.
    """

    __slots__ = ("seconds",)

    def __init__(self) -> None:
        self.seconds = 0.0

    def reset(self) -> None:
        self.seconds = 0.0

    def snapshot(self) -> float:
        return self.seconds

    def __repr__(self) -> str:
        return f"ModelTimerStats(seconds={self.seconds:.3f})"


MODEL_TIMER = ModelTimerStats()

#: Interned footprint pairs, keyed by ``(kind, var)``.  A step's default
#: footprint depends only on its action shape, and the reduction layer
#: recomputes footprints for every pending step at every node — sharing
#: the frozensets keeps that loop allocation-free (DESIGN.md §11).
_FOOTPRINTS: dict = {}
_EMPTY_VARS: FrozenSet["Var"] = frozenset()


class MemoryTransition(Generic[S]):
    """One memory-model answer to a pending program step.

    ``read_value`` fills the step's read hole (``None`` for pure writes);
    ``event`` is the event appended (``None`` for models without events,
    i.e. SC); ``observed`` is the paper's explicit observed write ``w``
    (``None`` for PE — the paper writes its first component as ``⊥``).

    A slotted plain class rather than a frozen dataclass: the models
    build one per transition on the exploration hot path, where the
    generated ``__init__``'s guarded ``object.__setattr__`` per field
    is measurable.
    """

    __slots__ = ("target", "read_value", "event", "observed")

    def __init__(
        self,
        target: S,
        read_value: Optional[Value] = None,
        event: Optional[Event] = None,
        observed: Optional[Event] = None,
    ) -> None:
        self.target = target
        self.read_value = read_value
        self.event = event
        self.observed = observed

    def __repr__(self) -> str:
        return (
            f"MemoryTransition(read_value={self.read_value!r}, "
            f"event={self.event!r}, observed={self.observed!r})"
        )


class MemoryModel(abc.ABC, Generic[S]):
    """A memory model pluggable into the interpreted semantics."""

    #: Human-readable name used in benchmark tables.
    name: str = "abstract"

    @abc.abstractmethod
    def initial(self, init_values: Mapping[Var, Value]) -> S:
        """The initial memory state for the given initialisation."""

    @abc.abstractmethod
    def transitions(
        self, state: S, tid: Tid, step: PendingStep
    ) -> Iterator[MemoryTransition[S]]:
        """All memory transitions realising ``step`` of thread ``tid``.

        For a silent step the model must allow exactly one transition
        that leaves the state unchanged (the first rule of Section 3.3);
        the default implementation of that case lives in the interpreter,
        so implementations only see non-silent steps.
        """

    def transitions_list(
        self, state: S, tid: Tid, step: PendingStep
    ) -> "list[MemoryTransition[S]]":
        """:meth:`transitions` as a materialised list.

        The lowered dispatch path (DESIGN.md §12) expands successors in
        batches; models override this to build the list directly and
        skip the generator frame per expansion.
        """
        return list(self.transitions(state, tid, step))

    def canonical_state_key(self, state: S) -> Hashable:
        """A key identifying ``state`` up to irrelevant naming.

        Used by the explorer to deduplicate configurations; the default
        is the state itself (adequate whenever states are already
        canonical, e.g. SC stores).
        """
        return state

    def reads_from_state_key(self, state: S, live_tids) -> Hashable:
        """A key identifying ``state`` up to *reads-from equivalence*.

        The coarser keying behind ``--equivalence reads-from``
        (DESIGN.md §13): states that agree on events, ``rf`` and the
        covered-write mask — but order unobservable dead writes
        differently in ``mo`` — may share a key.  ``live_tids`` are the
        threads that can still take a step.

        The default answers with the canonical key, which is exact for
        models without a modification order (SC, PE) and the documented
        sound fallback for models whose *consistency check* reads the
        full ``mo`` (SRA: ``sb ∪ rf ∪ mo`` acyclicity distinguishes
        dead-write orders, so the quotient would be unsound there).
        RA overrides this with the genuine quotient.
        """
        return self.canonical_state_key(state)

    def step_footprint(
        self, state: S, tid: Tid, step: PendingStep
    ) -> Tuple[FrozenSet[Var], FrozenSet[Var]]:
        """The shared locations ``step`` would read and write.

        The partial-order reduction layer (:mod:`repro.engine.por`)
        derives its dependency relation from this: two steps of distinct
        threads conflict when their footprints share a location with at
        least one write (an RMW reads *and* writes its location, so it
        conflicts with every access there).

        The default reads the pending step's action: silent steps touch
        nothing; reads/writes/updates touch exactly their variable.
        This is exact for any model whose same-state transitions depend
        only on same-location structure and on ``hb`` edges reaching the
        acting thread — which covers SC, RA and SRA (see the per-model
        overrides for the commutation arguments).  A model for which
        disjoint-location steps do *not* commute must override this with
        a wider footprint.  Results are interned per ``(kind, var)``:
        the footprints depend on nothing else, and the reduction layer
        asks for them in its innermost loop.
        """
        if step.is_silent or step.var is None:
            return (_EMPTY_VARS, _EMPTY_VARS)
        key = (step.kind, step.var)
        cached = _FOOTPRINTS.get(key)
        if cached is None:
            var = frozenset((step.var,))
            cached = (var if step.kind.is_read else _EMPTY_VARS,
                      var if step.kind.is_write else _EMPTY_VARS)
            _FOOTPRINTS[key] = cached
        return cached
