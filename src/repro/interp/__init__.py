"""The interpreted semantics (paper, Section 3.3) and state-space tools.

The paper gives two generic rules that combine the uninterpreted program
semantics with *any* memory model ``M``::

    P --τ-->t P'                      P --a-->t P'   σ --(w,e)-->M σ'
    ------------------                act(e) = a     tid(e) = t
    (P, σ) ==(τ)==>M (P, σ)           ---------------------------------
                                      (P, σ) ==(w,e)==>M (P', σ')

:mod:`repro.interp.memory_model` defines the pluggable interface;
instantiations are the paper's RA semantics, the pre-execution semantics
``PE``, and a sequentially-consistent baseline used for litmus-test
comparison.  :mod:`repro.interp.explore` performs bounded exhaustive
exploration of configurations ``(P, σ)`` with canonical deduplication
(:mod:`repro.interp.canon`); the search itself — strategies, memoized
keys, statistics, the parallel suite runner — lives in the engine
subsystem (:mod:`repro.engine`, DESIGN.md §5).
"""

from repro.interp.memory_model import MemoryModel, MemoryTransition
from repro.interp.ra_model import RAMemoryModel
from repro.interp.pe_model import PEMemoryModel
from repro.interp.sc import SCMemoryModel, SCState
from repro.interp.config import Configuration
from repro.interp.interpreter import configuration_successors, InterpretedStep
from repro.interp.explore import ExplorationResult, explore
from repro.interp.canon import canonical_key
from repro.interp.simulate import SimulationReport, sample_run, simulate

__all__ = [
    "MemoryModel",
    "MemoryTransition",
    "RAMemoryModel",
    "PEMemoryModel",
    "SCMemoryModel",
    "SCState",
    "Configuration",
    "configuration_successors",
    "InterpretedStep",
    "ExplorationResult",
    "explore",
    "canonical_key",
    "SimulationReport",
    "sample_run",
    "simulate",
]
