"""Configurations ``(P, σ)`` of the interpreted semantics."""

from __future__ import annotations

from typing import Generic, Hashable, TypeVar

from repro.lang.program import Program

S = TypeVar("S", bound=Hashable)


class Configuration(Generic[S]):
    """A program paired with a memory-model state (Section 3.3).

    Slotted plain class: the interpreter builds one per transition on
    the exploration hot path (see ``InterpretedStep``).  Equality and
    hashing stay structural over ``(program, state)`` — the lowering
    parity oracle deduplicates visited configuration pairs by value.
    """

    __slots__ = ("program", "state")

    def __init__(self, program: Program, state: S) -> None:
        self.program = program
        self.state = state

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        if type(other) is not Configuration:
            return NotImplemented
        return self.program == other.program and self.state == other.state

    def __hash__(self) -> int:
        return hash((self.program, self.state))

    def __repr__(self) -> str:
        return f"Configuration({self.program!r}, {self.state!r})"

    def pc(self, tid: int) -> int:
        """The auxiliary program counter ``P.pc_t`` of a thread."""
        return self.program.pc(tid)

    def is_terminated(self) -> bool:
        """Whether every thread has run to completion."""
        return self.program.is_terminated()

    def __str__(self) -> str:
        return f"({self.program} , {self.state!r})"
