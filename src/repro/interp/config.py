"""Configurations ``(P, σ)`` of the interpreted semantics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, Hashable, TypeVar

from repro.lang.program import Program

S = TypeVar("S", bound=Hashable)


@dataclass(frozen=True)
class Configuration(Generic[S]):
    """A program paired with a memory-model state (Section 3.3)."""

    program: Program
    state: S

    def pc(self, tid: int) -> int:
        """The auxiliary program counter ``P.pc_t`` of a thread."""
        return self.program.pc(tid)

    def is_terminated(self) -> bool:
        """Whether every thread has run to completion."""
        return self.program.is_terminated()

    def __str__(self) -> str:
        return f"({self.program} , {self.state!r})"
