"""The RA event semantics as a pluggable memory model.

Thin adapter from :func:`repro.c11.event_semantics.ra_successors` to the
:class:`~repro.interp.memory_model.MemoryModel` interface.  Read values
are supplied by the observed write (``rdval(e) = wrval(w)``) — the
on-the-fly validation at the heart of the paper.

Reads-from candidates are filtered through the compact representation's
``hb``/``eco`` bitmasks (DESIGN.md §11): ``ra_read_targets`` /
``ra_write_targets`` answer from per-variable ``mo`` sequences against
the acting thread's encountered mask, so resolving a read hole never
materialises a derived-order relation.
"""

from __future__ import annotations

from typing import Hashable, Iterator, Mapping

from repro.c11.event_semantics import ra_successors
from repro.c11.state import C11State, initial_state
from repro.engine.keys import cached_canonical_key, cached_reads_from_key
from repro.interp.compiled import LoweredStep
from repro.interp.memory_model import MemoryModel, MemoryTransition
from repro.lang.actions import Value, Var
from repro.lang.program import Tid
from repro.lang.semantics import PendingStep


class RAMemoryModel(MemoryModel[C11State]):
    """The paper's operational C11 model for the RAR fragment."""

    name = "RA"

    def initial(self, init_values: Mapping[Var, Value]) -> C11State:
        return initial_state(init_values)

    def transitions(
        self, state: C11State, tid: Tid, step: PendingStep
    ) -> Iterator[MemoryTransition[C11State]]:
        assert not step.is_silent, "silent steps are handled by the interpreter"
        assert step.var is not None
        # Computed updates (fetch-and-add) ship their write value as a
        # function of the value read; constants pass through unchanged.
        wrval = step.wrval if step.wrfun is None else step.wrfun
        for tr in ra_successors(state, tid, step.kind, step.var, wrval):
            read_value = tr.event.rdval if step.is_read_hole else None
            yield MemoryTransition(
                target=tr.target,
                read_value=read_value,
                event=tr.event,
                observed=tr.observed,
            )

    def transitions_list(self, state: C11State, tid: Tid, step: PendingStep):
        # Route subclasses that override `transitions` through it.
        if type(self) is not RAMemoryModel:
            return super().transitions_list(state, tid, step)
        # Memoize per state *object* and interned step: a silent program
        # step leaves the memory state untouched, so exploration asks
        # the same (state, tid, step) question from several program
        # points — the answer is a pure function of the three, and
        # lowered steps are interned so the key is two pointers.  (Keyed
        # by object identity, not state equality: structural hashing
        # would force the materialised pair-set relations.)
        memo = None
        if type(step) is LoweredStep:
            memo = state._ra_trans
            if memo is None:
                memo = {}
                state._ra_trans = memo
            cached = memo.get((tid, step))
            if cached is not None:
                return cached
        wrval = step.wrval if step.wrfun is None else step.wrfun
        if step.is_read_hole:
            out = [
                MemoryTransition(
                    target=tr.target,
                    read_value=tr.event.rdval,
                    event=tr.event,
                    observed=tr.observed,
                )
                for tr in ra_successors(state, tid, step.kind, step.var, wrval)
            ]
        else:
            out = [
                MemoryTransition(
                    target=tr.target, event=tr.event, observed=tr.observed
                )
                for tr in ra_successors(state, tid, step.kind, step.var, wrval)
            ]
        if memo is not None:
            memo[(tid, step)] = out
        return out

    def canonical_state_key(self, state: C11State) -> Hashable:
        return cached_canonical_key(state)

    def reads_from_state_key(self, state: C11State, live_tids) -> Hashable:
        """The genuine reads-from quotient (DESIGN.md §13).

        Sound for RA: dead writes (never read, uncovered, observable to
        no live thread, not mo-final) can never be read from or serve
        as write-placement targets again, and permuting them within a
        contiguous ``mo`` run changes no ``hb`` edge and no live
        thread's observable set — so the continuations coincide
        transition-for-transition, and terminal outcomes (read off the
        pinned mo-final write per variable) coincide too.
        """
        return cached_reads_from_key(state, live_tids)

    def step_footprint(self, state: C11State, tid: Tid, step: PendingStep):
        """Per-location footprints are exact for the RA event semantics.

        Steps of distinct threads on disjoint locations commute: a new
        event is placed ``sb``-after its own thread only, ``mo`` is
        per-location, a write's admissible ``mo`` positions depend on the
        ``hb`` edges *into its own thread* (which another thread's step
        cannot create in one transition — ``sw`` edges point at the
        reader), and a read's observable-write set on ``x`` is untouched
        by events on ``y ≠ x``.  Same-location conflicts (≥ 1 write, and
        the RA update reads *and* writes) are exactly the base relation.
        """
        return super().step_footprint(state, tid, step)
