"""Pre-executions as a pluggable memory model (paper, Section 4.1).

``→PE`` only ever appends events: reads may return *any* value (the
axioms discard bad guesses later, post hoc).  To keep exploration finite
the value domain for read holes must be finite; by default it is the set
of values the program can ever put into memory — initialisation values
plus every literal written anywhere — which is exactly the set of values
some justification could validate (RF-Complete forces read values to be
written values), so the restriction loses no justifiable pre-execution.

The hot path rides the sequence-backed pre-execution representation
(DESIGN.md §11): ``state.next_tag()`` is a carried counter and
``add_event`` extends per-thread tuples, so no ``sb`` pair set is built
until the justification search materialises one.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, Iterator, Mapping, Optional

from repro.c11.events import Event
from repro.c11.prestate import PreExecutionState, initial_prestate
from repro.engine.keys import cached_canonical_key
from repro.interp.memory_model import MemoryModel, MemoryTransition
from repro.lang.actions import Value, Var
from repro.lang.program import Program, Tid
from repro.lang.semantics import PendingStep
from repro.lang.syntax import Assign, Com, Faa, If, Labeled, Lit, Seq, Swap, While


class PEMemoryModel(MemoryModel[PreExecutionState]):
    """The pre-execution semantics with a finite read-value domain."""

    name = "PE"

    def __init__(self, read_values: FrozenSet[Value]):
        self.read_values = frozenset(read_values)

    @classmethod
    def for_program(
        cls, program: Program, init_values: Mapping[Var, Value]
    ) -> "PEMemoryModel":
        """The model whose read domain is every value the program can
        write (plus the initialisation values)."""
        values = set(init_values.values())
        for _tid, com in program.threads:
            values |= literals_written(com)
        return cls(frozenset(values))

    def initial(self, init_values: Mapping[Var, Value]) -> PreExecutionState:
        return initial_prestate(init_values)

    def transitions(
        self, state: PreExecutionState, tid: Tid, step: PendingStep
    ) -> Iterator[MemoryTransition[PreExecutionState]]:
        assert not step.is_silent
        tag = state.next_tag()
        if step.is_read_hole:
            for value in sorted(self.read_values):
                event = Event(tag, step.action(value), tid)
                yield MemoryTransition(
                    target=state.add_event(event),
                    read_value=value,
                    event=event,
                    observed=None,
                )
        else:
            event = Event(tag, step.action(), tid)
            yield MemoryTransition(
                target=state.add_event(event),
                read_value=None,
                event=event,
                observed=None,
            )

    def transitions_list(self, state: PreExecutionState, tid: Tid, step: PendingStep):
        # Route subclasses that override `transitions` through it.
        if type(self) is not PEMemoryModel:
            return super().transitions_list(state, tid, step)
        tag = state.next_tag()
        if step.is_read_hole:
            return [
                MemoryTransition(
                    target=state.add_event(event),
                    read_value=value,
                    event=event,
                )
                for value in sorted(self.read_values)
                for event in (Event(tag, step.action(value), tid),)
            ]
        event = Event(tag, step.action(), tid)
        return [MemoryTransition(target=state.add_event(event), event=event)]

    def canonical_state_key(self, state: PreExecutionState) -> Hashable:
        return cached_canonical_key(state)

    def step_footprint(self, state: PreExecutionState, tid: Tid, step: PendingStep):
        """Pre-execution steps of distinct threads commute *unconditionally*.

        ``→PE`` only appends an event ``sb``-after the acting thread's
        own events, and reads guess their value from a fixed domain
        without consulting the state — Proposition 4.1 verbatim.  The
        footprint is therefore empty even for same-location accesses:
        under PE the reduction may commute everything across threads.
        """
        empty = frozenset()
        return (empty, empty)


def literals_written(com: Com) -> FrozenSet[Value]:
    """Every value literal the command can write to shared memory.

    Conservative over-approximation: all literals appearing in assignment
    right-hand sides and swap arguments, plus results of closed
    arithmetic are *not* folded — a program computing ``x := y + 1``
    writes a value outside this set only if ``y + 1`` leaves the domain,
    in which case PE exploration (and hence justification) simply will
    not guess it; such programs should supply the domain explicitly.
    """
    out = set()

    def walk_exp(e) -> None:
        if isinstance(e, Lit):
            out.add(e.value)
        elif hasattr(e, "operand"):
            walk_exp(e.operand)
        elif hasattr(e, "left"):
            walk_exp(e.left)
            walk_exp(e.right)

    def walk(c: Com) -> None:
        if isinstance(c, Assign):
            walk_exp(c.exp)
        elif isinstance(c, Swap):
            out.add(c.value)
        elif isinstance(c, Faa):
            out.add(c.add)
        elif isinstance(c, Seq):
            walk(c.first)
            walk(c.second)
        elif isinstance(c, If):
            walk(c.then_branch)
            walk(c.else_branch)
        elif isinstance(c, While):
            walk(c.body)
        elif isinstance(c, Labeled):
            walk(c.body)

    walk(com)
    return frozenset(out)
