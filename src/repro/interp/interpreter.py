"""One step of the interpreted semantics (the two rules of Section 3.3).

Given a configuration ``(P, σ)`` and a memory model ``M``,
:func:`configuration_successors` yields every ``(P', σ')`` with
``(P, σ) ==(w,e)==>M (P', σ')``:

* a silent program step keeps the memory state (first rule);
* any other program step is paired with every memory transition the
  model allows for it (second rule) — in particular a read hole is
  resolved once per admissible value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, Iterator, Optional, TypeVar

from repro.c11.events import Event
from repro.interp.config import Configuration
from repro.interp.memory_model import MemoryModel
from repro.lang.actions import Value
from repro.lang.program import Tid, program_steps

S = TypeVar("S")


@dataclass(frozen=True)
class InterpretedStep(Generic[S]):
    """One transition of the interpreted semantics.

    ``event``/``observed`` are populated by event-based models (RA, PE);
    ``None`` for τ steps and for SC.
    """

    source: Configuration[S]
    tid: Tid
    target: Configuration[S]
    event: Optional[Event] = None
    observed: Optional[Event] = None
    read_value: Optional[Value] = None

    @property
    def is_silent(self) -> bool:
        return self.event is None and self.read_value is None and (
            self.source.state is self.target.state
            or self.source.state == self.target.state
        )


def thread_successors(
    config: Configuration[S], model: MemoryModel[S], tid: Tid, step
) -> Iterator[InterpretedStep[S]]:
    """All interpreted transitions realising one thread's pending step.

    The per-thread slice of :func:`configuration_successors`, exposed so
    the partial-order reduction layer (:mod:`repro.engine.por`) can
    expand a single selected thread without generating the memory
    transitions of threads it prunes.
    """
    program, state = config.program, config.state
    if step.is_silent:
        yield InterpretedStep(
            source=config,
            tid=tid,
            target=Configuration(program.update(tid, step.resume(None)), state),
        )
        return
    for mt in model.transitions(state, tid, step):
        next_program = program.update(tid, step.resume(mt.read_value))
        yield InterpretedStep(
            source=config,
            tid=tid,
            target=Configuration(next_program, mt.target),
            event=mt.event,
            observed=mt.observed,
            read_value=mt.read_value,
        )


def configuration_successors(
    config: Configuration[S], model: MemoryModel[S]
) -> Iterator[InterpretedStep[S]]:
    """All interpreted transitions from ``config`` under ``model``."""
    for tid, step in program_steps(config.program):
        yield from thread_successors(config, model, tid, step)


def initial_configuration(
    program, init_values, model: MemoryModel[S]
) -> Configuration[S]:
    """``(P, σ_0)`` for the given model."""
    return Configuration(program, model.initial(init_values))
