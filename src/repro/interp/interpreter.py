"""One step of the interpreted semantics (the two rules of Section 3.3).

Given a configuration ``(P, σ)`` and a memory model ``M``,
:func:`configuration_successors` yields every ``(P', σ')`` with
``(P, σ) ==(w,e)==>M (P', σ')``:

* a silent program step keeps the memory state (first rule);
* any other program step is paired with every memory transition the
  model allows for it (second rule) — in particular a read hole is
  resolved once per admissible value.

Two program representations dispatch here (DESIGN.md §12).  A legacy
:class:`~repro.lang.program.Program` is stepped by walking command ASTs
through ``resume``; a :class:`~repro.interp.compiled.LoweredProgram` is
stepped by indexing its compiled table with integer pcs — the successor
program is a tuple update ``pcs[slot] ← (next_pc, keep(vals, read))``,
no AST is touched, and the engine consumes the whole successor batch as
a list (:func:`successor_list`) instead of hopping through generator
frames.  Both paths produce byte-identical :class:`InterpretedStep`
streams; only the type of ``config.program`` differs.
"""

from __future__ import annotations

import time
from typing import Generic, Iterator, List, Optional, TypeVar

from repro.c11.events import Event
from repro.interp.compiled import LoweredProgram, maybe_lower
from repro.interp.config import Configuration
from repro.interp.memory_model import MODEL_TIMER, MemoryModel
from repro.lang.actions import Value
from repro.lang.program import Tid, program_steps

S = TypeVar("S")

_clock = time.perf_counter


class InterpretedStep(Generic[S]):
    """One transition of the interpreted semantics.

    ``event``/``observed`` are populated by event-based models (RA, PE);
    ``None`` for τ steps and for SC.  A slotted plain class rather than
    a frozen dataclass: the engine constructs one per transition on the
    hot path, where the generated ``__init__``'s guarded
    ``object.__setattr__`` per field is measurable.
    """

    __slots__ = ("source", "tid", "target", "event", "observed", "read_value")

    def __init__(
        self,
        source: Configuration[S],
        tid: Tid,
        target: Configuration[S],
        event: Optional[Event] = None,
        observed: Optional[Event] = None,
        read_value: Optional[Value] = None,
    ) -> None:
        self.source = source
        self.tid = tid
        self.target = target
        self.event = event
        self.observed = observed
        self.read_value = read_value

    def __repr__(self) -> str:
        return (
            f"InterpretedStep(tid={self.tid}, event={self.event!r}, "
            f"observed={self.observed!r}, read_value={self.read_value!r})"
        )

    @property
    def is_silent(self) -> bool:
        return self.event is None and self.read_value is None and (
            self.source.state is self.target.state
            or self.source.state == self.target.state
        )


def _lowered_thread_successors(
    config: Configuration[S], model: MemoryModel[S], tid: Tid, step,
    out: List[InterpretedStep[S]],
) -> None:
    """Append all transitions realising one lowered thread state's step."""
    program, state = config.program, config.state
    instr = step.instr
    slot = instr.slot
    vals = step.vals
    if step.is_silent:
        if instr.is_branch:
            if step.taken:
                pc2, keep = instr.then_pc, instr.then_keep
            else:
                pc2, keep = instr.else_pc, instr.else_keep
        else:
            pc2, keep = instr.next_pc, instr.keep
        nvals = tuple(vals[j] for j in keep) if keep else ()
        out.append(InterpretedStep(
            source=config,
            tid=tid,
            target=Configuration(program.update_slot(slot, pc2, nvals), state),
        ))
        return
    pc2 = instr.next_pc
    keep = instr.keep
    t0 = _clock()
    mts = model.transitions_list(state, tid, step)
    MODEL_TIMER.seconds += _clock() - t0
    for mt in mts:
        rv = mt.read_value
        nvals = tuple(rv if j < 0 else vals[j] for j in keep) if keep else ()
        out.append(InterpretedStep(
            source=config,
            tid=tid,
            target=Configuration(program.update_slot(slot, pc2, nvals), mt.target),
            event=mt.event,
            observed=mt.observed,
            read_value=rv,
        ))


def thread_successor_list(
    config: Configuration[S], model: MemoryModel[S], tid: Tid, step
) -> List[InterpretedStep[S]]:
    """All interpreted transitions realising one thread's pending step.

    The per-thread slice of :func:`successor_list`, exposed so the
    partial-order reduction layer (:mod:`repro.engine.por`) can expand a
    single selected thread without generating the memory transitions of
    threads it prunes.  Batched: the caller gets the whole list at once.
    """
    if type(config.program) is LoweredProgram:
        out: List[InterpretedStep[S]] = []
        _lowered_thread_successors(config, model, tid, step, out)
        return out
    return list(_legacy_thread_successors(config, model, tid, step))


def thread_successors(
    config: Configuration[S], model: MemoryModel[S], tid: Tid, step
) -> Iterator[InterpretedStep[S]]:
    """Iterator form of :func:`thread_successor_list` (compatibility)."""
    if type(config.program) is LoweredProgram:
        return iter(thread_successor_list(config, model, tid, step))
    return _legacy_thread_successors(config, model, tid, step)


def _legacy_thread_successors(
    config: Configuration[S], model: MemoryModel[S], tid: Tid, step
) -> Iterator[InterpretedStep[S]]:
    program, state = config.program, config.state
    if step.is_silent:
        yield InterpretedStep(
            source=config,
            tid=tid,
            target=Configuration(program.update(tid, step.resume(None)), state),
        )
        return
    for mt in model.transitions(state, tid, step):
        next_program = program.update(tid, step.resume(mt.read_value))
        yield InterpretedStep(
            source=config,
            tid=tid,
            target=Configuration(next_program, mt.target),
            event=mt.event,
            observed=mt.observed,
            read_value=mt.read_value,
        )


def successor_list(
    config: Configuration[S], model: MemoryModel[S]
) -> List[InterpretedStep[S]]:
    """All interpreted transitions from ``config``, as one batch.

    The engine's expansion loop consumes this list directly; the lowered
    path builds it without a single generator frame or AST node.
    """
    program = config.program
    if type(program) is LoweredProgram:
        out: List[InterpretedStep[S]] = []
        for tid, step in program.pending_steps().items():
            _lowered_thread_successors(config, model, tid, step, out)
        return out
    return [
        s
        for tid, step in program_steps(program)
        for s in _legacy_thread_successors(config, model, tid, step)
    ]


def configuration_successors(
    config: Configuration[S], model: MemoryModel[S]
) -> Iterator[InterpretedStep[S]]:
    """All interpreted transitions from ``config`` under ``model``."""
    return iter(successor_list(config, model))


def initial_configuration(
    program, init_values, model: MemoryModel[S]
) -> Configuration[S]:
    """``(P, σ_0)`` for the given model (lowered when the gate allows)."""
    return Configuration(maybe_lower(program), model.initial(init_values))
