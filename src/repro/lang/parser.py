"""A textual litmus-test format and its parser.

Programs in the paper are a few lines per thread; a textual format makes
test corpora and external tooling practical (herd7 has ``.litmus``, we
have this).  Example::

    C11 SB (store buffering)
    { x = 0; y = 0; r1 = 0; r2 = 0 }
    P1: x := 1; r1 := y
    P2: y := 1; r2 := x
    exists (r1 = 0 /\\ r2 = 0)

Syntax:

* **header** — ``C11 <name> (optional description)``
* **init block** — ``{ var = value; ... }``
* **threads** — ``P<tid>:`` followed by ``;``-separated statements:

  =====================  =========================================
  ``x := E``             relaxed store
  ``x :=R E``            releasing store
  ``x.swap(n)``          release-acquire RMW (the paper's ``swap``)
  ``r := x.swap(n)``     exchange keeping the old value in ``r``
  ``x.faa(k)``           fetch-and-add (write value = read value + k)
  ``r := x.faa(k)``      fetch-and-add keeping the fetch in ``r``
  ``skip``               no-op
  ``if (B) { .. } else { .. }``  conditional (``else`` optional)
  ``while (B) { .. }``   loop (empty body = busy wait)
  ``<n>: stmt``          program-location label
  =====================  =========================================

* **expressions** — values, ``x`` (relaxed load), ``x^A`` (acquiring
  load), ``!E``, ``E op E`` with ``== != < <= > >= + - * && ||``.
* **outcome** (optional) — ``exists (cond)`` or ``forbidden (cond)``
  over final variable values, with the same expression operators.

:func:`parse_litmus` returns a :class:`ParsedLitmus`;
:func:`parse_command` parses a bare statement sequence.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.lang.actions import Value, Var
from repro.lang.program import Program
from repro.lang.syntax import (
    Assign,
    BinOp,
    Com,
    Exp,
    Faa,
    If,
    Labeled,
    Lit,
    Load,
    Not,
    Seq,
    Skip,
    Swap,
    While,
)


class ParseError(ValueError):
    """Raised on malformed litmus text, with position information."""

    def __init__(self, message: str, token: Optional["Token"] = None) -> None:
        where = f" at line {token.line}: {token.text!r}" if token else ""
        super().__init__(message + where)


# ----------------------------------------------------------------------
# Lexer
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>[ \t]+)
  | (?P<comment>//[^\n]*|\#[^\n]*)
  | (?P<newline>\n)
  | (?P<num>-?\d+)
  | (?P<assignR>:=R\b)
  | (?P<assign>:=)
  | (?P<op>==|!=|<=|>=|&&|\|\||/\\|\\/|[-+*<>!;:{}()=^.,])
  | (?P<word>[A-Za-z_][A-Za-z_0-9]*)
    """,
    re.VERBOSE,
)


def tokenize(text: str) -> List[Token]:
    """Split litmus text into tokens (comments and whitespace dropped)."""
    tokens: List[Token] = []
    line = 1
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise ParseError(f"unexpected character {text[pos]!r} at line {line}")
        pos = m.end()
        kind = m.lastgroup
        if kind == "newline":
            line += 1
            tokens.append(Token("newline", "\n", line - 1))
        elif kind in ("ws", "comment"):
            continue
        else:
            tokens.append(Token(kind, m.group(), line))
    return tokens


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------

_BINOP_NAMES = {
    "==": "eq",
    "=": "eq",  # litmus outcome conditions traditionally write r1 = 0
    "!=": "ne",
    "<": "lt",
    "<=": "le",
    ">": "gt",
    ">=": "ge",
    "+": "add",
    "-": "sub",
    "*": "mul",
    "&&": "and",
    "||": "or",
    "/\\": "and",
    "\\/": "or",
}

#: binding strengths, loosest first (no precedence subtleties needed for
#: litmus-scale expressions; parenthesise when in doubt)
_PRECEDENCE: List[Tuple[str, ...]] = [
    ("||", "\\/"),
    ("&&", "/\\"),
    ("==", "=", "!=", "<", "<=", ">", ">="),
    ("+", "-"),
    ("*",),
]


class _Cursor:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = [t for t in tokens]
        self.i = 0

    def peek(self, skip_newlines: bool = False) -> Optional[Token]:
        j = self.i
        while j < len(self.tokens):
            t = self.tokens[j]
            if skip_newlines and t.kind == "newline":
                j += 1
                continue
            return t
        return None

    def next(self, skip_newlines: bool = False) -> Token:
        while self.i < len(self.tokens):
            t = self.tokens[self.i]
            self.i += 1
            if skip_newlines and t.kind == "newline":
                continue
            return t
        raise ParseError("unexpected end of input")

    def expect(self, text: str, skip_newlines: bool = True) -> Token:
        t = self.next(skip_newlines=skip_newlines)
        if t.text != text:
            raise ParseError(f"expected {text!r}", t)
        return t

    def accept(self, text: str, skip_newlines: bool = True) -> bool:
        t = self.peek(skip_newlines=skip_newlines)
        if t is not None and t.text == text:
            self.next(skip_newlines=skip_newlines)
            return True
        return False

    def at_end(self) -> bool:
        return self.peek(skip_newlines=True) is None


def _parse_exp(cur: _Cursor, level: int = 0) -> Exp:
    if level >= len(_PRECEDENCE):
        return _parse_atom(cur)
    left = _parse_exp(cur, level + 1)
    while True:
        t = cur.peek()
        if t is not None and t.text in _PRECEDENCE[level]:
            cur.next()
            right = _parse_exp(cur, level + 1)
            left = BinOp(_BINOP_NAMES[t.text], left, right)
        else:
            return left


def _parse_atom(cur: _Cursor) -> Exp:
    t = cur.next()
    if t.text == "(":
        e = _parse_exp(cur)
        cur.expect(")")
        return e
    if t.text == "!":
        return Not(_parse_atom(cur))
    if t.kind == "num":
        return Lit(int(t.text))
    if t.kind == "word":
        if t.text in ("true", "false"):
            return Lit(1 if t.text == "true" else 0)
        acquire = False
        nxt = cur.peek(skip_newlines=False)
        if nxt is not None and nxt.text == "^":
            cur.next(skip_newlines=False)
            ann = cur.next(skip_newlines=False)
            if ann.text != "A":
                raise ParseError("only the ^A load annotation exists", ann)
            acquire = True
        return Load(t.text, acquire=acquire)
    raise ParseError("expected an expression", t)


def _parse_block(cur: _Cursor) -> Com:
    cur.expect("{")
    if cur.accept("}"):
        return Skip()
    body = _parse_statements(cur, stop={"}"})
    cur.expect("}")
    return body


def _parse_statement(cur: _Cursor) -> Com:
    t = cur.peek(skip_newlines=True)
    if t is None:
        raise ParseError("expected a statement")

    # label: "<n>: stmt"
    if t.kind == "num" and int(t.text) >= 0:
        save = cur.i
        num = cur.next(skip_newlines=True)
        if cur.accept(":", skip_newlines=False):
            return Labeled(int(num.text), _parse_statement(cur))
        cur.i = save

    t = cur.next(skip_newlines=True)
    if t.text == "{":
        # statement grouping: binds a multi-statement body to one label
        if cur.accept("}"):
            return Skip()
        body = _parse_statements(cur, stop={"}"})
        cur.expect("}")
        return body
    if t.text == "skip":
        return Skip()
    if t.text == "if":
        cur.expect("(")
        guard = _parse_exp(cur)
        cur.expect(")")
        then_branch = _parse_block(cur)
        else_branch: Com = Skip()
        if cur.accept("else"):
            else_branch = _parse_block(cur)
        return If(guard, then_branch, else_branch)
    if t.text == "while":
        cur.expect("(")
        guard = _parse_exp(cur)
        cur.expect(")")
        body = _parse_block(cur)
        return While(guard, body)
    if t.kind == "word":
        nxt = cur.peek(skip_newlines=False)
        if nxt is not None and nxt.text == ".":
            cur.next(skip_newlines=False)
            return _parse_rmw_call(cur, t.text, reg=None)
        op = cur.next()
        if op.kind == "assignR":
            return Assign(t.text, _parse_exp(cur), release=True)
        if op.kind == "assign":
            # value-returning RMW:  r := x.swap(n)  /  r := x.faa(k)
            save = cur.i
            rhs = cur.peek(skip_newlines=True)
            if rhs is not None and rhs.kind == "word":
                word = cur.next(skip_newlines=True)
                if cur.accept(".", skip_newlines=False):
                    return _parse_rmw_call(cur, word.text, reg=t.text)
                cur.i = save
            return Assign(t.text, _parse_exp(cur), release=False)
        raise ParseError("expected ':=', ':=R' or '.swap(..)'", op)
    raise ParseError("expected a statement", t)


def _parse_rmw_call(cur: _Cursor, target: str, reg: Optional[str]) -> Com:
    """Parse ``swap(n)`` / ``faa(k)`` after ``<target>.`` was consumed."""
    op = cur.next(skip_newlines=False)
    if op.text not in ("swap", "faa"):
        raise ParseError("expected 'swap(..)' or 'faa(..)' after '.'", op)
    cur.expect("(")
    val = cur.next()
    if val.kind != "num":
        raise ParseError(f"{op.text} takes a value literal", val)
    cur.expect(")")
    if op.text == "swap":
        return Swap(target, int(val.text), reg)
    return Faa(target, int(val.text), reg)


def _parse_statements(cur: _Cursor, stop: set) -> Com:
    parts: List[Com] = [_parse_statement(cur)]
    while True:
        t = cur.peek(skip_newlines=True)
        if t is None or t.text in stop:
            break
        if t.kind == "newline":
            cur.next()
            continue
        if cur.accept(";"):
            t2 = cur.peek(skip_newlines=True)
            if t2 is None or t2.text in stop:
                break
            parts.append(_parse_statement(cur))
            continue
        break
    com = parts[-1]
    for p in reversed(parts[:-1]):
        com = Seq(p, com)
    return com


def parse_command(text: str) -> Com:
    """Parse a bare ``;``-separated statement sequence."""
    cur = _Cursor(tokenize(text))
    com = _parse_statements(cur, stop=set())
    if not cur.at_end():
        raise ParseError("trailing input", cur.peek(skip_newlines=True))
    return com


def parse_expression(text: str) -> Exp:
    """Parse a bare expression."""
    cur = _Cursor(tokenize(text))
    e = _parse_exp(cur)
    if not cur.at_end():
        raise ParseError("trailing input", cur.peek(skip_newlines=True))
    return e


# ----------------------------------------------------------------------
# Whole litmus files
# ----------------------------------------------------------------------


@dataclass
class ParsedLitmus:
    """A parsed litmus file."""

    name: str
    description: str
    program: Program
    init: Dict[Var, Value]
    #: "exists" (outcome expected reachable) / "forbidden" / None
    outcome_mode: Optional[str] = None
    outcome_exp: Optional[Exp] = None

    def outcome(self, values: Dict[Var, Value]) -> bool:
        """Evaluate the outcome condition on final variable values."""
        if self.outcome_exp is None:
            raise ValueError("litmus test has no outcome condition")
        return bool(_eval_condition(self.outcome_exp, values))


def _eval_condition(e: Exp, values: Dict[Var, Value]) -> Value:
    from repro.lang.syntax import BINOPS

    if isinstance(e, Lit):
        return e.value
    if isinstance(e, Load):
        return values[e.var]
    if isinstance(e, Not):
        return 0 if _eval_condition(e.operand, values) else 1
    if isinstance(e, BinOp):
        return BINOPS[e.op](
            _eval_condition(e.left, values), _eval_condition(e.right, values)
        )
    raise TypeError(f"not an expression: {e!r}")


_THREAD_RE = re.compile(r"^P(\d+)$")


def parse_litmus(text: str) -> ParsedLitmus:
    """Parse a complete litmus file (header, init, threads, outcome)."""
    cur = _Cursor(tokenize(text))

    cur.expect("C11")
    name_tok = cur.next(skip_newlines=False)
    if name_tok.kind not in ("word", "num"):
        raise ParseError("expected a test name", name_tok)
    name = name_tok.text
    description = ""
    if cur.accept("(", skip_newlines=False):
        words = []
        while True:
            t = cur.next()
            if t.text == ")":
                break
            words.append(t.text)
        description = " ".join(words)

    # init block
    init: Dict[Var, Value] = {}
    cur.expect("{")
    while not cur.accept("}"):
        var_tok = cur.next()
        if var_tok.kind != "word":
            raise ParseError("expected a variable in the init block", var_tok)
        cur.expect("=")
        val_tok = cur.next()
        if val_tok.kind != "num":
            raise ParseError("expected a value in the init block", val_tok)
        init[var_tok.text] = int(val_tok.text)
        cur.accept(";")

    # threads
    threads: Dict[int, Com] = {}
    while True:
        t = cur.peek(skip_newlines=True)
        if t is None or t.text in ("exists", "forbidden"):
            break
        head = cur.next(skip_newlines=True)
        m = _THREAD_RE.match(head.text)
        if not m:
            raise ParseError("expected a thread header 'P<tid>:'", head)
        tid = int(m.group(1))
        if tid in threads:
            raise ParseError(f"duplicate thread P{tid}", head)
        cur.expect(":", skip_newlines=False)
        threads[tid] = _parse_statements(
            cur, stop={"exists", "forbidden"} | {f"P{i}" for i in range(100)}
        )
    if not threads:
        raise ParseError("litmus file declares no threads")

    # outcome
    outcome_mode: Optional[str] = None
    outcome_exp: Optional[Exp] = None
    t = cur.peek(skip_newlines=True)
    if t is not None:
        mode = cur.next(skip_newlines=True)
        outcome_mode = mode.text
        cur.expect("(")
        outcome_exp = _parse_exp(cur)
        cur.expect(")")
    if not cur.at_end():
        raise ParseError("trailing input", cur.peek(skip_newlines=True))

    return ParsedLitmus(
        name=name,
        description=description,
        program=Program.of(threads),
        init=init,
        outcome_mode=outcome_mode,
        outcome_exp=outcome_exp,
    )


def run_parsed_litmus(parsed: ParsedLitmus, model=None, max_events=None, strategy="bfs",
                      reduction="none", equivalence="shasha-snir", shards=1,
                      spill_dir=None, spill_max_entries=None, spill_max_bytes=None,
                      checkpoint=None, checkpoint_every=None, resume=None):
    """Convenience: decide the parsed test's outcome reachability.

    ``shards``/``spill_*`` select the sharded search and the spillable
    visited set (DESIGN.md §15) — the ``repro run --shards/--spill``
    path lands here — and ``checkpoint``/``checkpoint_every``/``resume``
    thread the checkpoint surface (DESIGN.md §16) through to the engine
    for ``repro run --checkpoint/--resume``.
    """
    from repro.interp.explore import explore
    from repro.interp.ra_model import RAMemoryModel
    from repro.litmus.registry import final_values

    model = model if model is not None else RAMemoryModel()
    result = explore(
        parsed.program, parsed.init, model, max_events=max_events,
        strategy=strategy, reduction=reduction, equivalence=equivalence,
        shards=shards, spill_dir=spill_dir, spill_max_entries=spill_max_entries,
        spill_max_bytes=spill_max_bytes, checkpoint=checkpoint,
        checkpoint_every=checkpoint_every, resume=resume,
    )
    # Files without an exists/forbidden clause (e.g. fuzz-corpus
    # reproducers) are pure explorations: nothing to be reachable.
    reachable = parsed.outcome_exp is not None and any(
        parsed.outcome(final_values(c)) for c in result.terminal
    )
    return reachable, result
