"""The uninterpreted operational semantics of commands (Figure 2).

A *step* of a command either is silent (``τ``), writes a concrete value,
or reads a value that is not yet determined — Proposition 2.2: the
uninterpreted semantics admits *every* value at a read.  We represent the
read case with a *hole*: a :class:`PendingStep` carries a continuation
``resume`` mapping the value eventually read to the successor command.
The interpreted semantics (Section 3.3) closes the hole by enumerating
the writes observable under the chosen memory model.

:func:`command_steps` enumerates all steps of a command; thread
interleaving lives in :mod:`repro.lang.program`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional

from repro.lang.actions import Action, ActionKind, TAU, Value, Var, rd, rda, upd, wr, wrr
from repro.lang.syntax import (
    Assign,
    Com,
    Faa,
    If,
    Labeled,
    Lit,
    Seq,
    Skip,
    Swap,
    While,
    eval_closed,
    leftmost_load,
    substitute_leftmost,
    truthy,
)

SKIP = Skip()


@dataclass
class PendingStep:
    """One potential step of a command.

    ``kind`` distinguishes the step:

    * ``TAU`` — silent; ``resume(None)`` is the successor command.
    * ``WR``/``WRR`` — a concrete write of ``wrval`` to ``var``;
      ``resume(None)`` is the successor.
    * ``RD``/``RDA`` — a read of ``var`` whose value is a hole;
      ``resume(n)`` is the successor command after reading ``n``.
    * ``UPD`` — an RMW: writes :meth:`write_value` to ``var``, reads a
      hole; ``resume(m)`` is the successor (the bare ``swap`` discards
      the value read; ``r := x.swap(n)`` / ``r := x.faa(k)`` resume into
      the register store of ``m``).

    For a ``swap`` the write value is the constant ``wrval``; for a
    ``faa`` it *depends on the value read* and is carried as the
    function ``wrfun`` (``m ↦ m + k``).  Memory models must therefore
    resolve the write value through :meth:`write_value` once the read
    hole is filled, never through ``wrval`` directly on updates.
    """

    kind: ActionKind
    var: Optional[Var] = None
    wrval: Optional[Value] = None
    resume: Callable[[Optional[Value]], Com] = field(default=lambda _v: SKIP)
    #: For updates only: write value as a function of the value read
    #: (``None`` means the constant ``wrval`` — the paper's ``swap``).
    wrfun: Optional[Callable[[Value], Value]] = None

    @property
    def is_read_hole(self) -> bool:
        """Whether the step's action needs a read value to be filled in."""
        return self.kind.is_read

    @property
    def is_silent(self) -> bool:
        return self.kind.is_silent

    def write_value(self, read_value: Optional[Value] = None) -> Value:
        """The value this step writes, given the value its hole reads.

        Plain writes ignore ``read_value``; constant updates (``swap``)
        do too; computed updates (``faa``) require it.
        """
        if self.wrfun is not None:
            if read_value is None:
                raise ValueError("computed update needs its read value")
            return self.wrfun(read_value)
        assert self.wrval is not None
        return self.wrval

    def action(self, read_value: Optional[Value] = None) -> Action:
        """The action this step performs, given a value for the hole.

        For silent steps the action is ``τ``; for writes the action is
        fully determined; for reads/updates ``read_value`` must be given.
        """
        if self.kind is ActionKind.TAU:
            return TAU
        assert self.var is not None
        if self.kind is ActionKind.WR:
            assert self.wrval is not None
            return wr(self.var, self.wrval)
        if self.kind is ActionKind.WRR:
            assert self.wrval is not None
            return wrr(self.var, self.wrval)
        if read_value is None:
            raise ValueError("read step needs a value for its hole")
        if self.kind is ActionKind.RD:
            return rd(self.var, read_value)
        if self.kind is ActionKind.RDA:
            return rda(self.var, read_value)
        assert self.kind is ActionKind.UPD
        return upd(self.var, read_value, self.write_value(read_value))


def _silent(successor: Com) -> PendingStep:
    return PendingStep(ActionKind.TAU, resume=lambda _v, _c=successor: _c)


def _rmw_resume(reg: Optional[Var]) -> Callable[[Optional[Value]], Com]:
    """Continuation of an RMW: done, or store the value read to ``reg``.

    The register store is an ordinary relaxed write event of the same
    thread — two events total, exactly what ``r = exchange(&x, n)``
    compiles to; only the update itself is atomic.
    """
    if reg is None:
        return lambda _v: SKIP

    def resume(value: Optional[Value], _reg=reg) -> Com:
        assert value is not None
        return Assign(_reg, Lit(value))

    return resume


def _exp_step(exp, rebuild: Callable[[object], Com]) -> PendingStep:
    """An expression-evaluation step (Figure 1) embedded into a command.

    ``rebuild`` places the partially evaluated expression back into its
    syntactic context (assignment right-hand side, guard, ...).
    """
    load = leftmost_load(exp)
    assert load is not None, "caller guarantees fv(exp) nonempty"
    kind = ActionKind.RDA if load.acquire else ActionKind.RD

    def resume(value: Optional[Value], _exp=exp, _rebuild=rebuild) -> Com:
        assert value is not None
        _hit, new_exp = substitute_leftmost(_exp, value)
        return _rebuild(new_exp)

    return PendingStep(kind, var=load.var, resume=resume)


def command_steps(com: Com) -> Iterator[PendingStep]:
    """All steps of ``com`` under the uninterpreted semantics (Figure 2).

    The semantics is *deterministic up to the read hole*: every command
    yields at most one step here; nondeterminism enters through thread
    interleaving and through the values filling read holes.
    """
    if isinstance(com, Skip):
        return  # terminated: no steps

    if isinstance(com, Assign):
        if com.exp.free_vars():
            yield _exp_step(
                com.exp,
                lambda e, _c=com: Assign(_c.var, e, _c.release),
            )
        else:
            kind = ActionKind.WRR if com.release else ActionKind.WR
            yield PendingStep(
                kind,
                var=com.var,
                wrval=eval_closed(com.exp),
                resume=lambda _v: SKIP,
            )
        return

    if isinstance(com, Swap):
        yield PendingStep(
            ActionKind.UPD,
            var=com.var,
            wrval=com.value,
            resume=_rmw_resume(com.reg),
        )
        return

    if isinstance(com, Faa):
        yield PendingStep(
            ActionKind.UPD,
            var=com.var,
            wrfun=lambda m, _k=com.add: m + _k,
            resume=_rmw_resume(com.reg),
        )
        return

    if isinstance(com, Seq):
        if isinstance(com.first, Skip):
            yield _silent(com.second)
            return
        for step in command_steps(com.first):
            old_resume = step.resume
            yield PendingStep(
                step.kind,
                var=step.var,
                wrval=step.wrval,
                wrfun=step.wrfun,
                resume=lambda v, _r=old_resume, _s=com.second: _sequence(_r(v), _s),
            )
        return

    if isinstance(com, If):
        if com.guard.free_vars():
            yield _exp_step(
                com.guard,
                lambda e, _c=com: If(e, _c.then_branch, _c.else_branch),
            )
        elif truthy(eval_closed(com.guard)):
            yield _silent(com.then_branch)
        else:
            yield _silent(com.else_branch)
        return

    if isinstance(com, While):
        test = com.test
        if test.free_vars():
            yield _exp_step(
                test,
                lambda e, _c=com: While(_c.guard, _c.body, current=e),
            )
        elif truthy(eval_closed(test)):
            # Unfold with the *pristine* guard so the next iteration
            # re-reads its shared variables (Figure 2's unfolding).
            yield _silent(_sequence(com.body, While(com.guard, com.body)))
        else:
            yield _silent(SKIP)
        return

    if isinstance(com, Labeled):
        if isinstance(com.body, Skip):
            # A pure control point (e.g. Peterson's critical section):
            # one silent step retires the label.
            yield _silent(SKIP)
            return
        for step in command_steps(com.body):
            old_resume = step.resume
            yield PendingStep(
                step.kind,
                var=step.var,
                wrval=step.wrval,
                wrfun=step.wrfun,
                resume=lambda v, _r=old_resume, _pc=com.pc: _relabel(_pc, _r(v)),
            )
        return

    raise TypeError(f"not a command: {com!r}")


def _sequence(first: Com, second: Com) -> Com:
    """Smart ``Seq`` constructor: drop a terminated first component."""
    if isinstance(first, Skip):
        return second
    return Seq(first, second)


def _relabel(pc: int, body: Com) -> Com:
    """Re-wrap a stepped command with its label.

    A terminated body retires the label; a body that is *itself* a
    labelled statement (a branch target, e.g. Dekker's critical-section
    label inside a labelled conditional) sheds the outer label — the
    inner one takes over, keeping nesting depth bounded.
    """
    if isinstance(body, Skip):
        return SKIP
    if isinstance(body, Labeled):
        return body
    return Labeled(pc, body)


def is_terminated(com: Com) -> bool:
    """Whether the command has no steps left (it is ``skip``)."""
    return isinstance(com, Skip)
