"""A small fluent builder for programs in the command language.

The paper's examples are all short assignment/loop programs; this module
lets them be written close to their source notation::

    # thread 1 of the message-passing example (Example 5.7)
    seq(
        assign("d", 5),                   # d := 5
        assign("f", 1, release=True),     # f :=^R 1
    )

    # Peterson's busy-wait guard:  while (flag2 = true)^A ∧ turn = 2 do skip
    while_(and_(eq(acq("flag2"), 1), eq(var("turn"), 2)), skip())
"""

from __future__ import annotations

from typing import Union

from repro.lang.actions import Value, Var
from repro.lang.syntax import (
    Assign,
    BinOp,
    Com,
    Exp,
    Faa,
    If,
    Labeled,
    Lit,
    Load,
    Not,
    Seq,
    Skip,
    Swap,
    While,
)

ExpLike = Union[Exp, Value]


def _exp(e: ExpLike) -> Exp:
    """Coerce a bare value to a literal expression."""
    if isinstance(e, Exp):
        return e
    if isinstance(e, bool):
        return Lit(1 if e else 0)
    if isinstance(e, int):
        return Lit(e)
    raise TypeError(f"not an expression or value: {e!r}")


# -- expressions -------------------------------------------------------


def lit(n: Value) -> Lit:
    """Literal value ``n``."""
    return Lit(n)


def var(x: Var) -> Load:
    """Relaxed load of shared variable ``x``."""
    return Load(x, acquire=False)


def acq(x: Var) -> Load:
    """Acquiring load ``x^A``."""
    return Load(x, acquire=True)


#: Alias used by case studies that read flag variables.
flagvar = var


def neg(e: ExpLike) -> Not:
    """Logical negation."""
    return Not(_exp(e))


def _bin(op: str, a: ExpLike, b: ExpLike) -> BinOp:
    return BinOp(op, _exp(a), _exp(b))


def and_(a: ExpLike, b: ExpLike) -> BinOp:
    return _bin("and", a, b)


def or_(a: ExpLike, b: ExpLike) -> BinOp:
    return _bin("or", a, b)


def eq(a: ExpLike, b: ExpLike) -> BinOp:
    return _bin("eq", a, b)


def ne(a: ExpLike, b: ExpLike) -> BinOp:
    return _bin("ne", a, b)


def lt(a: ExpLike, b: ExpLike) -> BinOp:
    return _bin("lt", a, b)


def add(a: ExpLike, b: ExpLike) -> BinOp:
    return _bin("add", a, b)


# -- commands ----------------------------------------------------------


def skip() -> Skip:
    """``skip``."""
    return Skip()


def assign(x: Var, e: ExpLike, release: bool = False) -> Assign:
    """``x := E`` or, with ``release=True``, ``x :=^R E``."""
    return Assign(x, _exp(e), release)


def store_rel(x: Var, e: ExpLike) -> Assign:
    """``x :=^R E`` — releasing store (sugar for ``assign(..., release=True)``)."""
    return Assign(x, _exp(e), release=True)


def swap(x: Var, n: Value, reg: Union[Var, None] = None) -> Swap:
    """``x.swap(n)^RA`` — or ``reg := x.swap(n)^RA`` keeping the old value."""
    return Swap(x, n, reg)


def faa(x: Var, k: Value, reg: Union[Var, None] = None) -> Faa:
    """``x.faa(k)^RA`` — or ``reg := x.faa(k)^RA`` keeping the fetch."""
    return Faa(x, k, reg)


def seq(*commands: Com) -> Com:
    """``C1; C2; ...`` — right-nested sequential composition."""
    if not commands:
        return Skip()
    result = commands[-1]
    for c in reversed(commands[:-1]):
        result = Seq(c, result)
    return result


def if_(guard: ExpLike, then_branch: Com, else_branch: Com = None) -> If:
    """``if B then C1 else C2`` (``else`` defaults to ``skip``)."""
    return If(_exp(guard), then_branch, else_branch if else_branch is not None else Skip())


def while_(guard: ExpLike, body: Com = None) -> While:
    """``while B do C`` (body defaults to ``skip`` — a busy wait)."""
    return While(_exp(guard), body if body is not None else Skip())


def await_(guard: ExpLike) -> While:
    """Busy-wait until ``guard`` becomes false... inverted: spin *while*
    the *negation* holds.  ``await_(B)`` spins while ``!B`` — the shape of
    ``while !f^A do skip`` in Example 5.7 is ``while_(neg(acq("f")))``;
    ``await_(acq("f"))`` is the same thing written positively."""
    return While(Not(_exp(guard)), Skip())


def label(pc: int, body: Com = None) -> Labeled:
    """Attach program-location label ``pc`` (body defaults to ``skip``)."""
    return Labeled(pc, body if body is not None else Skip())


def loop_forever(body: Com) -> While:
    """``while true do C`` — the implicit outer loop of reactive threads
    (Peterson's threads retry their protocol forever; see Appendix D's
    transition ``pc = 6 → pc = 2``)."""
    return While(Lit(1), body)
