"""Memory actions.

The uninterpreted semantics of commands generates actions from the set
(paper, Section 2.2)::

    Act = ⋃ { rd(x,n), rdA(x,n), wr(x,n), wrR(x,n), updRA(x,m,n) }

plus the silent action ``τ``.  Synchronisation annotations are carried by
the *kind* of the action: ``rdA`` is an acquiring read, ``wrR`` a
releasing write, and ``updRA`` a release-acquire update (the paper's
``swap`` only comes in the RA flavour).

Actions are pure data — events (``repro.c11.events``) pair an action with
a tag and a thread identifier.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

Value = int
Var = str


class ActionKind(enum.Enum):
    """The five action flavours of the RAR fragment, plus ``τ``."""

    RD = "rd"        # relaxed read
    RDA = "rdA"      # acquiring read
    WR = "wr"        # relaxed write
    WRR = "wrR"      # releasing write
    UPD = "updRA"    # release-acquire update (read-modify-write)
    TAU = "tau"      # silent step (guard resolution, skip elimination)

    @property
    def is_read(self) -> bool:
        return self in (ActionKind.RD, ActionKind.RDA, ActionKind.UPD)

    @property
    def is_write(self) -> bool:
        return self in (ActionKind.WR, ActionKind.WRR, ActionKind.UPD)

    @property
    def is_update(self) -> bool:
        return self is ActionKind.UPD

    @property
    def is_acquire(self) -> bool:
        """Acquiring actions synchronise as the target of an ``sw`` edge."""
        return self in (ActionKind.RDA, ActionKind.UPD)

    @property
    def is_release(self) -> bool:
        """Releasing actions synchronise as the source of an ``sw`` edge."""
        return self in (ActionKind.WRR, ActionKind.UPD)

    @property
    def is_silent(self) -> bool:
        return self is ActionKind.TAU


@dataclass(frozen=True)
class Action:
    """One memory action.

    Attributes mirror the paper's accessors: ``var(a)``, ``rdval(a)`` and
    ``wrval(a)``.  For an update ``updRA(x, m, n)``, ``rdval = m`` and
    ``wrval = n``; for plain reads/writes the missing component is
    ``None``.
    """

    kind: ActionKind
    var: Optional[Var] = None
    rdval: Optional[Value] = None
    wrval: Optional[Value] = None

    def __post_init__(self) -> None:
        if self.kind.is_silent:
            if self.var is not None or self.rdval is not None or self.wrval is not None:
                raise ValueError("τ carries no variable or values")
            return
        if self.var is None:
            raise ValueError(f"{self.kind.value} action requires a variable")
        if self.kind.is_read and self.rdval is None:
            raise ValueError(f"{self.kind.value} action requires a read value")
        if self.kind.is_write and self.wrval is None:
            raise ValueError(f"{self.kind.value} action requires a write value")
        if self.kind in (ActionKind.RD, ActionKind.RDA) and self.wrval is not None:
            raise ValueError("plain reads carry no write value")
        if self.kind in (ActionKind.WR, ActionKind.WRR) and self.rdval is not None:
            raise ValueError("plain writes carry no read value")

    # -- predicates (lifted from the kind for convenience) -------------

    @property
    def is_read(self) -> bool:
        return self.kind.is_read

    @property
    def is_write(self) -> bool:
        return self.kind.is_write

    @property
    def is_update(self) -> bool:
        return self.kind.is_update

    @property
    def is_acquire(self) -> bool:
        return self.kind.is_acquire

    @property
    def is_release(self) -> bool:
        return self.kind.is_release

    @property
    def is_silent(self) -> bool:
        return self.kind.is_silent

    def with_rdval(self, value: Value) -> "Action":
        """The same action reading ``value`` instead.

        Proposition 2.2: the uninterpreted semantics is insensitive to the
        value read, so the interpreted semantics may re-instantiate it.
        """
        if not self.kind.is_read:
            raise ValueError("only reads carry a read value")
        return Action(self.kind, self.var, value, self.wrval)

    def __str__(self) -> str:
        k = self.kind
        if k.is_silent:
            return "τ"
        if k is ActionKind.UPD:
            return f"updRA({self.var},{self.rdval},{self.wrval})"
        if k.is_read:
            return f"{k.value}({self.var},{self.rdval})"
        return f"{k.value}({self.var},{self.wrval})"


# ----------------------------------------------------------------------
# Constructors matching the paper's notation
# ----------------------------------------------------------------------

TAU = Action(ActionKind.TAU)

#: Process-wide action interner.  Every explored transition constructs
#: an action, state spaces repeat the same few action shapes millions of
#: times, and ``Action.__post_init__`` validation plus per-field hashing
#: is measurable on the hot path — the constructors below hand out one
#: shared instance per distinct action instead.  Actions are immutable
#: value objects, so interning is observationally silent (equality and
#: hashing are unchanged; ``is`` gets faster as a bonus).
_INTERNED: dict = {}


def intern_action(
    kind: ActionKind,
    var: Optional[Var] = None,
    rdval: Optional[Value] = None,
    wrval: Optional[Value] = None,
) -> Action:
    """The shared :class:`Action` instance for the given components."""
    key = (kind, var, rdval, wrval)
    action = _INTERNED.get(key)
    if action is None:
        action = Action(kind, var, rdval, wrval)
        _INTERNED[key] = action
    return action


def rd(x: Var, n: Value) -> Action:
    """Relaxed read ``rd(x, n)``."""
    return intern_action(ActionKind.RD, x, rdval=n)


def rda(x: Var, n: Value) -> Action:
    """Acquiring read ``rdA(x, n)``."""
    return intern_action(ActionKind.RDA, x, rdval=n)


def wr(x: Var, n: Value) -> Action:
    """Relaxed write ``wr(x, n)``."""
    return intern_action(ActionKind.WR, x, wrval=n)


def wrr(x: Var, n: Value) -> Action:
    """Releasing write ``wrR(x, n)``."""
    return intern_action(ActionKind.WRR, x, wrval=n)


def upd(x: Var, m: Value, n: Value) -> Action:
    """Release-acquire update ``updRA(x, m, n)`` (reads ``m``, writes ``n``)."""
    return intern_action(ActionKind.UPD, x, rdval=m, wrval=n)
