"""Abstract syntax for the command language (paper, Section 2.1).

Grammar::

    Exp ::= Val | x | x^A | neg Exp | Exp (+) Exp
    Com ::= skip | x.swap(n)^RA | x := Exp | x :=^R Exp
          | Com ; Com | if B then Com else Com | while B do Com

plus two RMW extensions beyond the paper's grammar (DESIGN.md §10):
``r := x.swap(n)^RA`` (exchange that keeps the value read, as C11's
``atomic_exchange`` does) and ``x.faa(k)^RA`` / ``r := x.faa(k)^RA``
(fetch-and-add).  Both generate the same ``updRA`` action flavour the
paper's ``swap`` does — no new action kinds, no new synchronisation —
so every Section 3–5 result about updates applies to them verbatim.

There is also one administrative form, :class:`Labeled`, which wraps a command
with a program-location label.  Labels have no semantic effect; they
realise the paper's auxiliary program-counter function ``P.pc_t``
(Section 5.2) that the Peterson invariants are phrased over.

All nodes are frozen dataclasses: commands are compared and hashed
structurally, which the state-space exploration relies on to deduplicate
configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Optional, Tuple, Union

from repro.lang.actions import Value, Var


# ======================================================================
# Expressions
# ======================================================================


class Exp:
    """Base class for expressions."""

    __slots__ = ()

    def free_vars(self) -> FrozenSet[Var]:
        """``fv(E)`` — the shared variables still to be read."""
        raise NotImplementedError

    def __str__(self) -> str:  # pragma: no cover - repr fallback
        return repr(self)


@dataclass(frozen=True)
class Lit(Exp):
    """A value literal ``n ∈ Val`` (ints; booleans are ints 0/1 friendly)."""

    value: Value

    def free_vars(self) -> FrozenSet[Var]:
        return frozenset()

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Load(Exp):
    """A shared-variable occurrence ``x`` or ``x^A``.

    ``acquire=True`` renders the paper's ``x^A``: evaluating it emits an
    acquiring read ``rdA(x, n)`` instead of a relaxed ``rd(x, n)``.
    """

    var: Var
    acquire: bool = False

    def free_vars(self) -> FrozenSet[Var]:
        return frozenset({self.var})

    def __str__(self) -> str:
        return f"{self.var}^A" if self.acquire else self.var


@dataclass(frozen=True)
class Not(Exp):
    """Unary operator ``neg E`` (the paper's generic unary ⊖)."""

    operand: Exp

    def free_vars(self) -> FrozenSet[Var]:
        return self.operand.free_vars()

    def __str__(self) -> str:
        return f"!({self.operand})"


#: Binary operators admitted in expressions.  Logical operators treat 0 as
#: false and anything else as true; comparisons return 0/1 so that values
#: stay plain ints end to end.
BINOPS: Dict[str, Callable[[Value, Value], Value]] = {
    "and": lambda a, b: 1 if (a and b) else 0,
    "or": lambda a, b: 1 if (a or b) else 0,
    "eq": lambda a, b: 1 if a == b else 0,
    "ne": lambda a, b: 1 if a != b else 0,
    "lt": lambda a, b: 1 if a < b else 0,
    "le": lambda a, b: 1 if a <= b else 0,
    "gt": lambda a, b: 1 if a > b else 0,
    "ge": lambda a, b: 1 if a >= b else 0,
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
}


@dataclass(frozen=True)
class BinOp(Exp):
    """Binary operator ``E1 (+) E2``; evaluation is left to right."""

    op: str
    left: Exp
    right: Exp

    def __post_init__(self) -> None:
        if self.op not in BINOPS:
            raise ValueError(f"unknown binary operator {self.op!r}")

    def free_vars(self) -> FrozenSet[Var]:
        return self.left.free_vars() | self.right.free_vars()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


def eval_closed(exp: Exp) -> Value:
    """``[[E]]`` — the value of a variable-free expression."""
    if isinstance(exp, Lit):
        return exp.value
    if isinstance(exp, Not):
        return 0 if eval_closed(exp.operand) else 1
    if isinstance(exp, BinOp):
        return BINOPS[exp.op](eval_closed(exp.left), eval_closed(exp.right))
    if isinstance(exp, Load):
        raise ValueError(f"expression is not closed: free variable {exp.var!r}")
    raise TypeError(f"not an expression: {exp!r}")


def truthy(value: Value) -> bool:
    """Boolean reading of a value (0 is false, everything else true)."""
    return bool(value)


# ======================================================================
# Commands
# ======================================================================


class Com:
    """Base class for commands."""

    __slots__ = ()

    def __str__(self) -> str:  # pragma: no cover - repr fallback
        return repr(self)


@dataclass(frozen=True)
class Skip(Com):
    """``skip`` — the terminated command."""

    def __str__(self) -> str:
        return "skip"


@dataclass(frozen=True)
class Assign(Com):
    """``x := E`` (relaxed) or ``x :=^R E`` (releasing).

    Generates read actions while ``fv(E) ≠ ∅`` and a single write action
    ``wr(x, [[E]])`` / ``wrR(x, [[E]])`` once the expression is closed
    (Figure 2).
    """

    var: Var
    exp: Exp
    release: bool = False

    def __str__(self) -> str:
        op = ":=R" if self.release else ":="
        return f"{self.var} {op} {self.exp}"


@dataclass(frozen=True)
class Swap(Com):
    """``x.swap(n)^RA`` or ``r := x.swap(n)^RA`` — atomic exchange.

    Generates a single ``updRA(x, m, n)`` action; the value ``m`` read is
    unconstrained at this layer (the memory model resolves it).  With a
    result register ``reg``, the value read is then stored to ``reg`` by
    an ordinary relaxed write (C11's ``atomic_exchange`` returns the old
    value; the paper's bare ``swap`` simply discards it) — this is what
    makes a test-and-set lock expressible.
    """

    var: Var
    value: Value
    reg: Optional[Var] = None

    def __str__(self) -> str:
        rmw = f"{self.var}.swap({self.value})^RA"
        return rmw if self.reg is None else f"{self.reg} := {rmw}"


@dataclass(frozen=True)
class Faa(Com):
    """``x.faa(k)^RA`` or ``r := x.faa(k)^RA`` — atomic fetch-and-add.

    Generates a single ``updRA(x, m, m + k)`` action: the write value is
    a *function of the value read*, unlike :class:`Swap`'s constant.
    With a result register the value read (the "fetch") is stored to
    ``reg`` by a subsequent relaxed write — the ticket-lock idiom
    ``my := ticket.faa(1)``.
    """

    var: Var
    add: Value
    reg: Optional[Var] = None

    def __str__(self) -> str:
        rmw = f"{self.var}.faa({self.add})^RA"
        return rmw if self.reg is None else f"{self.reg} := {rmw}"


@dataclass(frozen=True)
class Seq(Com):
    """``C1 ; C2``."""

    first: Com
    second: Com

    def __str__(self) -> str:
        return f"{self.first}; {self.second}"


@dataclass(frozen=True)
class If(Com):
    """``if B then C1 else C2``."""

    guard: Exp
    then_branch: Com
    else_branch: Com

    def __str__(self) -> str:
        return f"if {self.guard} then {{{self.then_branch}}} else {{{self.else_branch}}}"


@dataclass(frozen=True)
class While(Com):
    """``while B do C``.

    ``current`` is the partially evaluated guard of the *ongoing* test;
    ``guard`` is the pristine guard restored when the loop unfolds.  This
    realises Figure 2's in-place guard evaluation while fixing the guard
    for later iterations (each iteration re-reads the shared variables).
    """

    guard: Exp
    body: Com
    current: Optional[Exp] = None

    @property
    def test(self) -> Exp:
        """The guard instance currently being evaluated."""
        return self.guard if self.current is None else self.current

    def __str__(self) -> str:
        return f"while {self.test} do {{{self.body}}}"


@dataclass(frozen=True)
class Labeled(Com):
    """A command carrying a program-location label.

    The label is exposed through :func:`program_counter`; stepping is
    transparent (see ``repro.lang.semantics``).  The wrapped command may
    be ``skip`` to model pure control points such as Peterson's critical
    section (line 5).
    """

    pc: int
    body: Com

    def __str__(self) -> str:
        return f"{self.pc}: {self.body}"


#: Program counter value reported for a terminated thread.
PC_DONE = 0


def program_counter(com: Com) -> int:
    """The label of the leftmost labelled statement of ``com``.

    Walks the left spine through ``Seq`` and the loop-body prefix of an
    unfolding ``While``; returns :data:`PC_DONE` when no label remains —
    mirroring the paper's ``P.pc_t`` convention that the counter points at
    the line about to be executed.
    """
    node = com
    while True:
        if isinstance(node, Labeled):
            # Innermost label wins: a labelled branch target inside a
            # labelled conditional (e.g. Dekker's critical section) takes
            # over from the enclosing statement's label.
            inner = program_counter(node.body)
            return inner if inner != PC_DONE else node.pc
        if isinstance(node, Seq):
            node = node.first
            continue
        if isinstance(node, While) and node.current is None:
            # A pristine loop at the head position: control is about to
            # enter the body, so the counter is the body's first label.
            # (Busy-wait loops that *are* a numbered line carry their own
            # Labeled wrapper, which wins before we get here.)
            node = node.body
            continue
        return PC_DONE


def substitute_leftmost(exp: Exp, value: Value) -> Tuple[Optional[Tuple[Var, bool]], Exp]:
    """Replace the leftmost variable occurrence of ``exp`` by ``value``.

    Returns ``((var, acquire), exp')`` where the pair identifies the read
    performed, or ``(None, exp)`` when the expression is closed.  This is
    the substitution ``E[n/x]`` of Figure 1 specialised to the occurrence
    being evaluated (expression evaluation is left to right).
    """
    if isinstance(exp, Lit):
        return None, exp
    if isinstance(exp, Load):
        return (exp.var, exp.acquire), Lit(value)
    if isinstance(exp, Not):
        hit, new = substitute_leftmost(exp.operand, value)
        return hit, (Not(new) if hit else exp)
    if isinstance(exp, BinOp):
        hit, new_left = substitute_leftmost(exp.left, value)
        if hit:
            return hit, BinOp(exp.op, new_left, exp.right)
        hit, new_right = substitute_leftmost(exp.right, value)
        if hit:
            return hit, BinOp(exp.op, exp.left, new_right)
        return None, exp
    raise TypeError(f"not an expression: {exp!r}")


def leftmost_load(exp: Exp) -> Optional[Load]:
    """The leftmost :class:`Load` of ``exp`` (the next read), if any."""
    if isinstance(exp, Load):
        return exp
    if isinstance(exp, Lit):
        return None
    if isinstance(exp, Not):
        return leftmost_load(exp.operand)
    if isinstance(exp, BinOp):
        return leftmost_load(exp.left) or leftmost_load(exp.right)
    raise TypeError(f"not an expression: {exp!r}")
