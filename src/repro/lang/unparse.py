"""Unparsing: programs back to the textual litmus format.

The inverse of :mod:`repro.lang.parser` — lets generated or mutated
programs be written out as ``.litmus`` files (and powers the parser's
round-trip property tests: ``parse(unparse(p)) == p``).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.lang.actions import Value, Var
from repro.lang.program import Program
from repro.lang.syntax import (
    Assign,
    BinOp,
    Com,
    Exp,
    Faa,
    If,
    Labeled,
    Lit,
    Load,
    Not,
    Seq,
    Skip,
    Swap,
    While,
)

_OP_TEXT = {
    "eq": "==",
    "ne": "!=",
    "lt": "<",
    "le": "<=",
    "gt": ">",
    "ge": ">=",
    "add": "+",
    "sub": "-",
    "mul": "*",
    "and": "&&",
    "or": "||",
}


def unparse_exp(exp: Exp) -> str:
    """Render an expression in parser-accepted syntax.

    Fully parenthesised (except atoms), so precedence never bites.
    """
    if isinstance(exp, Lit):
        return str(exp.value)
    if isinstance(exp, Load):
        return f"{exp.var}^A" if exp.acquire else exp.var
    if isinstance(exp, Not):
        return f"!({unparse_exp(exp.operand)})"
    if isinstance(exp, BinOp):
        return (
            f"({unparse_exp(exp.left)} {_OP_TEXT[exp.op]} "
            f"{unparse_exp(exp.right)})"
        )
    raise TypeError(f"not an expression: {exp!r}")


def unparse_com(com: Com) -> str:
    """Render a command as a ``;``-separated statement sequence."""
    if isinstance(com, Skip):
        return "skip"
    if isinstance(com, Assign):
        op = ":=R" if com.release else ":="
        return f"{com.var} {op} {unparse_exp(com.exp)}"
    if isinstance(com, Swap):
        rmw = f"{com.var}.swap({com.value})"
        return rmw if com.reg is None else f"{com.reg} := {rmw}"
    if isinstance(com, Faa):
        rmw = f"{com.var}.faa({com.add})"
        return rmw if com.reg is None else f"{com.reg} := {rmw}"
    if isinstance(com, Seq):
        # ';' parses right-associated; brace a left-nested first component
        # so the round trip preserves the tree shape
        first = unparse_com(com.first)
        if isinstance(com.first, Seq):
            first = f"{{ {first} }}"
        return f"{first}; {unparse_com(com.second)}"
    if isinstance(com, If):
        text = f"if ({unparse_exp(com.guard)}) {{ {unparse_com(com.then_branch)} }}"
        if not isinstance(com.else_branch, Skip):
            text += f" else {{ {unparse_com(com.else_branch)} }}"
        return text
    if isinstance(com, While):
        # mid-guard-evaluation loops are transient runtime states; only
        # pristine loops occur in program text
        body = "" if isinstance(com.body, Skip) else f" {unparse_com(com.body)} "
        return f"while ({unparse_exp(com.guard)}) {{{body}}}"
    if isinstance(com, Labeled):
        # a label binds one statement; brace compound bodies so the
        # round trip re-associates them under the label
        if isinstance(com.body, Seq):
            return f"{com.pc}: {{ {unparse_com(com.body)} }}"
        return f"{com.pc}: {unparse_com(com.body)}"
    raise TypeError(f"not a command: {com!r}")


def unparse_litmus(
    name: str,
    program: Program,
    init: Mapping[Var, Value],
    outcome: Optional[str] = None,
    outcome_mode: str = "exists",
    description: str = "",
) -> str:
    """Render a complete ``.litmus`` file."""
    lines = []
    header = f"C11 {name}"
    if description:
        header += f" ({description})"
    lines.append(header)
    inits = "; ".join(f"{x} = {v}" for x, v in sorted(init.items()))
    lines.append(f"{{ {inits} }}")
    for tid, com in program.threads:
        lines.append(f"P{tid}: {unparse_com(com)}")
    if outcome is not None:
        lines.append(f"{outcome_mode} ({outcome})")
    return "\n".join(lines) + "\n"
