"""Lowering: compile a command to a flat step table (DESIGN.md §12).

The uninterpreted semantics is deterministic up to the read hole
(``repro.lang.semantics``): from any command there is at most one step,
and the *structure* of the successor does not depend on the value a read
hole receives — only later guard-resolution steps branch on it.  A
thread's reachable command states therefore form a finite table that can
be computed **once per program**: this module explores them by *symbolic
execution*, abstracting every substituted read value as a placeholder
(:class:`SymVal`), canonically renumbering placeholders, and
hash-consing the resulting symbolic commands into integer program
counters.  The machine state of a thread collapses to ``(pc, vals)`` —
a table index plus the concrete values instantiating the placeholders —
and a step becomes a table lookup instead of an AST walk.

Each table entry (:class:`Instr`) precomputes everything the hot path
used to re-derive per node:

* the step's action shape (``kind``/``var``), with constant write
  values folded and computed ones compiled to closure-free postfix
  programs over ``vals`` (:func:`eval_ops`);
* resolved successor pcs — including loop back-edges, which the AST
  walker re-built structurally on every iteration — and *keep maps*
  describing how the successor's ``vals`` derive from the current ones
  and the value read;
* the paper's program counter (``label``) of the state and the
  control-visibility bit(s) the reduction layer needs (whether the step
  changes ``(pc, terminated)``), so ``por/deps`` never probes
  ``resume`` on the lowered path.

**Exactness, not approximation.**  The engine deduplicates
configurations by *structural command equality*, so the lowered pc
encoding is only admissible if machine states and concrete commands are
in bijection.  Placeholders make hash-consing merge exactly the states
the legacy walker merges — except when two *distinct* symbolic states
could instantiate to the *same* concrete command (a partially evaluated
expression colliding with a source literal, e.g. ``y := x`` after
reading ``0`` aliasing a literal ``y := 0`` elsewhere in the thread).
:func:`lower_thread` detects that possibility conservatively (pairwise
unifiability of states with the same literal-erased shape) and refuses
to lower the thread; the caller then keeps the legacy representation
for the whole program.  Real case studies and litmus programs have no
collisions, and the fuzz oracle ``--check-lowering`` plus the parity
tests enforce byte-identical exploration results either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.lang.actions import ActionKind, Value, Var
from repro.lang.semantics import _relabel, _sequence
from repro.lang.syntax import (
    BINOPS,
    Assign,
    BinOp,
    Com,
    Exp,
    Faa,
    If,
    Labeled,
    Lit,
    Load,
    Not,
    Seq,
    Skip,
    Swap,
    While,
    eval_closed,
    leftmost_load,
    program_counter,
    substitute_leftmost,
    truthy,
)

SKIP = Skip()

#: Program counter of a terminated thread in the lowered encoding.
PC_TERM = -1


@dataclass(frozen=True)
class SymVal:
    """A placeholder for a run-time value inside a symbolic command.

    ``index >= 0`` names a slot of the thread's machine word ``vals``;
    ``index == -1`` (:data:`FRESH`) stands for the value the current
    step's read hole receives.  Placeholders live inside ``Lit`` nodes,
    which never get evaluated symbolically — the compiler checks for
    them before any ``eval_closed`` call.
    """

    index: int

    def __str__(self) -> str:  # pragma: no cover - debug rendering
        return "⟨rd⟩" if self.index < 0 else f"⟨v{self.index}⟩"


#: The placeholder for the value the current step reads.
FRESH = SymVal(-1)


# ======================================================================
# Symbolic command utilities
# ======================================================================


def _exp_syms(exp: Exp, out: List[SymVal]) -> None:
    if isinstance(exp, Lit):
        v = exp.value
        if type(v) is SymVal and v not in out:
            out.append(v)
    elif isinstance(exp, Not):
        _exp_syms(exp.operand, out)
    elif isinstance(exp, BinOp):
        _exp_syms(exp.left, out)
        _exp_syms(exp.right, out)


def com_syms(com: Com) -> List[SymVal]:
    """The placeholders of ``com`` in first-occurrence order."""
    out: List[SymVal] = []

    def walk(c: Com) -> None:
        if isinstance(c, Assign):
            _exp_syms(c.exp, out)
        elif isinstance(c, Seq):
            walk(c.first)
            walk(c.second)
        elif isinstance(c, If):
            _exp_syms(c.guard, out)
            walk(c.then_branch)
            walk(c.else_branch)
        elif isinstance(c, While):
            _exp_syms(c.guard, out)
            walk(c.body)
            if c.current is not None:
                _exp_syms(c.current, out)
        elif isinstance(c, Labeled):
            walk(c.body)
        # Skip/Swap/Faa carry no expressions.

    walk(com)
    return out


def _rename_exp(exp: Exp, m: Dict[SymVal, SymVal]) -> Exp:
    if isinstance(exp, Lit):
        v = exp.value
        if type(v) is SymVal:
            return Lit(m[v])
        return exp
    if isinstance(exp, Not):
        new = _rename_exp(exp.operand, m)
        return exp if new is exp.operand else Not(new)
    if isinstance(exp, BinOp):
        left = _rename_exp(exp.left, m)
        right = _rename_exp(exp.right, m)
        if left is exp.left and right is exp.right:
            return exp
        return BinOp(exp.op, left, right)
    return exp


def rename_com(com: Com, m: Dict[SymVal, SymVal]) -> Com:
    """``com`` with placeholders renamed per ``m`` (sharing untouched parts)."""
    if isinstance(com, Assign):
        new = _rename_exp(com.exp, m)
        return com if new is com.exp else Assign(com.var, new, com.release)
    if isinstance(com, Seq):
        first = rename_com(com.first, m)
        second = rename_com(com.second, m)
        if first is com.first and second is com.second:
            return com
        return Seq(first, second)
    if isinstance(com, If):
        guard = _rename_exp(com.guard, m)
        then = rename_com(com.then_branch, m)
        other = rename_com(com.else_branch, m)
        if guard is com.guard and then is com.then_branch and other is com.else_branch:
            return com
        return If(guard, then, other)
    if isinstance(com, While):
        guard = _rename_exp(com.guard, m)
        body = rename_com(com.body, m)
        current = None if com.current is None else _rename_exp(com.current, m)
        if guard is com.guard and body is com.body and current is com.current:
            return com
        return While(guard, body, current)
    if isinstance(com, Labeled):
        body = rename_com(com.body, m)
        return com if body is com.body else Labeled(com.pc, body)
    return com  # Skip/Swap/Faa


def _subst_exp(exp: Exp, vals: Tuple[Value, ...], read: Optional[Value]) -> Exp:
    if isinstance(exp, Lit):
        v = exp.value
        if type(v) is SymVal:
            return Lit(read if v.index < 0 else vals[v.index])
        return exp
    if isinstance(exp, Not):
        new = _subst_exp(exp.operand, vals, read)
        return exp if new is exp.operand else Not(new)
    if isinstance(exp, BinOp):
        left = _subst_exp(exp.left, vals, read)
        right = _subst_exp(exp.right, vals, read)
        if left is exp.left and right is exp.right:
            return exp
        return BinOp(exp.op, left, right)
    return exp


def concretize(
    com: Com, vals: Tuple[Value, ...], read: Optional[Value] = None
) -> Com:
    """The concrete command a symbolic state denotes under ``vals``.

    This is the inverse of the abstraction: substituting slot values
    (and ``read`` for :data:`FRESH`) for the placeholders reconstructs
    exactly the command the legacy AST walker would hold.
    """
    if isinstance(com, Assign):
        new = _subst_exp(com.exp, vals, read)
        return com if new is com.exp else Assign(com.var, new, com.release)
    if isinstance(com, Seq):
        first = concretize(com.first, vals, read)
        second = concretize(com.second, vals, read)
        if first is com.first and second is com.second:
            return com
        return Seq(first, second)
    if isinstance(com, If):
        guard = _subst_exp(com.guard, vals, read)
        then = concretize(com.then_branch, vals, read)
        other = concretize(com.else_branch, vals, read)
        if guard is com.guard and then is com.then_branch and other is com.else_branch:
            return com
        return If(guard, then, other)
    if isinstance(com, While):
        guard = _subst_exp(com.guard, vals, read)
        body = concretize(com.body, vals, read)
        current = None if com.current is None else _subst_exp(com.current, vals, read)
        if guard is com.guard and body is com.body and current is com.current:
            return com
        return While(guard, body, current)
    if isinstance(com, Labeled):
        body = concretize(com.body, vals, read)
        return com if body is com.body else Labeled(com.pc, body)
    return com  # Skip/Swap/Faa


def _has_sym_exp(exp: Exp) -> bool:
    if isinstance(exp, Lit):
        return type(exp.value) is SymVal
    if isinstance(exp, Not):
        return _has_sym_exp(exp.operand)
    if isinstance(exp, BinOp):
        return _has_sym_exp(exp.left) or _has_sym_exp(exp.right)
    return False


# ======================================================================
# Closure-free expression programs
# ======================================================================


def compile_ops(exp: Exp) -> Tuple[tuple, ...]:
    """A closed symbolic expression as a postfix program over ``vals``.

    Ops: ``('lit', v)`` pushes a constant, ``('val', i)`` pushes
    ``vals[i]``, ``('not',)`` negates, ``('bin', op)`` applies a
    :data:`~repro.lang.syntax.BINOPS` operator.  Tuples of tuples are
    picklable and evaluation mirrors ``eval_closed`` exactly (same
    left-to-right order, same operator table).
    """
    out: List[tuple] = []

    def walk(e: Exp) -> None:
        if isinstance(e, Lit):
            v = e.value
            if type(v) is SymVal:
                out.append(("val", v.index))
            else:
                out.append(("lit", v))
        elif isinstance(e, Not):
            walk(e.operand)
            out.append(("not",))
        elif isinstance(e, BinOp):
            walk(e.left)
            walk(e.right)
            out.append(("bin", e.op))
        else:  # pragma: no cover - Load impossible in a closed expression
            raise TypeError(f"expression is not closed: {e!r}")

    walk(exp)
    return tuple(out)


def eval_ops(ops: Tuple[tuple, ...], vals: Tuple[Value, ...]) -> Value:
    """Evaluate a postfix program against a machine word."""
    stack: List[Value] = []
    push = stack.append
    for op in ops:
        tag = op[0]
        if tag == "lit":
            push(op[1])
        elif tag == "val":
            push(vals[op[1]])
        elif tag == "not":
            push(0 if stack.pop() else 1)
        else:
            b = stack.pop()
            a = stack.pop()
            push(BINOPS[op[1]](a, b))
    return stack[0]


# ======================================================================
# The symbolic mirror of ``command_steps``
# ======================================================================


class _SymStep:
    """The one symbolic step of a symbolic command state."""

    __slots__ = (
        "op", "kind", "var", "succ", "guard", "then_succ", "else_succ",
        "wrexp", "wrval", "addk",
    )

    def __init__(self, op, kind=None, var=None, succ=None, guard=None,
                 then_succ=None, else_succ=None, wrexp=None, wrval=None,
                 addk=None):
        self.op = op                # 'tau' | 'branch' | 'read' | 'write' | 'upd'
        self.kind = kind
        self.var = var
        self.succ = succ            # raw successor (may contain FRESH)
        self.guard = guard          # branch: closed symbolic guard
        self.then_succ = then_succ
        self.else_succ = else_succ
        self.wrexp = wrexp          # write: closed symbolic right-hand side
        self.wrval = wrval          # upd (swap): constant write value
        self.addk = addk            # upd (faa): the added constant

    def wrap(self, f: Callable[[Com], Com]) -> "_SymStep":
        """Apply a successor context (the ``Seq``/``Labeled`` wrappers)."""
        if self.op == "branch":
            self.then_succ = f(self.then_succ)
            self.else_succ = f(self.else_succ)
        else:
            self.succ = f(self.succ)
        return self


def sym_step(com: Com) -> Optional[_SymStep]:
    """The symbolic step of ``com`` — ``command_steps`` with read values
    abstracted as placeholders and guard resolution deferred to run time
    whenever a placeholder reaches a closed guard.

    Returns ``None`` for the terminated command.  Every successor is
    built with the *same* smart constructors the legacy walker uses
    (``_sequence``, ``_relabel``, ``substitute_leftmost``), so a
    concretized successor is byte-identical to what ``resume`` yields.
    """
    if isinstance(com, Skip):
        return None

    if isinstance(com, Assign):
        if com.exp.free_vars():
            load = leftmost_load(com.exp)
            assert load is not None
            _, new_exp = substitute_leftmost(com.exp, FRESH)
            kind = ActionKind.RDA if load.acquire else ActionKind.RD
            return _SymStep(
                "read", kind=kind, var=load.var,
                succ=Assign(com.var, new_exp, com.release),
            )
        kind = ActionKind.WRR if com.release else ActionKind.WR
        return _SymStep("write", kind=kind, var=com.var, wrexp=com.exp, succ=SKIP)

    if isinstance(com, Swap):
        succ = SKIP if com.reg is None else Assign(com.reg, Lit(FRESH))
        return _SymStep("upd", kind=ActionKind.UPD, var=com.var,
                        wrval=com.value, succ=succ)

    if isinstance(com, Faa):
        succ = SKIP if com.reg is None else Assign(com.reg, Lit(FRESH))
        return _SymStep("upd", kind=ActionKind.UPD, var=com.var,
                        addk=com.add, succ=succ)

    if isinstance(com, Seq):
        if isinstance(com.first, Skip):
            return _SymStep("tau", succ=com.second)
        inner = sym_step(com.first)
        assert inner is not None
        return inner.wrap(lambda c, _s=com.second: _sequence(c, _s))

    if isinstance(com, If):
        guard = com.guard
        if guard.free_vars():
            load = leftmost_load(guard)
            assert load is not None
            _, new_g = substitute_leftmost(guard, FRESH)
            kind = ActionKind.RDA if load.acquire else ActionKind.RD
            return _SymStep(
                "read", kind=kind, var=load.var,
                succ=If(new_g, com.then_branch, com.else_branch),
            )
        if _has_sym_exp(guard):
            return _SymStep("branch", guard=guard,
                            then_succ=com.then_branch, else_succ=com.else_branch)
        if truthy(eval_closed(guard)):
            return _SymStep("tau", succ=com.then_branch)
        return _SymStep("tau", succ=com.else_branch)

    if isinstance(com, While):
        test = com.test
        if test.free_vars():
            load = leftmost_load(test)
            assert load is not None
            _, new_t = substitute_leftmost(test, FRESH)
            kind = ActionKind.RDA if load.acquire else ActionKind.RD
            return _SymStep(
                "read", kind=kind, var=load.var,
                succ=While(com.guard, com.body, current=new_t),
            )
        unfold = _sequence(com.body, While(com.guard, com.body))
        if _has_sym_exp(test):
            return _SymStep("branch", guard=test, then_succ=unfold, else_succ=SKIP)
        if truthy(eval_closed(test)):
            return _SymStep("tau", succ=unfold)
        return _SymStep("tau", succ=SKIP)

    if isinstance(com, Labeled):
        if isinstance(com.body, Skip):
            return _SymStep("tau", succ=SKIP)
        inner = sym_step(com.body)
        assert inner is not None
        return inner.wrap(lambda c, _pc=com.pc: _relabel(_pc, c))

    raise TypeError(f"not a command: {com!r}")


# ======================================================================
# Instructions and the per-thread table
# ======================================================================


class Instr:
    """One compiled step: everything invariant about a table state.

    ``keep`` maps successor ``vals`` slots to sources: a non-negative
    entry copies the current slot, ``-1`` takes the value read by this
    step.  Branch instructions carry two targets with their own keep
    maps plus a guard program; their arm is chosen at run time from the
    machine word (the only value-dependence the lowered machine has).
    """

    __slots__ = (
        "pc", "slot", "com", "label", "kind", "var", "is_branch",
        "wrval", "wrops", "wrfun",
        "next_pc", "keep",
        "guard_ops", "then_pc", "then_keep", "else_pc", "else_keep",
        "visible", "vis_then", "vis_else",
        "steps",
    )

    def __init__(self) -> None:
        self.slot = 0
        self.var = None
        self.is_branch = False
        self.wrval = None
        self.wrops = None
        self.wrfun = None
        self.next_pc = PC_TERM
        self.keep: Tuple[int, ...] = ()
        self.guard_ops = None
        self.then_pc = self.else_pc = PC_TERM
        self.then_keep = self.else_keep = ()
        self.visible = False
        self.vis_then = self.vis_else = False
        self.steps: dict = {}  # vals -> interned LoweredStep

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_branch:
            tgt = f"then={self.then_pc} else={self.else_pc}"
        else:
            tgt = f"next={self.next_pc}"
        return f"Instr(pc={self.pc}, {self.kind.value}, {tgt}, label={self.label})"


class ThreadTable:
    """The flat step table of one thread: ``instrs[pc]`` plus the entry."""

    __slots__ = ("instrs", "entry_pc")

    def __init__(self, instrs: List[Instr], entry_pc: int) -> None:
        self.instrs = instrs
        self.entry_pc = entry_pc


def _sig(com: Com) -> Tuple[int, bool]:
    """Control signature of a (symbolic) command — placeholder-blind."""
    return (program_counter(com), isinstance(com, Skip))


def _lit_leaves(com: Com) -> List[object]:
    """The ``Lit`` payloads of ``com`` in deterministic traversal order."""
    out: List[object] = []

    def walk_exp(e: Exp) -> None:
        if isinstance(e, Lit):
            out.append(e.value)
        elif isinstance(e, Not):
            walk_exp(e.operand)
        elif isinstance(e, BinOp):
            walk_exp(e.left)
            walk_exp(e.right)

    def walk(c: Com) -> None:
        if isinstance(c, Assign):
            walk_exp(c.exp)
        elif isinstance(c, Swap):
            out.append(c.value)
        elif isinstance(c, Faa):
            out.append(c.add)
        elif isinstance(c, Seq):
            walk(c.first)
            walk(c.second)
        elif isinstance(c, If):
            walk_exp(c.guard)
            walk(c.then_branch)
            walk(c.else_branch)
        elif isinstance(c, While):
            walk_exp(c.guard)
            walk(c.body)
            if c.current is not None:
                walk_exp(c.current)
        elif isinstance(c, Labeled):
            walk(c.body)

    walk(com)
    return out


_WILD = SymVal(-2)


def _erase(com: Com) -> Com:
    """``com`` with every ``Lit`` payload replaced by a wildcard.

    Two symbolic states can instantiate to the same concrete command
    only if their erasures coincide (everything but ``Lit`` payloads is
    compile-time fixed); ``Swap``/``Faa`` constants are compile-time
    too, but :func:`_lit_leaves` includes them so positions stay aligned
    and their inequality separates states just as well.
    """
    if isinstance(com, Assign):
        return Assign(com.var, _erase_exp(com.exp), com.release)
    if isinstance(com, Seq):
        return Seq(_erase(com.first), _erase(com.second))
    if isinstance(com, If):
        return If(_erase_exp(com.guard), _erase(com.then_branch), _erase(com.else_branch))
    if isinstance(com, While):
        current = None if com.current is None else _erase_exp(com.current)
        return While(_erase_exp(com.guard), _erase(com.body), current)
    if isinstance(com, Labeled):
        return Labeled(com.pc, _erase(com.body))
    if isinstance(com, Swap):
        return Swap(com.var, 0, com.reg)
    if isinstance(com, Faa):
        return Faa(com.var, 0, com.reg)
    return com  # Skip


def _erase_exp(exp: Exp) -> Exp:
    if isinstance(exp, Lit):
        return Lit(_WILD)
    if isinstance(exp, Not):
        return Not(_erase_exp(exp.operand))
    if isinstance(exp, BinOp):
        return BinOp(exp.op, _erase_exp(exp.left), _erase_exp(exp.right))
    return exp  # Load


def _may_alias(a: Com, b: Com) -> bool:
    """Whether two distinct symbolic states (of equal erasure) could
    instantiate to the same concrete command: at every ``Lit`` position
    the payloads must be unifiable — equal constants, or at least one
    placeholder (a run-time value can coincide with anything)."""
    for x, y in zip(_lit_leaves(a), _lit_leaves(b)):
        if type(x) is not SymVal and type(y) is not SymVal and x != y:
            return False
    return True


def lower_thread(com: Com) -> Optional[ThreadTable]:
    """Compile one thread, or ``None`` when pc-dedup could diverge from
    structural command equality (see the module docstring)."""
    index: Dict[Com, int] = {}
    coms: List[Com] = []
    instrs: List[Instr] = []
    pending: List[int] = []

    def intern_state(c: Com) -> int:
        if isinstance(c, Skip):
            return PC_TERM
        pc = index.get(c)
        if pc is None:
            pc = len(coms)
            index[c] = pc
            coms.append(c)
            instrs.append(Instr())
            pending.append(pc)
        return pc

    def intern_succ(raw: Com) -> Tuple[int, Tuple[int, ...]]:
        syms = com_syms(raw)
        if syms:
            keep = tuple(s.index for s in syms)
            mapping = {s: SymVal(j) for j, s in enumerate(syms)}
            raw = rename_com(raw, mapping)
        else:
            keep = ()
        return intern_state(raw), keep

    entry_pc = intern_state(com)

    while pending:
        pc = pending.pop()
        state = coms[pc]
        step = sym_step(state)
        assert step is not None  # Skip is never interned
        ins = instrs[pc]
        ins.pc = pc
        ins.com = state
        ins.label = program_counter(state)
        cur_sig = (ins.label, False)

        if step.op == "branch":
            ins.kind = ActionKind.TAU
            ins.is_branch = True
            ins.guard_ops = compile_ops(step.guard)
            ins.vis_then = _sig(step.then_succ) != cur_sig
            ins.vis_else = _sig(step.else_succ) != cur_sig
            ins.then_pc, ins.then_keep = intern_succ(step.then_succ)
            ins.else_pc, ins.else_keep = intern_succ(step.else_succ)
            continue

        ins.visible = _sig(step.succ) != cur_sig
        ins.next_pc, ins.keep = intern_succ(step.succ)

        if step.op == "tau":
            ins.kind = ActionKind.TAU
        elif step.op == "read":
            ins.kind = step.kind
            ins.var = step.var
        elif step.op == "write":
            ins.kind = step.kind
            ins.var = step.var
            if _has_sym_exp(step.wrexp):
                ins.wrops = compile_ops(step.wrexp)
            else:
                ins.wrval = eval_closed(step.wrexp)
        else:  # upd
            ins.kind = ActionKind.UPD
            ins.var = step.var
            if step.addk is None:
                ins.wrval = step.wrval
            else:
                ins.wrfun = lambda m, _k=step.addk: m + _k

    # -- exactness check: no two states may alias under instantiation --
    groups: Dict[Com, List[int]] = {}
    for pc, c in enumerate(coms):
        groups.setdefault(_erase(c), []).append(pc)
    for members in groups.values():
        for i, pc_a in enumerate(members):
            for pc_b in members[i + 1:]:
                if _may_alias(coms[pc_a], coms[pc_b]):
                    return None

    return ThreadTable(instrs, entry_pc)


__all__ = [
    "FRESH",
    "Instr",
    "PC_TERM",
    "SymVal",
    "ThreadTable",
    "com_syms",
    "compile_ops",
    "concretize",
    "eval_ops",
    "lower_thread",
    "rename_com",
    "sym_step",
]
