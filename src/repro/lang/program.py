"""Programs: top-level parallel composition of commands (paper, §2.2).

A program is a mapping ``Prog : T → Com`` from thread identifiers to
commands.  Thread ``0`` is reserved for the initialising writes of the
memory model and never appears in a program.  The rule P-Step lifts a
command step of thread ``t`` to the program; Proposition 2.3 (actions of
distinct threads commute) holds by construction because threads share no
command state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Optional, Tuple

from repro.lang.actions import Value
from repro.lang.semantics import PendingStep, command_steps, is_terminated
from repro.lang.syntax import Com, program_counter

Tid = int

#: The initialising pseudo-thread of the memory model.
INIT_TID: Tid = 0


@dataclass(frozen=True)
class Program:
    """An immutable program: thread id → remaining command.

    ``Program`` values are hashable (commands are frozen dataclasses), so
    configurations ``(P, σ)`` can be deduplicated during exploration.
    """

    threads: Tuple[Tuple[Tid, Com], ...]

    def __hash__(self) -> int:
        # Programs sit inside every configuration key the engine stores,
        # and the generated dataclass hash re-walks the whole command
        # AST (a Python-level __hash__ per node) on every dict/set
        # operation.  Compute it once per object — same discipline as
        # Event.__hash__.  (Defining __hash__ in the class body makes
        # @dataclass keep it.)
        h = self.__dict__.get("_hash")
        if h is None:
            h = hash(self.threads)
            object.__setattr__(self, "_hash", h)
        return h

    def __getstate__(self):
        # str hashing is salted per process (PYTHONHASHSEED), and
        # commands hash over variable names: a cached hash must never
        # cross a pickle boundary.  The cached step table
        # (``repro.interp.compiled``) embeds that hash and holds
        # unpicklable interners, so it stays behind too — the receiving
        # process re-lowers on first use.
        state = dict(self.__dict__)
        state.pop("_hash", None)
        state.pop("_lowered", None)
        return state

    @classmethod
    def of(cls, mapping: Mapping[Tid, Com]) -> "Program":
        """Build a program from a ``{tid: command}`` mapping."""
        if INIT_TID in mapping:
            raise ValueError(f"thread id {INIT_TID} is reserved for initialisation")
        return cls(tuple(sorted(mapping.items())))

    @classmethod
    def parallel(cls, *commands: Com) -> "Program":
        """Build a program from commands, numbering threads from 1."""
        return cls.of({i + 1: c for i, c in enumerate(commands)})

    def as_dict(self) -> Dict[Tid, Com]:
        return dict(self.threads)

    @property
    def tids(self) -> Tuple[Tid, ...]:
        return tuple(t for t, _ in self.threads)

    def command(self, tid: Tid) -> Com:
        """``P(t)`` — the remaining command of thread ``t``."""
        for t, c in self.threads:
            if t == tid:
                return c
        raise KeyError(tid)

    def update(self, tid: Tid, com: Com) -> "Program":
        """``P[t ↦ C]`` — the program after thread ``t`` steps to ``C``."""
        return Program(
            tuple((t, com if t == tid else c) for t, c in self.threads)
        )

    def pc(self, tid: Tid) -> int:
        """The paper's auxiliary program counter ``P.pc_t`` (§5.2)."""
        return program_counter(self.command(tid))

    def is_terminated(self) -> bool:
        """Whether every thread has run to completion."""
        return all(is_terminated(c) for _, c in self.threads)

    def terminated_threads(self) -> Tuple[Tid, ...]:
        return tuple(t for t, c in self.threads if is_terminated(c))

    def __str__(self) -> str:
        return " || ".join(f"[{t}] {c}" for t, c in self.threads)


def program_steps(program: Program) -> Iterator[Tuple[Tid, PendingStep]]:
    """All uninterpreted steps of ``program`` (rule P-Step).

    Yields ``(tid, step)`` for every thread that can move; the step's
    read hole, if any, is resolved by the memory model when the step is
    interpreted.
    """
    for tid, com in program.threads:
        for step in command_steps(com):
            yield tid, step


def apply_step(
    program: Program, tid: Tid, step: PendingStep, read_value: Optional[Value] = None
) -> Program:
    """The successor program after ``tid`` performs ``step``.

    ``read_value`` fills the step's read hole (must be ``None`` exactly
    when the step has no hole).
    """
    return program.update(tid, step.resume(read_value))
