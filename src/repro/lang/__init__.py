"""The command language of Section 2 and its uninterpreted semantics.

The language is the paper's grammar::

    Exp ::= Val | Exp^A | neg Exp | Exp (+) Exp
    Com ::= skip | x.swap(n)^RA | x := Exp | x :=^R Exp
          | Com ; Com | if B then Com else Com | while B do Com

Expressions evaluate left-to-right one shared-variable read per step
(Figure 1); commands emit read/write/update *actions* (Figure 2) whose
read values are unconstrained at this layer (Proposition 2.2) — the
memory model constrains them later (Section 3.3).
"""

from repro.lang.actions import (
    Action,
    ActionKind,
    TAU,
    rd,
    rda,
    upd,
    wr,
    wrr,
)
from repro.lang.syntax import (
    Assign,
    BinOp,
    Com,
    Exp,
    If,
    Labeled,
    Lit,
    Load,
    Not,
    Seq,
    Skip,
    Swap,
    While,
)
from repro.lang.semantics import PendingStep, command_steps, is_terminated
from repro.lang.program import Program, program_steps
from repro.lang.parser import ParseError, parse_command, parse_expression, parse_litmus
from repro.lang.unparse import unparse_com, unparse_exp, unparse_litmus
from repro.lang.builder import (
    acq,
    and_,
    assign,
    eq,
    flagvar,
    if_,
    label,
    ne,
    or_,
    seq,
    skip,
    swap,
    var,
    while_,
)

__all__ = [
    "Action",
    "ActionKind",
    "TAU",
    "rd",
    "rda",
    "wr",
    "wrr",
    "upd",
    "Exp",
    "Lit",
    "Load",
    "Not",
    "BinOp",
    "Com",
    "Skip",
    "Assign",
    "Swap",
    "Seq",
    "If",
    "While",
    "Labeled",
    "PendingStep",
    "command_steps",
    "is_terminated",
    "Program",
    "program_steps",
    "skip",
    "assign",
    "swap",
    "seq",
    "if_",
    "while_",
    "label",
    "var",
    "acq",
    "eq",
    "ne",
    "and_",
    "or_",
    "flagvar",
    "ParseError",
    "parse_command",
    "parse_expression",
    "parse_litmus",
    "unparse_com",
    "unparse_exp",
    "unparse_litmus",
]
