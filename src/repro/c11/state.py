"""C11 states ``σ = ((D, sb), rf, mo)`` and their derived orders.

Definition 3.1: a C11 state is a set of events ``D`` together with

* ``sb`` — sequenced-before: total per thread, initialising writes first;
* ``rf`` — reads-from: ``Wr × Rd``, justifying every read value;
* ``mo`` — modification order: total per variable over the writes.

Derived orders (Section 3.1)::

    sw  = rf ∩ (WrR × RdA)          synchronises-with
    hb  = (sb ∪ sw)+                 happens-before
    fr  = (rf⁻¹ ; mo) \\ Id          from-read ("reads-before")
    eco = (fr ∪ mo ∪ rf)+            extended coherence order

States are immutable value objects; transitions build new states via
:meth:`C11State.add_event` / :meth:`C11State.with_rf` /
:meth:`C11State.insert_mo_after`.  Derived orders and per-variable
indices are cached lazily on first use — they sit on the hot path of the
state-space exploration (see DESIGN.md §4).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.c11.events import Event, Tag, init_events
from repro.lang.actions import Value, Var
from repro.lang.program import Tid
from repro.relations.relation import Relation


class C11State:
    """An immutable C11 state with cached derived orders."""

    __slots__ = (
        "events",
        "sb",
        "rf",
        "mo",
        "fast_eco",
        "_sw",
        "_hb",
        "_fr",
        "_eco",
        "_writes_by_var",
        "_events_by_tid",
        "_last",
        "_hash",
        "_canon_key",
        "_canon_ids",
    )

    def __init__(
        self,
        events: Iterable[Event],
        sb: Relation = Relation.empty(),
        rf: Relation = Relation.empty(),
        mo: Relation = Relation.empty(),
        fast_eco: bool = False,
    ) -> None:
        self.events: FrozenSet[Event] = frozenset(events)
        self.sb: Relation = sb
        self.rf: Relation = rf
        self.mo: Relation = mo
        #: provenance flag: states built by the RA event semantics satisfy
        #: update atomicity by construction, so ``eco`` may use Lemma
        #: C.9's closed form (≈8× cheaper than the transitive closure —
        #: see the E10 ablation).  Hand-assembled states (candidates,
        #: justifications) keep the definitional closure.
        self.fast_eco: bool = fast_eco
        self._sw: Optional[Relation] = None
        self._hb: Optional[Relation] = None
        self._fr: Optional[Relation] = None
        self._eco: Optional[Relation] = None
        self._writes_by_var: Optional[Dict[Var, List[Event]]] = None
        self._events_by_tid: Optional[Dict[Tid, List[Event]]] = None
        self._last: Dict[Var, Optional[Event]] = {}
        self._hash: Optional[int] = None
        #: Canonical-key memoization (see repro.interp.canon and
        #: repro.engine.keys): the full key, computed at most once per
        #: object, and the event-identity map, propagated incrementally
        #: from parent to child by the successor constructors below.
        self._canon_key: Optional[object] = None
        self._canon_ids: Optional[Dict[Event, tuple]] = None

    # ------------------------------------------------------------------
    # Value-object protocol
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, C11State):
            return NotImplemented
        return (
            self.events == other.events
            and self.sb == other.sb
            and self.rf == other.rf
            and self.mo == other.mo
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self.events, self.sb, self.rf, self.mo))
        return self._hash

    def __repr__(self) -> str:
        return (
            f"C11State(|D|={len(self.events)}, |sb|={len(self.sb)}, "
            f"|rf|={len(self.rf)}, |mo|={len(self.mo)})"
        )

    # ------------------------------------------------------------------
    # Event classes and indices
    # ------------------------------------------------------------------

    @property
    def writes(self) -> FrozenSet[Event]:
        """``Wr ∩ D`` — every write (updates included)."""
        return frozenset(e for e in self.events if e.is_write)

    @property
    def reads(self) -> FrozenSet[Event]:
        """``Rd ∩ D`` — every read (updates included)."""
        return frozenset(e for e in self.events if e.is_read)

    @property
    def updates(self) -> FrozenSet[Event]:
        """``U ∩ D`` — the RMW updates."""
        return frozenset(e for e in self.events if e.is_update)

    @property
    def init_writes(self) -> FrozenSet[Event]:
        """``I_σ = D ∩ IWr`` — initialising writes present in the state."""
        return frozenset(e for e in self.events if e.is_init)

    def writes_on(self, x: Var) -> Tuple[Event, ...]:
        """The writes to ``x``, in modification order (cached).

        MO-Valid makes ``mo|_x`` a strict total order, so the writes to a
        variable sort uniquely by their number of mo-predecessors.
        """
        if self._writes_by_var is None:
            by_var: Dict[Var, List[Event]] = {}
            for e in self.events:
                if e.is_write:
                    by_var.setdefault(e.var, []).append(e)
            pred = self.mo.predecessors_map()
            for var_events in by_var.values():
                var_events.sort(key=lambda w: (len(pred.get(w, ())), w.tag))
            self._writes_by_var = by_var
        return tuple(self._writes_by_var.get(x, ()))

    def events_of(self, tid: Tid) -> Tuple[Event, ...]:
        """The events of thread ``tid``, in ``sb`` order (cached)."""
        if self._events_by_tid is None:
            by_tid: Dict[Tid, List[Event]] = {}
            for e in self.events:
                by_tid.setdefault(e.tid, []).append(e)
            pred = self.sb.predecessors_map()
            for tid_events in by_tid.values():
                tid_events.sort(key=lambda e: (len(pred.get(e, ())), e.tag))
            self._events_by_tid = by_tid
        return tuple(self._events_by_tid.get(tid, ()))

    def event_by_tag(self, tag: Tag) -> Event:
        """Look up an event by its tag (tags are unique per execution)."""
        for e in self.events:
            if e.tag == tag:
                return e
        raise KeyError(tag)

    def next_tag(self) -> Tag:
        """The smallest positive tag not yet used in this state."""
        used = max((e.tag for e in self.events), default=0)
        return max(used, 0) + 1

    def variables(self) -> FrozenSet[Var]:
        """Every variable written in this state."""
        return frozenset(e.var for e in self.events if e.is_write)

    # ------------------------------------------------------------------
    # Derived orders
    # ------------------------------------------------------------------

    @property
    def sw(self) -> Relation:
        """``sw = rf ∩ (WrR × RdA)`` — synchronises-with."""
        if self._sw is None:
            self._sw = self.rf.filter_pairs(
                lambda w, r: w.is_release and r.is_acquire
            )
        return self._sw

    @property
    def hb(self) -> Relation:
        """``hb = (sb ∪ sw)+`` — happens-before."""
        if self._hb is None:
            self._hb = (self.sb | self.sw).transitive_closure()
        return self._hb

    @property
    def fr(self) -> Relation:
        """``fr = (rf⁻¹ ; mo) \\ Id`` — from-read.

        The identity is removed so an update (which reads its immediate
        mo-predecessor) is not fr-related to itself (Section 3.1).
        """
        if self._fr is None:
            self._fr = self.rf.inverse().compose(self.mo).remove_identity()
        return self._fr

    @property
    def eco(self) -> Relation:
        """``eco = (fr ∪ mo ∪ rf)+`` — extended coherence order.

        With ``fast_eco`` set (RA-built states, which satisfy update
        atomicity) the equivalent closed form of Lemma C.9 is used:
        ``rf ∪ mo ∪ fr ∪ (mo ; rf) ∪ (fr ; rf)``.  Property tests
        (tests/test_properties.py) confirm the two agree on every
        explored state.
        """
        if self._eco is None:
            if self.fast_eco:
                rf, mo, fr = self.rf, self.mo, self.fr
                self._eco = rf | mo | fr | mo.compose(rf) | fr.compose(rf)
            else:
                self._eco = (self.fr | self.mo | self.rf).transitive_closure()
        return self._eco

    def eco_definitional(self) -> Relation:
        """The definitional ``(fr ∪ mo ∪ rf)+``, closure always taken
        (ground truth for the Lemma C.9 property tests)."""
        return (self.fr | self.mo | self.rf).transitive_closure()

    # ------------------------------------------------------------------
    # last(x) and update-only variables (Section 5)
    # ------------------------------------------------------------------

    def last(self, x: Var) -> Optional[Event]:
        """``σ.last(x)`` — the mo-maximal write to ``x`` (Section 5.1).

        Well-defined in any valid state; ``None`` when ``x`` was never
        written (no initialisation either).
        """
        if x not in self._last:
            ws = self.writes_on(x)
            self._last[x] = ws[-1] if ws else None
        return self._last[x]

    def is_update_only(self, x: Var) -> bool:
        """Whether ``x`` is an *update-only* variable (Section 5.1): every
        modification is an update or an initialising write."""
        return all(
            w.is_update or w.is_init for w in self.writes_on(x)
        )

    # ------------------------------------------------------------------
    # Construction of successor states
    # ------------------------------------------------------------------

    def add_event(self, e: Event) -> "C11State":
        """``(D, sb) + e`` — append ``e`` sb-after the initialising writes
        and all previous events of its own thread (Section 3.2)."""
        if any(old.tag == e.tag for old in self.events):
            raise ValueError(f"tag {e.tag} already used")
        new_sb = self.sb.add_all(
            (old, e)
            for old in self.events
            if old.tid == e.tid or old.is_init
        )
        child = C11State(
            self.events | {e}, new_sb, self.rf, self.mo, self.fast_eco
        )
        if self._canon_ids is not None:
            # The appended event is sb-last in its thread, so every
            # existing canonical identity survives; only e's is new.
            ids = dict(self._canon_ids)
            if e.is_init:
                ids[e] = ("init", e.var)
            else:
                pos = sum(1 for old in self.events if old.tid == e.tid)
                ids[e] = ("e", e.tid, pos)
            child._canon_ids = ids
        return child

    def with_rf(self, w: Event, r: Event) -> "C11State":
        """The state with an additional reads-from edge ``(w, r)``."""
        child = C11State(
            self.events, self.sb, self.rf.add((w, r)), self.mo, self.fast_eco
        )
        child._canon_ids = self._canon_ids  # identities depend on (D, sb) only
        return child

    def insert_mo_after(self, w: Event, e: Event) -> "C11State":
        """``mo[w, e]`` — insert ``e`` immediately after ``w`` in ``mo``.

        ``mo[w,e] = mo ∪ (mo+w × {e}) ∪ ({e} × mo[w])`` where
        ``mo+w = {w} ∪ mo⁻¹[w]``: everything up to and including ``w``
        precedes ``e``, and ``e`` precedes everything after ``w``.
        """
        before = self.mo.downset(w)  # {w} ∪ mo⁻¹[w]
        after = self.mo.image(w)
        new_pairs = {(b, e) for b in before} | {(e, a) for a in after}
        child = C11State(
            self.events, self.sb, self.rf, self.mo.add_all(new_pairs),
            self.fast_eco,
        )
        child._canon_ids = self._canon_ids  # identities depend on (D, sb) only
        return child

    def restricted_to(self, keep: Iterable[Event]) -> "C11State":
        """``σ ↾ E`` — restriction to a subset of events (Thm 4.8)."""
        kept = frozenset(keep)
        if not kept <= self.events:
            raise ValueError("restriction set must be a subset of D")
        return C11State(
            kept,
            self.sb.restrict_to(kept),
            self.rf.restrict_to(kept),
            self.mo.restrict_to(kept),
            self.fast_eco,
        )


def initial_state(init_values: Mapping[Var, Value]) -> C11State:
    """The initial state ``σ_0 = ((I, ∅), ∅, ∅)``.

    ``I`` holds exactly one initialising write per variable, none of them
    ordered by ``sb``, ``rf`` or ``mo`` (Section 3.1).  States grown from
    here by the RA event semantics keep update atomicity by construction,
    so the fast ``eco`` closed form is enabled.
    """
    return C11State(init_events(dict(init_values)), fast_eco=True)
