"""C11 states ``σ = ((D, sb), rf, mo)`` and their derived orders.

Definition 3.1: a C11 state is a set of events ``D`` together with

* ``sb`` — sequenced-before: total per thread, initialising writes first;
* ``rf`` — reads-from: ``Wr × Rd``, justifying every read value;
* ``mo`` — modification order: total per variable over the writes.

Derived orders (Section 3.1)::

    sw  = rf ∩ (WrR × RdA)          synchronises-with
    hb  = (sb ∪ sw)+                 happens-before
    fr  = (rf⁻¹ ; mo) \\ Id          from-read ("reads-before")
    eco = (fr ∪ mo ∪ rf)+            extended coherence order

States are immutable value objects; transitions build new states via
:meth:`C11State.add_event` / :meth:`C11State.with_rf` /
:meth:`C11State.insert_mo_after`.

Representation (DESIGN.md §11): states grown from
:func:`initial_state` carry a :class:`~repro.c11.compact.CompactOrders`
— interned event indices, per-thread/per-variable order *sequences*, an
``rf`` int map and per-event ``hb`` bitmasks — maintained incrementally
by the successor constructors, so the exploration hot path never builds
a pair set or runs a closure.  The :class:`Relation` views ``sb``,
``rf``, ``mo`` (and the derived ``sw``/``hb``/``fr``/``eco``) are
materialised lazily, only for the axiomatic/checking consumers that do
pair algebra.  States assembled by hand from explicit relations keep
the original representation and code paths throughout.
"""

from __future__ import annotations

from bisect import insort
from time import perf_counter as _clock
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.c11.compact import (
    ORDER_TIMER,
    CachedKey,
    CompactOrders,
    compact_enabled,
)
from repro.c11.events import Event, Tag, init_events
from repro.lang.actions import Value, Var
from repro.lang.program import INIT_TID, Tid
from repro.relations.relation import Relation


class C11State:
    """An immutable C11 state with cached derived orders."""

    __slots__ = (
        "_events",
        "_sb",
        "_rf",
        "_mo",
        "fast_eco",
        "_compact",
        "_sw",
        "_hb",
        "_fr",
        "_eco",
        "_writes_by_var",
        "_events_by_tid",
        "_by_tag",
        "_last",
        "_hash",
        "_canon_key",
        "_canon_ids",
        "_rf_key",
        "_ra_trans",
    )

    def __init__(
        self,
        events: Iterable[Event],
        sb: Relation = Relation.empty(),
        rf: Relation = Relation.empty(),
        mo: Relation = Relation.empty(),
        fast_eco: bool = False,
    ) -> None:
        self._events: Optional[FrozenSet[Event]] = frozenset(events)
        self._sb: Optional[Relation] = sb
        self._rf: Optional[Relation] = rf
        self._mo: Optional[Relation] = mo
        #: provenance flag: states built by the RA event semantics satisfy
        #: update atomicity by construction, so ``eco`` may use Lemma
        #: C.9's closed form (≈8× cheaper than the transitive closure —
        #: see the E10 ablation).  Hand-assembled states (candidates,
        #: justifications) keep the definitional closure.
        self.fast_eco: bool = fast_eco
        #: The incremental representation (DESIGN.md §11); ``None`` for
        #: hand-assembled states, which use the relations directly.
        self._compact: Optional[CompactOrders] = None
        self._init_lazy()

    def _init_lazy(self) -> None:
        self._sw: Optional[Relation] = None
        self._hb: Optional[Relation] = None
        self._fr: Optional[Relation] = None
        self._eco: Optional[Relation] = None
        self._writes_by_var: Optional[Dict[Var, List[Event]]] = None
        self._events_by_tid: Optional[Dict[Tid, List[Event]]] = None
        self._by_tag: Optional[Dict[Tag, Event]] = None
        self._last: Dict[Var, Optional[Event]] = {}
        self._hash: Optional[int] = None
        #: Canonical-key memoization (see repro.interp.canon and
        #: repro.engine.keys): the full key, computed at most once per
        #: object, and the event-identity map, propagated incrementally
        #: from parent to child by the successor constructors below.
        self._canon_key: Optional[object] = None
        self._canon_ids: Optional[Dict[Event, tuple]] = None
        #: Reads-from-equivalence key memo: ``(live signature, key)``
        #: (see repro.engine.keys.cached_reads_from_key) — unlike the
        #: canonical key it depends on which threads may still step.
        self._rf_key: Optional[tuple] = None
        #: Per-object memo of the RA model's transition lists, keyed by
        #: ``(tid, interned step)`` (see RAMemoryModel.transitions_list).
        self._ra_trans: Optional[dict] = None

    @classmethod
    def _from_compact(
        cls, events: Optional[FrozenSet[Event]], compact: CompactOrders,
        fast_eco: bool,
    ) -> "C11State":
        """A state whose event set and relations materialise lazily from
        ``compact`` (``events=None`` on the successor hot path — the
        interned sequence already holds them)."""
        self = cls.__new__(cls)
        self._events = events
        self._sb = None
        self._rf = None
        self._mo = None
        self.fast_eco = fast_eco
        self._compact = compact
        self._init_lazy()
        return self

    # ------------------------------------------------------------------
    # Event-set and Relation views (lazy for compact-built states)
    # ------------------------------------------------------------------

    @property
    def events(self) -> FrozenSet[Event]:
        """``D`` — the event set (materialised lazily from the interned
        sequence on compact-built states, so the successor hot path
        never rebuilds a frozenset)."""
        if self._events is None:
            self._events = frozenset(self._compact.events_seq)
        return self._events

    @property
    def sb(self) -> Relation:
        """Sequenced-before, as a pair-set :class:`Relation` view."""
        if self._sb is None:
            self._sb = Relation(self._compact.sb_pairs())
        return self._sb

    @property
    def rf(self) -> Relation:
        """Reads-from, as a pair-set :class:`Relation` view."""
        if self._rf is None:
            self._rf = Relation(self._compact.rf_pairs())
        return self._rf

    @property
    def mo(self) -> Relation:
        """Modification order, as a pair-set :class:`Relation` view."""
        if self._mo is None:
            self._mo = Relation(self._compact.mo_pairs())
        return self._mo

    @property
    def compact(self) -> Optional[CompactOrders]:
        """The incremental representation, when this state carries one
        and is not mid-step (a write appended but not yet mo-placed)."""
        c = self._compact
        if c is not None and not c.unplaced:
            return c
        return None

    # ------------------------------------------------------------------
    # Value-object protocol
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, C11State):
            return NotImplemented
        if self is other:
            return True
        if self.events != other.events:
            return False
        mine, theirs = self._compact, other._compact
        if mine is not None and theirs is not None:
            # Content comparison over the sequence forms: with equal
            # event sets, equal thread sequences determine sb, and the
            # mo sequences / rf event maps determine the relations.
            return (
                mine.threads == theirs.threads
                and mine.mo == theirs.mo
                and frozenset(mine.rf_pairs()) == frozenset(theirs.rf_pairs())
                and mine.unplaced == theirs.unplaced
            )
        return (
            self.sb == other.sb
            and self.rf == other.rf
            and self.mo == other.mo
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self.events, self.sb, self.rf, self.mo))
        return self._hash

    def __getstate__(self):
        # Checkpoints pickle frontier states (DESIGN.md §16).  Only the
        # structural core may cross the boundary: ``_hash`` bakes in
        # per-process string salting, ``_ra_trans`` holds interned
        # lowered steps whose update closures cannot pickle, and the
        # remaining slots are derived caches that rebuild on demand.
        return (
            self._events, self._sb, self._rf, self._mo, self.fast_eco,
            self._compact,
        )

    def __setstate__(self, state) -> None:
        (
            self._events, self._sb, self._rf, self._mo, self.fast_eco,
            self._compact,
        ) = state
        self._init_lazy()

    def __repr__(self) -> str:
        return (
            f"C11State(|D|={len(self.events)}, |sb|={len(self.sb)}, "
            f"|rf|={len(self.rf)}, |mo|={len(self.mo)})"
        )

    # ------------------------------------------------------------------
    # Event classes and indices
    # ------------------------------------------------------------------

    @property
    def writes(self) -> FrozenSet[Event]:
        """``Wr ∩ D`` — every write (updates included)."""
        return frozenset(e for e in self.events if e.is_write)

    @property
    def reads(self) -> FrozenSet[Event]:
        """``Rd ∩ D`` — every read (updates included)."""
        return frozenset(e for e in self.events if e.is_read)

    @property
    def updates(self) -> FrozenSet[Event]:
        """``U ∩ D`` — the RMW updates."""
        return frozenset(e for e in self.events if e.is_update)

    @property
    def init_writes(self) -> FrozenSet[Event]:
        """``I_σ = D ∩ IWr`` — initialising writes present in the state."""
        return frozenset(e for e in self.events if e.is_init)

    def writes_on(self, x: Var) -> Tuple[Event, ...]:
        """The writes to ``x``, in modification order.

        Sequence-backed states answer straight from the ``mo`` sequence;
        otherwise MO-Valid makes ``mo|_x`` a strict total order, so the
        writes sort uniquely by their number of mo-predecessors (cached).
        """
        c = self.compact
        if c is not None:
            return c.mo.get(x, ())
        if self._writes_by_var is None:
            by_var: Dict[Var, List[Event]] = {}
            for e in self.events:
                if e.is_write:
                    by_var.setdefault(e.var, []).append(e)
            pred = self.mo.predecessors_map()
            for var_events in by_var.values():
                var_events.sort(key=lambda w: (len(pred.get(w, ())), w.tag))
            self._writes_by_var = by_var
        return tuple(self._writes_by_var.get(x, ()))

    def events_of(self, tid: Tid) -> Tuple[Event, ...]:
        """The events of thread ``tid``, in ``sb`` order.

        Sequence-backed states answer straight from the per-thread
        tuples (the initialisation block, tid 0, sorts by tag exactly
        as the legacy predecessor-count key did)."""
        c = self.compact
        if c is not None:
            seq = c.threads.get(tid)
            if seq is not None:
                return seq
            if tid == INIT_TID and c.inits:
                return c.inits
            return ()
        if self._events_by_tid is None:
            by_tid: Dict[Tid, List[Event]] = {}
            for e in self.events:
                by_tid.setdefault(e.tid, []).append(e)
            pred = self.sb.predecessors_map()
            for tid_events in by_tid.values():
                tid_events.sort(key=lambda e: (len(pred.get(e, ())), e.tag))
            self._events_by_tid = by_tid
        return tuple(self._events_by_tid.get(tid, ()))

    def event_by_tag(self, tag: Tag) -> Event:
        """Look up an event by its tag (tags are unique per execution).

        O(1): compact states carry the table; others build it once."""
        c = self._compact
        if c is not None:
            try:
                return c.tag_table()[tag]
            except KeyError:
                raise KeyError(tag) from None
        if self._by_tag is None:
            self._by_tag = {e.tag: e for e in self.events}
        try:
            return self._by_tag[tag]
        except KeyError:
            raise KeyError(tag) from None

    def next_tag(self) -> Tag:
        """The smallest positive tag not yet used in this state.

        Carried forward through the successor constructors on compact
        states instead of re-scanning every event."""
        c = self._compact
        if c is not None:
            return c.next_tag
        used = max((e.tag for e in self.events), default=0)
        return max(used, 0) + 1

    def variables(self) -> FrozenSet[Var]:
        """Every variable written in this state."""
        return frozenset(e.var for e in self.events if e.is_write)

    # ------------------------------------------------------------------
    # Derived orders
    # ------------------------------------------------------------------

    @property
    def sw(self) -> Relation:
        """``sw = rf ∩ (WrR × RdA)`` — synchronises-with."""
        if self._sw is None:
            self._sw = self.rf.filter_pairs(
                lambda w, r: w.is_release and r.is_acquire
            )
        return self._sw

    @property
    def hb(self) -> Relation:
        """``hb = (sb ∪ sw)+`` — happens-before.

        Compact states materialise the view straight from the
        incremental bitmasks; others run the definitional closure."""
        if self._hb is None:
            c = self.compact
            if c is not None:
                self._hb = Relation(c.hb_pairs())
            else:
                t0 = _clock()
                self._hb = (self.sb | self.sw).transitive_closure()
                ORDER_TIMER.seconds += _clock() - t0
        return self._hb

    @property
    def fr(self) -> Relation:
        """``fr = (rf⁻¹ ; mo) \\ Id`` — from-read.

        The identity is removed so an update (which reads its immediate
        mo-predecessor) is not fr-related to itself (Section 3.1).
        """
        if self._fr is None:
            self._fr = self.rf.inverse().compose(self.mo).remove_identity()
        return self._fr

    @property
    def eco(self) -> Relation:
        """``eco = (fr ∪ mo ∪ rf)+`` — extended coherence order.

        With ``fast_eco`` set (RA-built states, which satisfy update
        atomicity) the equivalent closed form of Lemma C.9 is used:
        ``rf ∪ mo ∪ fr ∪ (mo ; rf) ∪ (fr ; rf)``.  Property tests
        (tests/test_properties.py) confirm the two agree on every
        explored state.
        """
        if self._eco is None:
            t0 = _clock()
            if self.fast_eco:
                rf, mo, fr = self.rf, self.mo, self.fr
                self._eco = rf | mo | fr | mo.compose(rf) | fr.compose(rf)
            else:
                self._eco = (self.fr | self.mo | self.rf).transitive_closure()
            ORDER_TIMER.seconds += _clock() - t0
        return self._eco

    def eco_definitional(self) -> Relation:
        """The definitional ``(fr ∪ mo ∪ rf)+``, closure always taken
        (ground truth for the Lemma C.9 property tests)."""
        return (self.fr | self.mo | self.rf).transitive_closure()

    # ------------------------------------------------------------------
    # last(x) and update-only variables (Section 5)
    # ------------------------------------------------------------------

    def last(self, x: Var) -> Optional[Event]:
        """``σ.last(x)`` — the mo-maximal write to ``x`` (Section 5.1).

        Well-defined in any valid state; ``None`` when ``x`` was never
        written (no initialisation either).
        """
        if x not in self._last:
            ws = self.writes_on(x)
            self._last[x] = ws[-1] if ws else None
        return self._last[x]

    def is_update_only(self, x: Var) -> bool:
        """Whether ``x`` is an *update-only* variable (Section 5.1): every
        modification is an update or an initialising write."""
        return all(
            w.is_update or w.is_init for w in self.writes_on(x)
        )

    # ------------------------------------------------------------------
    # Construction of successor states
    # ------------------------------------------------------------------

    def add_event(self, e: Event) -> "C11State":
        """``(D, sb) + e`` — append ``e`` sb-after the initialising writes
        and all previous events of its own thread (Section 3.2)."""
        c = self._compact
        if c is not None:
            if e.tag in c.tag_table():
                raise ValueError(f"tag {e.tag} already used")
            child_c = c.add_event(e)
            if child_c is not None:
                child = C11State._from_compact(None, child_c, self.fast_eco)
                self._propagate_canon_ids(child, e)
                self._propagate_key_add(child, e)
                return child
        if any(old.tag == e.tag for old in self.events):
            raise ValueError(f"tag {e.tag} already used")
        new_sb = self.sb.add_all(
            (old, e)
            for old in self.events
            if old.tid == e.tid or old.is_init
        )
        child = C11State(
            self.events | {e}, new_sb, self.rf, self.mo, self.fast_eco
        )
        self._propagate_canon_ids(child, e)
        return child

    def _propagate_canon_ids(self, child: "C11State", e: Event) -> None:
        if self._canon_ids is None:
            return
        # The appended event is sb-last in its thread, so every
        # existing canonical identity survives; only e's is new.
        ids = dict(self._canon_ids)
        if e.is_init:
            ids[e] = ("init", e.var)
        else:
            c = self._compact
            if c is not None:
                pos = len(c.threads.get(e.tid, ()))
            else:
                pos = sum(1 for old in self.events if old.tid == e.tid)
            ids[e] = ("e", e.tid, pos)
        child._canon_ids = ids

    # -- incremental canonical keys (DESIGN.md §4/§11) -----------------
    #
    # The canonical key is `(events_part, rf_part, mo_part)` — sorted
    # tuples over the propagated event identities.  Each successor
    # constructor changes exactly one part by one sorted insertion (or
    # one per-variable sequence, for mo), so when the parent has been
    # keyed the child's key is a tuple surgery, not a re-derivation.
    # The parts produced must be byte-identical to a fresh
    # `canon.canonical_key` computation; `derived_order_divergences`
    # and test_engine's propagation regressions enforce that.

    def _key_parts(self):
        key = self._canon_key
        if key is None:
            return None
        return key.parts if type(key) is CachedKey else key

    def _propagate_key_add(self, child: "C11State", e: Event) -> None:
        parts = self._key_parts()
        ids = child._canon_ids
        if parts is None or ids is None:
            return
        events_part, rf_part, mo_part = parts
        described = e.described(ids[e])
        merged = list(events_part)
        insort(merged, described)
        child._canon_key = CachedKey((tuple(merged), rf_part, mo_part))

    def _propagate_key_rf(self, child: "C11State", w: Event, r: Event) -> None:
        parts = self._key_parts()
        ids = self._canon_ids
        if parts is None or ids is None:
            return
        events_part, rf_part, mo_part = parts
        pair = (ids[w], ids[r])
        if pair in rf_part:  # the edge was already present: key unchanged
            child._canon_key = self._canon_key
            return
        merged = list(rf_part)
        insort(merged, pair)
        child._canon_key = CachedKey((events_part, tuple(merged), mo_part))

    def _propagate_key_mo(
        self, child: "C11State", old_seq: Tuple[Event, ...],
        new_seq: Tuple[Event, ...],
    ) -> None:
        parts = self._key_parts()
        ids = self._canon_ids
        if parts is None or ids is None:
            return
        events_part, rf_part, mo_part = parts
        merged = list(mo_part)
        try:
            merged.remove(tuple(ids[x] for x in old_seq))
        except (ValueError, KeyError):  # foreign shape: recompute lazily
            return
        insort(merged, tuple(ids[x] for x in new_seq))
        child._canon_key = CachedKey((events_part, rf_part, tuple(merged)))

    # -- fused successor constructors (DESIGN.md §12) ------------------
    #
    # The RA semantics never observes the intermediate states of its
    # add_event/with_rf/insert_mo_after chains; these build the final
    # state in one compact clone with one fused key surgery.  Each falls
    # back to composing the unfused constructors (which carry the
    # definitional pair-set paths and validation) whenever the compact
    # fast path declines.

    def read_successor(self, e: Event, w: Event) -> "C11State":
        """``(self + e).with_rf(w, e)`` — ``e`` a fresh plain read."""
        c = self._compact
        # ``tag >= next_tag`` certifies freshness without a tag table —
        # sparse unused tags (hand-built states) take the chained path,
        # which validates duplicates definitionally.
        if c is not None and e.tag >= c.next_tag:
            child_c = c.add_read_event(e, w)
            if child_c is not None:
                child = C11State._from_compact(None, child_c, self.fast_eco)
                self._propagate_canon_ids(child, e)
                self._propagate_key_fused(child, e, w, rf=True, new_mo=None)
                return child
        return self.add_event(e).with_rf(w, e)

    def write_successor(self, e: Event, w: Event) -> "C11State":
        """``(self + e).insert_mo_after(w, e)`` — ``e`` a fresh write."""
        c = self._compact
        if c is not None and e.tag >= c.next_tag:
            child_c = c.add_write_event(e, w)
            if child_c is not None:
                child = C11State._from_compact(None, child_c, self.fast_eco)
                self._propagate_canon_ids(child, e)
                self._propagate_key_fused(
                    child, e, w, rf=False,
                    new_mo=(c.mo.get(e.var, ()), child_c.mo[e.var]),
                )
                return child
        return self.add_event(e).insert_mo_after(w, e)

    def rmw_successor(self, e: Event, w: Event) -> "C11State":
        """``(self + e).with_rf(w, e).insert_mo_after(w, e)`` — ``e`` a
        fresh update reading from and mo-following ``w``."""
        c = self._compact
        if c is not None and e.tag >= c.next_tag:
            child_c = c.add_rmw_event(e, w)
            if child_c is not None:
                child = C11State._from_compact(None, child_c, self.fast_eco)
                self._propagate_canon_ids(child, e)
                self._propagate_key_fused(
                    child, e, w, rf=True,
                    new_mo=(c.mo.get(e.var, ()), child_c.mo[e.var]),
                )
                return child
        return self.add_event(e).with_rf(w, e).insert_mo_after(w, e)

    def _propagate_key_fused(
        self, child: "C11State", e: Event, w: Event,
        rf: bool, new_mo,
    ) -> None:
        """One key surgery for a fused successor: the event insertion,
        plus the rf pair and/or the mo-sequence replacement, producing
        the same parts the chained propagations compose."""
        parts = self._key_parts()
        ids = child._canon_ids
        if parts is None or ids is None:
            return
        events_part, rf_part, mo_part = parts
        merged_e = list(events_part)
        insort(merged_e, e.described(ids[e]))
        if rf:
            merged_rf = list(rf_part)
            insort(merged_rf, (ids[w], ids[e]))
            rf_part = tuple(merged_rf)
        if new_mo is not None:
            old_seq, new_seq = new_mo
            merged_mo = list(mo_part)
            try:
                merged_mo.remove(tuple(ids[x] for x in old_seq))
            except (ValueError, KeyError):  # foreign shape: recompute lazily
                return
            insort(merged_mo, tuple(ids[x] for x in new_seq))
            mo_part = tuple(merged_mo)
        child._canon_key = CachedKey((tuple(merged_e), rf_part, mo_part))

    def with_rf(self, w: Event, r: Event) -> "C11State":
        """The state with an additional reads-from edge ``(w, r)``."""
        c = self._compact
        if c is not None:
            child_c = c.with_rf(w, r)
            if child_c is not None:
                child = C11State._from_compact(
                    self._events, child_c, self.fast_eco
                )
                child._canon_ids = self._canon_ids  # ids depend on (D, sb)
                self._propagate_key_rf(child, w, r)
                return child
        child = C11State(
            self.events, self.sb, self.rf.add((w, r)), self.mo, self.fast_eco
        )
        child._canon_ids = self._canon_ids  # identities depend on (D, sb) only
        return child

    def insert_mo_after(self, w: Event, e: Event) -> "C11State":
        """``mo[w, e]`` — insert ``e`` immediately after ``w`` in ``mo``.

        ``mo[w,e] = mo ∪ (mo+w × {e}) ∪ ({e} × mo[w])`` where
        ``mo+w = {w} ∪ mo⁻¹[w]``: everything up to and including ``w``
        precedes ``e``, and ``e`` precedes everything after ``w``.
        """
        c = self._compact
        if c is not None:
            child_c = c.insert_mo_after(w, e)
            if child_c is not None:
                child = C11State._from_compact(
                    self._events, child_c, self.fast_eco
                )
                child._canon_ids = self._canon_ids  # ids depend on (D, sb)
                self._propagate_key_mo(
                    child, c.mo.get(e.var, ()), child_c.mo[e.var]
                )
                return child
        before = self.mo.downset(w)  # {w} ∪ mo⁻¹[w]
        after = self.mo.image(w)
        new_pairs = {(b, e) for b in before} | {(e, a) for a in after}
        child = C11State(
            self.events, self.sb, self.rf, self.mo.add_all(new_pairs),
            self.fast_eco,
        )
        child._canon_ids = self._canon_ids  # identities depend on (D, sb) only
        return child

    def restricted_to(self, keep: Iterable[Event]) -> "C11State":
        """``σ ↾ E`` — restriction to a subset of events (Thm 4.8)."""
        kept = frozenset(keep)
        if not kept <= self.events:
            raise ValueError("restriction set must be a subset of D")
        return C11State(
            kept,
            self.sb.restrict_to(kept),
            self.rf.restrict_to(kept),
            self.mo.restrict_to(kept),
            self.fast_eco,
        )


def initial_state(init_values: Mapping[Var, Value]) -> C11State:
    """The initial state ``σ_0 = ((I, ∅), ∅, ∅)``.

    ``I`` holds exactly one initialising write per variable, none of them
    ordered by ``sb``, ``rf`` or ``mo`` (Section 3.1).  States grown from
    here by the RA event semantics keep update atomicity by construction,
    so the fast ``eco`` closed form is enabled — and they carry the
    incremental :class:`~repro.c11.compact.CompactOrders` representation
    (unless ``REPRO_NO_COMPACT`` disables it for A/B measurement).
    """
    inits = tuple(init_events(dict(init_values)))
    if compact_enabled():
        return C11State._from_compact(
            frozenset(inits), CompactOrders.from_inits(inits), True
        )
    return C11State(inits, fast_eco=True)
