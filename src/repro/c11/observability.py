"""Encountered, observable and covered writes (paper, Section 3.2).

The RA semantics is built on a per-thread notion of *observability*:

* ``EW_σ(t)`` — writes thread ``t`` has (directly or indirectly)
  encountered: ``{w ∈ Wr ∩ D | ∃e ∈ D. tid(e) = t ∧ (w, e) ∈ eco? ; hb?}``.
* ``OW_σ(t)`` — writes ``t`` may still observe: those not mo-superseded by
  an encountered write: ``{w ∈ Wr ∩ D | ∀w' ∈ EW_σ(t). (w, w') ∉ mo}``.
* ``CW_σ`` — covered writes: those read by an update,
  ``{w ∈ Wr ∩ D | ∃u ∈ U. (w, u) ∈ rf}``; writes and updates may never be
  mo-inserted directly after a covered write (update atomicity).

These three sets drive the Read/Write/RMW rules of Figure 3 and the whole
verification calculus (``x =_t v`` unfolds to ``OW_σ(t)|_x = {σ.last(x)}``).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Set

from repro.c11.events import Event
from repro.c11.state import C11State
from repro.lang.actions import Var
from repro.lang.program import Tid


def encountered_writes(state: C11State, tid: Tid) -> FrozenSet[Event]:
    """``EW_σ(t)`` — the writes thread ``t`` is aware of.

    ``(w, e) ∈ eco? ; hb?`` unfolds to: ``w = e``, or ``(w, e) ∈ eco``, or
    ``(w, e) ∈ hb``, or ``∃z. (w, z) ∈ eco ∧ (z, e) ∈ hb``.  Sequence-
    backed states answer with one bitmask sweep (DESIGN.md §11): the
    thread's ``hb`` cone, widened by cached eco-predecessor masks, then
    intersected with the write mask.  Hand-assembled states run the
    original backward sweep over ``hb``/``eco`` predecessor maps —
    O(edges), no closure composition materialised.
    """
    c = state.compact if isinstance(state, C11State) else None
    if c is not None:
        return frozenset(
            c.events_from_mask(c.encountered_mask(tid) & c.write_mask)
        )
    my_events = state.events_of(tid)
    if not my_events:
        return frozenset()

    hb_pred = state.hb.predecessors_map()
    eco_pred = state.eco.predecessors_map()

    # Everything hb?-before an event of t (the hb "cone" feeding t)...
    hb_sources: Set[Event] = set(my_events)
    for e in my_events:
        hb_sources |= hb_pred.get(e, set())
    # ... and everything eco?-before one of those.
    encountered: Set[Event] = set(hb_sources)
    for z in hb_sources:
        encountered |= eco_pred.get(z, set())

    return frozenset(w for w in encountered if w.is_write)


def observable_writes(
    state: C11State, tid: Tid, var: Optional[Var] = None
) -> FrozenSet[Event]:
    """``OW_σ(t)`` — the writes thread ``t`` may read from next.

    A write is observable unless some encountered write mo-supersedes it.
    With ``var`` given, restricts to writes on that variable (the common
    query of the Read/Write/RMW rules).

    A thread that has not executed any action has ``EW_σ(t) = ∅`` and so
    observes *every* write.
    """
    c = state.compact if isinstance(state, C11State) else None
    if c is not None:
        return c.observable_set(tid, var)
    ew = encountered_writes(state, tid)
    mo_succ = state.mo.successors_map()
    candidates = (
        state.writes_on(var) if var is not None else tuple(state.writes)
    )
    return frozenset(
        w for w in candidates if not (mo_succ.get(w, set()) & ew)
    )


def covered_writes(state: C11State) -> FrozenSet[Event]:
    """``CW_σ`` — writes immediately followed (in rf) by an update.

    Maintained incrementally as a bitmask on sequence-backed states
    (``with_rf`` sets the observed write's bit when the reader is an
    update); recomputed from the ``rf`` adjacency otherwise."""
    c = state.compact if isinstance(state, C11State) else None
    if c is not None:
        return frozenset(c.events_from_mask(c.covered))
    rf_succ = state.rf.successors_map()
    return frozenset(
        w
        for w in state.writes
        if any(r.is_update for r in rf_succ.get(w, ()))
    )


def observability_summary(state: C11State) -> Dict[Tid, Dict[str, FrozenSet[Event]]]:
    """EW/OW per thread plus the global CW — for debugging and the
    Example 3.4 reproduction."""
    tids = sorted({e.tid for e in state.events if not e.is_init})
    out: Dict[Tid, Dict[str, FrozenSet[Event]]] = {}
    for t in tids:
        out[t] = {
            "EW": encountered_writes(state, t),
            "OW": observable_writes(state, t),
        }
    return out
