"""The RA event semantics — Figure 3's Read, Write and RMW rules.

Each transition ``σ --(w, e)-->RA σ'`` records the *observed write* ``w``
alongside the new event ``e``; the paper keeps ``w`` explicit because the
verification calculus (Figure 4's rules) is conditioned on which
modification a transition observes.

* **Read** — ``e`` reads variable ``x``: pick any ``w ∈ OW_σ(t)`` on ``x``;
  the value read is ``wrval(w)``; ``rf' = rf ∪ {(w, e)}``.
* **Write** — ``e`` writes ``x``: pick any ``w ∈ OW_σ(t) \\ CW_σ`` on ``x``
  and insert ``e`` immediately after ``w`` in ``mo``.
* **RMW** — both at once: ``w ∈ OW_σ(t) \\ CW_σ`` on ``x`` with
  ``wrval(w) = rdval(e)``; add the rf edge *and* the mo insertion —
  guaranteeing the update sits mo-adjacent to the write it read.

Reads are validated **on the fly**: every state this module produces is a
valid C11 state (Theorem 4.4; checked empirically by
``repro.checking.soundness``).
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Union

from repro.c11.events import Event
from repro.c11.observability import covered_writes, observable_writes
from repro.c11.state import C11State
from repro.lang.actions import Action, ActionKind, Value, Var, intern_action
from repro.lang.program import Tid


class RATransition:
    """One step ``σ --(observed, event)-->RA target`` of the event
    semantics.  Slotted plain class: one is built per transition on the
    exploration hot path (see ``InterpretedStep``)."""

    __slots__ = ("source", "observed", "event", "target")

    def __init__(
        self, source: C11State, observed: Event, event: Event,
        target: C11State,
    ) -> None:
        self.source = source
        self.observed = observed
        self.event = event
        self.target = target

    def __repr__(self) -> str:
        return (
            f"RATransition(observed={self.observed!r}, "
            f"event={self.event!r})"
        )

    def __str__(self) -> str:
        return f"--[{self.observed}] {self.event}-->"


def ra_read_targets(state: C11State, tid: Tid, var: Var) -> List[Event]:
    """The writes a read of ``var`` by ``tid`` may observe (rule Read).

    Sequence-backed states (DESIGN.md §11) filter the candidates with
    one bitmask pass over the variable's ``mo`` sequence against the
    thread's cached encountered mask — no derived-order relation is
    ever materialised on this path."""
    c = state.compact
    if c is not None:
        return c.read_targets(tid, var)
    return sorted(observable_writes(state, tid, var), key=lambda w: w.tag)


def ra_write_targets(state: C11State, tid: Tid, var: Var) -> List[Event]:
    """The writes a write/update may be mo-inserted after (Write/RMW):
    observable and not covered."""
    c = state.compact
    if c is not None:
        return c.write_targets(tid, var)
    covered = covered_writes(state)
    return sorted(
        (w for w in observable_writes(state, tid, var) if w not in covered),
        key=lambda w: w.tag,
    )


def ra_transitions_for_action(
    state: C11State, action: Action, tid: Tid
) -> Iterator[RATransition]:
    """All RA transitions performing exactly ``action`` from ``state``.

    For read actions the read value of ``action`` must match the observed
    write's value (this is how the axiomatic replay of Theorem 4.8 pins
    down a specific execution).  Use :func:`ra_successors` instead when
    the read value is a hole to be enumerated.
    """
    if action.kind is ActionKind.TAU:
        return
    tag = state.next_tag()
    event = Event(tag, action, tid)
    x = action.var
    assert x is not None

    if action.kind in (ActionKind.RD, ActionKind.RDA):
        for w in ra_read_targets(state, tid, x):
            if w.wrval == action.rdval:
                target = state.add_event(event).with_rf(w, event)
                yield RATransition(state, w, event, target)
        return

    if action.kind in (ActionKind.WR, ActionKind.WRR):
        for w in ra_write_targets(state, tid, x):
            target = state.add_event(event).insert_mo_after(w, event)
            yield RATransition(state, w, event, target)
        return

    assert action.kind is ActionKind.UPD
    for w in ra_write_targets(state, tid, x):
        if w.wrval == action.rdval:
            target = (
                state.add_event(event)
                .with_rf(w, event)
                .insert_mo_after(w, event)
            )
            yield RATransition(state, w, event, target)


def ra_transitions_for_event(
    state: C11State, event: Event
) -> Iterator[RATransition]:
    """All RA transitions appending the *given* event (tag included).

    The completeness replay (Theorem 4.8) re-executes the exact events of
    a justified pre-execution, so the appended event must keep its tag —
    ``ra_transitions_for_action`` would mint a fresh one.
    """
    action, tid = event.action, event.tid
    x = action.var
    assert x is not None

    if action.kind in (ActionKind.RD, ActionKind.RDA):
        for w in ra_read_targets(state, tid, x):
            if w.wrval == action.rdval:
                target = state.add_event(event).with_rf(w, event)
                yield RATransition(state, w, event, target)
        return

    if action.kind in (ActionKind.WR, ActionKind.WRR):
        for w in ra_write_targets(state, tid, x):
            target = state.add_event(event).insert_mo_after(w, event)
            yield RATransition(state, w, event, target)
        return

    assert action.kind is ActionKind.UPD
    for w in ra_write_targets(state, tid, x):
        if w.wrval == action.rdval:
            target = (
                state.add_event(event)
                .with_rf(w, event)
                .insert_mo_after(w, event)
            )
            yield RATransition(state, w, event, target)


def ra_successors(
    state: C11State,
    tid: Tid,
    kind: ActionKind,
    var: Var,
    wrval: Union[Value, Callable[[Value], Value], None] = None,
) -> Iterator[RATransition]:
    """All RA transitions for a step whose read value (if any) is a hole.

    This is the memory-model side of the interpreted semantics: the
    program offers a read/write/update of ``var``; the state answers with
    every observable resolution.  Read values are *derived from* the
    observed write (``rdval(e) = wrval(w)``), which is precisely the
    on-the-fly validation that distinguishes ``→RA`` from pre-executions.

    For updates, ``wrval`` may be a *callable* mapping the value read to
    the value written (fetch-and-add's ``m ↦ m + k``); a plain value is
    the constant-write ``swap``.  Either way the event appended is an
    ordinary ``updRA`` with both values concrete.
    """
    tag = state.next_tag()

    if kind in (ActionKind.RD, ActionKind.RDA):
        for w in ra_read_targets(state, tid, var):
            action = intern_action(kind, var, rdval=w.wrval)
            event = Event(tag, action, tid)
            target = state.read_successor(event, w)
            yield RATransition(state, w, event, target)
        return

    if kind in (ActionKind.WR, ActionKind.WRR):
        assert wrval is not None
        action = intern_action(kind, var, wrval=wrval)
        event = Event(tag, action, tid)
        for w in ra_write_targets(state, tid, var):
            target = state.write_successor(event, w)
            yield RATransition(state, w, event, target)
        return

    if kind is ActionKind.UPD:
        assert wrval is not None
        for w in ra_write_targets(state, tid, var):
            written = wrval(w.wrval) if callable(wrval) else wrval
            action = intern_action(kind, var, rdval=w.wrval, wrval=written)
            event = Event(tag, action, tid)
            target = state.rmw_successor(event, w)
            yield RATransition(state, w, event, target)
        return

    raise ValueError(f"no RA transition for action kind {kind}")
