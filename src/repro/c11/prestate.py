"""Pre-execution states and the ``→PE`` semantics (paper, Section 4.1).

The axiomatic route to C11 validity works in two phases: first build a
*pre-execution* — just events and sequenced-before, with reads returning
arbitrary values — then search for ``rf`` and ``mo`` relations making the
whole thing satisfy the axioms (Definition 4.3: the pre-execution is
*justifiable*).

A pre-execution step simply appends an event with the same ``+``
operator as Figure 3 and never constrains values, so
``(D, sb) --e-->PE (D', sb') ⟺ (D', sb') = (D, sb) + e``.
Steps of distinct threads commute (Proposition 4.1), which underpins the
permutation Lemma 4.7 used in the completeness proof.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Mapping, Optional

from repro.c11.events import Event, init_events
from repro.lang.actions import Value, Var
from repro.relations.relation import Relation


class PreExecutionState:
    """A pre-execution state ``π = (D, sb)``."""

    __slots__ = ("events", "sb", "_hash", "_canon_key", "_canon_ids")

    def __init__(self, events: Iterable[Event], sb: Relation = Relation.empty()):
        self.events: FrozenSet[Event] = frozenset(events)
        self.sb: Relation = sb
        self._hash: Optional[int] = None
        #: Canonical-key memoization slots (see repro.interp.canon and
        #: repro.engine.keys), filled lazily / propagated by add_event.
        self._canon_key = None
        self._canon_ids = None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PreExecutionState):
            return NotImplemented
        return self.events == other.events and self.sb == other.sb

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self.events, self.sb))
        return self._hash

    def __repr__(self) -> str:
        return f"PreExecutionState(|D|={len(self.events)}, |sb|={len(self.sb)})"

    def add_event(self, e: Event) -> "PreExecutionState":
        """``(D, sb) + e`` — identical placement to the RA semantics."""
        if any(old.tag == e.tag for old in self.events):
            raise ValueError(f"tag {e.tag} already used")
        new_sb = self.sb.add_all(
            (old, e)
            for old in self.events
            if old.tid == e.tid or old.is_init
        )
        child = PreExecutionState(self.events | {e}, new_sb)
        if self._canon_ids is not None and not e.is_init:
            # Pre-execution identities order thread events by tag, so the
            # parent's identities survive only when e's tag is maximal in
            # its thread (always true for next_tag()-built exploration
            # states; hand-built states fall back to a fresh computation).
            mine = [old.tag for old in self.events if old.tid == e.tid]
            if not mine or e.tag > max(mine):
                ids = dict(self._canon_ids)
                ids[e] = ("e", e.tid, len(mine))
                child._canon_ids = ids
        return child

    def next_tag(self) -> int:
        used = max((e.tag for e in self.events), default=0)
        return max(used, 0) + 1

    @property
    def init_writes(self) -> FrozenSet[Event]:
        return frozenset(e for e in self.events if e.is_init)

    @property
    def writes(self) -> FrozenSet[Event]:
        return frozenset(e for e in self.events if e.is_write)

    @property
    def reads(self) -> FrozenSet[Event]:
        return frozenset(e for e in self.events if e.is_read)

    def restricted_to(self, keep: Iterable[Event]) -> "PreExecutionState":
        """``π ↾ E`` (used when replaying prefixes in Theorem 4.8)."""
        kept = frozenset(keep)
        if not kept <= self.events:
            raise ValueError("restriction set must be a subset of D")
        return PreExecutionState(kept, self.sb.restrict_to(kept))


def initial_prestate(init_values: Mapping[Var, Value]) -> PreExecutionState:
    """The initial pre-execution: the initialising writes, no ``sb``."""
    return PreExecutionState(init_events(dict(init_values)))
