"""Pre-execution states and the ``→PE`` semantics (paper, Section 4.1).

The axiomatic route to C11 validity works in two phases: first build a
*pre-execution* — just events and sequenced-before, with reads returning
arbitrary values — then search for ``rf`` and ``mo`` relations making the
whole thing satisfy the axioms (Definition 4.3: the pre-execution is
*justifiable*).

A pre-execution step simply appends an event with the same ``+``
operator as Figure 3 and never constrains values, so
``(D, sb) --e-->PE (D', sb') ⟺ (D', sb') = (D, sb) + e``.
Steps of distinct threads commute (Proposition 4.1), which underpins the
permutation Lemma 4.7 used in the completeness proof.

Representation (DESIGN.md §11): exploration-built pre-executions store
``sb`` as per-thread ordered tuples plus the initialisation block and
carry their tag table / next tag forward, so the ``→PE`` hot path never
builds the O(n²) ``sb`` pair set; the :class:`Relation` view
materialises lazily for the justification search.  Hand-assembled
pre-executions (explicit ``sb``) keep the original representation.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

from repro.c11.events import Event, Tag, init_events
from repro.lang.actions import Value, Var
from repro.lang.program import INIT_TID, Tid
from repro.relations.relation import Relation


class PreExecutionState:
    """A pre-execution state ``π = (D, sb)``."""

    __slots__ = (
        "events",
        "_sb",
        "_threads",
        "_inits",
        "_by_tag",
        "_next_tag",
        "_hash",
        "_canon_key",
        "_canon_ids",
    )

    def __init__(self, events: Iterable[Event], sb: Relation = Relation.empty()):
        self.events: FrozenSet[Event] = frozenset(events)
        self._sb: Optional[Relation] = sb
        #: Sequence-backed sb (exploration-built states only): per-thread
        #: ordered tuples plus the initialisation block.
        self._threads: Optional[Dict[Tid, Tuple[Event, ...]]] = None
        self._inits: Tuple[Event, ...] = ()
        self._by_tag: Optional[Dict[Tag, Event]] = None
        self._next_tag: Optional[Tag] = None
        self._hash: Optional[int] = None
        #: Canonical-key memoization slots (see repro.interp.canon and
        #: repro.engine.keys), filled lazily / propagated by add_event.
        self._canon_key = None
        self._canon_ids = None

    @classmethod
    def _from_sequences(
        cls,
        events: FrozenSet[Event],
        threads: Dict[Tid, Tuple[Event, ...]],
        inits: Tuple[Event, ...],
        by_tag: Dict[Tag, Event],
        next_tag: Tag,
    ) -> "PreExecutionState":
        self = cls.__new__(cls)
        self.events = events
        self._sb = None
        self._threads = threads
        self._inits = inits
        self._by_tag = by_tag
        self._next_tag = next_tag
        self._hash = None
        self._canon_key = None
        self._canon_ids = None
        return self

    @property
    def sb(self) -> Relation:
        """Sequenced-before, materialised lazily from the sequences for
        exploration-built states (initialisers before every program
        event, per-thread total orders)."""
        if self._sb is None:
            from repro.c11.compact import sb_pairs_from

            self._sb = Relation(sb_pairs_from(self._inits, self._threads))
        return self._sb

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PreExecutionState):
            return NotImplemented
        if self.events != other.events:
            return False
        if self._threads is not None and other._threads is not None:
            return self._threads == other._threads
        return self.sb == other.sb

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self.events, self.sb))
        return self._hash

    def __repr__(self) -> str:
        return f"PreExecutionState(|D|={len(self.events)}, |sb|={len(self.sb)})"

    def add_event(self, e: Event) -> "PreExecutionState":
        """``(D, sb) + e`` — identical placement to the RA semantics."""
        if self._threads is not None and not e.is_init:
            if e.tag in self._by_tag:
                raise ValueError(f"tag {e.tag} already used")
            threads = dict(self._threads)
            mine = threads.get(e.tid, ())
            threads[e.tid] = mine + (e,)
            by_tag = dict(self._by_tag)
            by_tag[e.tag] = e
            child = PreExecutionState._from_sequences(
                self.events | {e},
                threads,
                self._inits,
                by_tag,
                max(self._next_tag, e.tag + 1),
            )
            self._propagate_canon_ids(child, e, len(mine), mine)
            return child
        if any(old.tag == e.tag for old in self.events):
            raise ValueError(f"tag {e.tag} already used")
        new_sb = self.sb.add_all(
            (old, e)
            for old in self.events
            if old.tid == e.tid or old.is_init
        )
        child = PreExecutionState(self.events | {e}, new_sb)
        if not e.is_init:
            mine = tuple(old for old in self.events if old.tid == e.tid)
            self._propagate_canon_ids(child, e, len(mine), mine)
        return child

    def _propagate_canon_ids(self, child, e, pos, mine) -> None:
        if self._canon_ids is None:
            return
        # Pre-execution identities order thread events by tag, so the
        # parent's identities survive only when e's tag is maximal in
        # its thread (always true for next_tag()-built exploration
        # states; hand-built states fall back to a fresh computation).
        if not mine or e.tag > max(old.tag for old in mine):
            ids = dict(self._canon_ids)
            ids[e] = ("e", e.tid, pos)
            child._canon_ids = ids
            key = self._canon_key
            if key is not None:
                # Pre-execution keys are `(events_part,)`: the child's
                # is the parent's with the new description inserted —
                # the same tuple surgery as C11State (DESIGN.md §11).
                from bisect import insort

                from repro.c11.compact import CachedKey

                parts = key.parts if type(key) is CachedKey else key
                merged = list(parts[0])
                insort(merged, e.described(ids[e]))
                child._canon_key = CachedKey((tuple(merged),))

    def next_tag(self) -> int:
        if self._next_tag is not None:
            return self._next_tag
        used = max((e.tag for e in self.events), default=0)
        return max(used, 0) + 1

    def event_by_tag(self, tag: Tag) -> Event:
        """Look up an event by its tag (O(1); the table is carried
        forward on exploration-built states, built once otherwise)."""
        if self._by_tag is None:
            self._by_tag = {e.tag: e for e in self.events}
        try:
            return self._by_tag[tag]
        except KeyError:
            raise KeyError(tag) from None

    def events_of(self, tid: Tid) -> Tuple[Event, ...]:
        """The events of thread ``tid`` in ``sb`` (= tag) order."""
        if self._threads is not None:
            if tid == INIT_TID:
                return self._inits
            return self._threads.get(tid, ())
        return tuple(
            sorted((e for e in self.events if e.tid == tid), key=lambda e: e.tag)
        )

    @property
    def init_writes(self) -> FrozenSet[Event]:
        return frozenset(e for e in self.events if e.is_init)

    @property
    def writes(self) -> FrozenSet[Event]:
        return frozenset(e for e in self.events if e.is_write)

    @property
    def reads(self) -> FrozenSet[Event]:
        return frozenset(e for e in self.events if e.is_read)

    def restricted_to(self, keep: Iterable[Event]) -> "PreExecutionState":
        """``π ↾ E`` (used when replaying prefixes in Theorem 4.8)."""
        kept = frozenset(keep)
        if not kept <= self.events:
            raise ValueError("restriction set must be a subset of D")
        return PreExecutionState(kept, self.sb.restrict_to(kept))


def initial_prestate(init_values: Mapping[Var, Value]) -> PreExecutionState:
    """The initial pre-execution: the initialising writes, no ``sb``."""
    from repro.c11.compact import compact_enabled

    inits = tuple(
        sorted(init_events(dict(init_values)), key=lambda e: e.tag)
    )
    if compact_enabled():
        return PreExecutionState._from_sequences(
            frozenset(inits),
            {},
            inits,
            {e.tag: e for e in inits},
            1,
        )
    return PreExecutionState(inits)
