"""Interned events and sequence-backed derived orders (DESIGN.md §11).

The paper's successor construction only ever *appends*: ``σ' = σ + e``
adds one event, one ``rf`` edge, or one ``mo`` insertion.  The original
relation layer nevertheless re-derived ``hb = (sb ∪ sw)+`` and ``eco``
per state by BFS closure over pair-set :class:`~repro.relations.relation.Relation`
objects whose total orders (``sb|_t``, ``mo|_x``) materialise O(n²)
frozensets — the dominant cost of exploration (E8/E12).

:class:`CompactOrders` is the incremental representation that replaces
that work on the hot path:

* **Interning** — every event of an execution gets a dense small-int
  index (``index``/``events_seq``), assigned at append time and *stable
  under every successor constructor* (``add_event`` only ever appends,
  ``with_rf``/``insert_mo_after`` touch no indices).  A ``by_tag`` table
  and a carried ``next_tag`` kill the O(n) scans of
  ``C11State.event_by_tag``/``next_tag``.
* **Total orders as sequences** — ``sb`` is per-thread ordered tuples
  (``threads``) plus the unordered initialisation block (``inits``);
  ``mo`` is per-variable ordered tuples.  O(n) instead of O(n²), with
  the pair-set :class:`Relation` views materialised lazily only for the
  axiomatic/checking consumers that genuinely need pair algebra
  (see ``C11State.sb``/``mo``/``rf``).
* **``rf`` as an int map** — read index → write index (reads-from is
  functional on reads in every state the semantics builds).
* **``hb`` as bitmasks** — ``hb[i]`` is the set of strict
  happens-before predecessors of event ``i``, a Python int used as a
  bitset.  ``add_event`` extends it in O(1) big-int ops (the appended
  event is sb-maximal, so its mask is the initialisation block joined
  with its thread predecessor's cone); ``with_rf`` adds the ``sw`` cone
  when the edge synchronises.  No BFS closure ever runs during
  exploration.
* **``eco`` as per-variable prefix masks** — under update atomicity
  (Lemma C.9, the ``fast_eco`` provenance of every explored state) the
  extended coherence order decomposes per variable:
  ``eco⁻¹(w_j) = {w_i, readers(w_i) | i < j}`` and
  ``eco⁻¹(r@w_i) = {w_j | j ≤ i} ∪ {readers(w_j) | j < i}``, which one
  prefix-OR sweep over each ``mo`` sequence computes for all events.

Invariants (checked exhaustively by :func:`derived_order_divergences`,
which the property tests and the ``repro fuzz --check-orders`` oracle
run against the definitional closures):

* indices are assigned in append order and never move;
* ``hb[i]`` equals the definitional ``(sb ∪ sw)+`` predecessor set;
* the eco prefix masks equal ``(fr ∪ mo ∪ rf)+``;
* a compact state with a non-empty ``unplaced`` tuple (a write appended
  but not yet ``mo``-inserted — the transient middle of a Write/RMW
  step) answers no derived-order queries; consumers fall back to the
  definitional path, which is exact on any state.

States assembled by hand from explicit relations (axiomatic candidates,
justifications, test fixtures) carry no :class:`CompactOrders` and use
the original pair-set algebra unchanged.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Tuple

from repro.c11.events import Event, Tag
from repro.lang.actions import Var
from repro.lang.program import Tid


class OrderTimerStats:
    """Process-wide accumulator of time spent deriving orders.

    The same discipline as :data:`repro.engine.keys.KEY_CACHE`: the
    engine snapshots :attr:`seconds` around a run and reports the delta
    as ``EngineStats.time_orders``, so suite/verify footers can
    attribute wall time to closure work.  Covers both the compact
    bitset derivations here and the definitional Relation closures the
    fallback paths still take (``C11State.hb``/``eco``).
    """

    __slots__ = ("seconds",)

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.seconds = 0.0

    def snapshot(self) -> float:
        return self.seconds

    def __repr__(self) -> str:
        return f"OrderTimerStats(seconds={self.seconds:.6f})"


#: The one derived-order timer of this process (workers of the parallel
#: runner each get their own copy — fork/spawn isolation).
ORDER_TIMER = OrderTimerStats()

_clock = time.perf_counter


def compact_enabled() -> bool:
    """Whether new explorations carry the compact representation.

    ``REPRO_NO_COMPACT=1`` disables it (states fall back to the
    definitional pair-set algebra everywhere) — the A/B switch the E12
    benchmark and the ablation tests use.  Checked once per initial
    state, so flipping it mid-exploration has no effect on that run.
    """
    return os.environ.get("REPRO_NO_COMPACT", "") not in ("1", "true", "yes")


class CompactOrders:
    """The interned, sequence-backed form of one C11 state's orders.

    Instances are value-shared between parent and child states: the
    successor constructors copy only the containers they change (tuples
    and dicts of tuples, O(n) pointer copies), never the pair sets the
    legacy representation rebuilt.  The lazy caches ``_enc`` and
    ``_acyclic`` are per-instance and never propagated; ``_eco`` is
    extended parent-to-child by the fused constructors when the parent
    has already swept (:meth:`_propagate_eco`), so the hot exploration
    loop pays one full sweep per *root*, not per state.
    """

    __slots__ = (
        "events_seq",   # Tuple[Event, ...] — index order = append order
        "index",        # Dict[Event, int]
        "by_tag",       # Optional[Dict[Tag, Event]] — lazy, see tag_table()
        "next_tag",     # int — smallest unused positive tag, carried forward
        "inits",        # Tuple[Event, ...] — initialising writes, tag order
        "init_mask",    # int — bits of the initialising writes
        "write_mask",   # int — bits of every write
        "threads",      # Dict[Tid, Tuple[Event, ...]] — sb order, no inits
        "mo",           # Dict[Var, Tuple[Event, ...]] — mo order per var
        "mo_pos",       # Dict[Var, Tuple[int, ...]] — same order, as indices
        "rf",           # Dict[int, int] — read index -> write index
        "hb",           # Tuple[int, ...] — strict hb-predecessor masks
        "covered",      # int — mask of writes read by an update
        "unplaced",     # Tuple[Event, ...] — writes not yet mo-inserted
        "_eco",         # Optional[List[int]] — lazy eco-predecessor masks
        "_enc",         # Dict[Tid, int] — lazy encountered masks per thread
        "_acyclic",     # Optional[bool] — lazy sb∪rf∪mo acyclicity
    )

    def __init__(self) -> None:  # populated by the factory methods below
        self._eco = None
        self._enc = {}
        self._acyclic = None

    @classmethod
    def from_inits(cls, inits) -> "CompactOrders":
        """The compact form of ``σ_0``: the initialising writes only."""
        self = cls()
        ordered = tuple(sorted(inits, key=lambda e: e.tag))
        self.events_seq = ordered
        self.index = {e: i for i, e in enumerate(ordered)}
        self.by_tag = {e.tag: e for e in ordered}
        self.next_tag = max(
            [max((e.tag for e in ordered), default=0) + 1, 1]
        )
        self.inits = ordered
        self.init_mask = (1 << len(ordered)) - 1
        self.write_mask = self.init_mask
        self.threads = {}
        self.mo = {e.var: (e,) for e in ordered}
        self.mo_pos = {e.var: (i,) for i, e in enumerate(ordered)}
        self.rf = {}
        self.hb = (0,) * len(ordered)
        self.covered = 0
        self.unplaced = ()
        return self

    def _clone(self) -> "CompactOrders":
        child = CompactOrders()
        child.events_seq = self.events_seq
        child.index = self.index
        child.by_tag = self.by_tag
        child.next_tag = self.next_tag
        child.inits = self.inits
        child.init_mask = self.init_mask
        child.write_mask = self.write_mask
        child.threads = self.threads
        child.mo = self.mo
        child.mo_pos = self.mo_pos
        child.rf = self.rf
        child.hb = self.hb
        child.covered = self.covered
        child.unplaced = self.unplaced
        return child

    def tag_table(self) -> Dict[Tag, Event]:
        """``tag → event`` for every interned event (lazy).

        Successor construction no longer copies the table per child —
        the exploration hot path guards freshness with ``next_tag``
        alone — so descendants carry ``None`` until something actually
        needs the map (``event_by_tag``, duplicate-tag validation).
        """
        tab = self.by_tag
        if tab is None:
            tab = {e.tag: e for e in self.events_seq}
            self.by_tag = tab
        return tab

    # ------------------------------------------------------------------
    # Incremental successor construction
    # ------------------------------------------------------------------

    def add_event(self, e: Event) -> Optional["CompactOrders"]:
        """``(D, sb) + e`` — intern ``e`` and extend ``hb`` incrementally.

        The appended event is sb-placed after the initialisation block
        and all previous events of its thread, hence sb-maximal: its
        ``hb`` mask is the init block joined with its thread
        predecessor's cone, and no existing mask changes.  Returns
        ``None`` for cases the incremental form does not cover
        (appending an initialising write), letting the caller fall back
        to the definitional path.
        """
        if e.is_init:
            return None
        child = self._clone()
        n = len(self.events_seq)
        child.events_seq = self.events_seq + (e,)
        index = dict(self.index)
        index[e] = n
        child.index = index
        child.by_tag = None  # lazy: rebuilt from events_seq on demand
        child.next_tag = max(self.next_tag, e.tag + 1)
        if e.is_write:
            child.write_mask = self.write_mask | (1 << n)
            child.unplaced = self.unplaced + (e,)
        mine = self.threads.get(e.tid, ())
        threads = dict(self.threads)
        threads[e.tid] = mine + (e,)
        child.threads = threads
        mask = self.init_mask
        if mine:
            last = self.index[mine[-1]]
            mask |= self.hb[last] | (1 << last)
        child.hb = self.hb + (mask,)
        return child

    def with_rf(self, w: Event, r: Event) -> Optional["CompactOrders"]:
        """``rf ∪ {(w, r)}`` — extend the read map (and ``hb`` when the
        edge synchronises).

        The ``sw`` cone propagation is O(1) only when nothing is
        hb-after ``r`` — guaranteed when ``r`` is the newest event,
        which is how the semantics always calls this (the edge is added
        immediately after ``r`` is appended).  Other call shapes return
        ``None`` and fall back.
        """
        w_i = self.index.get(w)
        r_i = self.index.get(r)
        if w_i is None or r_i is None:
            return None
        existing = self.rf.get(r_i)
        if existing is not None and existing != w_i:
            return None  # non-functional rf: not a semantics-built state
        synchronises = w.is_release and r.is_acquire
        if synchronises and r_i != len(self.events_seq) - 1:
            return None  # r is not hb-maximal: cone propagation unsafe
        child = self._clone()
        rf = dict(self.rf)
        rf[r_i] = w_i
        child.rf = rf
        if synchronises:
            hb = list(self.hb)
            hb[r_i] |= self.hb[w_i] | (1 << w_i)
            child.hb = tuple(hb)
        if r.is_update:
            child.covered = self.covered | (1 << w_i)
        return child

    def insert_mo_after(self, w: Event, e: Event) -> Optional["CompactOrders"]:
        """``mo[w, e]`` — splice ``e`` immediately after ``w`` in its
        variable's sequence.  ``hb`` and ``rf`` are untouched (``mo``
        never feeds happens-before)."""
        if e.var is None or e not in self.index:
            return None
        seq = self.mo.get(e.var, ())
        if w not in seq or e in seq:
            return None
        pos = seq.index(w)
        mo = dict(self.mo)
        mo[e.var] = seq[: pos + 1] + (e,) + seq[pos + 1 :]
        child = self._clone()
        child.mo = mo
        pseq = self.mo_pos[e.var]
        mo_pos = dict(self.mo_pos)
        mo_pos[e.var] = pseq[: pos + 1] + (self.index[e],) + pseq[pos + 1 :]
        child.mo_pos = mo_pos
        if e in self.unplaced:
            child.unplaced = tuple(x for x in self.unplaced if x is not e)
        return child

    # -- fused successor construction (one clone per transition) -------
    #
    # The RA semantics builds every successor by a fixed 2–3 step chain
    # (append the event, then wire rf and/or splice mo), and the chain's
    # intermediate states are never observed — they exist only to be
    # cloned again.  The three fused constructors below build the final
    # state in ONE clone with the same container updates the chain would
    # apply, checked against the sequential composition field for field.
    # Each returns ``None`` for any shape its chain counterpart would
    # refuse or fall back on, letting the caller compose the unfused
    # methods (which carry the definitional fallbacks).

    def _append(self, child: "CompactOrders", e: Event, extra_hb: int) -> int:
        """Shared tail of the fused constructors: intern ``e`` at the
        next index with ``extra_hb`` joined into its predecessor mask.
        Returns the new index."""
        n = len(self.events_seq)
        child.events_seq = self.events_seq + (e,)
        index = dict(self.index)
        index[e] = n
        child.index = index
        child.by_tag = None  # lazy: rebuilt from events_seq on demand
        child.next_tag = max(self.next_tag, e.tag + 1)
        mine = self.threads.get(e.tid, ())
        threads = dict(self.threads)
        threads[e.tid] = mine + (e,)
        child.threads = threads
        mask = self.init_mask | extra_hb
        if mine:
            last = self.index[mine[-1]]
            mask |= self.hb[last] | (1 << last)
        child.hb = self.hb + (mask,)
        return n

    def _propagate_eco(
        self, child: "CompactOrders", n: int, w_i: int, is_write: bool
    ) -> None:
        """Extend an already-computed eco sweep to the fused child.

        The sweep is a pure function of ``mo``/``rf``, and a fused
        append perturbs it in one known way: the new event's own mask
        is the observed write's prefix (plus, for writes, the observed
        write's readers), and the new bit joins exactly the events
        strictly mo-after the observed write and their readers.  One
        O(n) pass instead of the O(n·vars) full sweep — correctness is
        pinned by :func:`derived_order_divergences` (the property tests
        and the ``--check-orders`` fuzz oracle recompute the sweep from
        scratch and compare).
        """
        p_eco = self._eco
        if p_eco is None:
            return  # parent never swept; the child stays lazy
        t0 = _clock()
        eco = list(p_eco)
        nbit = 1 << n
        wbit = 1 << w_i
        entry = p_eco[w_i] | wbit
        # ``mo`` sequences ARE mo order: the strict mo-successors of the
        # observed write are exactly the suffix past it, and ``mo_pos``
        # gives their interned indices without hashing a single event.
        pseq = self.mo_pos.get(self.events_seq[w_i].var, ())
        try:
            pos = pseq.index(w_i)
        except ValueError:
            pos = len(pseq)
        sufbits = 0
        for v_i in pseq[pos + 1 :]:
            eco[v_i] |= nbit
            sufbits |= 1 << v_i
        if sufbits or is_write:
            for r_i, t_i in self.rf.items():
                if (sufbits >> t_i) & 1:
                    eco[r_i] |= nbit
                elif is_write and t_i == w_i:
                    entry |= 1 << r_i
        eco.append(entry)
        child._eco = eco
        ORDER_TIMER.seconds += _clock() - t0

    def add_read_event(self, e: Event, w: Event) -> Optional["CompactOrders"]:
        """``add_event(e)`` then ``with_rf(w, e)`` in one clone — ``e``
        a plain read observing the interned write ``w``."""
        if e.is_init:
            return None
        w_i = self.index.get(w)
        if w_i is None:
            return None
        sync = w.is_release and e.is_acquire
        child = self._clone()
        n = self._append(
            child, e, (self.hb[w_i] | (1 << w_i)) if sync else 0
        )
        rf = dict(self.rf)
        rf[n] = w_i
        child.rf = rf
        self._propagate_eco(child, n, w_i, is_write=False)
        return child

    def add_write_event(self, e: Event, w: Event) -> Optional["CompactOrders"]:
        """``add_event(e)`` then ``insert_mo_after(w, e)`` in one clone
        — ``e`` a plain write spliced immediately after ``w``.  The
        event is mo-placed at birth, so it never enters ``unplaced``."""
        if e.is_init or e.var is None:
            return None
        seq = self.mo.get(e.var, ())
        if w not in seq:
            return None
        child = self._clone()
        n = self._append(child, e, 0)
        child.write_mask = self.write_mask | (1 << n)
        pos = seq.index(w)
        mo = dict(self.mo)
        mo[e.var] = seq[: pos + 1] + (e,) + seq[pos + 1 :]
        child.mo = mo
        pseq = self.mo_pos[e.var]
        mo_pos = dict(self.mo_pos)
        mo_pos[e.var] = pseq[: pos + 1] + (n,) + pseq[pos + 1 :]
        child.mo_pos = mo_pos
        self._propagate_eco(child, n, self.index[w], is_write=True)
        return child

    def add_rmw_event(self, e: Event, w: Event) -> Optional["CompactOrders"]:
        """``add_event(e)``, ``with_rf(w, e)`` and
        ``insert_mo_after(w, e)`` in one clone — ``e`` an update reading
        from and mo-following ``w``."""
        if e.is_init or e.var is None:
            return None
        w_i = self.index.get(w)
        if w_i is None:
            return None
        seq = self.mo.get(e.var, ())
        if w not in seq:
            return None
        sync = w.is_release and e.is_acquire
        child = self._clone()
        n = self._append(
            child, e, (self.hb[w_i] | (1 << w_i)) if sync else 0
        )
        child.write_mask = self.write_mask | (1 << n)
        rf = dict(self.rf)
        rf[n] = w_i
        child.rf = rf
        child.covered = self.covered | (1 << w_i)
        pos = seq.index(w)
        mo = dict(self.mo)
        mo[e.var] = seq[: pos + 1] + (e,) + seq[pos + 1 :]
        child.mo = mo
        pseq = self.mo_pos[e.var]
        mo_pos = dict(self.mo_pos)
        mo_pos[e.var] = pseq[: pos + 1] + (n,) + pseq[pos + 1 :]
        child.mo_pos = mo_pos
        self._propagate_eco(child, n, w_i, is_write=True)
        return child

    # ------------------------------------------------------------------
    # Derived orders as bitset queries
    # ------------------------------------------------------------------

    def eco_pred(self) -> List[int]:
        """Per-event eco-predecessor masks (lazy, one prefix sweep).

        Valid under update atomicity — exactly the states that carry a
        compact form (they all descend from ``initial_state``, whose
        ``fast_eco`` provenance records the same fact for Lemma C.9).
        """
        if self._eco is None:
            t0 = _clock()
            readers: Dict[int, int] = {}
            for r_i, w_i in self.rf.items():
                readers[w_i] = readers.get(w_i, 0) | (1 << r_i)
            eco = [0] * len(self.events_seq)
            index = self.index
            for seq in self.mo.values():
                prefix = 0
                for w in seq:
                    wi = index[w]
                    wbit = 1 << wi
                    # writes: everything (writes and readers) strictly
                    # mo-before; an update's own reader bit is cleared
                    eco[wi] = (eco[wi] | prefix) & ~wbit
                    rmask = readers.get(wi, 0)
                    if rmask:
                        # readers of w: writes up to and including w,
                        # plus readers of strictly earlier writes
                        pr = prefix | wbit
                        probe = rmask
                        while probe:
                            lsb = probe & -probe
                            eco[lsb.bit_length() - 1] |= pr
                            probe ^= lsb
                    prefix |= wbit | rmask
            self._eco = eco
            ORDER_TIMER.seconds += _clock() - t0
        return self._eco

    def thread_cone(self, tid: Tid) -> int:
        """Everything hb?-before an event of ``tid`` (0 when the thread
        has no events yet) — the ``hb`` side of ``EW_σ(t)``."""
        mine = self.threads.get(tid)
        if not mine:
            return 0
        last = self.index[mine[-1]]
        return self.hb[last] | (1 << last)

    def encountered_mask(self, tid: Tid) -> int:
        """``eco? ; hb?`` into the events of ``tid``, as a mask (cached).

        The compact form of :func:`repro.c11.observability.encountered_writes`
        before the ``Wr`` filter: the thread's hb cone, widened by the
        eco predecessors of each of its members.
        """
        cached = self._enc.get(tid)
        if cached is not None:
            return cached
        cone = self.thread_cone(tid)
        mask = cone
        if cone:
            eco = self.eco_pred()  # times its own (possibly lazy) sweep
            t0 = _clock()
            probe = cone
            while probe:
                lsb = probe & -probe
                mask |= eco[lsb.bit_length() - 1]
                probe ^= lsb
            ORDER_TIMER.seconds += _clock() - t0
        self._enc[tid] = mask
        return mask

    def _observable(self, tid: Tid, var: Var) -> List[tuple]:
        """``OW_σ(t)|_x`` as ``(event, index)`` pairs in modification
        order.

        A write is observable unless an encountered write mo-supersedes
        it; the suffix mask makes the whole sequence one backward pass,
        and ``mo_pos`` supplies the bit positions without hashing.
        """
        seq = self.mo.get(var)
        if not seq:
            return []
        pseq = self.mo_pos[var]
        enc = self.encountered_mask(tid)
        if not enc:  # thread saw nothing yet: everything is observable
            return list(zip(seq, pseq))
        out: List[tuple] = []
        suffix = 0  # strict mo-successors seen so far
        for i in range(len(seq) - 1, -1, -1):
            if not (suffix & enc):
                out.append((seq[i], pseq[i]))
            suffix |= 1 << pseq[i]
        out.reverse()
        return out

    def observable_on(self, tid: Tid, var: Var) -> List[Event]:
        """``OW_σ(t)|_x`` in modification order."""
        return [w for w, _ in self._observable(tid, var)]

    def read_targets(self, tid: Tid, var: Var) -> List[Event]:
        """Rule Read's candidates, sorted by tag (the enumeration order
        the engine has always used)."""
        return sorted(self.observable_on(tid, var), key=lambda w: w.tag)

    def write_targets(self, tid: Tid, var: Var) -> List[Event]:
        """Rule Write/RMW's candidates: observable and not covered."""
        covered = self.covered
        return sorted(
            (
                w
                for w, w_i in self._observable(tid, var)
                if not (covered >> w_i) & 1
            ),
            key=lambda w: w.tag,
        )

    def observable_set(self, tid: Tid, var: Optional[Var] = None):
        """``OW_σ(t)`` (optionally restricted to one variable) as a
        frozenset — the drop-in form for :mod:`repro.c11.observability`."""
        if var is not None:
            return frozenset(self.observable_on(tid, var))
        out: List[Event] = []
        for x in self.mo:
            out.extend(self.observable_on(tid, x))
        return frozenset(out)

    def events_from_mask(self, mask: int):
        """The events whose interned bits are set in ``mask``."""
        seq = self.events_seq
        out = []
        while mask:
            lsb = mask & -mask
            out.append(seq[lsb.bit_length() - 1])
            mask ^= lsb
        return out

    def union_acyclic(self) -> bool:
        """Whether ``sb ∪ rf ∪ mo`` is acyclic (the SRA strengthening).

        Total orders decompose into their immediate-successor chains
        without changing reachability, so the check runs over O(n)
        edges: per-thread chains (entered from the initialisation
        block), per-variable mo chains and the rf edges.
        """
        if self._acyclic is None:
            t0 = _clock()
            n = len(self.events_seq)
            adj: List[List[int]] = [[] for _ in range(n)]
            index = self.index
            init_indices = [index[e] for e in self.inits]
            for seq in self.threads.values():
                if not seq:
                    continue
                first = index[seq[0]]
                for i in init_indices:
                    adj[i].append(first)
                for a, b in zip(seq, seq[1:]):
                    adj[index[a]].append(index[b])
            for seq in self.mo.values():
                for a, b in zip(seq, seq[1:]):
                    adj[index[a]].append(index[b])
            for r_i, w_i in self.rf.items():
                adj[w_i].append(r_i)
            # Iterative three-colour DFS.
            WHITE, GREY, BLACK = 0, 1, 2
            colour = [WHITE] * n
            acyclic = True
            for root in range(n):
                if colour[root] != WHITE or not acyclic:
                    continue
                stack: List[Tuple[int, int]] = [(root, 0)]
                colour[root] = GREY
                while stack:
                    node, child_pos = stack[-1]
                    if child_pos < len(adj[node]):
                        stack[-1] = (node, child_pos + 1)
                        succ = adj[node][child_pos]
                        if colour[succ] == GREY:
                            acyclic = False
                            break
                        if colour[succ] == WHITE:
                            colour[succ] = GREY
                            stack.append((succ, 0))
                    else:
                        colour[node] = BLACK
                        stack.pop()
                if not acyclic:
                    break
            self._acyclic = acyclic
            ORDER_TIMER.seconds += _clock() - t0
        return self._acyclic

    # ------------------------------------------------------------------
    # Pair-set materialisation (the lazy Relation views)
    # ------------------------------------------------------------------

    def sb_pairs(self):
        """The full ``sb`` pair set: init block before every program
        event, plus each thread's total order."""
        return sb_pairs_from(self.inits, self.threads)

    def mo_pairs(self):
        """The full ``mo`` pair set (per-variable total orders)."""
        pairs = []
        for seq in self.mo.values():
            for i in range(len(seq)):
                for j in range(i + 1, len(seq)):
                    pairs.append((seq[i], seq[j]))
        return pairs

    def rf_pairs(self):
        seq = self.events_seq
        return [(seq[w_i], seq[r_i]) for r_i, w_i in self.rf.items()]

    def hb_pairs(self):
        """``hb`` as pairs, straight from the masks (no closure run)."""
        t0 = _clock()
        seq = self.events_seq
        pairs = []
        for j, e in enumerate(seq):
            mask = self.hb[j]
            while mask:
                lsb = mask & -mask
                pairs.append((seq[lsb.bit_length() - 1], e))
                mask ^= lsb
        ORDER_TIMER.seconds += _clock() - t0
        return pairs


def sb_pairs_from(inits, threads) -> List[Tuple[Event, Event]]:
    """Materialise canonical-shape ``sb`` from its sequence form: the
    (unordered) initialisation block before every program event, plus
    each thread's total order.  Shared by :meth:`CompactOrders.sb_pairs`
    and the sequence-backed pre-execution states."""
    pairs: List[Tuple[Event, Event]] = []
    non_init = [e for seq in threads.values() for e in seq]
    for i_ev in inits:
        for e in non_init:
            pairs.append((i_ev, e))
    for seq in threads.values():
        for i in range(len(seq)):
            for j in range(i + 1, len(seq)):
                pairs.append((seq[i], seq[j]))
    return pairs


class CachedKey:
    """A canonical key with its hash precomputed.

    Canonical keys are nested tuples sized with the execution, and the
    engine hashes each one several times per transition (seen-set
    membership, insertion, the parent map).  Wrapping the parts hashes
    the structure exactly once; dictionary operations then reuse the
    cached value.  Equality (and the hash) is defined against the raw
    parts too, so code that computes a fresh tuple key compares equal
    to the wrapped form transparently.
    """

    __slots__ = ("parts", "_hash", "_digest")

    def __init__(self, parts) -> None:
        self.parts = parts
        self._hash = hash(parts)
        self._digest = None

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        if type(other) is CachedKey:
            return self._hash == other._hash and self.parts == other.parts
        return self.parts == other

    def __repr__(self) -> str:
        return f"CachedKey({self.parts!r})"

    def __reduce__(self):
        # hashes of strings are salted per process: rebuild, never ship
        return (CachedKey, (self.parts,))

    def digest(self) -> bytes:
        """A stable cross-process digest of the key (DESIGN.md §15).

        Unlike ``__hash__`` (salted per process via string hashing),
        the digest is identical in every process, so shard assignment
        can route through it.  Computed once per key object.
        """
        if self._digest is None:
            from repro.engine.keys import key_digest

            self._digest = key_digest(self.parts)
        return self._digest


# ----------------------------------------------------------------------
# Self-check against the definitional closures
# ----------------------------------------------------------------------


def derived_order_divergences(state) -> List[str]:
    """Every way the compact derivations disagree with the definitions.

    Rebuilds the state from its materialised relations alone (no
    compact form) and compares, pairwise: ``hb`` masks vs the
    ``(sb ∪ sw)+`` closure, the eco prefix masks vs
    ``(fr ∪ mo ∪ rf)+``, observability (EW/OW/CW) per thread, the SRA
    acyclicity answer, the tag index and sequence-derived sort orders,
    and the canonical key.  Empty list = full agreement.  States
    without a compact form (or mid-step, with unplaced writes) have
    nothing to check.

    This is the oracle behind the hypothesis property tests
    (tests/test_compact.py) and ``repro fuzz --check-orders``.
    """
    from repro.c11.state import C11State
    from repro.interp.canon import canonical_key

    compact = getattr(state, "_compact", None)
    if compact is None or compact.unplaced:
        return []
    out: List[str] = []
    clone = C11State(
        state.events, state.sb, state.rf, state.mo, fast_eco=state.fast_eco
    )

    hb_compact = frozenset(compact.hb_pairs())
    hb_def = (clone.sb | clone.sw).transitive_closure().pairs
    if hb_compact != hb_def:
        out.append(
            f"hb masks diverge from (sb ∪ sw)+: "
            f"{sorted(map(str, hb_compact ^ hb_def))[:4]}"
        )

    eco_masks = compact.eco_pred()
    eco_compact = frozenset(
        (a, e)
        for j, e in enumerate(compact.events_seq)
        for a in compact.events_from_mask(eco_masks[j])
    )
    eco_def = clone.eco_definitional().pairs
    if eco_compact != eco_def:
        out.append(
            f"eco prefix masks diverge from (fr ∪ mo ∪ rf)+: "
            f"{sorted(map(str, eco_compact ^ eco_def))[:4]}"
        )

    fr_compact = set()
    for r_i, w_i in compact.rf.items():
        r = compact.events_seq[r_i]
        w = compact.events_seq[w_i]
        seq = compact.mo[w.var]
        for later in seq[seq.index(w) + 1 :]:
            if later is not r:
                fr_compact.add((r, later))
    if frozenset(fr_compact) != clone.fr.pairs:
        out.append("sequence-derived fr diverges from (rf⁻¹ ; mo) \\ Id")

    from repro.c11 import observability as obs

    tids = sorted({e.tid for e in state.events if not e.is_init}) or [1]
    for tid in tids:
        fast_ew = frozenset(
            e
            for e in compact.events_from_mask(
                compact.encountered_mask(tid) & compact.write_mask
            )
        )
        if fast_ew != obs.encountered_writes(clone, tid):
            out.append(f"EW({tid}) diverges")
        if compact.observable_set(tid) != obs.observable_writes(clone, tid):
            out.append(f"OW({tid}) diverges")
    fast_cw = frozenset(
        compact.events_from_mask(compact.covered & compact.write_mask)
    )
    if fast_cw != obs.covered_writes(clone):
        out.append("CW diverges")

    union = clone.sb | clone.rf | clone.mo
    if compact.union_acyclic() != union.is_acyclic():
        out.append("sb ∪ rf ∪ mo acyclicity diverges")

    for e in state.events:
        if compact.tag_table().get(e.tag) is not e:
            out.append(f"tag index diverges at {e}")
            break
    legacy_next = max([e.tag for e in state.events] + [0]) + 1
    if compact.next_tag != max(legacy_next, 1):
        out.append(
            f"next_tag diverges: {compact.next_tag} vs {legacy_next}"
        )

    for x in clone.variables():
        if tuple(compact.mo.get(x, ())) != clone.writes_on(x):
            out.append(f"writes_on({x}) diverges from the mo sequence")
    for tid in tids:
        if tuple(compact.threads.get(tid, ())) != clone.events_of(tid):
            out.append(f"events_of({tid}) diverges from the sb sequence")

    if canonical_key(state) != canonical_key(clone):
        out.append("canonical key diverges between compact and clone")
    cached = getattr(state, "_canon_key", None)
    if cached is not None and cached != canonical_key(clone):
        out.append(
            "incrementally propagated canonical key diverges from a "
            "fresh derivation"
        )

    return out


__all__ = [
    "CachedKey",
    "CompactOrders",
    "ORDER_TIMER",
    "OrderTimerStats",
    "compact_enabled",
    "derived_order_divergences",
]
