"""C11 states and the operational event semantics (paper, Section 3).

* :mod:`repro.c11.events` — tagged events ``(γ, a, t)``.
* :mod:`repro.c11.state` — C11 states ``((D, sb), rf, mo)`` with cached
  derived orders (``sw``, ``hb``, ``fr``, ``eco``) and ``last(x)``.
* :mod:`repro.c11.observability` — encountered (EW), observable (OW) and
  covered (CW) writes (Section 3.2).
* :mod:`repro.c11.event_semantics` — the Read/Write/RMW rules of
  Figure 3, i.e. the transition relation ``→RA``.
* :mod:`repro.c11.prestate` — the pre-execution semantics ``→PE`` used by
  the axiomatic side (Section 4.1).
"""

from repro.c11.events import Event, fresh_tag, init_write
from repro.c11.state import C11State, initial_state
from repro.c11.observability import covered_writes, encountered_writes, observable_writes
from repro.c11.event_semantics import (
    RATransition,
    ra_successors,
    ra_transitions_for_action,
)
from repro.c11.prestate import PreExecutionState, initial_prestate

__all__ = [
    "Event",
    "fresh_tag",
    "init_write",
    "C11State",
    "initial_state",
    "encountered_writes",
    "observable_writes",
    "covered_writes",
    "RATransition",
    "ra_successors",
    "ra_transitions_for_action",
    "PreExecutionState",
    "initial_prestate",
]
