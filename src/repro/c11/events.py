"""Events: tagged, thread-attributed actions (paper, Section 3.1).

``Evt = G × Act_τ × T``: an event pairs an action with a *tag* (unique
within an execution) and the identifier of the thread that performed it.
The paper's accessors ``tag(e)``, ``act(e)``, ``tid(e)``, ``var(e)``,
``rdval(e)`` and ``wrval(e)`` are attributes/properties here.

Event classes (Section 3.1)::

    U    — RMW updates            e.is_update
    WrR  — releasing writes ⊇ U   e.is_release and e.is_write
    RdA  — acquiring reads  ⊇ U   e.is_acquire and e.is_read
    WrX  — relaxed writes         e.is_write and not e.is_release
    RdX  — relaxed reads          e.is_read and not e.is_acquire
    Wr   — all writes             e.is_write
    Rd   — all reads              e.is_read
    IWr  — initialising writes    e.is_init  (tid = 0)
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.lang.actions import Action, Value, Var, wr
from repro.lang.program import INIT_TID, Tid

Tag = int


@dataclass(frozen=True)
class Event:
    """One event ``(γ, a, t)`` of an execution."""

    tag: Tag
    action: Action
    tid: Tid

    def __hash__(self) -> int:
        # Events live in frozensets and relation pair-sets that are
        # hashed constantly on the exploration hot path; the generated
        # dataclass hash would recompute the field-tuple hash each time.
        # (Defining __hash__ in the class body makes @dataclass keep it.)
        try:
            return self._hash
        except AttributeError:
            h = hash((self.tag, self.action, self.tid))
            object.__setattr__(self, "_hash", h)
            return h

    def __getstate__(self):
        # str hashing is salted per process (PYTHONHASHSEED), so a
        # cached hash must never cross a pickle boundary.
        state = dict(self.__dict__)
        state.pop("_hash", None)
        return state

    def described(self, identity) -> tuple:
        """The canonical-key description of this event under a canonical
        identity: ``(*identity, kind, var, rdval, wrval)``.

        The single source of the key encoding — used by the fresh
        derivation (:func:`repro.interp.canon.canonical_key`) and by the
        incremental key propagation in both state kinds, which must
        produce byte-identical tuples (DESIGN.md §11).
        """
        a = self.action
        return (*identity, a.kind.value, a.var, a.rdval, a.wrval)

    # -- paper accessors (lifted from the action) -----------------------

    @property
    def var(self) -> Optional[Var]:
        return self.action.var

    @property
    def rdval(self) -> Optional[Value]:
        return self.action.rdval

    @property
    def wrval(self) -> Optional[Value]:
        return self.action.wrval

    @property
    def is_read(self) -> bool:
        return self.action.is_read

    @property
    def is_write(self) -> bool:
        return self.action.is_write

    @property
    def is_update(self) -> bool:
        return self.action.is_update

    @property
    def is_acquire(self) -> bool:
        return self.action.is_acquire

    @property
    def is_release(self) -> bool:
        return self.action.is_release

    @property
    def is_init(self) -> bool:
        """Whether this is an initialising write (``tid = 0``)."""
        return self.tid == INIT_TID

    def __str__(self) -> str:
        return f"{self.action}@{self.tid}#{self.tag}"

    def __repr__(self) -> str:
        return f"Event({self.tag}, {self.action!s}, t{self.tid})"


# ----------------------------------------------------------------------
# Tag supply
# ----------------------------------------------------------------------

_COUNTER = itertools.count(1)


def fresh_tag() -> Tag:
    """A globally fresh tag.

    Exploration code prefers deterministic per-state tags (the next free
    integer of the state, see ``C11State.next_tag``); this global supply
    exists for ad-hoc construction in tests and examples.
    """
    return next(_COUNTER)


def init_write(x: Var, value: Value, tag: Tag) -> Event:
    """An initialising write ``wr_0(x, value)``.

    Initialising writes are relaxed writes of the reserved thread 0; the
    initial state places them sb-before every other event (Section 3.1).
    """
    return Event(tag, wr(x, value), INIT_TID)


def init_events(values: dict, start_tag: Tag = -1) -> Iterator[Event]:
    """Initialising writes for a ``{var: value}`` map.

    Tags count *down* from ``start_tag`` so that initialisation tags are
    negative and never collide with the positive tags handed to program
    events — which also makes pretty-printed executions easy to read.
    """
    tag = start_tag
    for x in sorted(values):
        yield init_write(x, values[x], tag)
        tag -= 1
