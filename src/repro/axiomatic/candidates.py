"""Bounded exhaustive enumeration of candidate executions.

This is the reproduction's substitute for the paper's Memalloy
mechanisation (Appendix E): Memalloy asks a SAT solver for a candidate
execution, up to a size bound, on which two memory models disagree; we
*enumerate* every candidate execution up to a size bound and evaluate
both models on each.  Same exhaustive-bounded-search semantics, smaller
feasible bound (pure Python vs SAT; see DESIGN.md "Substitutions").

A candidate execution (Definition C.1) satisfies RF-Complete, MO-Valid
and SB-Total but need *not* be consistent — the whole point is to also
generate inconsistent ones and check that the two axiomatisations reject
exactly the same set.

Enumeration proceeds in three phases with all symmetries that do not
affect model verdicts quotiented away:

1. **Skeletons** — thread assignment (restricted growth strings, so
   thread naming is canonical) and per-event (kind, variable, write
   value).  Read values are left open.
2. **rf** — every read picks a source write of the same variable
   (initialising writes included, the read itself included when it is an
   update whose written value could equal the value read — the self-rf
   shape that the RFI condition exists to reject); the read value is
   *defined* as the source's written value, making RF-Complete hold by
   construction.
3. **mo** — every permutation of each variable's program writes, with
   the initialising write first (MO-Valid by construction).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.c11.events import Event
from repro.c11.state import C11State
from repro.lang.actions import Action, ActionKind, Value, Var, wr as wr_action
from repro.lang.program import INIT_TID
from repro.relations.relation import Relation

#: Event kinds a candidate may contain (τ never appears in executions).
EVENT_KINDS: Tuple[ActionKind, ...] = (
    ActionKind.RD,
    ActionKind.RDA,
    ActionKind.WR,
    ActionKind.WRR,
    ActionKind.UPD,
)


@dataclass(frozen=True)
class CandidateSpace:
    """The finite domain candidates are drawn from.

    ``n_events`` counts *program* events (initialising writes are extra:
    one per variable, writing ``init_value``).
    """

    n_events: int
    variables: Tuple[Var, ...] = ("x",)
    values: Tuple[Value, ...] = (1,)
    max_threads: int = 2
    init_value: Value = 0
    kinds: Tuple[ActionKind, ...] = EVENT_KINDS

    def skeleton_options(self) -> List[Tuple[ActionKind, Var, Optional[Value]]]:
        """All (kind, var, write-value) choices for one event."""
        options: List[Tuple[ActionKind, Var, Optional[Value]]] = []
        for kind in self.kinds:
            for x in self.variables:
                if kind.is_write:
                    for v in self.values:
                        options.append((kind, x, v))
                else:
                    options.append((kind, x, None))
        return options


def restricted_growth_strings(n: int, max_blocks: int) -> Iterator[Tuple[int, ...]]:
    """Canonical thread assignments: partitions of ``n`` positions into at
    most ``max_blocks`` blocks, encoded so block labels first appear in
    increasing order (kills thread-renaming symmetry)."""
    if n == 0:
        yield ()
        return

    def rec(prefix: List[int], used: int) -> Iterator[Tuple[int, ...]]:
        if len(prefix) == n:
            yield tuple(prefix)
            return
        for b in range(min(used + 1, max_blocks)):
            prefix.append(b)
            yield from rec(prefix, max(used, b + 1))
            prefix.pop()

    yield from rec([], 0)


def _base_state(space: CandidateSpace) -> Tuple[List[Event], C11State]:
    """The initialising writes and the (event-free) base state."""
    inits = [
        Event(-(i + 1), wr_action(x, space.init_value), INIT_TID)
        for i, x in enumerate(space.variables)
    ]
    return inits, C11State(inits)


def enumerate_candidates(space: CandidateSpace) -> Iterator[C11State]:
    """Yield every candidate execution in ``space`` exactly once.

    Everything yielded satisfies Definition C.1 by construction — assert
    ``is_candidate_execution`` over samples in tests, not here (hot loop).
    """
    inits, _ = _base_state(space)
    init_by_var: Dict[Var, Event] = {w.var: w for w in inits}
    options = space.skeleton_options()

    for threading in restricted_growth_strings(space.n_events, space.max_threads):
        for combo in itertools.product(options, repeat=space.n_events):
            yield from _complete_skeleton(space, inits, init_by_var, threading, combo)


def _complete_skeleton(
    space: CandidateSpace,
    inits: List[Event],
    init_by_var: Dict[Var, Event],
    threading: Tuple[int, ...],
    combo: Sequence[Tuple[ActionKind, Var, Optional[Value]]],
) -> Iterator[C11State]:
    """Instantiate rf and mo for one skeleton (phases 2 and 3)."""
    n = space.n_events

    # -- events (read values deferred; placeholder 0 rewritten below) ---
    skeleton: List[Tuple[int, int, ActionKind, Var, Optional[Value]]] = [
        (i + 1, threading[i] + 1, kind, x, wv)
        for i, (kind, x, wv) in enumerate(combo)
    ]

    # -- rf sources per read --------------------------------------------
    # Writers per variable (skeleton indices; -1 encodes the initialiser).
    writers_on: Dict[Var, List[int]] = {x: [-1] for x in space.variables}
    for tag, _t, kind, x, _wv in skeleton:
        if kind.is_write:
            writers_on[x].append(tag)

    read_tags = [tag for tag, _t, kind, _x, _wv in skeleton if kind.is_read]
    source_choices: List[List[int]] = []
    for tag in read_tags:
        _tag, _t, kind, x, _wv = skeleton[tag - 1]
        # Any writer on the variable, the read itself included when it is
        # an update (self-rf candidates exercise RFI).
        sources = [w for w in writers_on[x] if w != tag or kind.is_update]
        source_choices.append(sources)

    # -- mo permutations per variable -----------------------------------
    mo_choices: List[List[Tuple[int, ...]]] = [
        [perm for perm in itertools.permutations(writers_on[x][1:])]
        for x in space.variables
    ]

    for rf_pick in itertools.product(*source_choices):
        # Instantiate read values from the chosen sources.
        events: List[Event] = []
        src_of: Dict[int, int] = dict(zip(read_tags, rf_pick))
        for tag, t, kind, x, wv in skeleton:
            if kind.is_read:
                src = src_of[tag]
                rv: Optional[Value] = (
                    space.init_value if src == -1 else skeleton[src - 1][4]
                )
            else:
                rv = None
            events.append(Event(tag, Action(kind, x, rdval=rv, wrval=wv), t))

        rf = Relation(
            (
                init_by_var[events[tag - 1].var] if src == -1 else events[src - 1],
                events[tag - 1],
            )
            for tag, src in src_of.items()
        )

        sb = _sb_for(inits, events)

        for mo_pick in itertools.product(*mo_choices):
            mo_pairs = set()
            for x, perm in zip(space.variables, mo_pick):
                chain = [init_by_var[x]] + [events[i - 1] for i in perm]
                for i in range(len(chain)):
                    for j in range(i + 1, len(chain)):
                        mo_pairs.add((chain[i], chain[j]))
            yield C11State(
                frozenset(inits) | frozenset(events),  # type: ignore[arg-type]
                sb,
                rf,
                Relation(mo_pairs),
            )


def _sb_for(inits: Sequence[Event], events: Sequence[Event]) -> Relation:
    """sb: initialisers before everything; program order within threads
    (skeleton tag order is per-thread program order)."""
    pairs = set()
    for i in inits:
        for e in events:
            pairs.add((i, e))
    by_tid: Dict[int, List[Event]] = {}
    for e in events:
        by_tid.setdefault(e.tid, []).append(e)
    for mine in by_tid.values():
        mine.sort(key=lambda e: e.tag)
        for a_idx in range(len(mine)):
            for b_idx in range(a_idx + 1, len(mine)):
                pairs.add((mine[a_idx], mine[b_idx]))
    return Relation(pairs)


def count_candidates(space: CandidateSpace, limit: Optional[int] = None) -> int:
    """The number of candidates in the space (stops early at ``limit``)."""
    count = 0
    for _ in enumerate_candidates(space):
        count += 1
        if limit is not None and count >= limit:
            break
    return count
