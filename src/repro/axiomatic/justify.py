"""Justifying pre-executions (Definition 4.3).

A pre-execution state ``π = (D, sb)`` is *justifiable* iff there exist
``rf`` and ``mo`` such that ``(π, rf, mo)`` is valid (Definition 4.2).
This module searches for such justifications exhaustively:

* ``rf`` — every read picks a source write of the same variable whose
  written value equals the value read (RF-Complete);
* ``mo`` — every per-variable permutation of the program writes with the
  initialising write first (MO-Valid);
* the remaining axioms (NoThinAir, Coherence) are checked on the
  assembled state.

The completeness harness (Theorem 4.8) takes each justification,
linearises ``sb ∪ rf`` and replays it through the RA semantics; the E8
benchmark also uses this module as the *post-hoc axiomatic baseline*
against the operational on-the-fly exploration.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Tuple

from repro.axiomatic.validity import is_valid
from repro.c11.events import Event
from repro.c11.prestate import PreExecutionState
from repro.c11.state import C11State
from repro.lang.actions import Var
from repro.relations.relation import Relation


def justifications(
    prestate: PreExecutionState, limit: Optional[int] = None
) -> Iterator[C11State]:
    """All valid C11 states ``(π, rf, mo)`` justifying ``prestate``.

    Yields at most ``limit`` justifications when given.  The search is
    brute force over rf choices × mo permutations with validity as a
    final filter; the spaces are small because pre-executions come from
    bounded program exploration.
    """
    events = prestate.events
    writes_by_var: Dict[Var, List[Event]] = {}
    for e in sorted(events, key=lambda e: e.tag):
        if e.is_write:
            writes_by_var.setdefault(e.var, []).append(e)

    reads = sorted((e for e in events if e.is_read), key=lambda e: e.tag)

    # rf sources per read: same variable, matching value.  (A read can in
    # principle read from itself if it is an update writing the value it
    # reads; validity's Coherence axiom rejects it, but RF-Complete does
    # not, so the source list must include it for faithfulness.)
    source_choices: List[List[Event]] = []
    for r in reads:
        sources = [
            w
            for w in writes_by_var.get(r.var, [])
            if w.wrval == r.rdval
        ]
        if not sources:
            return  # unjustifiable: some read value was never written
        source_choices.append(sources)

    produced = 0
    for rf_pick in itertools.product(*source_choices):
        rf = Relation(zip(rf_pick, reads))
        for mo in _mo_orders(writes_by_var):
            state = C11State(events, prestate.sb, rf, mo)
            if is_valid(state):
                yield state
                produced += 1
                if limit is not None and produced >= limit:
                    return


def _mo_orders(writes_by_var: Dict[Var, List[Event]]) -> Iterator[Relation]:
    """Every MO-Valid modification order for the given writes."""
    per_var: List[List[Tuple[Event, ...]]] = []
    heads: List[List[Event]] = []
    for x in sorted(writes_by_var):
        ws = writes_by_var[x]
        inits = [w for w in ws if w.is_init]
        progs = [w for w in ws if not w.is_init]
        heads.append(inits)
        per_var.append([perm for perm in itertools.permutations(progs)])

    for pick in itertools.product(*per_var):
        pairs = set()
        for init_ws, perm in zip(heads, pick):
            chain = list(init_ws) + list(perm)
            for i in range(len(chain)):
                for j in range(i + 1, len(chain)):
                    pairs.add((chain[i], chain[j]))
        yield Relation(pairs)


def is_justifiable(prestate: PreExecutionState) -> bool:
    """Definition 4.3 — whether some ``rf``/``mo`` make ``π`` valid."""
    for _ in justifications(prestate, limit=1):
        return True
    return False


def count_justifications(prestate: PreExecutionState) -> int:
    """The number of distinct justifications (used by E3/E8 reporting)."""
    return sum(1 for _ in justifications(prestate))
