"""Definition 4.2 — validity of a C11 execution.

A C11 execution ``((D, sb), rf, mo)`` is *valid* iff all of:

* **SB-Total** — ``sb`` is a strict total order over each non-initialising
  thread's events, orders every initialising write before every other
  event, and relates nothing else.
* **MO-Valid** — ``mo`` is a disjoint union of strict total orders, one
  per variable, over the writes to that variable, with initialising
  writes first.
* **RF-Complete** — every read reads from exactly one write of the same
  variable and value.
* **NoThinAir** — ``sb ∪ rf`` is acyclic (rules out load-buffering /
  out-of-thin-air shapes; this is what confines us to the RAR fragment).
* **Coherence** — ``hb ; eco?`` and ``eco`` are irreflexive.

Each axiom is an independently callable predicate (the equivalence
experiment needs Coherence in isolation), and :func:`check_validity`
produces a diagnostic report naming every violated axiom.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.c11.state import C11State
from repro.lang.program import INIT_TID


# ----------------------------------------------------------------------
# Individual axioms
# ----------------------------------------------------------------------


def axiom_sb_total(state: C11State) -> bool:
    """SB-Total (Definition 4.2)."""
    sb = state.sb
    if not sb.is_irreflexive():
        return False
    # Edges only from initialisers or within one thread.
    for e, e2 in sb.pairs:
        if e.tid != INIT_TID and e.tid != e2.tid:
            return False
        if e.tid != INIT_TID and e2.tid == INIT_TID:
            return False
    # Initialising writes precede every non-initialising event.
    inits = state.init_writes
    for i in inits:
        for e in state.events:
            if not e.is_init and (i, e) not in sb.pairs:
                return False
    # Per-thread strict totality (and transitivity).
    tids = {e.tid for e in state.events if not e.is_init}
    for t in tids:
        mine = frozenset(state.events_of(t))
        if not sb.is_strict_total_order_on(mine):
            return False
    return True


def axiom_mo_valid(state: C11State) -> bool:
    """MO-Valid (Definition 4.2)."""
    mo = state.mo
    if not mo.is_irreflexive():
        return False
    for w, w2 in mo.pairs:
        if not (w.is_write and w2.is_write) or w.var != w2.var:
            return False
        if w.tid != INIT_TID and w2.tid == INIT_TID:
            return False
    for x in state.variables():
        on_x = frozenset(state.writes_on(x))
        # initialising writes mo-precede program writes on the variable
        for w in on_x:
            if not w.is_init:
                continue
            for w2 in on_x:
                if not w2.is_init and (w, w2) not in mo.pairs:
                    return False
        if not mo.is_strict_total_order_on(frozenset(w for w in on_x if not w.is_init)):
            return False
        # the totality clause above skips initialisers; combined with the
        # init-first clause, mo|x is total over all of on_x whenever the
        # variable has at most one initialising write:
        inits_on_x = [w for w in on_x if w.is_init]
        if len(inits_on_x) > 1:
            for i, a in enumerate(inits_on_x):
                for b in inits_on_x[i + 1 :]:
                    if (a, b) not in mo.pairs and (b, a) not in mo.pairs:
                        return False
    # mo as a whole must be transitive: per-variable totality makes each
    # mo|x transitive among program writes, but a hand-built state could
    # still omit init-to-late edges, so check globally.
    return mo.is_transitive()


def axiom_rf_complete(state: C11State) -> bool:
    """RF-Complete (Definition 4.2)."""
    rf = state.rf
    pred = rf.predecessors_map()
    for r in state.reads:
        sources = pred.get(r, set())
        if len(sources) != 1:
            return False
    for w, r in rf.pairs:
        if not w.is_write or not r.is_read:
            return False
        if w.var != r.var or w.wrval != r.rdval:
            return False
    return True


def axiom_no_thin_air(state: C11State) -> bool:
    """NoThinAir (Definition 4.2): ``sb ∪ rf`` is acyclic."""
    return (state.sb | state.rf).is_acyclic()


def axiom_coherence(state: C11State) -> bool:
    """Coherence (Definition 4.2): ``hb ; eco?`` and ``eco`` irreflexive.

    ``irrefl(hb ; eco?) = irrefl(hb) ∧ irrefl(hb ; eco)``, checked without
    materialising the composition: a violation is an hb edge whose target
    eco-reaches (or equals) its source.

    Uses the *definitional* ``eco`` closure: the axiom exists to judge
    arbitrary states, so it must not trust the ``fast_eco`` provenance
    flag (whose closed form is only equivalent under update atomicity).
    """
    hb = state.hb
    if not hb.is_irreflexive():
        return False
    eco = state.eco_definitional()
    if not eco.is_irreflexive():
        return False
    eco_pairs = eco.pairs
    for a, b in hb.pairs:
        if (b, a) in eco_pairs:
            return False
    return True


AXIOMS = {
    "SB-Total": axiom_sb_total,
    "MO-Valid": axiom_mo_valid,
    "RF-Complete": axiom_rf_complete,
    "NoThinAir": axiom_no_thin_air,
    "Coherence": axiom_coherence,
}


# ----------------------------------------------------------------------
# Aggregate checking
# ----------------------------------------------------------------------


@dataclass
class ValidityReport:
    """Outcome of checking all five axioms on one state."""

    verdicts: Dict[str, bool] = field(default_factory=dict)

    @property
    def valid(self) -> bool:
        return all(self.verdicts.values())

    @property
    def violated(self) -> List[str]:
        return [name for name, ok in self.verdicts.items() if not ok]

    def __bool__(self) -> bool:
        return self.valid

    def __str__(self) -> str:
        if self.valid:
            return "valid"
        return "invalid: " + ", ".join(self.violated)


def check_validity(state: C11State) -> ValidityReport:
    """Check every axiom of Definition 4.2, reporting all violations."""
    return ValidityReport({name: axiom(state) for name, axiom in AXIOMS.items()})


def is_valid(state: C11State) -> bool:
    """Whether the execution satisfies Definition 4.2 (early-exit)."""
    return all(axiom(state) for axiom in AXIOMS.values())
