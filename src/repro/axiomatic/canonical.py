"""Appendix C — candidate executions and weak canonical RAR consistency.

Batty-style C11 models phrase consistency as a list of irreflexivity
conditions over ``hb``.  The paper proves (Theorem C.5) that for any
*candidate execution* (Definition C.1), its own Coherence axiom
(``irrefl(hb ; eco?) ∧ irrefl(eco)``) is equivalent to the conjunction

====  =========================================
HB    ``irrefl(hb)``
COH   ``irrefl((rf⁻¹)? ; mo ; rf? ; hb)``
RF    ``irrefl(rf ; hb)``
RFI   ``irrefl(rf)``
UPD   ``irrefl((mo ; mo ; rf⁻¹) ∪ (mo ; rf))``
====  =========================================

(Definition C.3, obtained from Batty et al.'s consistency by dropping
release sequences, which the RAR fragment ignores.)

The supporting lemmas are executable too:

* :func:`upd_reformulated` — Lemma C.6: UPD ⟺
  ``irrefl(fr ; mo) ∧ irrefl(rf ; mo)``.
* :func:`eco_closed_form` — Lemma C.9: under UPD,
  ``eco = rf ∪ mo ∪ fr ∪ (mo ; rf) ∪ (fr ; rf)``.

These feed the E1 equivalence experiment (the Memalloy substitute) and
the property-test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.axiomatic.validity import (
    axiom_mo_valid,
    axiom_rf_complete,
    axiom_sb_total,
)
from repro.c11.state import C11State
from repro.relations.relation import Relation


# ----------------------------------------------------------------------
# Candidate executions (Definition C.1)
# ----------------------------------------------------------------------


def is_candidate_execution(state: C11State) -> bool:
    """Definition C.1: RF-Complete ∧ MO-Valid ∧ SB-Total."""
    return (
        axiom_rf_complete(state)
        and axiom_mo_valid(state)
        and axiom_sb_total(state)
    )


# ----------------------------------------------------------------------
# The five weak-canonical conditions (Definition C.3)
# ----------------------------------------------------------------------


def condition_hb(state: C11State) -> bool:
    """HB: ``irrefl(hb)``."""
    return state.hb.is_irreflexive()


def condition_coh(state: C11State) -> bool:
    """COH: ``irrefl((rf⁻¹)? ; mo ; rf? ; hb)``.

    Built literally from the definition; the reflexive closures are taken
    over the event set of the state.
    """
    events = state.events
    rf_inv_q = state.rf.inverse().reflexive(events)
    rf_q = state.rf.reflexive(events)
    chain = rf_inv_q.compose(state.mo).compose(rf_q).compose(state.hb)
    return chain.is_irreflexive()


def condition_rf(state: C11State) -> bool:
    """RF: ``irrefl(rf ; hb)``."""
    return state.rf.compose(state.hb).is_irreflexive()


def condition_rfi(state: C11State) -> bool:
    """RFI: ``irrefl(rf)``."""
    return state.rf.is_irreflexive()


def condition_upd(state: C11State) -> bool:
    """UPD (update atomicity):
    ``irrefl((mo ; mo ; rf⁻¹) ∪ (mo ; rf))``."""
    mo, rf = state.mo, state.rf
    part1 = mo.compose(mo).compose(rf.inverse())
    part2 = mo.compose(rf)
    return (part1 | part2).is_irreflexive()


CONDITIONS = {
    "HB": condition_hb,
    "COH": condition_coh,
    "RF": condition_rf,
    "RFI": condition_rfi,
    "UPD": condition_upd,
}


@dataclass
class WeakCanonicalReport:
    """Outcome of the five weak-canonical conditions on one candidate."""

    verdicts: Dict[str, bool] = field(default_factory=dict)

    @property
    def consistent(self) -> bool:
        return all(self.verdicts.values())

    @property
    def violated(self) -> List[str]:
        return [name for name, ok in self.verdicts.items() if not ok]

    def __bool__(self) -> bool:
        return self.consistent


def weak_canonical_report(state: C11State) -> WeakCanonicalReport:
    """Evaluate every condition of Definition C.3 (no early exit)."""
    return WeakCanonicalReport(
        {name: cond(state) for name, cond in CONDITIONS.items()}
    )


def is_weakly_canonical_consistent(state: C11State) -> bool:
    """Definition C.3 (early-exit)."""
    return all(cond(state) for cond in CONDITIONS.values())


# ----------------------------------------------------------------------
# Executable lemmas
# ----------------------------------------------------------------------


def upd_reformulated(state: C11State) -> bool:
    """Lemma C.6's right-hand side:
    ``irrefl(fr ; mo) ∧ irrefl(rf ; mo)``."""
    fr, mo, rf = state.fr, state.mo, state.rf
    return fr.compose(mo).is_irreflexive() and rf.compose(mo).is_irreflexive()


def eco_closed_form(state: C11State) -> Relation:
    """Lemma C.9: ``rf ∪ mo ∪ fr ∪ (mo ; rf) ∪ (fr ; rf)``.

    Equals the definitional ``eco`` whenever the state satisfies UPD
    (checked by property tests).  ``C11State.eco`` adopts this form on
    RA-built states (the ``fast_eco`` provenance flag, see the E10
    ablation); this standalone version is the cross-check.
    """
    rf, mo, fr = state.rf, state.mo, state.fr
    return rf | mo | fr | mo.compose(rf) | fr.compose(rf)
