"""Comparing the two axiomatisations over bounded candidate spaces.

Empirical Theorem C.5 / Appendix E: over every candidate execution in a
:class:`~repro.axiomatic.candidates.CandidateSpace`, the paper's
Coherence axiom and the weak-canonical consistency conditions must agree.
The paper reports *"No differences were found between c11_rar.cat and
c11_simp_2.cat for models up to size 7"*; the E1 benchmark regenerates
that table (smaller bound, same shape — see DESIGN.md).

NoThinAir is excluded on both sides, exactly as the appendix does:
*"validity without the NoThinAir axiom and a version of canonical
consistency are equivalent"* — the canonical model has no counterpart of
the acyclicity axiom, it defines the larger RC11 behaviours away by
other means.  We additionally report how NoThinAir splits the agreed
set, which quantifies what the RAR fragment gives up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional

from repro.axiomatic.canonical import (
    is_weakly_canonical_consistent,
)
from repro.axiomatic.candidates import CandidateSpace, enumerate_candidates
from repro.axiomatic.validity import axiom_coherence, axiom_no_thin_air
from repro.c11.state import C11State


@dataclass
class EquivalenceResult:
    """Tally of one bounded comparison run."""

    space: CandidateSpace
    candidates: int = 0
    valid_paper: int = 0
    valid_canonical: int = 0
    agreed: int = 0
    mismatches: List[C11State] = field(default_factory=list)
    thin_air_only: int = 0  # consistent under both, yet sb ∪ rf cyclic

    @property
    def equivalent(self) -> bool:
        """Whether the models agreed on every candidate."""
        return not self.mismatches

    def row(self) -> str:
        """One table row for the E1 report."""
        return (
            f"n={self.space.n_events}  candidates={self.candidates:>8}  "
            f"consistent={self.valid_paper:>7}  mismatches={len(self.mismatches)}  "
            f"thin-air-only={self.thin_air_only}"
        )


def compare_axiomatisations(
    space: CandidateSpace,
    keep_mismatches: int = 10,
    progress: Optional[Callable[[int], None]] = None,
) -> EquivalenceResult:
    """Evaluate both models on every candidate of ``space``.

    ``keep_mismatches`` bounds how many disagreeing states are retained
    for diagnosis (Memalloy would print them as counterexamples).
    """
    result = EquivalenceResult(space)
    for state in enumerate_candidates(space):
        result.candidates += 1
        paper = axiom_coherence(state)
        canonical = is_weakly_canonical_consistent(state)
        if paper:
            result.valid_paper += 1
        if canonical:
            result.valid_canonical += 1
        if paper == canonical:
            result.agreed += 1
            if paper and not axiom_no_thin_air(state):
                result.thin_air_only += 1
        elif len(result.mismatches) < keep_mismatches:
            result.mismatches.append(state)
        if progress is not None and result.candidates % 10000 == 0:
            progress(result.candidates)
    return result


def sweep_sizes(
    sizes: Iterable[int],
    variables=("x", "y"),
    values=(1,),
    max_threads: int = 2,
) -> List[EquivalenceResult]:
    """Run the comparison for each event-count in ``sizes`` (the E1 table)."""
    results = []
    for n in sizes:
        space = CandidateSpace(
            n_events=n,
            variables=tuple(variables),
            values=tuple(values),
            max_threads=max_threads,
        )
        results.append(compare_axiomatisations(space))
    return results
