"""Definition C.2 — *canonical* RAR consistency, release sequences included.

Appendix C relates the paper's model to Batty et al.'s, whose
synchronises-with is larger::

    sw ⊆ swC

because a releasing write synchronises not only with acquiring reads of
*itself* but with acquiring reads of any write in its **release
sequence** — same-location writes that follow it in program order, and
RMWs reading from the sequence (the Memalloy file's ``rs = poloc*; rf*``).
With ``hbC = (sb ∪ swC)+``, canonical consistency is:

====== ==============================================
HB-C   ``irrefl(hbC)``
COH-C  ``irrefl((rf⁻¹)? ; mo ; rf? ; hbC)``
RF-C   ``irrefl(rf ; hbC)``  (and ``irrefl(rf)``)
UPD-C  ``irrefl((mo ; mo ; rf⁻¹) ∪ (mo ; rf))``
====== ==============================================

Lemma C.4: canonical consistency implies weak canonical consistency
(the paper's model accepts *more* executions — dropping release
sequences weakens the semantics).  Both the implication and a concrete
separating execution are pinned by tests.
"""

from __future__ import annotations

from typing import Set

from repro.axiomatic.canonical import condition_rfi, condition_upd
from repro.c11.state import C11State
from repro.relations.relation import Relation


def release_sequence_heads(state: C11State) -> Relation:
    """The relation ``rs``: releasing write → member of its release
    sequence.

    ``rs = (poloc ∩ (Wr × Wr))* ; (rf ∩ (Wr × U))*`` — start at a write,
    walk same-location program-order writes of the same thread, and hop
    along rf edges into RMWs (which are writes again).  Reflexive: every
    write heads its own sequence.
    """
    writes = state.writes
    poloc_w = state.sb.filter_pairs(
        lambda a, b: a in writes
        and b in writes
        and a.var == b.var
    )
    rf_into_updates = state.rf.filter_pairs(
        lambda w, r: r.is_update
    )
    step = poloc_w | rf_into_updates
    return step.reflexive_transitive_closure(writes)


def strong_sw(state: C11State) -> Relation:
    """``swC``: releasing write → acquiring read of its release sequence."""
    rs = release_sequence_heads(state)
    out: Set = set()
    rs_succ = rs.successors_map()
    rf_succ = state.rf.successors_map()
    for w in state.writes:
        if not w.is_release:
            continue
        for member in rs_succ.get(w, {w}):
            for r in rf_succ.get(member, ()):
                if r.is_acquire:
                    out.add((w, r))
    return Relation(out)


def strong_hb(state: C11State) -> Relation:
    """``hbC = (sb ∪ swC)+``."""
    return (state.sb | strong_sw(state)).transitive_closure()


def condition_hb_c(state: C11State) -> bool:
    return strong_hb(state).is_irreflexive()


def condition_coh_c(state: C11State) -> bool:
    events = state.events
    rf_inv_q = state.rf.inverse().reflexive(events)
    rf_q = state.rf.reflexive(events)
    chain = rf_inv_q.compose(state.mo).compose(rf_q).compose(strong_hb(state))
    return chain.is_irreflexive()


def condition_rf_c(state: C11State) -> bool:
    return state.rf.compose(strong_hb(state)).is_irreflexive()


def is_canonically_consistent(state: C11State) -> bool:
    """Definition C.2 (with the RFI/UPD parts shared with Def C.3)."""
    return (
        condition_hb_c(state)
        and condition_coh_c(state)
        and condition_rf_c(state)
        and condition_rfi(state)
        and condition_upd(state)
    )
