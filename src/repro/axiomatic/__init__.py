"""The axiomatic side of the paper (Section 4.1 and Appendix C).

* :mod:`repro.axiomatic.validity` — Definition 4.2: the five validity
  axioms of the paper's RAR model (SB-Total, MO-Valid, RF-Complete,
  NoThinAir, Coherence).
* :mod:`repro.axiomatic.canonical` — Definitions C.1–C.3: candidate
  executions and *weak canonical RAR consistency* (HB, COH, RF, RFI,
  UPD), plus the closed form of ``eco`` (Lemma C.9).
* :mod:`repro.axiomatic.candidates` — bounded exhaustive enumeration of
  candidate executions (the Memalloy substitute, Appendix E).
* :mod:`repro.axiomatic.equivalence` — compares the two axiomatisations
  over every enumerated candidate (Theorem C.5 empirically).
* :mod:`repro.axiomatic.justify` — Definition 4.3: search for ``rf``/``mo``
  justifying a pre-execution (the input to the completeness replay).
"""

from repro.axiomatic.validity import (
    ValidityReport,
    check_validity,
    is_valid,
    axiom_sb_total,
    axiom_mo_valid,
    axiom_rf_complete,
    axiom_no_thin_air,
    axiom_coherence,
)
from repro.axiomatic.canonical import (
    eco_closed_form,
    is_candidate_execution,
    is_weakly_canonical_consistent,
    weak_canonical_report,
)
from repro.axiomatic.canonical_strong import (
    is_canonically_consistent,
    release_sequence_heads,
    strong_hb,
    strong_sw,
)
from repro.axiomatic.candidates import CandidateSpace, enumerate_candidates
from repro.axiomatic.equivalence import EquivalenceResult, compare_axiomatisations
from repro.axiomatic.justify import justifications, is_justifiable

__all__ = [
    "ValidityReport",
    "check_validity",
    "is_valid",
    "axiom_sb_total",
    "axiom_mo_valid",
    "axiom_rf_complete",
    "axiom_no_thin_air",
    "axiom_coherence",
    "eco_closed_form",
    "is_candidate_execution",
    "is_weakly_canonical_consistent",
    "weak_canonical_report",
    "is_canonically_consistent",
    "release_sequence_heads",
    "strong_hb",
    "strong_sw",
    "CandidateSpace",
    "enumerate_candidates",
    "EquivalenceResult",
    "compare_axiomatisations",
    "justifications",
    "is_justifiable",
]
