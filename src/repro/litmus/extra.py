"""Additional litmus tests: the S/R shapes, coherence variants, fences-
by-RMW idioms.

These extend :mod:`repro.litmus.suite` with the remaining classic
two-to-three-thread shapes, each pinned to its RAR verdict.  Collected
separately so the core suite mirrors the tests the paper's narrative
touches while this module rounds out the behavioural fingerprint.
"""

from __future__ import annotations

from typing import List

from repro.lang.builder import acq, assign, seq, swap, var
from repro.lang.program import Program
from repro.litmus.registry import LitmusTest


def _s_shape() -> LitmusTest:
    """S: w1 -mo-> w2 via an rf+sb detour.  Forbidden with rel/acq."""
    program = Program.parallel(
        seq(assign("x", 2), assign("y", 1, release=True)),
        seq(assign("r1", acq("y")), assign("x", 1)),
    )
    return LitmusTest(
        name="S+rel-acq",
        description="write-after-synchronise cannot be mo-before the "
        "write it causally follows",
        program=program,
        init={"x": 0, "y": 0, "r1": 0},
        # r1 = 1 (synchronised) and x finally 2 would need wr(x,1) mo-before
        # wr(x,2) against hb — a Coherence violation.
        outcome=lambda v: v["r1"] == 1 and v["x"] == 2,
        outcome_text="r1 = 1 ∧ x = 2 finally",
        allowed_ra=False,
        allowed_sc=False,
    )


def _s_relaxed() -> LitmusTest:
    """S without synchronisation: the detour carries no hb, so allowed."""
    program = Program.parallel(
        seq(assign("x", 2), assign("y", 1)),
        seq(assign("r1", var("y")), assign("x", 1)),
    )
    return LitmusTest(
        name="S+relaxed",
        description="the S shape is allowed without release/acquire",
        program=program,
        init={"x": 0, "y": 0, "r1": 0},
        outcome=lambda v: v["r1"] == 1 and v["x"] == 2,
        outcome_text="r1 = 1 ∧ x = 2 finally",
        allowed_ra=True,
        allowed_sc=False,
    )


def _r_shape() -> LitmusTest:
    """R: a write racing a synchronised write-read pair.  Allowed in RA
    (needs SC fences to forbid, which the fragment lacks)."""
    program = Program.parallel(
        seq(assign("x", 1), assign("y", 1, release=True)),
        seq(assign("y", 2, release=True), assign("r1", acq("x"))),
    )
    return LitmusTest(
        name="R+rel-acq",
        description="R shape stays allowed under release/acquire",
        program=program,
        init={"x": 0, "y": 0, "r1": 0},
        # classic R asks: thread 2's y-write wins mo AND its x-read is
        # stale — an SC cycle, but RA has no total order across variables
        outcome=lambda v: v["y"] == 2 and v["r1"] == 0,
        outcome_text="y = 2 finally ∧ r1 = 0",
        allowed_ra=True,
        allowed_sc=False,
    )


def _corw1() -> LitmusTest:
    """CoRW1: a thread reads x then writes x; the write cannot be
    mo-before the read's source."""
    program = Program.parallel(
        seq(assign("r1", var("x")), assign("x", 2)),
        assign("x", 1),
    )
    return LitmusTest(
        name="CoRW1",
        description="read-then-write coherence within one thread",
        program=program,
        init={"x": 0, "r1": 0},
        # reading 1 then having the final value be 1 would place wr(x,2)
        # mo-before wr(x,1), against fr;mo irreflexivity
        outcome=lambda v: v["r1"] == 1 and v["x"] == 1,
        outcome_text="r1 = 1 ∧ x = 1 finally",
        allowed_ra=False,
        allowed_sc=False,
    )


def _coww() -> LitmusTest:
    """CoWW: program order of two writes to one variable is mo order."""
    program = Program.parallel(
        seq(assign("x", 1), assign("x", 2)),
    )
    return LitmusTest(
        name="CoWW",
        description="sb between same-variable writes forces mo",
        program=program,
        init={"x": 0},
        outcome=lambda v: v["x"] == 1,
        outcome_text="x = 1 finally",
        allowed_ra=False,
        allowed_sc=False,
    )


def _mp_swap_flag() -> LitmusTest:
    """Message passing where the flag is raised by an RMW: the swap is
    releasing, so synchronisation still happens."""
    program = Program.parallel(
        seq(assign("d", 1), swap("f", 1)),
        seq(assign("r1", acq("f")), assign("r2", var("d"))),
    )
    return LitmusTest(
        name="MP+swap-flag",
        description="a release-acquire swap publishes like a releasing store",
        program=program,
        init={"d": 0, "f": 0, "r1": 0, "r2": 0},
        outcome=lambda v: v["r1"] == 1 and v["r2"] == 0,
        outcome_text="r1 = 1 ∧ r2 = 0",
        allowed_ra=False,
        allowed_sc=False,
    )


def _mp_acquire_only() -> LitmusTest:
    """Acquire without release: no sw edge, stale data readable."""
    program = Program.parallel(
        seq(assign("d", 1), assign("f", 1)),  # relaxed flag write!
        seq(assign("r1", acq("f")), assign("r2", var("d"))),
    )
    return LitmusTest(
        name="MP+acq-only",
        description="an acquiring read of a relaxed write does not "
        "synchronise",
        program=program,
        init={"d": 0, "f": 0, "r1": 0, "r2": 0},
        outcome=lambda v: v["r1"] == 1 and v["r2"] == 0,
        outcome_text="r1 = 1 ∧ r2 = 0",
        allowed_ra=True,
        allowed_sc=False,
    )


def _mp_release_only() -> LitmusTest:
    """Release without acquire: symmetric failure."""
    program = Program.parallel(
        seq(assign("d", 1), assign("f", 1, release=True)),
        seq(assign("r1", var("f")), assign("r2", var("d"))),  # relaxed read!
    )
    return LitmusTest(
        name="MP+rel-only",
        description="a relaxed read of a releasing write does not "
        "synchronise",
        program=program,
        init={"d": 0, "f": 0, "r1": 0, "r2": 0},
        outcome=lambda v: v["r1"] == 1 and v["r2"] == 0,
        outcome_text="r1 = 1 ∧ r2 = 0",
        allowed_ra=True,
        allowed_sc=False,
    )


def _three_swaps_chain() -> LitmusTest:
    """Three competing RMWs on one variable totalise: the final value is
    the last swap's, and 0 can never survive."""
    program = Program.parallel(
        swap("x", 1), swap("x", 2), swap("x", 3)
    )
    return LitmusTest(
        name="3-swaps",
        description="RMWs on one variable form an hb-total chain",
        program=program,
        init={"x": 0},
        outcome=lambda v: v["x"] == 0,
        outcome_text="x = 0 finally",
        allowed_ra=False,
        allowed_sc=False,
    )


EXTRA_TESTS: List[LitmusTest] = [
    _s_shape(),
    _s_relaxed(),
    _r_shape(),
    _corw1(),
    _coww(),
    _mp_swap_flag(),
    _mp_acquire_only(),
    _mp_release_only(),
    _three_swaps_chain(),
]
