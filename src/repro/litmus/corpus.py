"""A textual litmus corpus, parsed by :mod:`repro.lang.parser`.

The same tests could be built with the Python builder (and the core ones
are, in :mod:`repro.litmus.suite`), but a text corpus is what downstream
users actually maintain: copy a file, tweak an annotation, re-run.  Each
entry is a complete ``.litmus``-style source; :func:`load_corpus` parses
them all and :func:`corpus_expectations` pins the expected RA verdict of
each ``exists``/``forbidden`` clause.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.lang.parser import ParsedLitmus, parse_litmus

CORPUS_SOURCES: Dict[str, str] = {
    "SB.litmus": """
        C11 SB (store buffering, textual)
        { x = 0; y = 0; r1 = 0; r2 = 0 }
        P1: x := 1; r1 := y
        P2: y := 1; r2 := x
        exists (r1 = 0 /\\ r2 = 0)
    """,
    "MP.litmus": """
        C11 MP (message passing with release acquire)
        { d = 0; f = 0; r1 = 0; r2 = 0 }
        P1: d := 5; f :=R 1
        P2: r1 := f^A; r2 := d
        forbidden (r1 = 1 /\\ r2 = 0)
    """,
    "MP_relaxed.litmus": """
        C11 MP_relaxed (message passing without synchronisation)
        { d = 0; f = 0; r1 = 0; r2 = 0 }
        P1: d := 5; f := 1
        P2: r1 := f; r2 := d
        exists (r1 = 1 /\\ r2 = 0)
    """,
    "LB.litmus": """
        C11 LB (load buffering, excluded by NoThinAir)
        { x = 0; y = 0; r1 = 0; r2 = 0 }
        P1: r1 := x; y := 1
        P2: r2 := y; x := 1
        forbidden (r1 = 1 /\\ r2 = 1)
    """,
    "CoRR.litmus": """
        C11 CoRR (coherence of read read pairs)
        { x = 0; r1 = 0; r2 = 0 }
        P1: x := 1; x := 2
        P2: r1 := x; r2 := x
        forbidden (r1 = 2 /\\ r2 = 1)
    """,
    "SWAPS.litmus": """
        C11 SWAPS (update atomicity)
        { x = 0 }
        P1: x.swap(1)
        P2: x.swap(2)
        forbidden (x = 0)
    """,
    "IRIW.litmus": """
        C11 IRIW (independent readers, acquire loads)
        { x = 0; y = 0; r1 = 0; r2 = 0; r3 = 0; r4 = 0 }
        P1: x :=R 1
        P2: y :=R 1
        P3: r1 := x^A; r2 := y^A
        P4: r3 := y^A; r4 := x^A
        exists (r1 = 1 /\\ r2 = 0 /\\ r3 = 1 /\\ r4 = 0)
    """,
    "MP_await.litmus": """
        C11 MP_await (Example 5.7 with the busy wait)
        { d = 0; f = 0; r = 0 }
        P1: d := 5; f :=R 1
        P2: while (!f^A) { }; r := d
        forbidden (f = 1 /\\ r != 5)
    """,
    "PETERSON_HEAD.litmus": """
        C11 PETERSON_HEAD (Example 3.6 prefix: both swaps run)
        { flag1 = 0; flag2 = 0; turn = 1 }
        P1: 2: flag1 := 1; 3: turn.swap(2)
        P2: 2: flag2 := 1; 3: turn.swap(1)
        forbidden (turn = 0)
    """,
}

#: name -> (outcome expected reachable under RA?, event bound or None)
CORPUS_EXPECTATIONS: Dict[str, Tuple[bool, object]] = {
    "SB.litmus": (True, None),
    "MP.litmus": (False, None),
    "MP_relaxed.litmus": (True, None),
    "LB.litmus": (False, None),
    "CoRR.litmus": (False, None),
    "SWAPS.litmus": (False, None),
    "IRIW.litmus": (True, None),
    "MP_await.litmus": (False, 9),
    "PETERSON_HEAD.litmus": (False, None),
}


def load_corpus() -> Dict[str, ParsedLitmus]:
    """Parse every corpus source."""
    return {name: parse_litmus(src) for name, src in CORPUS_SOURCES.items()}


def corpus_names() -> List[str]:
    return sorted(CORPUS_SOURCES)
