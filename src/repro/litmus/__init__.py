"""Litmus tests: small programs with expected RA/SC verdicts.

* :mod:`repro.litmus.registry` — the :class:`LitmusTest` shape and the
  runner that decides whether an outcome is reachable under a model.
* :mod:`repro.litmus.suite` — the standard weak-memory litmus tests
  (SB, MP, LB, CoRR, CoWR, IRIW, 2+2W, WRC, ...) with the verdicts the
  RAR fragment prescribes.
"""

from repro.litmus.registry import LitmusOutcome, LitmusTest, run_litmus, final_values
from repro.litmus.suite import ALL_TESTS, test_by_name
from repro.litmus.extra import EXTRA_TESTS
from repro.litmus.corpus import CORPUS_SOURCES, load_corpus

__all__ = [
    "LitmusTest",
    "LitmusOutcome",
    "run_litmus",
    "final_values",
    "ALL_TESTS",
    "test_by_name",
    "EXTRA_TESTS",
    "CORPUS_SOURCES",
    "load_corpus",
]
