"""The standard litmus tests, with RAR-fragment verdicts.

Verdict sources: store buffering, IRIW and 2+2W weak behaviours are the
classic release-acquire-allowed shapes (no SC fences in the fragment);
message passing with release/acquire is the fragment's guarantee
(Example 5.7); load buffering is excluded outright by NoThinAir (the
paper's §1: "acyclicity of sb ∪ rf precludes behaviours allowed by
hardware such as ARMv8"); the coherence shapes (CoRR/CoWR/CoWW) are
forbidden by Coherence/eco irreflexivity in any C11 model.
"""

from __future__ import annotations

from typing import Dict, List

from repro.lang.builder import acq, assign, label, neg, seq, skip, swap, var, while_
from repro.lang.program import Program
from repro.litmus.registry import LitmusTest


def _sb() -> LitmusTest:
    program = Program.parallel(
        seq(assign("x", 1), assign("r1", var("y"))),
        seq(assign("y", 1), assign("r2", var("x"))),
    )
    return LitmusTest(
        name="SB",
        description="store buffering: both threads read the other's stale 0",
        program=program,
        init={"x": 0, "y": 0, "r1": 0, "r2": 0},
        outcome=lambda v: v["r1"] == 0 and v["r2"] == 0,
        outcome_text="r1 = 0 ∧ r2 = 0",
        allowed_ra=True,
        allowed_sc=False,
    )


def _sb_rel_acq() -> LitmusTest:
    program = Program.parallel(
        seq(assign("x", 1, release=True), assign("r1", acq("y"))),
        seq(assign("y", 1, release=True), assign("r2", acq("x"))),
    )
    return LitmusTest(
        name="SB+rel-acq",
        description="store buffering is NOT repaired by release/acquire",
        program=program,
        init={"x": 0, "y": 0, "r1": 0, "r2": 0},
        outcome=lambda v: v["r1"] == 0 and v["r2"] == 0,
        outcome_text="r1 = 0 ∧ r2 = 0",
        allowed_ra=True,
        allowed_sc=False,
    )


def _mp_rel_acq() -> LitmusTest:
    program = Program.parallel(
        seq(assign("d", 1), assign("f", 1, release=True)),
        seq(assign("r1", acq("f")), assign("r2", var("d"))),
    )
    return LitmusTest(
        name="MP+rel-acq",
        description="message passing, release/acquire: no stale data",
        program=program,
        init={"d": 0, "f": 0, "r1": 0, "r2": 0},
        outcome=lambda v: v["r1"] == 1 and v["r2"] == 0,
        outcome_text="r1 = 1 ∧ r2 = 0",
        allowed_ra=False,
        allowed_sc=False,
    )


def _mp_relaxed() -> LitmusTest:
    program = Program.parallel(
        seq(assign("d", 1), assign("f", 1)),
        seq(assign("r1", var("f")), assign("r2", var("d"))),
    )
    return LitmusTest(
        name="MP+relaxed",
        description="message passing, all relaxed: stale data observable",
        program=program,
        init={"d": 0, "f": 0, "r1": 0, "r2": 0},
        outcome=lambda v: v["r1"] == 1 and v["r2"] == 0,
        outcome_text="r1 = 1 ∧ r2 = 0",
        allowed_ra=True,
        allowed_sc=False,
    )


def _lb() -> LitmusTest:
    program = Program.parallel(
        seq(assign("r1", var("x")), assign("y", 1)),
        seq(assign("r2", var("y")), assign("x", 1)),
    )
    return LitmusTest(
        name="LB",
        description="load buffering: values out of thin air (NoThinAir)",
        program=program,
        init={"x": 0, "y": 0, "r1": 0, "r2": 0},
        outcome=lambda v: v["r1"] == 1 and v["r2"] == 1,
        outcome_text="r1 = 1 ∧ r2 = 1",
        allowed_ra=False,
        allowed_sc=False,
    )


def _corr() -> LitmusTest:
    program = Program.parallel(
        seq(assign("x", 1), assign("x", 2)),
        seq(assign("r1", var("x")), assign("r2", var("x"))),
    )
    return LitmusTest(
        name="CoRR",
        description="coherence: reads of one variable never go backwards",
        program=program,
        init={"x": 0, "r1": 0, "r2": 0},
        outcome=lambda v: v["r1"] == 2 and v["r2"] == 1,
        outcome_text="r1 = 2 ∧ r2 = 1",
        allowed_ra=False,
        allowed_sc=False,
    )


def _cowr() -> LitmusTest:
    program = Program.parallel(
        seq(assign("x", 1), assign("r1", var("x"))),
    )
    return LitmusTest(
        name="CoWR",
        description="a thread cannot read past its own write",
        program=program,
        init={"x": 0, "r1": 0},
        outcome=lambda v: v["r1"] == 0,
        outcome_text="r1 = 0",
        allowed_ra=False,
        allowed_sc=False,
    )


def _iriw_acq() -> LitmusTest:
    program = Program.parallel(
        assign("x", 1, release=True),
        assign("y", 1, release=True),
        seq(assign("r1", acq("x")), assign("r2", acq("y"))),
        seq(assign("r3", acq("y")), assign("r4", acq("x"))),
    )
    return LitmusTest(
        name="IRIW+rel-acq",
        description="independent readers disagree on write order "
        "(release/acquire is not multi-copy atomic)",
        program=program,
        init={"x": 0, "y": 0, "r1": 0, "r2": 0, "r3": 0, "r4": 0},
        outcome=lambda v: v["r1"] == 1
        and v["r2"] == 0
        and v["r3"] == 1
        and v["r4"] == 0,
        outcome_text="r1 = 1 ∧ r2 = 0 ∧ r3 = 1 ∧ r4 = 0",
        allowed_ra=True,
        allowed_sc=False,
    )


def _2p2w() -> LitmusTest:
    program = Program.parallel(
        seq(assign("x", 1), assign("y", 2)),
        seq(assign("y", 1), assign("x", 2)),
    )
    return LitmusTest(
        name="2+2W",
        description="both variables end at their first writes",
        program=program,
        init={"x": 0, "y": 0},
        outcome=lambda v: v["x"] == 1 and v["y"] == 1,
        outcome_text="x = 1 ∧ y = 1 finally",
        allowed_ra=True,
        allowed_sc=False,
    )


def _wrc_rel_acq() -> LitmusTest:
    program = Program.parallel(
        assign("x", 1),
        seq(assign("r1", var("x")), assign("y", 1, release=True)),
        seq(assign("r2", acq("y")), assign("r3", var("x"))),
    )
    return LitmusTest(
        name="WRC+rel-acq",
        description="write-to-read causality transfers through release/acquire",
        program=program,
        init={"x": 0, "y": 0, "r1": 0, "r2": 0, "r3": 0},
        outcome=lambda v: v["r1"] == 1 and v["r2"] == 1 and v["r3"] == 0,
        outcome_text="r1 = 1 ∧ r2 = 1 ∧ r3 = 0",
        allowed_ra=False,
        allowed_sc=False,
    )


def _wrc_relaxed() -> LitmusTest:
    program = Program.parallel(
        assign("x", 1),
        seq(assign("r1", var("x")), assign("y", 1)),
        seq(assign("r2", var("y")), assign("r3", var("x"))),
    )
    return LitmusTest(
        name="WRC+relaxed",
        description="write-to-read causality lost without synchronisation",
        program=program,
        init={"x": 0, "y": 0, "r1": 0, "r2": 0, "r3": 0},
        outcome=lambda v: v["r1"] == 1 and v["r2"] == 1 and v["r3"] == 0,
        outcome_text="r1 = 1 ∧ r2 = 1 ∧ r3 = 0",
        allowed_ra=True,
        allowed_sc=False,
    )


def _rmw_exclusive() -> LitmusTest:
    """Two swaps on one variable must be mo-adjacent to what they read:
    both reading the initial value is impossible (covered writes)."""
    program = Program.parallel(
        seq(swap("x", 1), assign("r1", var("x"))),
        seq(swap("x", 2), assign("r2", var("x"))),
    )
    return LitmusTest(
        name="RMW-exclusive",
        description="update atomicity: swaps never read the same write",
        program=program,
        init={"x": 0, "r1": 0, "r2": 0},
        # Both swaps reading 0 would leave each thread able to read back
        # only its own value while mo orders them; the observable smoking
        # gun is r1 = r2 with both swaps present — impossible since the
        # mo-later swap reads the earlier one... the earlier thread can
        # still read the later swap's value.  The truly forbidden shape:
        # the mo-later thread reading back its own value while the other
        # reads it too is fine; what cannot happen is *both* threads
        # reading values proving each swap read init: captured on the
        # final state: last(x) must be 1 or 2, never 0.
        outcome=lambda v: v["x"] == 0,
        outcome_text="x = 0 finally",
        allowed_ra=False,
        allowed_sc=False,
    )


def _sb_rmw() -> LitmusTest:
    """Store buffering repaired with RMWs: swaps synchronise (covered
    writes force the second swap to read the first), so at least one
    reader sees the other swap."""
    program = Program.parallel(
        seq(swap("x", 1), assign("r1", var("y"))),
        seq(swap("y", 1), assign("r2", var("x"))),
    )
    return LitmusTest(
        name="SB+rmw",
        description="store buffering with swaps on distinct variables "
        "still exhibits the weak outcome (no cross-variable sync)",
        program=program,
        init={"x": 0, "y": 0, "r1": 0, "r2": 0},
        outcome=lambda v: v["r1"] == 0 and v["r2"] == 0,
        outcome_text="r1 = 0 ∧ r2 = 0",
        allowed_ra=True,
        allowed_sc=False,
    )


def _mp_await() -> LitmusTest:
    """Example 5.7 itself, busy-wait loop included (bounded unrolling)."""
    program = Program.parallel(
        seq(assign("d", 5), assign("f", 1, release=True)),
        seq(while_(neg(acq("f")), skip()), assign("r", var("d"))),
    )
    return LitmusTest(
        name="MP+await",
        description="Example 5.7: consumer spins, then must see the payload",
        program=program,
        init={"d": 0, "f": 0, "r": 0},
        outcome=lambda v: v["f"] == 1 and v["r"] != 5,
        outcome_text="terminated with r ≠ 5",
        allowed_ra=False,
        allowed_sc=False,
        max_events=9,
    )


ALL_TESTS: List[LitmusTest] = [
    _sb(),
    _sb_rel_acq(),
    _mp_rel_acq(),
    _mp_relaxed(),
    _lb(),
    _corr(),
    _cowr(),
    _iriw_acq(),
    _2p2w(),
    _wrc_rel_acq(),
    _wrc_relaxed(),
    _rmw_exclusive(),
    _sb_rmw(),
    _mp_await(),
]


def test_by_name(name: str) -> LitmusTest:
    """Look up a litmus test by its name."""
    for test in ALL_TESTS:
        if test.name == name:
            return test
    raise KeyError(name)
