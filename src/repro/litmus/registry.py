"""Litmus-test infrastructure.

A litmus test pairs a tiny program with a *question*: is the final-state
outcome ``pred(values)`` reachable?  The answer depends on the memory
model — the whole point — so every test carries its expected verdict
under the paper's RA semantics and under sequential consistency
(E7's table compares the two).

Registers are ordinary shared variables written by exactly one thread
(the paper has no thread-local state), so an outcome is a predicate over
the *final value of every variable*: ``wrval(σ.last(x))`` for C11
states, the store content for SC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

from repro.c11.state import C11State
from repro.interp.config import Configuration
from repro.interp.explore import explore
from repro.interp.memory_model import MemoryModel
from repro.interp.ra_model import RAMemoryModel
from repro.interp.sc import SCMemoryModel
from repro.lang.actions import Value, Var
from repro.lang.program import Program


def final_values(config: Configuration) -> Dict[Var, Value]:
    """Final value of every variable in a terminal configuration."""
    state = config.state
    if isinstance(state, C11State):
        out: Dict[Var, Value] = {}
        for x in state.variables():
            last = state.last(x)
            assert last is not None
            out[x] = last.wrval
        return out
    # SC stores are tuples of (var, value) pairs.
    return dict(state)


@dataclass(frozen=True)
class LitmusTest:
    """One litmus test with its expected verdicts."""

    name: str
    description: str
    program: Program
    init: Mapping[Var, Value]
    outcome: Callable[[Dict[Var, Value]], bool]
    outcome_text: str
    allowed_ra: bool
    allowed_sc: bool
    #: Bound on program events; litmus programs are loop-free except MP,
    #: whose busy wait needs a modest unrolling budget.
    max_events: Optional[int] = None


@dataclass
class LitmusOutcome:
    """The result of running one test under one model."""

    test: LitmusTest
    model_name: str
    reachable: bool
    expected: bool
    terminal_states: int
    configs: int
    truncated: bool

    @property
    def verdict_matches(self) -> bool:
        return self.reachable == self.expected

    def row(self) -> str:
        got = "allowed " if self.reachable else "forbidden"
        ok = "OK" if self.verdict_matches else "** MISMATCH **"
        return (
            f"{self.test.name:<22} {self.model_name:<3} {got} "
            f"(expected {'allowed' if self.expected else 'forbidden'})  "
            f"terminals={self.terminal_states:>4} configs={self.configs:>6}  {ok}"
        )


def run_litmus(
    test: LitmusTest,
    model: Optional[MemoryModel] = None,
    max_configs: Optional[int] = None,
) -> LitmusOutcome:
    """Decide reachability of the test's outcome under ``model``."""
    model = model if model is not None else RAMemoryModel()
    result = explore(
        test.program,
        test.init,
        model,
        max_events=test.max_events,
        max_configs=max_configs,
    )
    reachable = any(
        test.outcome(final_values(config)) for config in result.terminal
    )
    expected = (
        test.allowed_sc if isinstance(model, SCMemoryModel) else test.allowed_ra
    )
    return LitmusOutcome(
        test=test,
        model_name=model.name,
        reachable=reachable,
        expected=expected,
        terminal_states=len(result.terminal),
        configs=result.configs,
        truncated=result.truncated,
    )


def run_suite(
    tests: List[LitmusTest],
    models: Optional[List[MemoryModel]] = None,
) -> List[LitmusOutcome]:
    """The E7 table: every test under every model."""
    models = models if models is not None else [RAMemoryModel(), SCMemoryModel()]
    outcomes = []
    for test in tests:
        for model in models:
            outcomes.append(run_litmus(test, model))
    return outcomes
